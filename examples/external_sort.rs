//! External sorting — the classic workload merge algorithms exist for:
//! a dataset larger than working memory, sorted via bounded-memory runs
//! and a k-way merge.
//!
//! Pipeline (all on the public API):
//!   1. stream the input in memory-budget-sized chunks; sort each chunk
//!      with the parallel merge sort and spill it as a sorted run file;
//!   2. k-way merge the run files back into one sorted output — the
//!      in-memory tails of all runs are merged with the rank-partitioned
//!      parallel k-way merge, batch by batch.
//!
//! Uses a temp directory; cleans up after itself.
//!
//! Run: `cargo run --release --example external_sort`

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

use mergepath_suite::mergepath::merge::kway::kway_rank_split;
use mergepath_suite::mergepath::prelude::*;
use mergepath_suite::workloads::{unsorted_keys, SortWorkload};

const MEMORY_BUDGET: usize = 1 << 18; // elements held in RAM at once
const TOTAL: usize = 1 << 21; // 2M elements ≈ 8 MiB of u32s
const THREADS: usize = 4;

fn write_run(path: &PathBuf, data: &[u32]) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

fn read_chunk(r: &mut BufReader<File>, max: usize) -> std::io::Result<Vec<u32>> {
    let mut out = Vec::with_capacity(max);
    let mut buf = [0u8; 4];
    for _ in 0..max {
        match r.read_exact(&mut buf) {
            Ok(()) => out.push(u32::from_le_bytes(buf)),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join(format!("mergepath_extsort_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // ---- Phase 0: synthesize the "too big for RAM" input file ----------
    let input = unsorted_keys(SortWorkload::Uniform, TOTAL, 0xE57);
    let input_path = dir.join("input.bin");
    write_run(&input_path, &input)?;
    println!(
        "input: {} elements ({} MiB), memory budget {} elements",
        TOTAL,
        (TOTAL * 4) >> 20,
        MEMORY_BUDGET
    );

    // ---- Phase 1: sorted runs -------------------------------------------
    let mut run_paths = Vec::new();
    {
        let mut reader = BufReader::new(File::open(&input_path)?);
        loop {
            let mut chunk = read_chunk(&mut reader, MEMORY_BUDGET)?;
            if chunk.is_empty() {
                break;
            }
            parallel_merge_sort(&mut chunk, THREADS);
            let path = dir.join(format!("run{}.bin", run_paths.len()));
            write_run(&path, &chunk)?;
            run_paths.push(path);
        }
    }
    println!("phase 1: spilled {} sorted runs", run_paths.len());

    // ---- Phase 2: k-way merge of the runs, batch by batch ----------------
    // Each run gets an in-memory tail of budget/(k+1) elements; one output
    // batch of the same size is produced per iteration with the parallel
    // k-way merge, consuming from each tail exactly what the rank split
    // dictates (the k-way generalization of the paper's Algorithm 2 loop).
    let k = run_paths.len();
    let tail_cap = (MEMORY_BUDGET / (k + 1)).max(1);
    let mut readers: Vec<BufReader<File>> = run_paths
        .iter()
        .map(|p| File::open(p).map(BufReader::new))
        .collect::<std::io::Result<_>>()?;
    let mut tails: Vec<Vec<u32>> = Vec::with_capacity(k);
    for r in &mut readers {
        tails.push(read_chunk(r, tail_cap)?);
    }
    let out_path = dir.join("sorted.bin");
    let mut out = BufWriter::new(File::create(&out_path)?);
    let mut emitted = 0usize;
    let mut batches = 0usize;
    while emitted < TOTAL {
        let available: usize = tails.iter().map(|t| t.len()).sum();
        let batch = tail_cap.min(available);
        // Feasibility mirrors Theorem 16: each tail holds ≤ tail_cap, and
        // emitting ≤ tail_cap consumes ≤ tail_cap from any single run.
        let lists: Vec<&[u32]> = tails.iter().map(|t| t.as_slice()).collect();
        let take = kway_rank_split(&lists, batch);
        let batch_lists: Vec<&[u32]> = lists.iter().zip(&take).map(|(l, &t)| &l[..t]).collect();
        let mut merged = vec![0u32; batch];
        parallel_kway_merge(&batch_lists, &mut merged, THREADS);
        for v in &merged {
            out.write_all(&v.to_le_bytes())?;
        }
        emitted += batch;
        batches += 1;
        // Refill each tail by what was consumed.
        for ((tail, reader), consumed) in tails.iter_mut().zip(&mut readers).zip(&take) {
            tail.drain(..consumed);
            let refill = read_chunk(reader, tail_cap - tail.len())?;
            tail.extend(refill);
        }
    }
    out.flush()?;
    println!("phase 2: merged {k} runs in {batches} bounded-memory batches");

    // ---- Verify ------------------------------------------------------------
    let mut reader = BufReader::new(File::open(&out_path)?);
    let sorted = read_chunk(&mut reader, TOTAL)?;
    assert_eq!(sorted.len(), TOTAL);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
    let mut expect = input;
    expect.sort_unstable();
    assert_eq!(sorted, expect, "output is a permutation-preserving sort");
    println!("verified: output equals std sort of the input");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
