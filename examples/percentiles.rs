//! Latency percentiles across two sorted shards — selection and paging
//! over a *virtual* merged view, no merge materialized.
//!
//! Two services export their request-latency histograms as sorted arrays.
//! The SLO questions — p50/p95/p99 of the combined traffic, and "show me
//! the requests right around the p99 boundary" — are answered with the
//! diagonal search: `O(log n)` per percentile, `O(log n + window)` per
//! page, never touching the other million elements.
//!
//! Run: `cargo run --release --example percentiles`

use mergepath_suite::mergepath::iter::merged_range;
use mergepath_suite::mergepath::select::{kth_of_union, medians_of_union};
use mergepath_suite::workloads::{merge_pair, MergeWorkload};

fn main() {
    // Two shards of latency samples (microseconds), already sorted.
    let n = 1_000_000usize;
    let (fast_shard, slow_shard) = merge_pair(MergeWorkload::SkewedRanges, n, 0x9E);
    let total = 2 * n;

    println!("combined latency distribution over {total} samples (two sorted shards):\n");

    // Percentiles via selection — O(log n) each.
    for pct in [50usize, 90, 95, 99] {
        let k = (total * pct / 100).saturating_sub(1);
        let v = kth_of_union(&fast_shard, &slow_shard, k);
        println!("  p{pct:<2} = {v:>12} us");
    }
    let (lo, hi) = medians_of_union(&fast_shard, &slow_shard);
    println!("  median pair = ({lo}, {hi})\n");

    // Page around the p99 boundary without merging: the virtual merged
    // view is randomly addressable through the diagonal search.
    let p99_rank = total * 99 / 100;
    let window = 5usize;
    let page: Vec<u32> = merged_range(
        &fast_shard,
        &slow_shard,
        p99_rank - window..p99_rank + window,
    )
    .copied()
    .collect();
    println!("samples around the p99 boundary (rank {p99_rank} ± {window}):");
    println!("  {page:?}");
    assert!(page.windows(2).all(|w| w[0] <= w[1]));

    // Cross-check one percentile against a real merge.
    let mut all: Vec<u32> = fast_shard.iter().chain(&slow_shard).copied().collect();
    all.sort_unstable();
    let k95 = (total * 95 / 100) - 1;
    assert_eq!(*kth_of_union(&fast_shard, &slow_shard, k95), all[k95]);
    println!("\n(cross-checked against a materialized merge: exact match)");
}
