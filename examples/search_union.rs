//! Posting-list union — the search-engine OR-query workload.
//!
//! An inverted index stores, per term, a sorted list of document ids. An
//! `OR` query over k terms is the k-way union of those lists: a k-way
//! merge with duplicate collapse (a document matching several terms is
//! reported once, with its match count). Ranked pagination ("documents
//! 10,000–10,020 of the union") uses the k-way rank split — no full
//! materialization.
//!
//! Run: `cargo run --release --example search_union`

use mergepath_suite::mergepath::merge::kway::{kway_rank_split, LoserTree};
use mergepath_suite::workloads::sorted_keys;

/// Deduplicated union with match counts, streamed from a loser tree.
fn union_with_counts(lists: &[&[u32]]) -> Vec<(u32, u32)> {
    let cmp = |x: &u32, y: &u32| x.cmp(y);
    let mut tree = LoserTree::new(lists, &cmp);
    let mut out: Vec<(u32, u32)> = Vec::new();
    for &doc in tree.by_ref() {
        match out.last_mut() {
            Some((d, count)) if *d == doc => *count += 1,
            _ => out.push((doc, 1)),
        }
    }
    out
}

fn main() {
    // Six terms with posting lists of assorted sizes over a 2^22-doc corpus.
    let sizes = [120_000usize, 80_000, 200_000, 15_000, 60_000, 150_000];
    let postings: Vec<Vec<u32>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut l = sorted_keys(n, 0x5EA2C4 + i as u64);
            for d in &mut l {
                *d >>= 10; // compress the key space so terms overlap
            }
            l.dedup();
            l
        })
        .collect();
    let lists: Vec<&[u32]> = postings.iter().map(|l| l.as_slice()).collect();
    let total: usize = lists.iter().map(|l| l.len()).sum();

    println!(
        "OR query over {} terms ({} postings total):",
        lists.len(),
        total
    );
    let union = union_with_counts(&lists);
    println!("  distinct documents: {}", union.len());
    let multi: usize = union.iter().filter(|&&(_, c)| c > 1).count();
    println!("  matching ≥ 2 terms: {multi}");
    let best = union.iter().max_by_key(|&&(_, c)| c).unwrap();
    println!("  best match: doc {} ({} terms)\n", best.0, best.1);

    // Ranked pagination: postings 100_000..100_010 of the raw union, found
    // by the k-way rank split without merging the first 100_000.
    let page_start = 100_000usize;
    let take = kway_rank_split(&lists, page_start);
    let page_lists: Vec<&[u32]> = lists.iter().zip(&take).map(|(l, &t)| &l[t..]).collect();
    let cmp = |x: &u32, y: &u32| x.cmp(y);
    let mut tree = LoserTree::new(&page_lists, &cmp);
    let page: Vec<u32> = tree.by_ref().take(10).copied().collect();
    println!(
        "postings {page_start}..{} of the union: {page:?}",
        page_start + 10
    );

    // Verify against the materialized union.
    let mut all: Vec<u32> = postings.iter().flatten().copied().collect();
    all.sort_unstable();
    assert_eq!(&all[page_start..page_start + 10], &page[..]);
    let mut dedup = all.clone();
    dedup.dedup();
    assert_eq!(dedup.len(), union.len());
    println!("\n(verified against materialized union)");
}
