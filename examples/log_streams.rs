//! k-way merging of sorted event streams — the "many shards, one timeline"
//! workload (think: per-node log files that must become one ordered log).
//!
//! Uses the k-way extension of merge-path partitioning: the output
//! timeline is rank-partitioned into balanced, independent spans; each
//! worker runs a loser tree over its private slices of all the shards.
//! Ties on the timestamp keep shard order (stability), so causally-tagged
//! events from lower-numbered shards stay first.
//!
//! Run: `cargo run --release --example log_streams`

use mergepath_suite::mergepath::merge::kway::{kway_rank_split, parallel_kway_merge};

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    timestamp_us: u64,
    shard: u16,
    seq: u32,
}

fn main() {
    let shards = 12usize;
    let per_shard = 200_000usize;
    let threads = 8usize;

    // Each shard produces a time-ordered stream with its own bursty clock.
    let streams: Vec<Vec<Event>> = (0..shards)
        .map(|s| {
            let mut t = (s as u64) * 17; // clocks start skewed
            (0..per_shard)
                .map(|i| {
                    // Bursts: sometimes many events on the same microsecond.
                    if i % 7 != 0 {
                        t += (i as u64 * 2654435761) % 23;
                    }
                    Event {
                        timestamp_us: t,
                        shard: s as u16,
                        seq: i as u32,
                    }
                })
                .collect()
        })
        .collect();
    let lists: Vec<&[Event]> = streams.iter().map(|s| s.as_slice()).collect();
    let total: usize = lists.iter().map(|l| l.len()).sum();

    // Where does the unified timeline's midpoint fall in each shard?
    let mid = kway_rank_split(&lists, total / 2);
    println!("midpoint of the unified timeline takes per shard: {mid:?}");

    // Merge.
    let mut timeline = vec![Event::default(); total];
    parallel_kway_merge(&lists, &mut timeline, threads);

    // Validate: ordered by time; stable by (shard) on equal timestamps;
    // per-shard seq order preserved.
    assert!(timeline.windows(2).all(|w| {
        w[0].timestamp_us < w[1].timestamp_us
            || (w[0].timestamp_us == w[1].timestamp_us && w[0].shard <= w[1].shard)
    }));
    let mut last_seq = vec![0u32; shards];
    let mut seen = vec![false; shards];
    for e in &timeline {
        let s = e.shard as usize;
        assert!(!seen[s] || e.seq > last_seq[s], "shard order broken");
        last_seq[s] = e.seq;
        seen[s] = true;
    }

    println!(
        "merged {} events from {} shards on {} threads; span {}us..{}us",
        total,
        shards,
        threads,
        timeline.first().unwrap().timestamp_us,
        timeline.last().unwrap().timestamp_us,
    );
    // A peek at a tie burst: identical timestamps keep shard order.
    if let Some(w) = timeline
        .windows(3)
        .find(|w| w[0].timestamp_us == w[2].timestamp_us)
    {
        println!(
            "tie burst at t={}: shards {:?}",
            w[0].timestamp_us,
            [w[0].shard, w[1].shard, w[2].shard]
        );
    }
}
