//! Sort-merge join — the database workload the paper's introduction
//! motivates ("merging two sorted arrays is a prominent building block").
//!
//! Two relations arrive unsorted; both are sorted by join key with the
//! parallel merge sort (§III), then the parallel merge-path partitioner
//! splits the *join* itself into independent, balanced pieces: co-rank
//! tells each worker exactly which key range of each relation it owns.
//!
//! Run: `cargo run --release --example merge_join`

use mergepath_suite::mergepath::partition::partition_segments_by;
use mergepath_suite::mergepath::sort::parallel::parallel_merge_sort_by;
use mergepath_suite::workloads::prng::Prng;

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Order {
    user_id: u32,
    amount_cents: u64,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct User {
    user_id: u32,
    region: u8,
}

fn main() {
    let threads = 8;
    let n_orders = 2_000_000usize;
    let n_users = 500_000usize;

    // Unsorted input relations (deterministic in-repo PRNG).
    let mut rnd = Prng::seed_from_u64(42);
    let mut orders: Vec<Order> = (0..n_orders)
        .map(|_| Order {
            user_id: rnd.below(n_users as u64) as u32,
            amount_cents: rnd.below(100_000),
        })
        .collect();
    let mut users: Vec<User> = (0..n_users)
        .map(|i| User {
            user_id: i as u32,
            region: rnd.below(12) as u8,
        })
        .collect();
    // Shuffle users via the keyless sort below — they start sorted by id;
    // scramble first to make the sort earn its keep.
    users.sort_by_key(|u| u.user_id.wrapping_mul(2654435761));

    // Phase 1: parallel stable sorts by join key.
    let by_user = |x: &Order, y: &Order| x.user_id.cmp(&y.user_id);
    parallel_merge_sort_by(&mut orders, threads, &by_user);
    let by_id = |x: &User, y: &User| x.user_id.cmp(&y.user_id);
    parallel_merge_sort_by(&mut users, threads, &by_id);

    // Phase 2: partition the JOIN with the merge path. Treat the two
    // relations as the two inputs of a merge ordered by key; each segment
    // then covers disjoint, contiguous key ranges of both relations. A
    // worker can join its segment completely independently — same trick,
    // one level up.
    //
    // (Boundary keys may split between segments; co-rank's stable split
    // puts all Orders of a key before all Users of that key, so each
    // worker extends its user range to cover its order keys — a local,
    // bounded adjustment.)
    let keyed_orders: Vec<u32> = orders.iter().map(|o| o.user_id).collect();
    let keyed_users: Vec<u32> = users.iter().map(|u| u.user_id).collect();
    let segments = partition_segments_by(
        keyed_orders.as_slice(),
        keyed_users.as_slice(),
        threads,
        &|x: &u32, y: &u32| x.cmp(y),
    );

    // Each worker merges-joins its slice; results concatenate in key order.
    let mut revenue_by_region = [0u64; 12];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for seg in &segments {
            let orders = &orders[seg.a_start..seg.a_end];
            let users = &users;
            let full_users_from = seg.b_start;
            let handle = scope.spawn(move || {
                let mut local = [0u64; 12];
                let mut u = full_users_from;
                for o in orders {
                    // Advance the user cursor to this order's key. The
                    // cursor may step past the segment's nominal b_end for
                    // boundary keys — reads are shared, so that is safe.
                    while u < users.len() && users[u].user_id < o.user_id {
                        u += 1;
                    }
                    if u < users.len() && users[u].user_id == o.user_id {
                        local[users[u].region as usize] += o.amount_cents;
                    }
                }
                local
            });
            handles.push(handle);
        }
        for h in handles {
            let local = h.join().expect("join worker panicked");
            for (acc, x) in revenue_by_region.iter_mut().zip(local) {
                *acc += x;
            }
        }
    });

    // Oracle: single-threaded hash join.
    let mut expect = [0u64; 12];
    let region_of: Vec<u8> = {
        let mut v = vec![0u8; n_users];
        for u in &users {
            v[u.user_id as usize] = u.region;
        }
        v
    };
    for o in &orders {
        expect[region_of[o.user_id as usize] as usize] += o.amount_cents;
    }
    assert_eq!(revenue_by_region, expect, "parallel join must match oracle");

    println!("sort-merge join of {n_orders} orders x {n_users} users, {threads} threads");
    println!(
        "segment loads (orders): {:?}",
        segments.iter().map(|s| s.a_len()).collect::<Vec<_>>()
    );
    for (region, cents) in revenue_by_region.iter().enumerate() {
        println!("  region {region:2}: ${}.{:02}", cents / 100, cents % 100);
    }
}
