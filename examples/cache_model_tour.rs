//! A tour of the analysis substrates: replay the *exact* memory trace of a
//! merge through the cache simulator, and run the same merge on the CREW
//! PRAM simulator to read off its ideal parallel time.
//!
//! This is how the repository reproduces the paper's §IV (cache) and §VI
//! (speedup) results without the authors' 12-core testbed.
//!
//! Run: `cargo run --release --example cache_model_tour`

use mergepath_suite::cache_sim::cache::CacheConfig;
use mergepath_suite::cache_sim::scenarios::{
    parallel_merge_shared, sequential_merge, spm_cyclic_shared,
};
use mergepath_suite::cache_sim::MemoryLayout;
use mergepath_suite::mergepath::merge::segmented::SpmConfig;
use mergepath_suite::pram::kernels::measure_merge;
use mergepath_suite::workloads::{merge_pair, MergeWorkload};

fn main() {
    let n = 1 << 15; // 32 Ki elements per input
    let (a, b) = merge_pair(MergeWorkload::Uniform, n, 7);

    // --- Cache model -----------------------------------------------------
    println!("cache behaviour of a {n}+{n} element merge (u32, 64 B lines):\n");
    let layout = MemoryLayout::natural(4, n as u64, n as u64, 4096);
    for (label, cfg) in [
        ("32 KiB, 8-way (an L1)", CacheConfig::new(32 * 1024, 8)),
        ("256 KiB, 8-way (an L2)", CacheConfig::new(256 * 1024, 8)),
        (
            "direct-mapped 32 KiB",
            CacheConfig {
                capacity_bytes: 32 * 1024,
                line_bytes: 64,
                associativity: 1,
            },
        ),
    ] {
        let seq = sequential_merge(&a, &b, layout, cfg);
        let par = parallel_merge_shared(&a, &b, 4, layout, cfg);
        let spm = SpmConfig::new(cfg.capacity_elems(4), 4);
        let seg = spm_cyclic_shared(&a, &b, &spm, layout, cfg);
        println!(
            "  {label:26}  seq miss {:>6.3}%   4-core shared miss {:>6.3}%   SPM cyclic {:>6.3}%",
            100.0 * seq.miss_rate(),
            100.0 * par.miss_rate(),
            100.0 * seg.miss_rate(),
        );
    }

    // --- PRAM model --------------------------------------------------------
    println!("\nCREW PRAM time for the same merge (Algorithm 1, one superstep):\n");
    let a64: Vec<u64> = a.iter().map(|&x| x as u64).collect();
    let b64: Vec<u64> = b.iter().map(|&x| x as u64).collect();
    let (t1, out) = measure_merge(&a64, &b64, 1, true).expect("CREW-clean");
    assert!(out.windows(2).all(|w| w[0] <= w[1]));
    println!("  p =  1: {:>9} ops", t1.time);
    for p in [2usize, 4, 8, 12] {
        let (tp, _) = measure_merge(&a64, &b64, p, true).expect("CREW-clean");
        println!(
            "  p = {p:2}: {:>9} ops   speedup {:.2}x",
            tp.time,
            t1.time as f64 / tp.time as f64
        );
    }
    println!(
        "\n(every run above executed with CREW checking ON — the simulator proves\n\
         each merge performed no conflicting writes and no read/write races)"
    );
}
