//! Quickstart: the three things you come to this library for.
//!
//! 1. Merge two sorted arrays in parallel (Algorithm 1).
//! 2. Merge with a bounded cache working set (Algorithm 2).
//! 3. Sort in parallel (§III) — all stable, all bitwise identical to the
//!    sequential merge/sort.
//!
//! Run: `cargo run --example quickstart`

use mergepath_suite::mergepath::merge::segmented::Staging;
use mergepath_suite::mergepath::prelude::*;

fn main() {
    // --- 1. Parallel merge ------------------------------------------------
    let a: Vec<u64> = (0..1_000_000).map(|x| x * 2).collect();
    let b: Vec<u64> = (0..1_000_000).map(|x| x * 2 + 1).collect();
    let mut merged = vec![0u64; a.len() + b.len()];
    parallel_merge_into(&a, &b, &mut merged, 8);
    assert!(merged.windows(2).all(|w| w[0] <= w[1]));
    println!("merged {} + {} elements with 8 threads", a.len(), b.len());

    // How the work was split: equisized, independent segments.
    for (k, seg) in partition_segments(&a, &b, 4).iter().enumerate() {
        println!(
            "  segment {k}: A[{}..{}] + B[{}..{}] -> out[{}..{}] ({} elements)",
            seg.a_start,
            seg.a_end,
            seg.b_start,
            seg.b_end,
            seg.out_start,
            seg.out_end,
            seg.len(),
        );
    }

    // --- 2. Cache-bounded (segmented) merge --------------------------------
    // Keep the merge's working set within ~a 256 KiB cache of u64s, staging
    // inputs through cyclic buffers exactly as in the paper's Algorithm 2.
    let cfg = SpmConfig::new(256 * 1024 / 8, 8).with_staging(Staging::Cyclic);
    let mut merged2 = vec![0u64; merged.len()];
    segmented_parallel_merge_into(&a, &b, &mut merged2, &cfg);
    assert_eq!(merged, merged2, "same output, different memory schedule");
    println!(
        "segmented merge: identical output with a {}-element working set",
        cfg.segment_len() * 3
    );

    // --- 3. Parallel merge sort --------------------------------------------
    let mut data: Vec<u64> = (0..2_000_000u64)
        .map(|x| x.wrapping_mul(0x9E3779B9) % 1_000_000)
        .collect();
    parallel_merge_sort(&mut data, 8);
    assert!(data.windows(2).all(|w| w[0] <= w[1]));
    println!("sorted {} elements with 8 threads", data.len());

    // The diagonal search itself, if you just need a split point: where do
    // the first 1000 merged elements come from?
    let i = co_rank(1000, &a[..], &b[..]);
    println!("first 1000 outputs = {} from A + {} from B", i, 1000 - i);
}
