//! Live-observability invariants (DESIGN.md §12):
//!
//! * the metrics/flight hot path — every [`ServeProbe`] hook on a
//!   [`ServeObserver`] — performs **zero heap allocation** (measured with
//!   a counting global allocator);
//! * a completed request's waterfall stages partition its latency exactly
//!   (`queue + dispatch + compute + emit == latency_ns`) and the sum
//!   never exceeds the measured wall time of the whole run — the clock
//!   unification contract of `telemetry::now_ns`;
//! * the flight ring retains exactly its capacity, overwriting oldest;
//! * [`NoProbe`] is a ZST and the disabled path reports all-zero
//!   waterfalls (stage clocks are never read).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use mergepath::telemetry::now_ns;
use mergepath_serve::{
    FlightEvent, FlightEventKind, FlightRecorder, NoProbe, ObserverConfig, Outcome, QueuePolicy,
    Request, ServeConfig, ServeObserver, ServeProbe, Server, Waterfall,
};

/// Counts allocations per thread, so concurrent test threads in this
/// binary cannot pollute each other's measurements.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

#[test]
fn probe_hot_path_is_allocation_free() {
    // No dump_dir: anomaly bookkeeping runs but no dump is rendered (a
    // dump legitimately allocates; it only happens on an actual anomaly).
    let obs = ServeObserver::new(ObserverConfig::default());
    let wf = Waterfall {
        queue_ns: 10,
        dispatch_ns: 2,
        compute_ns: 100,
        emit_ns: 1,
    };
    // Warm-up: first call from this thread initializes its shard index
    // and any lazy thread-local state.
    obs.on_submit(0, 1, 0);
    obs.on_enqueue(0, 1);
    obs.on_dequeue(0, 2, 1, 0);
    obs.on_start(0, 3, 1, 1);
    obs.on_complete(0, 4, 0, &wf);
    obs.on_reject_queue_full(0, 5, 8);
    obs.on_reject_deadline(0, 6, 5);
    obs.on_fail(0, 7, 0);

    let allocs = allocs_during(|| {
        for i in 1..=1_000u64 {
            obs.on_submit(i, i, 0);
            obs.on_enqueue(i, 1);
            obs.on_dequeue(i, i + 1, i, 0);
            obs.on_start(i, i + 2, 1, 1);
            obs.on_complete(i, i + 3, 0, &wf);
            obs.on_reject_queue_full(i, i + 4, 8);
            obs.on_reject_deadline(i, i + 5, i);
            obs.on_fail(i, i + 6, 0);
        }
    });
    assert_eq!(allocs, 0, "probe hooks must not allocate on the hot path");
}

#[test]
fn registry_reads_do_not_allocate_either_side() {
    let obs = ServeObserver::new(ObserverConfig::default());
    obs.on_submit(1, 1, 0);
    // Writers stay allocation-free even while a snapshot reader runs
    // concurrently (snapshot itself allocates its result — that's the
    // reader's cost, off the serving threads).
    std::thread::scope(|s| {
        let reader = s.spawn(|| {
            for _ in 0..50 {
                let snap = obs.snapshot();
                assert!(snap.counter("serve_submitted_total").is_some());
            }
        });
        let writer_allocs = allocs_during(|| {
            for i in 0..10_000u64 {
                obs.on_submit(i, i + 1, 0);
            }
        });
        assert_eq!(writer_allocs, 0, "writers pay nothing for live readers");
        reader.join().unwrap();
    });
}

#[test]
fn flight_recorder_record_is_allocation_free_and_overwrites_oldest() {
    let ring = FlightRecorder::new(64);
    let ev = |i: u64| FlightEvent {
        seq: 0,
        t_ns: i,
        request_id: i,
        kind: FlightEventKind::Submit,
        arg0: 0,
        arg1: 0,
    };
    ring.record(ev(0)); // warm-up
    let allocs = allocs_during(|| {
        for i in 1..=1_000u64 {
            ring.record(ev(i));
        }
    });
    assert_eq!(allocs, 0, "ring writes are zero-allocation");
    assert_eq!(ring.recorded(), 1_001);
    let snap = ring.snapshot();
    assert_eq!(snap.len(), 64, "ring retains exactly its capacity");
    assert_eq!(snap[0].seq, 1_001 - 64, "oldest surviving event");
    assert_eq!(snap.last().unwrap().seq, 1_000);
}

#[test]
fn waterfall_partitions_latency_and_stays_under_wall_time() {
    let obs = Arc::new(ServeObserver::new(ObserverConfig::default()));
    let server: Server<u32, mergepath_serve::NoRecorder, Arc<ServeObserver>> =
        Server::start_with_probe(
            ServeConfig {
                queue_capacity: 32,
                max_inflight: 2,
                worker_budget: 2,
                policy: QueuePolicy::Edf,
                // Batched resolutions must partition latency exactly too.
                batch_max_items: 4096,
            },
            mergepath_serve::NoRecorder,
            Arc::clone(&obs),
        );
    let t0 = now_ns();
    let mut handles = Vec::new();
    for id in 0..16u64 {
        let a: Vec<u32> = (0..512).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..512).map(|x| x * 2 + 1).collect();
        handles.push(server.submit(Request::merge(id, a, b)).expect("admitted"));
    }
    for h in handles {
        match h.wait() {
            Outcome::Completed {
                latency_ns,
                waterfall,
                ..
            } => {
                // The four stages are saturating differences of successive
                // stamps on one monotonic clock, so they telescope: the
                // sum equals the end-to-end latency exactly.
                assert_eq!(
                    waterfall.total_ns(),
                    latency_ns,
                    "stages must partition the latency exactly"
                );
                assert!(waterfall.compute_ns > 0, "compute stage was measured");
                let wall = now_ns().saturating_sub(t0);
                assert!(
                    waterfall.total_ns() <= wall,
                    "summed stages ({}) exceed measured wall time ({wall})",
                    waterfall.total_ns()
                );
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn no_probe_is_zero_sized_and_reports_zero_waterfalls() {
    assert_eq!(std::mem::size_of::<NoProbe>(), 0);
    const { assert!(!NoProbe::ACTIVE) };
    let server: Server<u32> = Server::start(
        ServeConfig {
            queue_capacity: 8,
            max_inflight: 1,
            worker_budget: 1,
            policy: QueuePolicy::Edf,
            batch_max_items: 4096,
        },
        mergepath_serve::NoRecorder,
    );
    let h = server
        .submit(Request::merge(0, vec![1, 3], vec![2, 4]))
        .expect("admitted");
    match h.wait() {
        Outcome::Completed {
            latency_ns,
            waterfall,
            ..
        } => {
            assert!(latency_ns > 0);
            assert_eq!(
                waterfall,
                Waterfall::default(),
                "disabled path never reads stage clocks"
            );
        }
        other => panic!("expected completion, got {other:?}"),
    }
    server.shutdown();
}
