//! Integration tests for the extension modules: every merge-flavoured API
//! in the workspace agrees on every workload, and the extension structures
//! (selection, lazy iteration, hierarchical/in-place/batch merges, the
//! adaptive and k-way sorts, multiselection) cross-validate.

use mergepath_suite::baselines::multiselect::multiselect_merge_into;
use mergepath_suite::mergepath::iter::{merge_iter, merged_range};
use mergepath_suite::mergepath::merge::batch::batch_merge_into;
use mergepath_suite::mergepath::merge::hierarchical::{
    hierarchical_merge_into, HierarchicalConfig,
};
use mergepath_suite::mergepath::merge::inplace::{inplace_merge, parallel_inplace_merge};
use mergepath_suite::mergepath::merge::sequential::merge_into;
use mergepath_suite::mergepath::select::kth_of_union;
use mergepath_suite::mergepath::sort::kway::kway_merge_sort;
use mergepath_suite::mergepath::sort::natural::natural_merge_sort;
use mergepath_suite::workloads::{merge_pair, unsorted_keys, MergeWorkload, SortWorkload};

fn reference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = vec![0; a.len() + b.len()];
    merge_into(a, b, &mut out);
    out
}

#[test]
fn every_merge_flavour_agrees_on_every_workload() {
    for wl in MergeWorkload::ALL {
        let (a, b) = merge_pair(wl, 3000, 0xE87);
        let expect = reference(&a, &b);

        // Hierarchical (GPU-style).
        let mut out = vec![0u32; expect.len()];
        hierarchical_merge_into(&a, &b, &mut out, &HierarchicalConfig::new(4));
        assert_eq!(out, expect, "hierarchical on {}", wl.name());

        // In-place (sequential and parallel).
        let mut joined: Vec<u32> = a.iter().chain(&b).copied().collect();
        inplace_merge(&mut joined, a.len());
        assert_eq!(joined, expect, "inplace on {}", wl.name());
        let mut joined: Vec<u32> = a.iter().chain(&b).copied().collect();
        parallel_inplace_merge(&mut joined, a.len(), 4);
        assert_eq!(joined, expect, "parallel inplace on {}", wl.name());

        // Lazy iterator, forward and backward.
        let fwd: Vec<u32> = merge_iter(&a, &b).copied().collect();
        assert_eq!(fwd, expect, "iter on {}", wl.name());
        let mut bwd: Vec<u32> = merge_iter(&a, &b).rev().copied().collect();
        bwd.reverse();
        assert_eq!(bwd, expect, "rev iter on {}", wl.name());

        // Multiselection baseline.
        let mut out = vec![0u32; expect.len()];
        multiselect_merge_into(&a, &b, &mut out, 6);
        assert_eq!(out, expect, "multiselect on {}", wl.name());

        // Batch (the pair plus a couple of decoys).
        let decoy: Vec<u32> = (0..17).collect();
        let pairs: Vec<(&[u32], &[u32])> = vec![(&a, &b), (&decoy, &[]), (&[], &decoy)];
        let mut out = vec![0u32; expect.len() + 34];
        batch_merge_into(&pairs, &mut out, 5);
        assert_eq!(&out[..expect.len()], &expect[..], "batch on {}", wl.name());
    }
}

#[test]
fn selection_and_paging_agree_with_materialized_merge() {
    for wl in [
        MergeWorkload::Uniform,
        MergeWorkload::DuplicateHeavy,
        MergeWorkload::Zipfian,
    ] {
        let (a, b) = merge_pair(wl, 5000, 0x5E1);
        let merged = reference(&a, &b);
        for frac in [0usize, 1, 3, 7, 9] {
            let k = merged.len() * frac / 10;
            let k = k.min(merged.len() - 1);
            assert_eq!(
                *kth_of_union(&a, &b, k),
                merged[k],
                "selection {} k={k}",
                wl.name()
            );
        }
        let window: Vec<u32> = merged_range(&a, &b, 4000..4100).copied().collect();
        assert_eq!(&window[..], &merged[4000..4100], "paging {}", wl.name());
    }
}

#[test]
fn extension_sorts_agree_with_std_on_all_workloads() {
    for wl in SortWorkload::ALL {
        let base = unsorted_keys(wl, 15_000, 0xE5);
        let mut expect = base.clone();
        expect.sort();

        let mut v = base.clone();
        kway_merge_sort(&mut v, 6);
        assert_eq!(v, expect, "kway sort on {}", wl.name());

        let mut v = base.clone();
        natural_merge_sort(&mut v, 6);
        assert_eq!(v, expect, "natural sort on {}", wl.name());
    }
}

#[test]
fn natural_sort_exploits_presortedness_end_to_end() {
    use mergepath_suite::mergepath::sort::natural::rounds_needed;
    // Concatenation of 4 sorted shards: exactly 2 rounds.
    let mut v: Vec<u32> = Vec::new();
    for s in 0..4u32 {
        v.extend((0..25_000).map(|x| x * 4 + s));
    }
    assert_eq!(rounds_needed(&mut v.clone()), 2);
    let mut expect = v.clone();
    expect.sort();
    natural_merge_sort(&mut v, 4);
    assert_eq!(v, expect);
}

#[test]
fn cli_pipeline_against_library() {
    // The CLI's in-memory execution path must agree with direct library
    // calls on a nontrivial merge.
    use mergepath_suite::mergepath::merge::parallel::parallel_merge_into;
    let (a, b) = merge_pair(MergeWorkload::Uniform, 2000, 0xC11);
    let mut expect = vec![0u32; 4000];
    parallel_merge_into(&a, &b, &mut expect, 4);

    let file_a: String = a.iter().map(|x| format!("{x}\n")).collect();
    let file_b: String = b.iter().map(|x| format!("{x}\n")).collect();
    let cmd = mergepath_cli::parse_args(&[
        "merge".into(),
        "a".into(),
        "b".into(),
        "-n".into(),
        "--threads".into(),
        "4".into(),
    ])
    .unwrap();
    let out = mergepath_cli::execute(&cmd, |path| {
        Ok(match path {
            "a" => file_a.clone(),
            "b" => file_b.clone(),
            _ => unreachable!(),
        })
    })
    .unwrap();
    let nums: Vec<u32> = out.lines().map(|l| l.parse().unwrap()).collect();
    assert_eq!(nums, expect);
}
