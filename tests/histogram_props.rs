//! Histogram algebra (live-observability satellite): the mergeable
//! [`LatencyHistogram`] is the aggregation primitive behind every live
//! metric — registry shards merge on snapshot, serve stats merge across
//! workers — so its merge must be a true commutative monoid and its
//! percentile extraction must behave at both extremes of the value range.
//!
//! Property tests (vendored `proptest`) pin merge associativity and
//! commutativity on random sample sets; unit tests pin p50/p99 on a
//! single-bucket distribution, on the saturating top bucket (`u64::MAX`),
//! and on the empty histogram.

use mergepath::telemetry::LatencyHistogram;
use proptest::prelude::*;

fn build(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..2_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..2_000_000_000, 0..200),
    ) {
        let (ha, hb) = (build(&a), build(&b));
        let mut ab = ha.clone();
        ab.merge_from(&hb);
        let mut ba = hb.clone();
        ba.merge_from(&ha);
        prop_assert!(ab == ba, "a⊕b differs from b⊕a");
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn merge_is_associative_and_lossless(
        a in proptest::collection::vec(0u64..2_000_000_000, 0..150),
        b in proptest::collection::vec(0u64..2_000_000_000, 0..150),
        c in proptest::collection::vec(0u64..2_000_000_000, 0..150),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge_from(&hb);
        left.merge_from(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge_from(&hc);
        let mut right = ha.clone();
        right.merge_from(&bc);
        prop_assert!(left == right, "(a⊕b)⊕c differs from a⊕(b⊕c)");
        // Lossless: identical to recording every sample directly, so any
        // shard aggregation order yields the same percentiles.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = build(&all);
        prop_assert!(left == direct, "merge lost or duplicated samples");
        for q in [0.5, 0.99] {
            prop_assert_eq!(left.percentile(q), direct.percentile(q));
        }
    }

    #[test]
    fn merging_an_empty_histogram_is_identity(
        a in proptest::collection::vec(0u64..2_000_000_000, 0..200),
    ) {
        let ha = build(&a);
        let mut merged = ha.clone();
        merged.merge_from(&LatencyHistogram::new());
        prop_assert!(merged == ha);
    }
}

#[test]
fn single_bucket_distribution_reports_that_bucket_everywhere() {
    // Small values map to exact (linear-region) buckets, so every
    // quantile of a constant distribution is the value itself.
    let mut h = LatencyHistogram::new();
    for _ in 0..10_000 {
        h.record(17);
    }
    for q in [0.0, 0.50, 0.99, 1.0] {
        assert_eq!(h.percentile(q), 17, "q={q}");
    }
    assert_eq!(h.count(), 10_000);
    assert_eq!(h.min(), 17);
    assert_eq!(h.max(), 17);
}

#[test]
fn saturating_top_bucket_handles_u64_max() {
    let mut h = LatencyHistogram::new();
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    h.record(1);
    // The top bucket's inclusive upper bound is exactly u64::MAX — the
    // bound arithmetic must not overflow — and max() is tracked exactly.
    assert_eq!(h.percentile(0.99), u64::MAX);
    assert_eq!(h.percentile(1.0), u64::MAX);
    assert_eq!(h.max(), u64::MAX);
    assert_eq!(h.percentile(0.0), 1, "p0 is still the smallest sample");
    // sum saturates rather than wrapping.
    assert_eq!(h.sum(), u64::MAX);
}

#[test]
fn empty_histogram_is_all_zeros() {
    let h = LatencyHistogram::new();
    assert_eq!(h.count(), 0);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.percentile(q), 0, "q={q}");
    }
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.sum(), 0);
}
