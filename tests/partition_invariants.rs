//! Partition invariants from the paper's §II–III, checked end to end:
//!
//! * [`segment_boundary`] (the ⌊k·n/p⌋ cut schedule) is monotone, starts
//!   at 0, ends at `n`, and yields segments whose sizes differ by at most
//!   one (Corollary 7, perfect balance);
//! * [`co_rank`] is monotone in the diagonal index and always splits a
//!   diagonal into a feasible `(i, j)` with `i + j = d` (Theorem 9);
//! * [`partition_points`] produces monotone per-input cut points that
//!   cover `|A| + |B|` exactly.

use mergepath_suite::mergepath::diagonal::{co_rank, split_is_valid};
use mergepath_suite::mergepath::partition::{partition_points, segment_boundary};
use mergepath_suite::workloads::prng::Prng;

use proptest::prelude::*;

#[test]
fn segment_boundaries_are_monotone_and_cover_exactly() {
    for n in [0usize, 1, 2, 7, 100, 101, 4096, 99_991] {
        for p in [1usize, 2, 3, 7, 16, 61, 128] {
            assert_eq!(segment_boundary(n, p, 0), 0, "n={n} p={p}");
            assert_eq!(segment_boundary(n, p, p), n, "n={n} p={p}");
            let mut sizes = Vec::with_capacity(p);
            for k in 0..p {
                let lo = segment_boundary(n, p, k);
                let hi = segment_boundary(n, p, k + 1);
                assert!(lo <= hi, "monotone: n={n} p={p} k={k}");
                sizes.push(hi - lo);
            }
            assert_eq!(sizes.iter().sum::<usize>(), n, "coverage: n={n} p={p}");
            let max = sizes.iter().max().copied().unwrap_or(0);
            let min = sizes.iter().min().copied().unwrap_or(0);
            assert!(
                max - min <= 1,
                "Corollary 7 balance: n={n} p={p} sizes={sizes:?}"
            );
        }
    }
}

fn random_sorted(rng: &mut Prng, len: usize, key_space: u64) -> Vec<i64> {
    let mut v: Vec<i64> = (0..len).map(|_| rng.below(key_space) as i64).collect();
    v.sort_unstable();
    v
}

#[test]
fn co_rank_is_monotone_and_splits_every_diagonal() {
    let mut rng = Prng::seed_from_u64(0x5EED);
    let shapes: Vec<(Vec<i64>, Vec<i64>)> = vec![
        (
            random_sorted(&mut rng, 400, 50),
            random_sorted(&mut rng, 300, 50),
        ),
        (vec![3; 250], vec![3; 175]),
        ((0..500).collect(), vec![]),
        (vec![], (0..350).collect()),
        (
            (0..200).map(|x| x * 2).collect(),
            (0..200).map(|x| x * 2 + 1).collect(),
        ),
    ];
    for (a, b) in &shapes {
        let n = a.len() + b.len();
        let mut prev_i = 0usize;
        for d in 0..=n {
            let i = co_rank(d, a, b);
            let j = d - i;
            assert!(i <= a.len() && j <= b.len(), "bounds: d={d}");
            assert!(i >= prev_i, "co-rank must be monotone in d: d={d}");
            assert!(i - prev_i <= 1, "consecutive diagonals differ by one step");
            assert!(
                split_is_valid(
                    d,
                    a.as_slice(),
                    b.as_slice(),
                    &|x: &i64, y: &i64| x.cmp(y),
                    i
                ),
                "Theorem 9 split validity: d={d} i={i}"
            );
            prev_i = i;
        }
    }
}

#[test]
fn partition_points_are_monotone_and_cover_both_inputs() {
    let mut rng = Prng::seed_from_u64(0xBEEF);
    for (la, lb) in [
        (0usize, 0usize),
        (1, 0),
        (0, 97),
        (513, 1),
        (700, 450),
        (333, 333),
    ] {
        let a = random_sorted(&mut rng, la, 17);
        let b = random_sorted(&mut rng, lb, 17);
        let n = la + lb;
        for p in [1usize, 2, 5, 9, 32] {
            let points = partition_points(&a, &b, p);
            assert_eq!(points.len(), p + 1);
            assert_eq!(points[0], (0, 0));
            assert_eq!(points[p], (la, lb), "cover |A| and |B| exactly");
            for k in 0..p {
                let (i_lo, j_lo) = points[k];
                let (i_hi, j_hi) = points[k + 1];
                assert!(i_lo <= i_hi && j_lo <= j_hi, "monotone per input");
                // Segment k covers exactly the diagonal range of the
                // ⌊k·n/p⌋ schedule — sizes differ by at most one.
                let len = (i_hi - i_lo) + (j_hi - j_lo);
                let want = segment_boundary(n, p, k + 1) - segment_boundary(n, p, k);
                assert_eq!(len, want, "p={p} k={k}");
            }
        }
    }
}

proptest! {
    #[test]
    fn co_rank_monotonicity_holds_on_random_inputs(
        mut a in proptest::collection::vec(-50i64..50, 0..120),
        mut b in proptest::collection::vec(-50i64..50, 0..120),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let n = a.len() + b.len();
        let mut prev = 0usize;
        for d in 0..=n {
            let i = co_rank(d, &a, &b);
            prop_assert!(i >= prev && i - prev <= 1);
            prop_assert!(i <= a.len() && d - i <= b.len());
            prev = i;
        }
    }

    #[test]
    fn partition_covers_on_random_inputs(
        mut a in proptest::collection::vec(-50i64..50, 0..120),
        mut b in proptest::collection::vec(-50i64..50, 0..120),
        p in 1usize..20,
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let points = partition_points(&a, &b, p);
        prop_assert_eq!(points[0], (0, 0));
        prop_assert_eq!(points[p], (a.len(), b.len()));
        let n = a.len() + b.len();
        let mut max_len = 0usize;
        let mut min_len = usize::MAX;
        for w in points.windows(2) {
            let (i_lo, j_lo) = w[0];
            let (i_hi, j_hi) = w[1];
            prop_assert!(i_lo <= i_hi && j_lo <= j_hi);
            let len = (i_hi - i_lo) + (j_hi - j_lo);
            max_len = max_len.max(len);
            min_len = min_len.min(len);
        }
        if n > 0 {
            prop_assert!(max_len - min_len <= 1, "Corollary 7 balance");
        }
    }
}
