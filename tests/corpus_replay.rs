//! Deterministic replay of the minimized corpus in `tests/corpus/`.
//!
//! Every corpus file is a `(A, B)` pair of sorted runs that once stressed a
//! partition boundary (see `tests/corpus/README.md` for the format and the
//! minimization rules). This single test replays each of them through the
//! schedule checker: all nine kernels, several permuted virtual schedules,
//! CREW disjointness + coverage + Thm 14 + oracle equality per schedule.
//! Fixed seeds, no randomness — a failure here is a reproducer, not a
//! flake.

use std::path::PathBuf;

use mergepath_check::{check_kernel_on, CheckConfig, Kernel, Kv};

fn parse_case(name: &str, contents: &str) -> (Vec<Kv>, Vec<Kv>) {
    let mut runs: Vec<Vec<i32>> = contents
        .lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .take(2)
        .map(|line| {
            line.split_whitespace()
                .map(|w| {
                    w.parse::<i32>()
                        .unwrap_or_else(|_| panic!("{name}: bad key {w:?}"))
                })
                .collect()
        })
        .collect();
    assert_eq!(runs.len(), 2, "{name}: expected two key lines");
    let kb = runs.pop().unwrap();
    let ka = runs.pop().unwrap();
    for (side, keys) in [("A", &ka), ("B", &kb)] {
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "{name}: run {side} is not sorted"
        );
    }
    let tag = |keys: &[i32], tag0: u32| -> Vec<Kv> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| (k, tag0 + i as u32))
            .collect()
    };
    (tag(&ka, 0), tag(&kb, 1_000_000))
}

#[test]
fn corpus_replays_clean_through_the_schedule_checker() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut cases: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "txt"))
        .collect();
    cases.sort();
    assert!(
        cases.len() >= 6,
        "corpus shrank to {} case(s) — was a file lost?",
        cases.len()
    );
    for path in cases {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let contents = std::fs::read_to_string(&path).expect("readable corpus file");
        let (a, b) = parse_case(&name, &contents);
        for threads in [2usize, 4, 8] {
            let cfg = CheckConfig {
                threads,
                schedules: 8,
                seed: 0xC0_2B05 ^ threads as u64,
                pram_limit: 4096,
                steal_orders: true,
            };
            for &kernel in &Kernel::ALL {
                if let Err(e) = check_kernel_on(kernel, &a, &b, &cfg) {
                    panic!("corpus {name}: {} threads={threads}: {e}", kernel.name());
                }
            }
        }
    }
}
