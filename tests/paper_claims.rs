//! The paper's numbered claims, executed as integration tests: each test
//! names the lemma/theorem/corollary it checks and exercises it at a scale
//! unit tests do not.

use mergepath_suite::baselines::naive::{count_order_violations, naive_equal_split_merge};
use mergepath_suite::mergepath::diagonal::co_rank_counted;
use mergepath_suite::mergepath::merge::parallel::parallel_merge_into_stats;
use mergepath_suite::mergepath::merge::segmented::{spm_blocks, SpmConfig};
use mergepath_suite::mergepath::partition::{partition_segments, Segment};
use mergepath_suite::mergepath::path::MergePath;
use mergepath_suite::pram::kernels::measure_merge;
use mergepath_suite::workloads::{merge_pair, MergeWorkload};

/// Theorem 14: every partition point found in ≤ log2(min(|A|,|B|)) + 1
/// comparisons, on every workload, at 1M-element scale.
#[test]
fn theorem_14_logarithmic_partition() {
    let n = 1 << 20;
    let bound = (n as f64).log2().ceil() as u32 + 1;
    for wl in [
        MergeWorkload::Uniform,
        MergeWorkload::AllAGreater,
        MergeWorkload::DuplicateHeavy,
    ] {
        let (a, b) = merge_pair(wl, n, 14);
        let cmp = |x: &u32, y: &u32| x.cmp(y);
        for frac in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let d = ((2 * n) as f64 * frac) as usize;
            let (_, steps) = co_rank_counted(d, a.as_slice(), b.as_slice(), &cmp);
            assert!(steps <= bound, "{}: {steps} > {bound}", wl.name());
        }
    }
}

/// Corollary 7: equisized segments — perfect balance regardless of data.
#[test]
fn corollary_7_perfect_balance() {
    for wl in MergeWorkload::ALL {
        let (a, b) = merge_pair(wl, 100_000, 7);
        for p in [2usize, 12, 97] {
            let segs = partition_segments(&a, &b, p);
            let max = segs.iter().map(Segment::len).max().unwrap();
            let min = segs.iter().map(Segment::len).min().unwrap();
            assert!(max - min <= 1, "{} p={p}", wl.name());
        }
    }
}

/// §III remark: Algorithm 1 requires no inter-core communication — proven
/// by running it on the CREW simulator with full conflict detection.
#[test]
fn algorithm_1_is_crew_clean_on_all_workloads() {
    for wl in MergeWorkload::ALL {
        let (a32, b32) = merge_pair(wl, 4096, 3);
        let a: Vec<u64> = a32.iter().map(|&x| x as u64).collect();
        let b: Vec<u64> = b32.iter().map(|&x| x as u64).collect();
        for p in [2usize, 5, 12] {
            measure_merge(&a, &b, p, true)
                .unwrap_or_else(|e| panic!("{} p={p}: CREW violation {e}", wl.name()));
        }
    }
}

/// §III complexity: simulated time tracks N/p + O(log N) and work overhead
/// stays O(p log N).
#[test]
fn section_3_complexity_shape() {
    let n = 1 << 16;
    let (a32, b32) = merge_pair(MergeWorkload::Uniform, n, 31);
    let a: Vec<u64> = a32.iter().map(|&x| x as u64).collect();
    let b: Vec<u64> = b32.iter().map(|&x| x as u64).collect();
    let (r1, _) = measure_merge(&a, &b, 1, false).unwrap();
    for p in [2usize, 4, 8, 16] {
        let (rp, _) = measure_merge(&a, &b, p, false).unwrap();
        let ideal = r1.time as f64 / p as f64;
        // Within the O(log N) additive overhead of ideal.
        let logn = (2.0 * n as f64).log2();
        assert!(
            (rp.time as f64) <= ideal + 10.0 * logn,
            "p={p}: {} vs ideal {ideal}",
            rp.time
        );
        // Work overhead O(p log N).
        let overhead = rp.work as f64 - r1.work as f64;
        assert!(
            overhead <= 8.0 * p as f64 * logn,
            "p={p} overhead {overhead}"
        );
    }
}

/// Lemma 8: the d-th point of the path lies on cross diagonal d — checked
/// against the explicitly constructed path on a nontrivial instance.
#[test]
fn lemma_8_diagonal_membership() {
    let (a, b) = merge_pair(MergeWorkload::SkewedRanges, 2000, 8);
    let path = MergePath::construct(&a, &b);
    for (d, &(i, j)) in path.points().iter().enumerate() {
        assert_eq!(i + j, d);
    }
}

/// Lemma 15 / Theorem 16: every SPM block of length L consumes at most L
/// elements of each input, and L of each always suffice.
#[test]
fn lemma_15_block_feasibility() {
    for wl in MergeWorkload::ALL {
        let (a, b) = merge_pair(wl, 10_000, 15);
        let cfg = SpmConfig::new(300, 4);
        let l = cfg.segment_len();
        for blk in spm_blocks(&a, &b, &cfg, &|x, y| x.cmp(y)) {
            assert!(blk.a_consumed <= l && blk.b_consumed <= l, "{}", wl.name());
            assert!(blk.len() <= l);
        }
    }
}

/// §I: the naive equal-split merge is incorrect on the paper's adversarial
/// input — and Merge Path is not.
#[test]
fn naive_counterexample_vs_merge_path() {
    let (a, b) = merge_pair(MergeWorkload::AllAGreater, 10_000, 4);
    let naive = naive_equal_split_merge(&a, &b, 8);
    assert!(count_order_violations(&naive) > 0);

    let mut out = vec![0u32; 20_000];
    let stats = parallel_merge_into_stats(&a, &b, &mut out, 8, &|x, y| x.cmp(y));
    assert!(out.windows(2).all(|w| w[0] <= w[1]));
    assert!(stats.imbalance() <= 1.0 + 1e-9);
}

/// §VI configuration sanity: the paper's memory formula 4·|A|·|type| —
/// the output is twice the input, all three arrays allocated.
#[test]
fn section_6_memory_footprint_formula() {
    let n = 1 << 12;
    let (a, b) = merge_pair(MergeWorkload::Uniform, n, 66);
    let out = vec![0u32; a.len() + b.len()];
    let bytes = core::mem::size_of_val(&a[..])
        + core::mem::size_of_val(&b[..])
        + core::mem::size_of_val(&out[..]);
    assert_eq!(bytes, 4 * n * core::mem::size_of::<u32>());
}
