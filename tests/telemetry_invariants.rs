//! Telemetry-layer invariants (ISSUE 2 satellite):
//!
//! * spans recorded for one logical worker nest properly and never
//!   partially overlap;
//! * per-worker element counts satisfy Thm 14 for single-round merges
//!   (each ≤ ⌈N/p⌉, sum = N);
//! * the `NoRecorder` path produces byte-identical output to the plain
//!   public kernels and the sequential reference;
//! * `NoRecorder` is a ZST, so the untraced hot path carries no state;
//! * both exporters emit documents the in-repo JSON parser accepts.

use mergepath::merge::batch::batch_merge_into_recorded;
use mergepath::merge::hierarchical::{hierarchical_merge_into_recorded, HierarchicalConfig};
use mergepath::merge::inplace::parallel_inplace_merge_recorded;
use mergepath::merge::kway::parallel_kway_merge_recorded;
use mergepath::merge::parallel::{parallel_merge_into_by, parallel_merge_into_recorded};
use mergepath::merge::sequential::merge_into_by;
use mergepath::sort::parallel::{parallel_merge_sort_by, parallel_merge_sort_recorded};
use mergepath::telemetry::{NoRecorder, SpanRecord, Telemetry, TimelineRecorder};
use mergepath_cli::{run_trace, TraceKernel};
use mergepath_workloads::{merge_pair_sized, unsorted_keys, MergeWorkload, SortWorkload};

fn cmp(x: &u32, y: &u32) -> std::cmp::Ordering {
    x.cmp(y)
}

fn traced_parallel_merge(n: usize, threads: usize, seed: u64) -> Telemetry {
    let (a, b) = merge_pair_sized(MergeWorkload::Uniform, n / 2, n - n / 2, seed);
    let mut out = vec![0u32; n];
    let rec = TimelineRecorder::new();
    parallel_merge_into_recorded(&a, &b, &mut out, threads, &cmp, &rec);
    rec.finish()
}

/// Asserts that `spans` (all from one worker) form a forest: any two spans
/// are either disjoint in time or one contains the other, and the recorded
/// `depth` equals the number of enclosing spans.
fn assert_forest(worker: usize, spans: &mut [SpanRecord]) {
    spans.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.end_ns)));
    let mut stack: Vec<SpanRecord> = Vec::new();
    for s in spans.iter() {
        assert!(s.start_ns <= s.end_ns, "worker {worker}: negative span");
        while let Some(top) = stack.last() {
            if top.end_ns <= s.start_ns {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(top) = stack.last() {
            assert!(
                s.end_ns <= top.end_ns,
                "worker {worker}: span {:?} [{}, {}] partially overlaps {:?} [{}, {}]",
                s.kind,
                s.start_ns,
                s.end_ns,
                top.kind,
                top.start_ns,
                top.end_ns
            );
        }
        assert_eq!(
            s.depth,
            stack.len(),
            "worker {worker}: span {:?} depth {} but {} enclosing spans",
            s.kind,
            s.depth,
            stack.len()
        );
        stack.push(*s);
    }
}

fn assert_spans_nest(telemetry: &Telemetry) {
    let workers: std::collections::BTreeSet<usize> =
        telemetry.spans.iter().map(|s| s.worker).collect();
    assert!(!workers.is_empty(), "no spans recorded");
    for w in workers {
        let mut spans: Vec<SpanRecord> = telemetry
            .spans
            .iter()
            .filter(|s| s.worker == w)
            .copied()
            .collect();
        assert_forest(w, &mut spans);
    }
}

#[test]
fn spans_nest_and_never_overlap_per_worker() {
    for (n, threads) in [(10_000, 4), (4097, 3), (50_000, 8)] {
        let telemetry = traced_parallel_merge(n, threads, 0xA5);
        assert_spans_nest(&telemetry);
    }
    // Sorts stack caller-side rounds around pool rounds — the deepest
    // nesting in the repo.
    let mut v = unsorted_keys(SortWorkload::Uniform, 20_000, 7);
    let rec = TimelineRecorder::new();
    parallel_merge_sort_recorded(&mut v, 4, &cmp, &rec);
    assert_spans_nest(&rec.finish());
}

#[test]
fn thm14_per_worker_counts_for_single_round_merges() {
    for (n, threads) in [(1_000, 1), (10_000, 4), (10_001, 7), (65_536, 8)] {
        let telemetry = traced_parallel_merge(n, threads, 0x5A);
        let report = telemetry.load_balance(n as u64, threads);
        let ceil = (n as u64).div_ceil(threads as u64);
        let sum: u64 = report.per_worker_items.iter().map(|w| w.items).sum();
        assert_eq!(sum, n as u64, "n={n} p={threads}: counts must sum to N");
        for w in &report.per_worker_items {
            assert!(
                w.items <= ceil,
                "n={n} p={threads}: worker {} got {} > ⌈N/p⌉ = {ceil}",
                w.worker,
                w.items
            );
        }
        assert!(report.thm14_exact, "n={n} p={threads}");
        assert_eq!(report.predicted_max, ceil);
    }
}

#[test]
fn norecorder_output_identical_to_plain_and_sequential() {
    let n = 30_000;
    let (a, b) = merge_pair_sized(MergeWorkload::DuplicateHeavy, n / 2, n - n / 2, 0xBEEF);
    let mut seq = vec![0u32; n];
    merge_into_by(&a, &b, &mut seq, &cmp);

    for threads in [1, 3, 8] {
        let mut plain = vec![0u32; n];
        parallel_merge_into_by(&a, &b, &mut plain, threads, &cmp);
        let mut untraced = vec![0u32; n];
        parallel_merge_into_recorded(&a, &b, &mut untraced, threads, &cmp, &NoRecorder);
        let rec = TimelineRecorder::new();
        let mut traced = vec![0u32; n];
        parallel_merge_into_recorded(&a, &b, &mut traced, threads, &cmp, &rec);
        assert_eq!(plain, seq, "p={threads}: plain vs sequential");
        assert_eq!(untraced, seq, "p={threads}: NoRecorder vs sequential");
        assert_eq!(traced, seq, "p={threads}: traced vs sequential");
    }

    let mut expect = unsorted_keys(SortWorkload::Uniform, 25_000, 3);
    let mut plain = expect.clone();
    let mut untraced = expect.clone();
    expect.sort();
    parallel_merge_sort_by(&mut plain, 5, &cmp);
    parallel_merge_sort_recorded(&mut untraced, 5, &cmp, &NoRecorder);
    assert_eq!(plain, expect);
    assert_eq!(untraced, expect);
}

#[test]
fn norecorder_is_zero_sized() {
    assert_eq!(std::mem::size_of::<NoRecorder>(), 0);
    assert_eq!(std::mem::align_of::<NoRecorder>(), 1);
}

#[test]
fn every_traced_kernel_produces_nested_spans_and_parsable_exports() {
    for kernel in [
        TraceKernel::Parallel,
        TraceKernel::Segmented,
        TraceKernel::Batch,
        TraceKernel::Inplace,
        TraceKernel::Kway,
        TraceKernel::Hierarchical,
        TraceKernel::SortParallel,
        TraceKernel::SortKway,
        TraceKernel::SortCacheAware,
    ] {
        let run = run_trace(kernel, 5_000, 3, 0xC0FFEE);
        let doc = mergepath::telemetry::json::parse(&run.chrome_json)
            .unwrap_or_else(|e| panic!("{}: chrome trace: {e}", kernel.name()));
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap_or_else(|| panic!("{}: no traceEvents", kernel.name()));
        assert!(!events.is_empty(), "{}: empty trace", kernel.name());
        for line in run.metrics_jsonl.lines() {
            mergepath::telemetry::json::parse(line)
                .unwrap_or_else(|e| panic!("{}: metrics line: {e}", kernel.name()));
        }
        let sum: u64 = run.report.per_worker_items.iter().map(|w| w.items).sum();
        assert!(sum > 0, "{}: no per-worker items", kernel.name());
    }
}

#[test]
fn inplace_and_multiway_merges_tile_the_output_exactly() {
    let n = 12_000usize;
    let threads = 5;
    let cmp = |x: &u32, y: &u32| x.cmp(y);

    // In-place: leaves tile `v`, so items sum to N.
    let (a, b) = merge_pair_sized(MergeWorkload::Uniform, n / 2, n - n / 2, 9);
    let mid = a.len();
    let mut v = a;
    v.extend(b);
    let rec = TimelineRecorder::new();
    parallel_inplace_merge_recorded(&mut v, mid, threads, &cmp, &rec);
    let t = rec.finish();
    assert_eq!(
        t.worker_items.iter().map(|w| w.items).sum::<u64>(),
        n as u64
    );

    // Batch: fragments tile the concatenated output.
    let (c, d) = merge_pair_sized(MergeWorkload::Uniform, n / 3, n / 4, 11);
    let (e, f) = merge_pair_sized(MergeWorkload::Uniform, n / 5, n / 6, 13);
    let pairs = [(c.as_slice(), d.as_slice()), (e.as_slice(), f.as_slice())];
    let total = c.len() + d.len() + e.len() + f.len();
    let mut out = vec![0u32; total];
    let rec = TimelineRecorder::new();
    batch_merge_into_recorded(&pairs, &mut out, threads, &cmp, &rec);
    let t = rec.finish();
    assert_eq!(
        t.worker_items.iter().map(|w| w.items).sum::<u64>(),
        total as u64
    );

    // K-way: rank splits tile the output.
    let lists: Vec<Vec<u32>> = (0..6)
        .map(|i| mergepath_workloads::sorted_keys(n / 6, 17 + i as u64))
        .collect();
    let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
    let total: usize = refs.iter().map(|r| r.len()).sum();
    let mut out = vec![0u32; total];
    let rec = TimelineRecorder::new();
    parallel_kway_merge_recorded(&refs, &mut out, threads, &cmp, &rec);
    let t = rec.finish();
    assert_eq!(
        t.worker_items.iter().map(|w| w.items).sum::<u64>(),
        total as u64
    );

    // Hierarchical: blocks tile the output.
    let (g, h) = merge_pair_sized(MergeWorkload::Uniform, n / 2, n - n / 2, 23);
    let mut out = vec![0u32; n];
    let rec = TimelineRecorder::new();
    hierarchical_merge_into_recorded(
        &g,
        &h,
        &mut out,
        &HierarchicalConfig::new(threads),
        &cmp,
        &rec,
    );
    let t = rec.finish();
    assert_eq!(
        t.worker_items.iter().map(|w| w.items).sum::<u64>(),
        n as u64
    );
}
