//! The kernels are generic over `T: Clone`, not `T: Copy` — exercised here
//! with `String` keys and a payload struct, the shapes a database or log
//! pipeline actually merges. Catches any accidental `Copy` assumption and
//! any drop/clone miscounting under the parallel paths.

use mergepath_suite::mergepath::merge::parallel::parallel_merge_into_by;
use mergepath_suite::mergepath::merge::segmented::{
    segmented_parallel_merge_into_by, SpmConfig, Staging,
};
use mergepath_suite::mergepath::merge::sequential::merge_into_by;
use mergepath_suite::mergepath::sort::parallel::parallel_merge_sort_by;

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Row {
    key: String,
    payload: Vec<u8>,
}

fn make_rows(n: usize, stride: usize) -> Vec<Row> {
    (0..n)
        .map(|i| Row {
            key: format!("k{:08}", i * stride),
            payload: vec![(i % 251) as u8; 3],
        })
        .collect()
}

fn by_key(a: &Row, b: &Row) -> std::cmp::Ordering {
    a.key.cmp(&b.key)
}

#[test]
fn string_keyed_parallel_merge() {
    let a = make_rows(3000, 2);
    let b = make_rows(2500, 3);
    let mut expect = vec![Row::default(); 5500];
    merge_into_by(&a, &b, &mut expect, &by_key);
    for threads in [1usize, 4, 9] {
        let mut out = vec![Row::default(); 5500];
        parallel_merge_into_by(&a, &b, &mut out, threads, &by_key);
        assert_eq!(out, expect, "threads={threads}");
    }
    // Segmented, both stagings (Clone + Default only).
    for staging in [Staging::Windowed, Staging::Cyclic] {
        let cfg = SpmConfig::new(300, 4).with_staging(staging);
        let mut out = vec![Row::default(); 5500];
        segmented_parallel_merge_into_by(&a, &b, &mut out, &cfg, &by_key);
        assert_eq!(out, expect, "{staging:?}");
    }
}

#[test]
fn string_keyed_parallel_sort_is_stable() {
    // Duplicate keys with distinguishable payloads: stability observable.
    let mut rows: Vec<Row> = (0..4000usize)
        .map(|i| Row {
            key: format!("key{:02}", (i * 13) % 20),
            payload: i.to_le_bytes().to_vec(),
        })
        .collect();
    let mut expect = rows.clone();
    expect.sort_by(|a, b| a.key.cmp(&b.key)); // std stable sort oracle
    parallel_merge_sort_by(&mut rows, 6, &by_key);
    assert_eq!(rows, expect);
}

#[test]
fn selection_on_string_keys() {
    use mergepath_suite::mergepath::select::kth_of_union_by;
    let a = make_rows(100, 5);
    let b = make_rows(100, 7);
    let mut all: Vec<Row> = a.iter().chain(&b).cloned().collect();
    all.sort_by(by_key);
    for k in [0usize, 50, 199] {
        assert_eq!(kth_of_union_by(&a, &b, k, &by_key).key, all[k].key);
    }
}
