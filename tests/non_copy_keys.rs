//! The kernels are generic over `T: Clone`, not `T: Copy` — exercised here
//! with `String` keys and a payload struct, the shapes a database or log
//! pipeline actually merges. Catches any accidental `Copy` assumption and
//! any drop/clone miscounting under the parallel paths.

use mergepath_suite::mergepath::merge::parallel::parallel_merge_into_by;
use mergepath_suite::mergepath::merge::segmented::{
    segmented_parallel_merge_into_by, SpmConfig, Staging,
};
use mergepath_suite::mergepath::merge::sequential::merge_into_by;
use mergepath_suite::mergepath::merge::stable::stable_parallel_merge_into_by;
use mergepath_suite::mergepath::sort::parallel::parallel_merge_sort_by;

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Row {
    key: String,
    payload: Vec<u8>,
}

fn make_rows(n: usize, stride: usize) -> Vec<Row> {
    (0..n)
        .map(|i| Row {
            key: format!("k{:08}", i * stride),
            payload: vec![(i % 251) as u8; 3],
        })
        .collect()
}

fn by_key(a: &Row, b: &Row) -> std::cmp::Ordering {
    a.key.cmp(&b.key)
}

#[test]
fn string_keyed_parallel_merge() {
    let a = make_rows(3000, 2);
    let b = make_rows(2500, 3);
    let mut expect = vec![Row::default(); 5500];
    merge_into_by(&a, &b, &mut expect, &by_key);
    for threads in [1usize, 4, 9] {
        let mut out = vec![Row::default(); 5500];
        parallel_merge_into_by(&a, &b, &mut out, threads, &by_key);
        assert_eq!(out, expect, "threads={threads}");
        let mut out = vec![Row::default(); 5500];
        stable_parallel_merge_into_by(&a, &b, &mut out, threads, &by_key);
        assert_eq!(out, expect, "stable, threads={threads}");
    }
    // Segmented, both stagings (Clone + Default only).
    for staging in [Staging::Windowed, Staging::Cyclic] {
        let cfg = SpmConfig::new(300, 4).with_staging(staging);
        let mut out = vec![Row::default(); 5500];
        segmented_parallel_merge_into_by(&a, &b, &mut out, &cfg, &by_key);
        assert_eq!(out, expect, "{staging:?}");
    }
}

#[test]
fn string_keyed_parallel_sort_is_stable() {
    // Duplicate keys with distinguishable payloads: stability observable.
    let mut rows: Vec<Row> = (0..4000usize)
        .map(|i| Row {
            key: format!("key{:02}", (i * 13) % 20),
            payload: i.to_le_bytes().to_vec(),
        })
        .collect();
    let mut expect = rows.clone();
    expect.sort_by(|a, b| a.key.cmp(&b.key)); // std stable sort oracle
    parallel_merge_sort_by(&mut rows, 6, &by_key);
    assert_eq!(rows, expect);
}

#[test]
fn selection_on_string_keys() {
    use mergepath_suite::mergepath::select::kth_of_union_by;
    let a = make_rows(100, 5);
    let b = make_rows(100, 7);
    let mut all: Vec<Row> = a.iter().chain(&b).cloned().collect();
    all.sort_by(by_key);
    for k in [0usize, 50, 199] {
        assert_eq!(kth_of_union_by(&a, &b, k, &by_key).key, all[k].key);
    }
}

// ---------------------------------------------------------------------------
// Drop accounting under panicking comparators
// ---------------------------------------------------------------------------
//
// A parallel kernel that clones elements into output and scratch buffers
// must neither leak nor double-drop them — even when the user's comparator
// panics mid-merge on some worker. `CountedDrop` keeps a shared live-count:
// every tracked construction and clone increments, every drop decrements.
// After the kernel (panicked or not) and all its containers are gone, the
// count must read exactly zero — negative means a double-drop (the
// memory-unsafety case), positive a leak.

mod counted_drop {
    use std::cmp::Ordering;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicIsize, AtomicU64, Ordering as AtOrd};
    use std::sync::Arc;

    use mergepath_suite::mergepath::merge::adaptive::{
        with_dispatch_policy, DispatchPolicy, SegmentKernel,
    };
    use mergepath_suite::mergepath::merge::batch::batch_merge_into_by;
    use mergepath_suite::mergepath::merge::hierarchical::{
        hierarchical_merge_into_by, HierarchicalConfig,
    };
    use mergepath_suite::mergepath::merge::inplace::parallel_inplace_merge_by;
    use mergepath_suite::mergepath::merge::kway::parallel_kway_merge_by;
    use mergepath_suite::mergepath::merge::parallel::parallel_merge_into_by;
    use mergepath_suite::mergepath::merge::segmented::{
        segmented_parallel_merge_into_by, SpmConfig,
    };
    use mergepath_suite::mergepath::merge::stable::stable_parallel_merge_into_by;
    use mergepath_suite::mergepath::sort::cache_aware::{
        cache_aware_parallel_sort_by, CacheAwareConfig,
    };
    use mergepath_suite::mergepath::sort::kway::kway_merge_sort_by;
    use mergepath_suite::mergepath::sort::parallel::parallel_merge_sort_by;

    #[derive(Debug)]
    struct CountedDrop {
        key: i32,
        live: Arc<AtomicIsize>,
    }

    impl CountedDrop {
        fn tracked(key: i32, master: &Arc<AtomicIsize>) -> Self {
            master.fetch_add(1, AtOrd::SeqCst);
            CountedDrop {
                key,
                live: master.clone(),
            }
        }
    }

    impl Clone for CountedDrop {
        fn clone(&self) -> Self {
            self.live.fetch_add(1, AtOrd::SeqCst);
            CountedDrop {
                key: self.key,
                live: self.live.clone(),
            }
        }
    }

    impl Drop for CountedDrop {
        fn drop(&mut self) {
            self.live.fetch_sub(1, AtOrd::SeqCst);
        }
    }

    impl Default for CountedDrop {
        fn default() -> Self {
            // Filler elements (output/scratch buffers) account against their
            // own private counter, not the master's.
            CountedDrop {
                key: 0,
                live: Arc::new(AtomicIsize::new(1)),
            }
        }
    }

    fn by_key(a: &CountedDrop, b: &CountedDrop) -> Ordering {
        a.key.cmp(&b.key)
    }

    /// A comparator that panics once `fuse` comparisons have happened
    /// (`u64::MAX` never blows).
    fn fused(fuse: u64) -> impl Fn(&CountedDrop, &CountedDrop) -> Ordering + Sync {
        let count = AtomicU64::new(0);
        move |a: &CountedDrop, b: &CountedDrop| {
            if count.fetch_add(1, AtOrd::SeqCst) >= fuse {
                panic!("comparator fuse blown");
            }
            by_key(a, b)
        }
    }

    fn keys(n: usize, stride: usize, modulus: i32) -> Vec<i32> {
        let mut v: Vec<i32> = (0..n).map(|i| ((i * stride) as i32) % modulus).collect();
        v.sort_unstable();
        v
    }

    const KERNELS: [&str; 11] = [
        "parallel",
        "co-rank",
        "stable",
        "segmented",
        "batch",
        "inplace",
        "kway",
        "hierarchical",
        "sort-parallel",
        "sort-kway",
        "sort-cache-aware",
    ];

    /// Builds tracked inputs, runs `kernel`, and drops everything before
    /// returning. Any panic from the comparator unwinds through here (and
    /// through the worker pool), dropping the locals on the way out.
    fn drive<F>(kernel: &str, threads: usize, master: &Arc<AtomicIsize>, cmp: &F)
    where
        F: Fn(&CountedDrop, &CountedDrop) -> Ordering + Sync,
    {
        let track = |ks: &[i32]| -> Vec<CountedDrop> {
            ks.iter()
                .map(|&k| CountedDrop::tracked(k, master))
                .collect()
        };
        let ka = keys(170, 3, 40);
        let kb = keys(230, 7, 40);
        let n = ka.len() + kb.len();
        match kernel {
            "parallel" => {
                let (a, b) = (track(&ka), track(&kb));
                let mut out = vec![CountedDrop::default(); n];
                parallel_merge_into_by(&a, &b, &mut out, threads, cmp);
            }
            "co-rank" => {
                // Every segment forced through the co-rank stable block
                // kernel; a fuse can blow inside block_split or inside a
                // bounded block merge, both of which clone only via
                // `merge_into_by` into preallocated output.
                let (a, b) = (track(&ka), track(&kb));
                let mut out = vec![CountedDrop::default(); n];
                with_dispatch_policy(DispatchPolicy::Fixed(SegmentKernel::CoRank), || {
                    parallel_merge_into_by(&a, &b, &mut out, threads, cmp);
                });
            }
            "stable" => {
                // The exact-balance top-level entry: worker cuts come from
                // `exact_boundary`, boundaries from the co-rank search.
                let (a, b) = (track(&ka), track(&kb));
                let mut out = vec![CountedDrop::default(); n];
                stable_parallel_merge_into_by(&a, &b, &mut out, threads, cmp);
            }
            "segmented" => {
                let (a, b) = (track(&ka), track(&kb));
                let mut out = vec![CountedDrop::default(); n];
                let spm = SpmConfig::new(91, threads);
                segmented_parallel_merge_into_by(&a, &b, &mut out, &spm, cmp);
            }
            "batch" => {
                let (a, b) = (track(&ka), track(&kb));
                let pairs: Vec<(&[CountedDrop], &[CountedDrop])> =
                    vec![(&a[..100], &b[..60]), (&a[100..], &b[60..])];
                let mut out = vec![CountedDrop::default(); n];
                batch_merge_into_by(&pairs, &mut out, threads, cmp);
            }
            "inplace" => {
                let mut v = track(&ka);
                v.extend(track(&kb));
                parallel_inplace_merge_by(&mut v, ka.len(), threads, cmp);
            }
            "kway" => {
                let (a, b) = (track(&ka), track(&kb));
                let runs: Vec<&[CountedDrop]> = vec![&a[..85], &a[85..], &b[..115], &b[115..]];
                let mut out = vec![CountedDrop::default(); n];
                parallel_kway_merge_by(&runs, &mut out, threads, cmp);
            }
            "hierarchical" => {
                let (a, b) = (track(&ka), track(&kb));
                let mut out = vec![CountedDrop::default(); n];
                let cfg = HierarchicalConfig {
                    blocks: threads,
                    threads_per_block: 4,
                    tile: 64,
                };
                hierarchical_merge_into_by(&a, &b, &mut out, &cfg, cmp);
            }
            "sort-parallel" | "sort-kway" | "sort-cache-aware" => {
                // An unsorted tracked input: interleave the two key streams.
                let mut unsorted = ka.clone();
                for (i, &k) in kb.iter().enumerate() {
                    unsorted.insert((i * 2 + 1).min(unsorted.len()), k);
                }
                let mut v = track(&unsorted);
                match kernel {
                    "sort-parallel" => parallel_merge_sort_by(&mut v, threads, cmp),
                    "sort-kway" => kway_merge_sort_by(&mut v, threads, cmp),
                    _ => {
                        let cfg = CacheAwareConfig::new(200, threads);
                        cache_aware_parallel_sort_by(&mut v, &cfg, cmp);
                    }
                }
            }
            other => panic!("unknown kernel {other}"),
        }
    }

    #[test]
    fn clean_runs_balance_drops_on_the_real_pool() {
        for kernel in KERNELS {
            for threads in [1usize, 2, 4] {
                let master = Arc::new(AtomicIsize::new(0));
                drive(kernel, threads, &master, &by_key);
                assert_eq!(
                    master.load(AtOrd::SeqCst),
                    0,
                    "{kernel} threads={threads}: live count after clean run"
                );
            }
        }
    }

    #[test]
    fn panicking_comparator_never_double_drops_or_leaks_real_pool() {
        for kernel in KERNELS {
            for fuse in [0u64, 1, 7, 50, 400] {
                let master = Arc::new(AtomicIsize::new(0));
                let cmp = fused(fuse);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    drive(kernel, 4, &master, &cmp);
                }));
                let live = master.load(AtOrd::SeqCst);
                assert!(
                    live >= 0,
                    "{kernel} fuse={fuse}: DOUBLE-DROP ({live} live, panicked={})",
                    result.is_err()
                );
                assert_eq!(
                    live,
                    0,
                    "{kernel} fuse={fuse}: LEAK ({live} live, panicked={})",
                    result.is_err()
                );
            }
        }
    }

    #[test]
    fn panicking_comparator_balances_under_permuted_virtual_schedules() {
        // The same fuses, but under the deterministic virtual executor so
        // the panic lands at a reproducible point in a permuted schedule.
        for kernel in KERNELS {
            for (i, fuse) in [0u64, 3, 29, 222].into_iter().enumerate() {
                let master = Arc::new(AtomicIsize::new(0));
                let cmp = fused(fuse);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    mergepath_check::record(0xD20 + i as u64, || {
                        drive(kernel, 4, &master, &cmp);
                    })
                }));
                let live = master.load(AtOrd::SeqCst);
                assert_eq!(
                    live,
                    0,
                    "{kernel} fuse={fuse}: unbalanced drops ({live} live, panicked={})",
                    result.is_err()
                );
            }
        }
    }

    #[test]
    fn surviving_runs_still_merge_correctly() {
        // A fuse large enough to never blow must leave behavior unchanged.
        let master = Arc::new(AtomicIsize::new(0));
        {
            let a: Vec<CountedDrop> = keys(100, 3, 30)
                .into_iter()
                .map(|k| CountedDrop::tracked(k, &master))
                .collect();
            let b: Vec<CountedDrop> = keys(100, 7, 30)
                .into_iter()
                .map(|k| CountedDrop::tracked(k, &master))
                .collect();
            let mut out = vec![CountedDrop::default(); 200];
            let cmp = fused(u64::MAX);
            parallel_merge_into_by(&a, &b, &mut out, 4, &cmp);
            assert!(out.windows(2).all(|w| w[0].key <= w[1].key));
        }
        assert_eq!(master.load(AtOrd::SeqCst), 0);
    }
}
