//! Round overlap on the work-stealing executor, witnessed through the
//! live serving daemon.
//!
//! The old executor serialized pool rounds: one round owned the whole
//! pool, so a narrow request's two-share round queued behind a wide
//! request's round even when most workers were idle. The work-stealing
//! scheduler keeps multiple rounds in flight. These tests pin that down
//! deterministically:
//!
//! * a wide request whose comparisons block *inside its pool round* until
//!   several narrow requests have completed end-to-end — the test can
//!   only terminate if narrow rounds execute while the wide round is
//!   provably mid-execution;
//! * a drop-accounting sweep across panicking multi-share rounds (shares
//!   executed by the caller, by pool workers, and by stealing helpers
//!   alike), proving the panic path leaks nothing and leaves the shared
//!   scheduler reusable for clean rounds afterwards.

use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering as AtOrd};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use mergepath_suite::mergepath::executor;
use mergepath_suite::serve::{Outcome, QueuePolicy, Request, ServeConfig, Server};

/// Escape hatch for every spin loop in this file: generous enough for a
/// loaded single-core CI runner, short enough that a genuine deadlock
/// (rounds serializing again) fails the test instead of hanging the run.
const SPIN_ESCAPE: Duration = Duration::from_secs(120);

/// The global pool, forced to 4 workers. This integration test is its own
/// process, so the env var is set before anything touches the pool; the
/// `Once` keeps concurrent `#[test]` threads from racing the write.
fn pool() -> &'static executor::Pool {
    static FORCE: Once = Once::new();
    FORCE.call_once(|| std::env::set_var("MERGEPATH_THREADS", "4"));
    executor::global()
}

// ---------------------------------------------------------------------------
// Overlap witness: narrow requests complete while a wide round executes
// ---------------------------------------------------------------------------

/// How many narrow requests must complete end-to-end while the wide
/// request's round is held mid-execution.
const NARROWS: usize = 3;
/// Set by the first wide comparison that runs inside a pool round.
static WIDE_IN_ROUND: AtomicBool = AtomicBool::new(false);
/// Narrow requests observed complete (incremented by the test thread
/// after each `wait()` returns).
static NARROW_DONE: AtomicUsize = AtomicUsize::new(0);

/// A key whose comparisons, when the element is wide-marked AND the
/// comparison runs inside a pool round (`executor::in_pool_round()`),
/// block until all [`NARROWS`] narrow requests have completed. Partition
/// (co-rank) comparisons run on the serving thread outside any round and
/// pass through, so the wide request reliably reaches its round and
/// blocks *there* — the configuration the old serialized executor turned
/// into a deadlock.
#[derive(Debug, Clone, Default)]
struct WideKey {
    key: u32,
    wide: bool,
}

impl WideKey {
    fn hold_until_narrows_finish(&self, other: &Self) {
        if !(self.wide || other.wide) || !executor::in_pool_round() {
            return;
        }
        WIDE_IN_ROUND.store(true, AtOrd::SeqCst);
        let t0 = Instant::now();
        while NARROW_DONE.load(AtOrd::SeqCst) < NARROWS {
            assert!(
                t0.elapsed() < SPIN_ESCAPE,
                "narrow requests starved behind the wide round: rounds are \
                 serializing instead of overlapping"
            );
            std::thread::yield_now();
        }
    }
}

impl PartialEq for WideKey {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for WideKey {}
impl PartialOrd for WideKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WideKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.hold_until_narrows_finish(other);
        self.key.cmp(&other.key)
    }
}

/// The tentpole's behavioural contract, end to end: a wide request is
/// provably mid-round (its gated comparisons have set [`WIDE_IN_ROUND`]
/// and are spinning inside pool shares) while [`NARROWS`] narrow requests
/// are submitted, served, and verified to completion. The wide round's
/// shares occupy the submitting server worker *and* pool workers, so the
/// narrow rounds can only finish if the scheduler runs rounds
/// concurrently — under the old round-serializing pool this test
/// deadlocks (and the spin escape converts that into a failure).
#[test]
fn narrow_requests_complete_while_a_wide_round_is_executing() {
    assert_eq!(pool().threads(), 4, "test needs a real multi-worker pool");
    let server: Server<WideKey> = Server::start(
        ServeConfig {
            queue_capacity: 32,
            max_inflight: 2,
            // Alone in flight, the wide request gets a 4-share round; the
            // narrow requests behind it get 2-share rounds — both sides
            // genuinely go through the pool.
            worker_budget: 4,
            policy: QueuePolicy::Edf,
            // No coalescing: the wide and narrow requests must be
            // distinct rounds for overlap to mean anything.
            batch_max_items: 0,
        },
        mergepath_suite::serve::NoRecorder,
    );

    // Wide input: every element is wide-marked, so whichever shares of
    // the round execute first block on the gate.
    let wide_len = 2048u32;
    let wide_a: Vec<WideKey> = (0..wide_len)
        .map(|i| WideKey {
            key: 2 * i,
            wide: true,
        })
        .collect();
    let wide_b: Vec<WideKey> = (0..wide_len)
        .map(|i| WideKey {
            key: 2 * i + 1,
            wide: true,
        })
        .collect();
    let wide = server
        .submit(Request::merge(0, wide_a, wide_b))
        .expect("admitted");

    // Wait until a wide share is provably executing inside a pool round.
    let t0 = Instant::now();
    while !WIDE_IN_ROUND.load(AtOrd::SeqCst) {
        assert!(
            t0.elapsed() < SPIN_ESCAPE,
            "the wide request never reached a pool round"
        );
        std::thread::yield_now();
    }

    // Now drive narrow requests through the daemon, one at a time, each
    // verified to completion while the wide round is still spinning.
    for i in 0..NARROWS as u64 {
        let a: Vec<WideKey> = (0..64u32)
            .map(|k| WideKey {
                key: 2 * k,
                wide: false,
            })
            .collect();
        let b: Vec<WideKey> = (0..64u32)
            .map(|k| WideKey {
                key: 2 * k + 1,
                wide: false,
            })
            .collect();
        let h = server
            .submit(Request::merge(1 + i, a, b))
            .expect("admitted");
        match h.wait() {
            Outcome::Completed { output, .. } => {
                let keys: Vec<u32> = output.iter().map(|w| w.key).collect();
                let want: Vec<u32> = (0..128).collect();
                assert_eq!(keys, want, "narrow merge {i} diverged");
                assert!(
                    WIDE_IN_ROUND.load(AtOrd::SeqCst),
                    "wide round flag lost while narrow {i} completed"
                );
            }
            other => panic!("narrow request {i}: {other:?}"),
        }
        NARROW_DONE.fetch_add(1, AtOrd::SeqCst);
    }

    // The gate has released; the wide round drains and must still be
    // byte-identical to the sequential answer.
    match wide.wait() {
        Outcome::Completed { output, .. } => {
            assert_eq!(output.len(), 2 * wide_len as usize);
            let keys: Vec<u32> = output.iter().map(|w| w.key).collect();
            let want: Vec<u32> = (0..2 * wide_len).collect();
            assert_eq!(keys, want, "wide merge diverged");
        }
        other => panic!("wide request: {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 1 + NARROWS as u64);
    assert_eq!(stats.lost(), 0);
}

// ---------------------------------------------------------------------------
// CountedDrop sweep: panicking multi-share rounds leak nothing and leave
// the shared scheduler reusable
// ---------------------------------------------------------------------------

/// Comparing this key value panics, simulating a buggy user comparator.
const POISON: i32 = i32::MIN;

/// Live-count idiom from `tests/serve_invariants.rs`: constructions and
/// clones increment, drops decrement; zero at the end means no element
/// leaked or double-dropped anywhere on the request path.
#[derive(Debug)]
struct CountedDrop {
    key: i32,
    live: Arc<AtomicIsize>,
}

impl CountedDrop {
    fn tracked(key: i32, master: &Arc<AtomicIsize>) -> Self {
        master.fetch_add(1, AtOrd::SeqCst);
        CountedDrop {
            key,
            live: master.clone(),
        }
    }
}

impl Clone for CountedDrop {
    fn clone(&self) -> Self {
        self.live.fetch_add(1, AtOrd::SeqCst);
        CountedDrop {
            key: self.key,
            live: self.live.clone(),
        }
    }
}

impl Drop for CountedDrop {
    fn drop(&mut self) {
        self.live.fetch_sub(1, AtOrd::SeqCst);
    }
}

impl Default for CountedDrop {
    fn default() -> Self {
        // Output-buffer filler accounts against its own private counter.
        CountedDrop {
            key: 0,
            live: Arc::new(AtomicIsize::new(1)),
        }
    }
}

impl PartialEq for CountedDrop {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for CountedDrop {}
impl PartialOrd for CountedDrop {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CountedDrop {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        assert!(
            self.key != POISON && other.key != POISON,
            "comparator poisoned"
        );
        self.key.cmp(&other.key)
    }
}

/// Panicking rounds on the 4-worker pool, through the live daemon, with
/// multi-share rounds whose shares run on the submitting worker, pool
/// workers, and stealing helpers alike. The poisons are spread across the
/// input so the panic can land in any share (or in the caller-side
/// partition — every containment path must be equally leak-free). After
/// the poisoned wave, a clean wave of multi-share merges over the same
/// shared scheduler must complete — the satellite-6 regression: a
/// panicking round must leave the scheduler reusable, with nothing
/// leaked, nothing poisoned, no stuck rounds.
#[test]
fn panicking_multi_share_rounds_leak_nothing_and_pool_stays_reusable() {
    assert_eq!(pool().threads(), 4, "test needs a real multi-worker pool");
    let master = Arc::new(AtomicIsize::new(0));
    let tracked_range = |lo: i32, n: i32, stride: i32, poisons: &[i32]| -> Vec<CountedDrop> {
        // Ascending keys with POISON spliced in at the given offsets —
        // POISON sorts first conceptually, but merge preconditions are
        // moot: the first comparison that touches one panics. Poisoned
        // inputs use stride 2 (evens vs odds) so the two sides interleave
        // tightly: every share's serial merge then compares essentially
        // every element, guaranteeing the poison is reached inside a
        // share. (Disjoint ranges would co-rank into comparison-free
        // copy shares and the poison would never be compared.)
        (0..n)
            .map(|i| {
                let key = if poisons.contains(&i) {
                    POISON
                } else {
                    lo + stride * i
                };
                CountedDrop::tracked(key, &master)
            })
            .collect()
    };
    {
        let server: Server<CountedDrop> = Server::start(
            ServeConfig {
                queue_capacity: 32,
                max_inflight: 2,
                worker_budget: 4,
                policy: QueuePolicy::Edf,
                batch_max_items: 0,
            },
            mergepath_suite::serve::NoRecorder,
        );
        // Wave 1: poisoned merges, large enough for multi-share rounds,
        // poisons spread so different shares hit them.
        let mut poisoned = Vec::new();
        for (id, offsets) in [[7i32, 199].as_slice(), &[50, 120, 250], &[160]]
            .iter()
            .enumerate()
        {
            let a = tracked_range(0, 300, 2, offsets);
            let b = tracked_range(1, 300, 2, &[]);
            poisoned.push(
                server
                    .submit(Request::merge(id as u64, a, b))
                    .expect("admitted"),
            );
        }
        for (i, h) in poisoned.into_iter().enumerate() {
            match h.wait() {
                Outcome::Failed => {}
                other => panic!("poisoned merge {i} did not fail cleanly: {other:?}"),
            }
        }
        // Wave 2: clean multi-share merges over the same pool — the
        // panicking rounds above must not have wedged or poisoned it.
        let mut clean = Vec::new();
        for id in 10..14u64 {
            let a = tracked_range(0, 300, 1, &[]);
            let b = tracked_range(150, 300, 1, &[]);
            clean.push((
                id,
                server.submit(Request::merge(id, a, b)).expect("admitted"),
            ));
        }
        for (id, h) in clean {
            match h.wait() {
                Outcome::Completed { output, .. } => {
                    assert_eq!(output.len(), 600);
                    assert!(
                        output.windows(2).all(|w| w[0].key <= w[1].key),
                        "clean merge {id} after panics is unsorted"
                    );
                }
                other => panic!("clean merge {id} after panics: {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.failed, 3);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.lost(), 0);
    }
    // Server, handles, and outcome cells are gone: every tracked element
    // must have dropped exactly once, panics included.
    assert_eq!(
        master.load(AtOrd::SeqCst),
        0,
        "panicking rounds leaked or double-dropped elements"
    );
}
