//! Conformance suite for every partitioning scheme in the workspace.
//!
//! A merge partitioner — whatever its search strategy — must produce
//! segments that (1) tile both inputs in order, (2) tile the output, and
//! (3) merge-and-concatenate to the stable merge (the paper's Theorem 5 /
//! Corollary 6). This suite runs merge-path, rank-partition, Akl–Santoro
//! bisection and multiselection through identical invariant checks on
//! every workload family, and records each scheme's balance so the
//! differences (Corollary 7 vs the rest) are asserted, not assumed.

use mergepath_suite::baselines::akl_santoro::bisect_partition;
use mergepath_suite::baselines::multiselect::multiselect_partition;
use mergepath_suite::baselines::rank_partition::rank_partition_segments;
use mergepath_suite::mergepath::merge::sequential::merge_into;
use mergepath_suite::mergepath::partition::{partition_segments, Segment};
use mergepath_suite::workloads::{merge_pair, MergeWorkload};

struct Scheme {
    name: &'static str,
    run: fn(&[u32], &[u32], usize) -> Vec<Segment>,
    perfectly_balanced: bool,
}

const SCHEMES: &[Scheme] = &[
    Scheme {
        name: "merge-path",
        run: |a, b, p| partition_segments(a, b, p),
        perfectly_balanced: true,
    },
    Scheme {
        name: "rank-partition",
        run: |a, b, p| rank_partition_segments(a, b, p),
        perfectly_balanced: false,
    },
    Scheme {
        name: "akl-santoro",
        run: |a, b, p| bisect_partition(a, b, p).segments,
        perfectly_balanced: true,
    },
    Scheme {
        name: "multiselect",
        run: |a, b, p| multiselect_partition(a, b, p).segments,
        perfectly_balanced: true,
    },
];

fn check_tiling(name: &str, segs: &[Segment], a: &[u32], b: &[u32], p: usize) {
    assert_eq!(segs.len(), p, "{name}: segment count");
    assert_eq!(segs[0].a_start, 0, "{name}");
    assert_eq!(segs[0].b_start, 0, "{name}");
    assert_eq!(segs[0].out_start, 0, "{name}");
    for w in segs.windows(2) {
        assert_eq!(w[0].a_end, w[1].a_start, "{name}: A tiling");
        assert_eq!(w[0].b_end, w[1].b_start, "{name}: B tiling");
        assert_eq!(w[0].out_end, w[1].out_start, "{name}: out tiling");
    }
    let last = segs.last().unwrap();
    assert_eq!(last.a_end, a.len(), "{name}");
    assert_eq!(last.b_end, b.len(), "{name}");
    assert_eq!(last.out_end, a.len() + b.len(), "{name}");
    for s in segs {
        assert_eq!(s.a_len() + s.b_len(), s.len(), "{name}: arity");
    }
}

fn check_merge_concat(name: &str, segs: &[Segment], a: &[u32], b: &[u32]) {
    let mut reference = vec![0u32; a.len() + b.len()];
    merge_into(a, b, &mut reference);
    let mut rebuilt = Vec::with_capacity(reference.len());
    for s in segs {
        let mut piece = vec![0u32; s.len()];
        merge_into(&a[s.a_start..s.a_end], &b[s.b_start..s.b_end], &mut piece);
        rebuilt.extend(piece);
    }
    assert_eq!(rebuilt, reference, "{name}: Theorem 5 concatenation");
}

#[test]
fn all_schemes_satisfy_theorem_5_on_all_workloads() {
    for wl in MergeWorkload::ALL {
        let (a, b) = merge_pair(wl, 2500, 0x9A7);
        for scheme in SCHEMES {
            for p in [1usize, 2, 7, 12] {
                let segs = (scheme.run)(&a, &b, p);
                check_tiling(scheme.name, &segs, &a, &b, p);
                check_merge_concat(scheme.name, &segs, &a, &b);
            }
        }
    }
}

#[test]
fn balance_guarantees_hold_and_differ() {
    // Adversarial duplicates break rank-partition's balance but nothing
    // else's — Corollary 7 for merge-path, and the per-rank equispacing
    // for the two bisection-style schemes.
    let a: Vec<u32> = (0..60_000).collect();
    let b: Vec<u32> = vec![59_999; 60_000];
    let p = 12;
    for scheme in SCHEMES {
        let segs = (scheme.run)(&a, &b, p);
        let max = segs.iter().map(Segment::len).max().unwrap();
        let min = segs.iter().map(Segment::len).min().unwrap();
        if scheme.perfectly_balanced {
            assert!(
                max - min <= 1,
                "{}: expected perfect balance, got {min}..{max}",
                scheme.name
            );
        } else {
            assert!(
                max - min > 1,
                "{}: expected imbalance on the adversarial input",
                scheme.name
            );
        }
    }
}

#[test]
fn degenerate_processor_counts() {
    let (a, b) = merge_pair(MergeWorkload::Uniform, 50, 1);
    for scheme in SCHEMES {
        // p = 1: one segment covering everything.
        let segs = (scheme.run)(&a, &b, 1);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len(), 100, "{}", scheme.name);
        // p > n: many empty segments, still a tiling.
        let segs = (scheme.run)(&a, &b, 300);
        check_tiling(scheme.name, &segs, &a, &b, 300);
    }
}
