//! Wire-protocol robustness (DESIGN.md §14): every malformed, truncated,
//! or hostile input to the binary codec decodes to a **typed
//! [`ProtocolError`]** — never a panic, never a hang, never an oversized
//! allocation — and a live daemon answers protocol abuse by closing the
//! offending connection while every other connection keeps serving.
//!
//! The loopback half mirrors `tests/serve_invariants.rs`: pipelined,
//! interleaved requests across all nine adversarial merge families must
//! come back byte-identical to the sequential oracle.

use std::io::Write as _;
use std::net::TcpStream;

use mergepath_suite::mergepath::merge::sequential::merge_into_by;
use mergepath_suite::serve::net::{
    encode_request, encode_response, read_request, read_response, HEADER_LEN, KEY_TYPE_U32,
    MAX_KEYS_PER_SIDE, OP_MERGE, REQUEST_MAGIC, WIRE_VERSION,
};
use mergepath_suite::serve::{
    NetClient, NetOp, NetRequest, NetResponse, NetServer, NetStatus, ProtocolError, QueuePolicy,
    ServeConfig,
};
use mergepath_suite::workloads::gen::{merge_pair_sized, MergeWorkload};

fn valid_merge_frame() -> Vec<u8> {
    encode_request(&NetRequest {
        id: 7,
        deadline_rel_ns: 0,
        op: NetOp::Merge {
            a: vec![1, 3, 5],
            b: vec![2, 4],
        },
    })
}

fn decode(bytes: &[u8]) -> Result<Option<NetRequest>, ProtocolError> {
    read_request(&mut &bytes[..])
}

#[test]
fn bad_magic_version_op_and_key_type_are_typed_errors() {
    let good = valid_merge_frame();

    let mut bad = good.clone();
    bad[0..4].copy_from_slice(b"HTTP");
    assert_eq!(decode(&bad), Err(ProtocolError::BadMagic(*b"HTTP")));

    let mut bad = good.clone();
    bad[4] = 9;
    assert_eq!(decode(&bad), Err(ProtocolError::BadVersion(9)));

    let mut bad = good.clone();
    bad[5] = 77;
    assert_eq!(decode(&bad), Err(ProtocolError::BadOp(77)));

    let mut bad = good.clone();
    bad[6] = 0; // not KEY_TYPE_U32
    assert_eq!(decode(&bad), Err(ProtocolError::BadKeyType(0)));

    let mut bad = good;
    bad[7] = 1; // reserved byte
    assert!(matches!(decode(&bad), Err(ProtocolError::Malformed(_))));
}

#[test]
fn truncated_header_and_payload_are_typed_not_hangs() {
    let good = valid_merge_frame();

    // Header cut short: EOF inside the fixed 32 bytes.
    let r = decode(&good[..HEADER_LEN - 5]);
    assert!(
        matches!(r, Err(ProtocolError::Truncated { expected, got }) if expected == HEADER_LEN && got == HEADER_LEN - 5),
        "{r:?}"
    );

    // Payload cut short: the header promises 5 keys, the stream dies
    // after the first two.
    let r = decode(&good[..HEADER_LEN + 8]);
    assert!(matches!(r, Err(ProtocolError::Truncated { .. })), "{r:?}");
}

#[test]
fn clean_eof_at_a_frame_boundary_is_none() {
    assert_eq!(decode(&[]), Ok(None));
    // Two complete frames back to back, then a clean EOF.
    let mut stream = valid_merge_frame();
    stream.extend_from_slice(&valid_merge_frame());
    let mut r = &stream[..];
    assert!(read_request(&mut r).unwrap().is_some());
    assert!(read_request(&mut r).unwrap().is_some());
    assert_eq!(read_request(&mut r), Ok(None));
}

#[test]
fn oversized_declared_length_rejects_before_allocating() {
    // A hand-built header declaring u32::MAX keys on side A. The frame
    // body is empty: if the codec tried to allocate or read the declared
    // payload it would block or balloon — instead the length check fires
    // straight off the header.
    let mut frame = Vec::new();
    frame.extend_from_slice(&REQUEST_MAGIC);
    frame.push(WIRE_VERSION);
    frame.push(OP_MERGE);
    frame.push(KEY_TYPE_U32);
    frame.push(0);
    frame.extend_from_slice(&1u64.to_le_bytes()); // id
    frame.extend_from_slice(&0u64.to_le_bytes()); // deadline
    frame.extend_from_slice(&u32::MAX.to_le_bytes()); // len_a: hostile
    frame.extend_from_slice(&0u32.to_le_bytes()); // len_b
    assert_eq!(
        decode(&frame),
        Err(ProtocolError::Oversized {
            declared: u32::MAX as u64,
            limit: MAX_KEYS_PER_SIDE as u64,
        })
    );
}

#[test]
fn sort_frame_with_second_payload_is_malformed() {
    let mut frame = encode_request(&NetRequest {
        id: 1,
        deadline_rel_ns: 0,
        op: NetOp::Sort {
            keys: vec![3, 1, 2],
        },
    });
    // Corrupt len_b (bytes 28..32) to claim a second payload.
    frame[28..32].copy_from_slice(&4u32.to_le_bytes());
    assert!(matches!(decode(&frame), Err(ProtocolError::Malformed(_))));
}

#[test]
fn response_codec_rejects_bad_status_and_phantom_output() {
    let good = encode_response(&NetResponse {
        id: 3,
        status: NetStatus::Ok,
        latency_ns: 10,
        output: vec![1, 2],
    });

    let mut bad = good.clone();
    bad[5] = 42;
    assert_eq!(
        read_response(&mut &bad[..]),
        Err(ProtocolError::BadStatus(42))
    );

    // A rejection frame carrying output keys is structurally invalid.
    let mut bad = good;
    bad[5] = 1; // RejectedQueueFull, but len_out still says 2
    assert!(matches!(
        read_response(&mut &bad[..]),
        Err(ProtocolError::Malformed(_))
    ));
}

fn daemon() -> NetServer {
    NetServer::start(
        ServeConfig {
            queue_capacity: 512,
            max_inflight: 4,
            worker_budget: 2,
            policy: QueuePolicy::Edf,
            batch_max_items: 2048,
        },
        mergepath_suite::serve::NoRecorder,
        "127.0.0.1:0",
    )
    .expect("bind loopback")
}

/// Polls until the daemon has counted `n` protocol errors (the reader
/// thread races the test), bounded by a generous timeout.
fn await_protocol_errors(server: &NetServer, n: u64) {
    let t0 = std::time::Instant::now();
    while server.protocol_errors() < n {
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "daemon never registered the protocol error"
        );
        std::thread::yield_now();
    }
}

#[test]
fn pipelined_interleaved_connections_match_the_oracle() {
    let server = daemon();
    let addr = server.local_addr();

    // Two concurrent connections, each pipelining 18 requests (the nine
    // families twice) before reading a single response. The daemon
    // interleaves them freely; each connection's responses must come back
    // in its own request order, byte-identical to the sequential oracle.
    std::thread::scope(|s| {
        for conn in 0u64..2 {
            s.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let mut expected = Vec::new();
                for i in 0..18usize {
                    let wl = MergeWorkload::ALL[i % MergeWorkload::ALL.len()];
                    let (a, b) =
                        merge_pair_sized(wl, 64 + 13 * i, 96 + 7 * i, conn * 1000 + i as u64);
                    let mut oracle = vec![0u32; a.len() + b.len()];
                    merge_into_by(&a, &b, &mut oracle, &|x: &u32, y: &u32| x.cmp(y));
                    expected.push(oracle);
                    client
                        .send(&NetRequest {
                            id: i as u64,
                            deadline_rel_ns: 0,
                            op: NetOp::Merge { a, b },
                        })
                        .expect("send");
                }
                for (i, oracle) in expected.iter().enumerate() {
                    let resp = client.recv().expect("recv").expect("response");
                    assert_eq!(resp.id, i as u64, "conn {conn}: response order");
                    assert_eq!(resp.status, NetStatus::Ok);
                    assert_eq!(&resp.output, oracle, "conn {conn} req {i}: oracle mismatch");
                }
            });
        }
    });

    assert_eq!(server.protocol_errors(), 0);
    let stats = server.shutdown();
    assert_eq!(stats.completed, 36);
    assert_eq!(stats.lost(), 0, "every request resolved exactly once");
}

#[test]
fn malformed_frame_closes_only_the_offending_connection() {
    let server = daemon();
    let addr = server.local_addr();

    // A healthy connection first, kept open across the abuse.
    let mut healthy = NetClient::connect(addr).expect("connect healthy");

    // The abuser sends garbage; the daemon must close that connection.
    let mut abuser = NetClient::connect(addr).expect("connect abuser");
    abuser
        .send_raw(&[0xFFu8; HEADER_LEN])
        .expect("send garbage");
    match abuser.recv() {
        Ok(None) | Err(_) => {}
        Ok(Some(r)) => panic!("daemon answered a garbage frame with {r:?}"),
    }
    await_protocol_errors(&server, 1);

    // The healthy connection — opened before the abuse — still serves.
    let resp = healthy
        .call(&NetRequest {
            id: 1,
            deadline_rel_ns: 0,
            op: NetOp::Merge {
                a: vec![10, 30],
                b: vec![20, 40],
            },
        })
        .expect("healthy call");
    assert_eq!(resp.status, NetStatus::Ok);
    assert_eq!(resp.output, vec![10, 20, 30, 40]);

    // And so does a brand-new one.
    let mut fresh = NetClient::connect(addr).expect("connect fresh");
    let resp = fresh
        .call(&NetRequest {
            id: 2,
            deadline_rel_ns: 0,
            op: NetOp::Sort {
                keys: vec![3, 1, 2],
            },
        })
        .expect("fresh call");
    assert_eq!(resp.status, NetStatus::Ok);
    assert_eq!(resp.output, vec![1, 2, 3]);

    assert_eq!(server.protocol_errors(), 1);
    let stats = server.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.lost(), 0);
}

#[test]
fn mid_stream_disconnect_is_contained() {
    let server = daemon();
    let addr = server.local_addr();

    // Send a header promising a payload, then vanish. The daemon's
    // reader sees a truncated frame — a typed error, counted and
    // contained, never a hang.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let frame = valid_merge_frame();
        stream
            .write_all(&frame[..HEADER_LEN + 4])
            .expect("partial frame");
        // Drop: RST/FIN mid-frame.
    }
    await_protocol_errors(&server, 1);

    // The daemon keeps serving.
    let mut client = NetClient::connect(addr).expect("connect");
    let resp = client
        .call(&NetRequest {
            id: 9,
            deadline_rel_ns: 0,
            op: NetOp::Merge {
                a: vec![1],
                b: vec![2],
            },
        })
        .expect("call");
    assert_eq!(resp.status, NetStatus::Ok);
    assert_eq!(resp.output, vec![1, 2]);

    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.lost(), 0);
}

#[test]
fn request_and_response_frames_round_trip_through_the_codec() {
    for req in [
        NetRequest {
            id: 0,
            deadline_rel_ns: 0,
            op: NetOp::Merge {
                a: vec![],
                b: vec![],
            },
        },
        NetRequest {
            id: u64::MAX,
            deadline_rel_ns: u64::MAX,
            op: NetOp::Sort {
                keys: vec![u32::MAX, 0, 7],
            },
        },
    ] {
        let bytes = encode_request(&req);
        assert_eq!(read_request(&mut &bytes[..]).unwrap(), Some(req));
    }
    for resp in [
        NetResponse {
            id: 1,
            status: NetStatus::Ok,
            latency_ns: 5,
            output: vec![1, 2, 3],
        },
        NetResponse {
            id: 2,
            status: NetStatus::RejectedDeadline,
            latency_ns: 0,
            output: vec![],
        },
    ] {
        let bytes = encode_response(&resp);
        assert_eq!(read_response(&mut &bytes[..]).unwrap(), Some(resp));
    }
}
