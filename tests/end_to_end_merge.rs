//! Cross-crate integration: every merge implementation in the workspace —
//! core kernels, both parallel backends, the segmented variants, the
//! PRAM port, and the correct baselines — produces the identical stable
//! merge on every workload family.

use mergepath_suite::baselines::akl_santoro::akl_santoro_merge_into;
use mergepath_suite::baselines::rank_partition::rank_partition_merge_into;
use mergepath_suite::baselines::sequential::textbook_merge_into;
use mergepath_suite::mergepath::executor::Pool;
use mergepath_suite::mergepath::merge::parallel::parallel_merge_into;
use mergepath_suite::mergepath::merge::segmented::{
    segmented_parallel_merge_into, SpmConfig, Staging,
};
use mergepath_suite::mergepath::merge::sequential::{galloping_merge_into_by, merge_into};
use mergepath_suite::pram::kernels::measure_merge;
use mergepath_suite::workloads::{is_sorted, is_stable_merge_of, merge_pair_sized, MergeWorkload};

fn check_all_implementations(a: &[u32], b: &[u32]) {
    let n = a.len() + b.len();
    let mut reference = vec![0u32; n];
    merge_into(a, b, &mut reference);
    assert!(is_sorted(&reference));
    assert!(is_stable_merge_of(&reference, a, b));

    let mut out = vec![0u32; n];
    for threads in [1usize, 3, 7] {
        parallel_merge_into(a, b, &mut out, threads);
        assert_eq!(out, reference, "parallel, threads={threads}");

        let pool = Pool::new(threads);
        out.fill(0);
        pool.merge_into(a, b, &mut out);
        assert_eq!(out, reference, "pooled, threads={threads}");

        for staging in [Staging::Windowed, Staging::Cyclic] {
            let cfg = SpmConfig::new(97, threads).with_staging(staging);
            out.fill(0);
            segmented_parallel_merge_into(a, b, &mut out, &cfg);
            assert_eq!(out, reference, "segmented {staging:?}, threads={threads}");
        }

        out.fill(0);
        akl_santoro_merge_into(a, b, &mut out, threads);
        assert_eq!(out, reference, "akl-santoro, threads={threads}");

        out.fill(0);
        rank_partition_merge_into(a, b, &mut out, threads);
        assert_eq!(out, reference, "rank-partition, threads={threads}");
    }

    out.fill(0);
    textbook_merge_into(a, b, &mut out);
    assert_eq!(out, reference, "textbook");

    out.fill(0);
    galloping_merge_into_by(a, b, &mut out, &|x, y| x.cmp(y));
    assert_eq!(out, reference, "galloping");

    // PRAM port (with full CREW checking).
    let a64: Vec<u64> = a.iter().map(|&x| x as u64).collect();
    let b64: Vec<u64> = b.iter().map(|&x| x as u64).collect();
    let ref64: Vec<u64> = reference.iter().map(|&x| x as u64).collect();
    for p in [1usize, 4] {
        let (_, pram_out) = measure_merge(&a64, &b64, p, true).expect("CREW-clean");
        assert_eq!(pram_out, ref64, "pram, p={p}");
    }
}

#[test]
fn all_workloads_all_implementations() {
    for wl in MergeWorkload::ALL {
        let (a, b) = merge_pair_sized(wl, 1500, 1100, 0xE2E);
        check_all_implementations(&a, &b);
    }
}

#[test]
fn degenerate_shapes() {
    let empty: Vec<u32> = vec![];
    let one = vec![7u32];
    let many: Vec<u32> = (0..997).collect();
    check_all_implementations(&empty, &empty);
    check_all_implementations(&one, &empty);
    check_all_implementations(&empty, &many);
    check_all_implementations(&one, &many);
    let constant = vec![42u32; 500];
    check_all_implementations(&constant, &constant);
}

#[test]
fn extreme_size_asymmetry() {
    let tiny: Vec<u32> = vec![500_000, 1_000_000];
    let huge: Vec<u32> = (0..50_000).map(|x| x * 40).collect();
    check_all_implementations(&tiny, &huge);
    check_all_implementations(&huge, &tiny);
}
