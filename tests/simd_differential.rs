//! Differential oracle tests for the SIMD segment merge kernel.
//!
//! The vectorized kernel is only ever selected for primitive keys under
//! the canonical comparator, so this suite drives exactly that
//! configuration — bare `u32` keys, [`natural_cmp`] — across nine
//! adversarial input families, every dispatch policy (adaptive plus each
//! kernel pinned, the SIMD kernel included), and lengths straddling the
//! lane width: `8k-1`, `8k`, `8k+1` and one-side-empty. Every output must
//! be byte-identical to the sequential reference merge.
//!
//! The suite is meaningful in both build configurations. With
//! `--features simd` the vector loop really runs; without it the entry
//! point falls back to scalar and these tests pin the fallback instead.
//! [`simd_enabled`] reports which configuration is under test, and the
//! eligibility assertions flip with it.
//!
//! A second axis proves the *negative* space: `(key, id)` pairs — any
//! non-[`SimdKey`] element type, and any comparator other than the
//! canonical one — must never dispatch a SIMD segment, which the
//! `segments_simd` telemetry counter witnesses directly.
//!
//! [`SimdKey`]: mergepath_suite::mergepath::merge::simd::SimdKey

use mergepath_suite::mergepath::merge::adaptive::{
    probe_segment, with_dispatch_policy, DispatchPolicy, SegmentKernel,
};
use mergepath_suite::mergepath::merge::parallel::{
    parallel_merge_into_by, parallel_merge_into_recorded,
};
use mergepath_suite::mergepath::merge::sequential::merge_into_by;
use mergepath_suite::mergepath::merge::simd::{natural_cmp, simd_eligible, simd_enabled, LANES};
use mergepath_suite::mergepath::telemetry::TimelineRecorder;
use mergepath_suite::workloads::prng::Prng;

/// Lengths straddling the lane width: one short of a whole number of
/// lanes, exact, one over, and empty — the tail/remainder seams where a
/// chunked kernel would break first.
fn lane_straddling_lengths() -> [usize; 4] {
    let k = 40; // 8k = 320: enough lanes for several refill iterations
    [0, LANES * k - 1, LANES * k, LANES * k + 1]
}

/// Builds one sorted `u32` input of the named family. `which` is 0 for
/// the A side and 1 for the B side so the two sides differ where the
/// family calls for it.
fn family_input(family: &str, len: usize, which: u64, rng: &mut Prng) -> Vec<u32> {
    let mut v: Vec<u32> = match family {
        "all_equal" => vec![7; len],
        "duplicate_heavy" => (0..len).map(|_| rng.below(5) as u32).collect(),
        "interleaved_runs" => (0..len).map(|i| (i as u32) * 2 + which as u32).collect(),
        "disjoint_low_high" => {
            let base = which as u32 * 1_000_000;
            (0..len).map(|i| base + i as u32).collect()
        }
        "disjoint_high_low" => {
            let base = (1 - which as u32) * 1_000_000;
            (0..len).map(|i| base + i as u32).collect()
        }
        "random_wide" => (0..len)
            .map(|_| rng.below(u32::MAX as u64) as u32)
            .collect(),
        "random_with_ties" => (0..len).map(|_| rng.below(90) as u32).collect(),
        "blocky" => (0..len)
            .map(|_| (rng.below(16) as u32) * 1000 + which as u32)
            .collect(),
        "saw_overlap" => (0..len)
            .map(|i| (i as u32 / 7) * 11 + which as u32)
            .collect(),
        other => unreachable!("unknown family {other}"),
    };
    v.sort_unstable();
    v
}

/// The nine adversarial families of the suite.
const FAMILIES: [&str; 9] = [
    "all_equal",
    "duplicate_heavy",
    "interleaved_runs",
    "disjoint_low_high",
    "disjoint_high_low",
    "random_wide",
    "random_with_ties",
    "blocky",
    "saw_overlap",
];

#[test]
fn every_policy_matches_the_oracle_on_lane_straddling_lengths() {
    let cmp = natural_cmp::<u32>;
    let policies = [
        DispatchPolicy::Adaptive,
        DispatchPolicy::Fixed(SegmentKernel::Classic),
        DispatchPolicy::Fixed(SegmentKernel::BranchLean),
        DispatchPolicy::Fixed(SegmentKernel::Galloping),
        DispatchPolicy::Fixed(SegmentKernel::Simd),
    ];
    let mut rng = Prng::seed_from_u64(0x51D0_D1FF);
    for family in FAMILIES {
        for la in lane_straddling_lengths() {
            for lb in lane_straddling_lengths() {
                let a = family_input(family, la, 0, &mut rng);
                let b = family_input(family, lb, 1, &mut rng);
                let mut oracle = vec![0u32; la + lb];
                merge_into_by(&a, &b, &mut oracle, &cmp);
                for policy in policies {
                    with_dispatch_policy(policy, || {
                        for threads in [1usize, 4] {
                            let mut out = vec![0u32; la + lb];
                            parallel_merge_into_by(&a, &b, &mut out, threads, &cmp);
                            assert_eq!(
                                out, oracle,
                                "{family}: la={la} lb={lb} {policy:?} threads={threads}"
                            );
                        }
                    });
                }
            }
        }
    }
}

#[test]
fn eligibility_tracks_the_feature_and_the_canonical_comparator() {
    // The positive space: primitive keys under the canonical comparator
    // are eligible exactly when the feature compiled the vector loop in.
    assert_eq!(simd_eligible::<u32, _>(&natural_cmp::<u32>), simd_enabled());
    assert_eq!(simd_eligible::<i64, _>(&natural_cmp::<i64>), simd_enabled());
    // The negative space, regardless of configuration: a closure over the
    // same primitive, and the canonical comparator instantiated at a
    // non-SimdKey pair type, are both rejected.
    assert!(!simd_eligible::<u32, _>(&|x: &u32, y: &u32| x.cmp(y)));
    assert!(!simd_eligible::<(u32, u32), _>(&natural_cmp::<(u32, u32)>));
}

#[test]
fn keyed_pairs_never_dispatch_simd_segments() {
    // (key, id) pairs under a by-key comparator: the probe must never name
    // the SIMD kernel, and a traced parallel merge must record zero
    // `segments_simd` — in both build configurations.
    type Kv = (u32, u32);
    let by_key = |x: &Kv, y: &Kv| x.0.cmp(&y.0);
    let mut rng = Prng::seed_from_u64(0x9A1D);
    let mut side = |tag: u32| -> Vec<Kv> {
        let mut v: Vec<Kv> = (0..4096)
            .map(|i| (rng.below(1 << 20) as u32, tag + i))
            .collect();
        v.sort_by(by_key);
        v
    };
    let (a, b) = (side(0), side(1_000_000));
    assert_ne!(
        probe_segment(&a, &b, &by_key),
        SegmentKernel::Simd,
        "pairs must not probe to the vector kernel"
    );

    let mut out = vec![(0u32, 0u32); a.len() + b.len()];
    let rec = TimelineRecorder::new();
    parallel_merge_into_recorded(&a, &b, &mut out, 4, &by_key, &rec);
    let telemetry = rec.finish();
    let total = |name: &str| -> u64 {
        telemetry
            .counters
            .iter()
            .filter(|c| c.kind.name() == name)
            .map(|c| c.total)
            .sum()
    };
    assert_eq!(total("segments_simd"), 0, "pairs dispatched a simd segment");
    assert!(
        total("segments_classic") + total("segments_branch_lean") + total("segments_galloping") > 0,
        "the traced merge must have dispatched scalar segments"
    );

    // And the same merge stays byte-identical to the oracle even when the
    // SIMD kernel is forced: the entry point's internal fallback keeps
    // execution total for ineligible element types.
    let mut oracle = vec![(0u32, 0u32); out.len()];
    merge_into_by(&a, &b, &mut oracle, &by_key);
    assert_eq!(out, oracle);
    with_dispatch_policy(DispatchPolicy::Fixed(SegmentKernel::Simd), || {
        let mut forced = vec![(0u32, 0u32); oracle.len()];
        parallel_merge_into_by(&a, &b, &mut forced, 4, &by_key);
        assert_eq!(forced, oracle, "forced-simd fallback diverged on pairs");
    });
}

#[test]
fn uniform_primitive_keys_dispatch_simd_exactly_when_enabled() {
    // The positive telemetry witness: a traced parallel merge of fine
    // interleaved primitive keys under the canonical comparator must
    // dispatch SIMD segments exactly when the feature is on.
    let cmp = natural_cmp::<u32>;
    let mut rng = Prng::seed_from_u64(0xFEED);
    let mut side = || -> Vec<u32> {
        let mut v: Vec<u32> = (0..8192)
            .map(|_| rng.below(u32::MAX as u64) as u32)
            .collect();
        v.sort_unstable();
        v
    };
    let (a, b) = (side(), side());
    let mut out = vec![0u32; a.len() + b.len()];
    let rec = TimelineRecorder::new();
    parallel_merge_into_recorded(&a, &b, &mut out, 4, &cmp, &rec);
    let telemetry = rec.finish();
    let simd_segments: u64 = telemetry
        .counters
        .iter()
        .filter(|c| c.kind.name() == "segments_simd")
        .map(|c| c.total)
        .sum();
    if simd_enabled() {
        assert!(simd_segments > 0, "feature on but no simd segments");
    } else {
        assert_eq!(simd_segments, 0, "feature off but simd segments recorded");
    }
    let mut oracle = vec![0u32; out.len()];
    merge_into_by(&a, &b, &mut oracle, &cmp);
    assert_eq!(out, oracle);
}
