//! Integration: the three sorts across all workload families, stability
//! with tagged records, and agreement between the wall-clock and PRAM
//! implementations of the §III sort.

use mergepath_suite::baselines::bitonic::{bitonic_sort, parallel_bitonic_sort};
use mergepath_suite::mergepath::sort::cache_aware::{
    cache_aware_parallel_sort_by, CacheAwareConfig,
};
use mergepath_suite::mergepath::sort::parallel::parallel_merge_sort;
use mergepath_suite::mergepath::sort::sequential::merge_sort;
use mergepath_suite::pram::kernels::{load_array, parallel_merge_sort as pram_sort};
use mergepath_suite::pram::PramMachine;
use mergepath_suite::workloads::{unsorted_keys, SortWorkload};

#[test]
fn every_sort_on_every_workload() {
    for wl in SortWorkload::ALL {
        let base = unsorted_keys(wl, 20_000, 0x50F7);
        let mut expect = base.clone();
        expect.sort();

        let mut v = base.clone();
        merge_sort(&mut v);
        assert_eq!(v, expect, "merge_sort on {}", wl.name());

        for threads in [2usize, 5] {
            let mut v = base.clone();
            parallel_merge_sort(&mut v, threads);
            assert_eq!(v, expect, "parallel p={threads} on {}", wl.name());

            let mut v = base.clone();
            let cfg = CacheAwareConfig::new(1024, threads);
            cache_aware_parallel_sort_by(&mut v, &cfg, &|a, b| a.cmp(b));
            assert_eq!(v, expect, "cache-aware p={threads} on {}", wl.name());
        }

        let mut v = base.clone();
        bitonic_sort(&mut v);
        assert_eq!(v, expect, "bitonic on {}", wl.name());

        let mut v = base.clone();
        parallel_bitonic_sort(&mut v, 4);
        assert_eq!(v, expect, "parallel bitonic on {}", wl.name());
    }
}

#[test]
fn stability_with_tagged_records_end_to_end() {
    // Records with only 8 distinct keys: stability is observable.
    let records: Vec<(u8, u32)> = (0..50_000u32).map(|i| ((i % 8) as u8, i)).collect();
    let mut shuffled = records.clone();
    // Deterministic shuffle.
    for i in (1..shuffled.len()).rev() {
        let j = ((i as u64).wrapping_mul(6364136223846793005) >> 33) as usize % (i + 1);
        shuffled.swap(i, j);
    }
    let mut expect = shuffled.clone();
    expect.sort_by_key(|&(k, _)| k); // std stable sort oracle

    let cmp = |a: &(u8, u32), b: &(u8, u32)| a.0.cmp(&b.0);
    let mut v = shuffled.clone();
    mergepath_suite::mergepath::sort::parallel::parallel_merge_sort_by(&mut v, 6, &cmp);
    assert_eq!(v, expect);

    let mut v = shuffled.clone();
    let cfg = CacheAwareConfig::new(512, 3);
    cache_aware_parallel_sort_by(&mut v, &cfg, &cmp);
    assert_eq!(v, expect);
}

#[test]
fn pram_sort_agrees_with_host_sort() {
    let base = unsorted_keys(SortWorkload::Uniform, 5000, 0xAAA);
    let mut host = base.clone();
    parallel_merge_sort(&mut host, 8);

    let data: Vec<u64> = base.iter().map(|&x| x as u64).collect();
    let mut machine = PramMachine::new(); // full CREW checking
    let h = load_array(&mut machine, &data);
    pram_sort(&mut machine, h, 8).expect("race-free");
    let pram_out: Vec<u32> = machine
        .read_slice(h.base, h.len)
        .into_iter()
        .map(|x| x as u32)
        .collect();
    assert_eq!(pram_out, host);
}

#[test]
fn large_single_shot_sort() {
    // One big everything-path test: 1M elements through the cache-aware
    // sort with cyclic staging.
    let base = unsorted_keys(SortWorkload::Uniform, 1 << 20, 0xB16);
    let mut expect = base.clone();
    expect.sort();
    let mut v = base;
    let cfg = CacheAwareConfig::new(64 * 1024, 4)
        .with_staging(mergepath_suite::mergepath::merge::segmented::Staging::Cyclic);
    cache_aware_parallel_sort_by(&mut v, &cfg, &|a, b| a.cmp(b));
    assert_eq!(v, expect);
}
