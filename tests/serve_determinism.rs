//! The reproducibility contract behind `BENCH_serve.json`: the arrival
//! plan and every admission decision derived from it are a **pure function
//! of `(seed, config)`**. A live daemon run resolves deadlines against the
//! wall clock, so its latencies vary machine to machine — but the planned
//! schedule and the deterministic replay of the admission policy must be
//! bit-for-bit identical everywhere. These properties pin that down over
//! randomized configurations.

use proptest::prelude::*;

use mergepath_suite::serve::{replay, QueuePolicy, ReplayConfig, ReplayOutcome, ServiceModel};
use mergepath_suite::workloads::arrival::{arrival_plan, ArrivalPattern, PlanConfig, RequestSpec};
use mergepath_suite::workloads::gen::merge_pair_sized;
use mergepath_suite::workloads::MergeWorkload;

fn plan_cfg(
    pattern: ArrivalPattern,
    requests: usize,
    mean_gap_ns: u64,
    deadline_ns: u64,
    seed: u64,
) -> PlanConfig {
    PlanConfig {
        pattern,
        requests,
        mean_gap_ns,
        deadline_ns,
        mean_len: 512,
        seed,
    }
}

proptest! {
    /// Same `(seed, config)` twice ⇒ identical plan, identical replay log
    /// — and therefore identical admission counts in the artifact.
    fn admission_decisions_are_a_pure_function_of_seed_and_config(
        pat in 0usize..3,
        requests in 50usize..300,
        mean_gap_ns in 1_000u64..200_000,
        deadline_ns in 0u64..2_000_000,
        queue_capacity in 1usize..32,
        max_inflight in 1usize..8,
        base_ns in 0u64..50_000,
        per_item_ns in 0u64..64,
        seed in 0u64..u64::MAX,
    ) {
        let pattern = ArrivalPattern::ALL[pat];
        let cfg = plan_cfg(pattern, requests, mean_gap_ns, deadline_ns, seed);
        let plan_a = arrival_plan(&cfg);
        let plan_b = arrival_plan(&cfg);
        prop_assert_eq!(&plan_a, &plan_b, "arrival plan must be deterministic");

        for policy in QueuePolicy::ALL {
            let rcfg = ReplayConfig { queue_capacity, max_inflight, policy };
            let model = ServiceModel { base_ns, per_item_ns };
            let log_a = replay(&plan_a, &rcfg, &model);
            let log_b = replay(&plan_b, &rcfg, &model);
            prop_assert_eq!(&log_a, &log_b, "replay must be deterministic");

            // Totality: every planned request resolves exactly once, in id
            // order — the simulated twin of the daemon's zero-lost-requests
            // invariant.
            prop_assert_eq!(log_a.len(), plan_a.len());
            for (i, e) in log_a.iter().enumerate() {
                prop_assert_eq!(e.id, i, "request lost or duplicated");
            }
        }
    }

    /// The admission policy itself, over arbitrary configurations and both
    /// queue policies: completions start in arrival order under FIFO, never
    /// before arrival, strictly before their (inclusive-miss) deadline, and
    /// rejections only occur for cause.
    fn replay_respects_the_admission_policy(
        pat in 0usize..3,
        requests in 50usize..300,
        mean_gap_ns in 1_000u64..100_000,
        deadline_ns in 0u64..1_000_000,
        queue_capacity in 1usize..16,
        max_inflight in 1usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let pattern = ArrivalPattern::ALL[pat];
        let cfg = plan_cfg(pattern, requests, mean_gap_ns, deadline_ns, seed);
        let plan = arrival_plan(&cfg);
        for policy in QueuePolicy::ALL {
            let rcfg = ReplayConfig { queue_capacity, max_inflight, policy };
            let model = ServiceModel { base_ns: 10_000, per_item_ns: 20 };
            let log = replay(&plan, &rcfg, &model);

            let mut prev_start = 0u64;
            for e in &log {
                let spec = &plan[e.id];
                match e.outcome {
                    ReplayOutcome::Completed => {
                        if policy == QueuePolicy::Fifo {
                            // FIFO: admitted requests begin execution in
                            // arrival order (ids are arrival-ordered).
                            prop_assert!(e.start_ns >= prev_start, "FIFO start order violated");
                            prev_start = e.start_ns;
                        }
                        prop_assert!(e.start_ns >= spec.arrival_ns);
                        prop_assert_eq!(
                            e.finish_ns,
                            e.start_ns + model.service_ns(spec),
                            "service time model must be charged exactly"
                        );
                        if spec.deadline_ns != 0 {
                            // Inclusive boundary: starting *at* the
                            // deadline instant is already a miss, so a
                            // completion must have started strictly before.
                            prop_assert!(
                                e.start_ns < spec.arrival_ns + spec.deadline_ns,
                                "started at or after its own deadline"
                            );
                        }
                    }
                    ReplayOutcome::RejectedDeadline => {
                        // Only requests that carry a deadline can expire,
                        // and only once it was actually reached (the
                        // boundary instant itself rejects).
                        prop_assert!(spec.deadline_ns != 0);
                        prop_assert!(e.finish_ns >= spec.arrival_ns + spec.deadline_ns);
                    }
                    ReplayOutcome::RejectedQueueFull => {
                        // Judged at arrival: the decision instant is the
                        // arrival instant.
                        prop_assert_eq!(e.finish_ns, spec.arrival_ns);
                    }
                }
            }

            // Conservation: the three outcome classes partition the plan.
            let done = log.iter().filter(|e| e.outcome == ReplayOutcome::Completed).count();
            let qf = log.iter().filter(|e| e.outcome == ReplayOutcome::RejectedQueueFull).count();
            let dl = log.iter().filter(|e| e.outcome == ReplayOutcome::RejectedDeadline).count();
            prop_assert_eq!(done + qf + dl, plan.len());
        }
    }

    /// Request payloads regenerate bit-for-bit from their spec: the plan
    /// never stores input arrays, only `(workload, len_a, len_b,
    /// data_seed)`, so the bench and any postmortem can rebuild the exact
    /// inputs a request carried.
    fn request_inputs_regenerate_from_the_spec(
        pat in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let pattern = ArrivalPattern::ALL[pat];
        let cfg = plan_cfg(pattern, 40, 10_000, 0, seed);
        let plan = arrival_plan(&cfg);
        for spec in plan.iter().take(8) {
            let (a1, b1) = merge_pair_sized(spec.workload, spec.len_a, spec.len_b, spec.data_seed);
            let (a2, b2) = merge_pair_sized(spec.workload, spec.len_a, spec.len_b, spec.data_seed);
            prop_assert_eq!(a1.len(), spec.len_a);
            prop_assert_eq!(b1.len(), spec.len_b);
            prop_assert_eq!(&a1, &a2);
            prop_assert_eq!(&b1, &b2);
        }
    }
}

/// Ample capacity and no deadlines ⇒ the policy admits and completes
/// everything, for every pattern. (Non-property pin: the replay's
/// rejection machinery must never fire without cause.)
#[test]
fn ample_capacity_never_rejects() {
    for policy in QueuePolicy::ALL {
        for pattern in ArrivalPattern::ALL {
            for seed in [1u64, 99, 12345] {
                let cfg = PlanConfig {
                    pattern,
                    requests: 400,
                    mean_gap_ns: 1_000_000,
                    deadline_ns: 0,
                    mean_len: 256,
                    seed,
                };
                let plan = arrival_plan(&cfg);
                let log = replay(
                    &plan,
                    &ReplayConfig {
                        queue_capacity: 400,
                        max_inflight: 4,
                        policy,
                    },
                    &ServiceModel {
                        base_ns: 1_000,
                        per_item_ns: 10,
                    },
                );
                assert!(
                    log.iter().all(|e| e.outcome == ReplayOutcome::Completed),
                    "{} {} seed {seed}: spurious rejection",
                    policy.name(),
                    pattern.name()
                );
            }
        }
    }
}

/// A congested single slot must reject for both reasons — queue pressure
/// and deadline expiry — so the bench's backpressure columns are known to
/// be exercised by the very policy the daemon runs.
#[test]
fn congestion_produces_both_rejection_kinds() {
    for policy in QueuePolicy::ALL {
        for pattern in ArrivalPattern::ALL {
            let cfg = PlanConfig {
                pattern,
                requests: 1000,
                mean_gap_ns: 5_000,
                deadline_ns: 200_000,
                mean_len: 2048,
                seed: 7,
            };
            let plan = arrival_plan(&cfg);
            let log = replay(
                &plan,
                &ReplayConfig {
                    queue_capacity: 8,
                    max_inflight: 2,
                    policy,
                },
                &ServiceModel {
                    base_ns: 5_000,
                    per_item_ns: 25,
                },
            );
            let qf = log
                .iter()
                .filter(|e| e.outcome == ReplayOutcome::RejectedQueueFull)
                .count();
            let dl = log
                .iter()
                .filter(|e| e.outcome == ReplayOutcome::RejectedDeadline)
                .count();
            let tag = format!("{}/{}", policy.name(), pattern.name());
            assert!(qf > 0, "{tag}: no queue-full rejections");
            assert!(dl > 0, "{tag}: no deadline rejections");
        }
    }
}

/// The deadline boundary is **inclusive** — a request whose slot frees at
/// exactly `arrival + deadline` is rejected, not started, under *both*
/// queue policies. This pins the replay to the daemon's own boundary
/// (`dequeue_ns >= deadline` misses; `with_deadline_in(0)` is always
/// rejected live), so FIFO-vs-EDF deadline-miss columns in
/// `BENCH_serve.json` share one boundary convention.
#[test]
fn slot_freeing_exactly_at_the_deadline_rejects() {
    fn spec(id: usize, arrival_ns: u64, deadline_ns: u64, len: usize) -> RequestSpec {
        RequestSpec {
            id,
            arrival_ns,
            deadline_ns,
            workload: MergeWorkload::Uniform,
            len_a: len,
            len_b: len,
            data_seed: 0,
        }
    }
    // service = len_a + len_b with this model.
    let model = ServiceModel {
        base_ns: 0,
        per_item_ns: 1,
    };
    // Request 0 occupies the single slot over [0, 100); request 1 arrives
    // at 10 with absolute deadline 10 + 90 = 100 — the exact instant the
    // slot frees. Inclusive boundary: that is already a miss.
    let plan = vec![spec(0, 0, 0, 50), spec(1, 10, 90, 25)];
    for policy in QueuePolicy::ALL {
        let log = replay(
            &plan,
            &ReplayConfig {
                queue_capacity: 16,
                max_inflight: 1,
                policy,
            },
            &model,
        );
        assert_eq!(log[0].outcome, ReplayOutcome::Completed);
        assert_eq!(
            log[1].outcome,
            ReplayOutcome::RejectedDeadline,
            "{}: dequeue at the exact deadline instant must reject",
            policy.name()
        );
        assert_eq!(log[1].finish_ns, 100, "judged at the boundary instant");
    }
}
