//! Correctness of the serving daemon under real concurrency: many
//! simultaneous requests across all nine adversarial input families, every
//! completed response byte-identical to the sequential oracle, backpressure
//! always explicit (a `Rejected` outcome, never a panic, never a lost
//! request), and clean drop accounting even when a request's comparator
//! panics mid-merge.

use std::sync::atomic::{AtomicIsize, Ordering as AtOrd};
use std::sync::{Arc, Barrier};

use mergepath_suite::mergepath::merge::sequential::merge_into_by;
use mergepath_suite::serve::{
    CounterKind, Outcome, QueuePolicy, RejectReason, Request, ServeConfig, Server, TimelineRecorder,
};
use mergepath_suite::workloads::gen::{merge_pair_sized, MergeWorkload};

fn u32_cmp(a: &u32, b: &u32) -> std::cmp::Ordering {
    a.cmp(b)
}

// ---------------------------------------------------------------------------
// All nine families, concurrently, against the sequential oracle
// ---------------------------------------------------------------------------

/// Submits a wave of merge requests drawn from every [`MergeWorkload`]
/// family at several uneven sizes, all in flight together, and checks each
/// response against [`merge_into_by`] — the stable sequential oracle. The
/// daemon's interleaving must be invisible in the outputs.
#[test]
fn concurrent_responses_match_sequential_oracle_on_all_families() {
    let server: Server<u32> = Server::start(
        ServeConfig {
            queue_capacity: 128,
            max_inflight: 8,
            worker_budget: 4,
            policy: QueuePolicy::Edf,
            // Small enough that several of the wave's merges coalesce:
            // batched rounds must be just as byte-identical to the oracle
            // as inline runs.
            batch_max_items: 2048,
        },
        mergepath_suite::serve::NoRecorder,
    );
    let sizes = [(1usize, 900usize), (700, 300), (512, 512), (1000, 1)];
    let mut expected = Vec::new();
    let mut handles = Vec::new();
    let mut id = 0u64;
    for workload in MergeWorkload::ALL {
        for &(na, nb) in &sizes {
            let (a, b) = merge_pair_sized(workload, na, nb, 0xC0FFEE ^ id);
            let mut want = vec![0u32; na + nb];
            merge_into_by(&a, &b, &mut want, &u32_cmp);
            expected.push((workload, want));
            handles.push(
                server
                    .submit(Request::merge(id, a, b))
                    .expect("queue sized for the full wave"),
            );
            id += 1;
        }
    }
    assert_eq!(handles.len(), 36, "9 families x 4 size shapes");
    for (h, (workload, want)) in handles.into_iter().zip(expected) {
        match h.wait() {
            Outcome::Completed { output, .. } => {
                assert_eq!(output, want, "family {} diverged", workload.name());
            }
            other => panic!("family {}: unexpected outcome {other:?}", workload.name()),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 36);
    assert_eq!(stats.lost(), 0);
}

// ---------------------------------------------------------------------------
// 64 requests genuinely in flight at once
// ---------------------------------------------------------------------------

/// A one-shot rendezvous: the first comparison touching a request's gated
/// key parks on the shared barrier; clones share the `used` flag, so each
/// request waits exactly once no matter how often the kernel re-compares
/// or copies the element.
#[derive(Debug)]
struct Gate {
    barrier: Arc<Barrier>,
    used: std::sync::atomic::AtomicBool,
}

impl Gate {
    fn pass(&self) {
        if !self.used.swap(true, AtOrd::SeqCst) {
            self.barrier.wait();
        }
    }
}

/// A key whose comparator blocks on a shared barrier the first time its
/// carrying request compares it. With 64 serving threads each executing
/// one gated request, the barrier releases only once all 64 are *inside*
/// their kernels simultaneously — turning "the daemon sustains 64
/// concurrent in-flight requests" from a racy hope into a deterministic
/// fact (`inflight_peak` must read exactly 64).
#[derive(Debug, Clone, Default)]
struct GateKey {
    key: u32,
    gate: Option<Arc<Gate>>,
}

impl PartialEq for GateKey {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for GateKey {}
impl PartialOrd for GateKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GateKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for g in [&self.gate, &other.gate].into_iter().flatten() {
            g.pass();
        }
        self.key.cmp(&other.key)
    }
}

#[test]
fn sustains_64_concurrent_in_flight_requests() {
    const INFLIGHT: usize = 64;
    let server: Server<GateKey> = Server::start(
        ServeConfig {
            queue_capacity: INFLIGHT,
            max_inflight: INFLIGHT,
            worker_budget: 1, // share = 1: each request runs on its serving thread
            policy: QueuePolicy::Edf,
            // No coalescing: the rendezvous needs all 64 requests inside
            // their *own* kernels simultaneously.
            batch_max_items: 0,
        },
        mergepath_suite::serve::NoRecorder,
    );
    let barrier = Arc::new(Barrier::new(INFLIGHT));
    let handles: Vec<_> = (0..INFLIGHT as u64)
        .map(|id| {
            // The gated key sorts first in `a`, so it is compared before
            // the merge can finish — the request cannot complete until all
            // 64 requests have reached their kernels.
            let gate = Arc::new(Gate {
                barrier: Arc::clone(&barrier),
                used: std::sync::atomic::AtomicBool::new(false),
            });
            let a = vec![
                GateKey {
                    key: 0,
                    gate: Some(gate),
                },
                GateKey { key: 2, gate: None },
                GateKey { key: 4, gate: None },
            ];
            let b = vec![
                GateKey { key: 1, gate: None },
                GateKey { key: 3, gate: None },
            ];
            server.submit(Request::merge(id, a, b)).expect("admitted")
        })
        .collect();
    for h in handles {
        match h.wait() {
            Outcome::Completed { output, .. } => {
                let keys: Vec<u32> = output.iter().map(|g| g.key).collect();
                assert_eq!(keys, vec![0, 1, 2, 3, 4]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, INFLIGHT as u64);
    assert_eq!(
        stats.inflight_peak, INFLIGHT,
        "all {INFLIGHT} requests must execute simultaneously"
    );
    assert_eq!(stats.lost(), 0);
}

// ---------------------------------------------------------------------------
// Backpressure: explicit rejections, observable in telemetry
// ---------------------------------------------------------------------------

/// Overloads a one-slot daemon until both rejection kinds fire, then
/// checks every path stayed clean: queue-full reported synchronously,
/// deadline expiry through the handle, both visible in the `serve_*`
/// telemetry counters, and `submitted` fully accounted for.
#[test]
fn rejections_are_explicit_and_counted() {
    let rec = Arc::new(TimelineRecorder::new());
    let server: Server<u32, _> = Server::start(
        ServeConfig {
            queue_capacity: 2,
            max_inflight: 1,
            worker_budget: 1,
            policy: QueuePolicy::Edf,
            batch_max_items: 4096,
        },
        Arc::clone(&rec),
    );
    // A slow sort pins the single serving thread...
    let busy: Vec<u32> = (0..400_000u32).rev().collect();
    let h0 = server.submit(Request::sort(0, busy)).expect("admitted");
    // ...a doomed request waits behind it with an already-tiny deadline...
    let doomed = Request::merge(1, vec![1u32, 3], vec![2, 4]).with_deadline_in(1);
    let h1 = server.submit(doomed).expect("queue has room");
    // ...and a flood overfills the bounded queue.
    let mut queue_full = 0u64;
    let mut extra = Vec::new();
    for id in 2..40u64 {
        match server.submit(Request::merge(id, vec![5u32, 7], vec![6, 8])) {
            Ok(h) => extra.push(h),
            Err(RejectReason::QueueFull) => queue_full += 1,
            Err(other) => panic!("unexpected synchronous rejection {other:?}"),
        }
    }
    assert!(queue_full > 0, "bounded queue never pushed back");
    assert!(matches!(h0.wait(), Outcome::Completed { .. }));
    assert!(matches!(
        h1.wait(),
        Outcome::Rejected(RejectReason::DeadlineExpired)
    ));
    for h in extra {
        // The flood requests carry no deadline, so every admitted one
        // must complete once the slow sort clears.
        match h.wait() {
            Outcome::Completed { .. } => {}
            other => panic!("admitted request resolved dirty: {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.rejected_queue_full, queue_full);
    assert!(stats.rejected_deadline >= 1);
    assert_eq!(stats.lost(), 0, "every submission accounted for");

    // The same story must be readable from telemetry alone.
    let t = Arc::try_unwrap(rec)
        .ok()
        .expect("server released its recorder at shutdown")
        .finish();
    let total = |kind: CounterKind| -> u64 {
        t.counters
            .iter()
            .filter(|c| c.kind == kind)
            .map(|c| c.total)
            .sum()
    };
    assert_eq!(total(CounterKind::ServeCompleted), stats.completed);
    assert_eq!(
        total(CounterKind::ServeRejectedQueueFull),
        stats.rejected_queue_full
    );
    assert_eq!(
        total(CounterKind::ServeRejectedDeadline),
        stats.rejected_deadline
    );
}

// ---------------------------------------------------------------------------
// Drop accounting under panicking comparators (CountedDrop, as in
// tests/non_copy_keys.rs, here with an Ord impl so the daemon can run it)
// ---------------------------------------------------------------------------

/// Key 'poison' value: comparing it panics, simulating a buggy user
/// comparator inside an otherwise healthy daemon.
const POISON: i32 = i32::MIN;

/// Same live-count idiom as `tests/non_copy_keys.rs`: every tracked
/// construction and clone increments a shared counter, every drop
/// decrements. Zero at the end means no leak (positive) and no
/// double-drop (negative) anywhere on the request path — queue, kernel,
/// outcome cell, response handle — even when the comparator panics.
#[derive(Debug)]
struct CountedDrop {
    key: i32,
    live: Arc<AtomicIsize>,
}

impl CountedDrop {
    fn tracked(key: i32, master: &Arc<AtomicIsize>) -> Self {
        master.fetch_add(1, AtOrd::SeqCst);
        CountedDrop {
            key,
            live: master.clone(),
        }
    }
}

impl Clone for CountedDrop {
    fn clone(&self) -> Self {
        self.live.fetch_add(1, AtOrd::SeqCst);
        CountedDrop {
            key: self.key,
            live: self.live.clone(),
        }
    }
}

impl Drop for CountedDrop {
    fn drop(&mut self) {
        self.live.fetch_sub(1, AtOrd::SeqCst);
    }
}

impl Default for CountedDrop {
    fn default() -> Self {
        // Filler elements (the output buffer) account against their own
        // private counter, not the master's.
        CountedDrop {
            key: 0,
            live: Arc::new(AtomicIsize::new(1)),
        }
    }
}

impl PartialEq for CountedDrop {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for CountedDrop {}
impl PartialOrd for CountedDrop {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CountedDrop {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        assert!(
            self.key != POISON && other.key != POISON,
            "comparator poisoned"
        );
        self.key.cmp(&other.key)
    }
}

#[test]
fn panicking_request_is_contained_and_leaks_nothing() {
    let master = Arc::new(AtomicIsize::new(0));
    let tracked = |keys: &[i32]| -> Vec<CountedDrop> {
        keys.iter()
            .map(|&k| CountedDrop::tracked(k, &master))
            .collect()
    };
    {
        let server: Server<CountedDrop> = Server::start(
            ServeConfig {
                queue_capacity: 16,
                max_inflight: 2,
                worker_budget: 2,
                policy: QueuePolicy::Edf,
                // No coalescing: the panic blast radius must stay exactly
                // one request, so `completed == 2 && failed == 2` is
                // deterministic.
                batch_max_items: 0,
            },
            mergepath_suite::serve::NoRecorder,
        );
        // A healthy request, a poisoned merge, a poisoned sort, and
        // another healthy request — the daemon must survive the panics
        // and keep serving.
        let good1 = server
            .submit(Request::merge(0, tracked(&[1, 3, 5]), tracked(&[2, 4])))
            .expect("admitted");
        let bad_merge = server
            .submit(Request::merge(
                1,
                tracked(&[1, POISON]),
                tracked(&[2, 6, 7]),
            ))
            .expect("admitted");
        let bad_sort = server
            .submit(Request::sort(2, tracked(&[9, 4, POISON, 1])))
            .expect("admitted");
        let good2 = server
            .submit(Request::sort(3, tracked(&[8, 6, 7])))
            .expect("admitted");

        match good1.wait() {
            Outcome::Completed { output, .. } => {
                let keys: Vec<i32> = output.iter().map(|c| c.key).collect();
                assert_eq!(keys, vec![1, 2, 3, 4, 5]);
            }
            other => panic!("good merge: {other:?}"),
        }
        assert!(matches!(bad_merge.wait(), Outcome::Failed));
        assert!(matches!(bad_sort.wait(), Outcome::Failed));
        match good2.wait() {
            Outcome::Completed { output, .. } => {
                let keys: Vec<i32> = output.iter().map(|c| c.key).collect();
                assert_eq!(keys, vec![6, 7, 8]);
            }
            other => panic!("good sort after panics: {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.lost(), 0, "failures are accounted, not lost");
    }
    // Server, handles, and outcomes are gone: every tracked element must
    // have dropped exactly once.
    assert_eq!(
        master.load(AtOrd::SeqCst),
        0,
        "request path leaked or double-dropped elements"
    );
}

// ---------------------------------------------------------------------------
// Sustained mixed load: waves of merges and sorts with deadlines
// ---------------------------------------------------------------------------

/// A rolling mixed workload — merges and sorts, some with deadlines some
/// without, submitted faster than one wave can drain — must end with
/// every request resolved, every completion byte-identical, and zero
/// losses. This is the invariant `cargo xtask verify-serve` gates in CI,
/// exercised here in-process.
#[test]
fn sustained_mixed_load_resolves_every_request() {
    let server: Server<u32> = Server::start(
        ServeConfig {
            queue_capacity: 64,
            max_inflight: 4,
            worker_budget: 4,
            policy: QueuePolicy::Edf,
            batch_max_items: 4096,
        },
        mergepath_suite::serve::NoRecorder,
    );
    let mut completed = 0u64;
    let mut rejected = 0u64;
    for wave in 0..4u64 {
        let mut expected = Vec::new();
        let mut handles = Vec::new();
        for i in 0..24u64 {
            let id = wave * 24 + i;
            let workload = MergeWorkload::ALL[(id as usize) % MergeWorkload::ALL.len()];
            if i % 3 == 2 {
                // Sorts: oracle is std's stable sort.
                let (mut keys, extra) = merge_pair_sized(workload, 600, 600, id);
                keys.extend(extra);
                let mut want = keys.clone();
                want.sort();
                expected.push(want);
                let req = if i % 6 == 5 {
                    Request::sort(id, keys).with_deadline_in(2_000_000_000)
                } else {
                    Request::sort(id, keys)
                };
                match server.submit(req) {
                    Ok(h) => handles.push(h),
                    Err(RejectReason::QueueFull) => {
                        rejected += 1;
                        expected.pop();
                    }
                    Err(other) => panic!("unexpected sync rejection {other:?}"),
                }
            } else {
                let (a, b) = merge_pair_sized(workload, 800, 400, id);
                let mut want = vec![0u32; a.len() + b.len()];
                merge_into_by(&a, &b, &mut want, &u32_cmp);
                expected.push(want);
                match server.submit(Request::merge(id, a, b)) {
                    Ok(h) => handles.push(h),
                    Err(RejectReason::QueueFull) => {
                        rejected += 1;
                        expected.pop();
                    }
                    Err(other) => panic!("unexpected sync rejection {other:?}"),
                }
            }
        }
        for (i, (h, want)) in handles.into_iter().zip(expected).enumerate() {
            match h.wait() {
                Outcome::Completed { output, .. } => {
                    assert_eq!(output, want, "wave {wave} request {i} diverged");
                    completed += 1;
                }
                // The generous 2s deadline should never fire, but if a
                // loaded CI machine stalls that long the rejection is
                // still the *correct* (clean) answer.
                Outcome::Rejected(RejectReason::DeadlineExpired) => rejected += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 96);
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.completed + rejected, 96);
    assert_eq!(stats.lost(), 0);
    assert!(stats.latency.count() == stats.completed);
}
