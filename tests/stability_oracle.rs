//! Stability-proving differential suite: keyed `(key, original_index)`
//! pairs over nine adversarial families × every dispatch policy × three
//! thread counts, asserting **byte-identical** order with the sequential
//! stable oracle.
//!
//! `tests/oracle_differential.rs` proves every kernel equals the oracle;
//! this suite is the dedicated *stability* layer the co-rank kernel's
//! proof obligations call for (ROADMAP: keyed-pair duplicate-heavy
//! differential). Each element carries its original index as provenance
//! the comparator never sees, so equality with the stable oracle pins the
//! exact tie order: within every tie class, all of `A`'s elements precede
//! all of `B`'s, each side in original input order. The families are sized
//! past the adaptive probe's minimum (256) and the co-rank kernel's block
//! granularity (256) so every policy — including the co-rank block splits
//! this PR introduces — executes its real code path, not a short-input
//! fallback.

use std::cmp::Ordering;

use mergepath_suite::mergepath::merge::adaptive::{
    with_dispatch_policy, DispatchPolicy, SegmentKernel,
};
use mergepath_suite::mergepath::merge::batch::batch_merge_into_by;
use mergepath_suite::mergepath::merge::parallel::parallel_merge_into_by;
use mergepath_suite::mergepath::merge::sequential::merge_into_by;
use mergepath_suite::mergepath::merge::stable::{stable_parallel_merge_into_by, CO_RANK_BLOCK};
use mergepath_suite::workloads::prng::Prng;

/// A keyed element: compared by `.0`; `.1` is the element's original index
/// in its input (B offset by 1_000_000), invisible to the comparator.
type Kv = (i32, u32);

fn cmp(x: &Kv, y: &Kv) -> Ordering {
    x.0.cmp(&y.0)
}

/// Tags each key with its original index: `a[i] -> (key, i)`,
/// `b[i] -> (key, 1_000_000 + i)`.
fn tag(a: &[i32], b: &[i32]) -> (Vec<Kv>, Vec<Kv>) {
    let ta = a.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
    let tb = b
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, 1_000_000 + i as u32))
        .collect();
    (ta, tb)
}

/// Nine adversarial families, weighted toward duplicate-heavy shapes where
/// stability is maximally observable. All sized so per-worker segments at
/// the tested thread counts still exceed the probe minimum and hold
/// interior co-rank block cuts.
fn families() -> Vec<(&'static str, Vec<i32>, Vec<i32>)> {
    let mut rng = Prng::seed_from_u64(0x0057_AB1E);
    let mut random_sorted = |len: usize, key_space: u64| -> Vec<i32> {
        let mut v: Vec<i32> = (0..len).map(|_| rng.below(key_space) as i32).collect();
        v.sort_unstable();
        v
    };
    let block = CO_RANK_BLOCK as i32;
    vec![
        // One giant tie class: the most hostile stability input there is.
        ("all_equal", vec![7; 2600], vec![7; 2100]),
        // Tiny key space: every key is a wide mixed tie class.
        (
            "duplicate_heavy",
            random_sorted(2800, 5),
            random_sorted(2500, 5),
        ),
        // Tie runs exactly one block wide, so tie classes land precisely on
        // and around the co-rank kernel's interior block cuts.
        (
            "block_aligned_ties",
            (0..2560).map(|i| i / block).collect(),
            (0..2560).map(|i| i / block).collect(),
        ),
        // Tie runs one past the block width: every cut straddles a class.
        (
            "block_straddling_ties",
            (0..2570).map(|i| i / (block + 1)).collect(),
            (0..2570).map(|i| i / (block + 1)).collect(),
        ),
        ("one_side_empty", (0..2000).collect(), vec![]),
        (
            "interleaved_runs",
            (0..1500).map(|x| x * 2).collect(),
            (0..1500).map(|x| x * 2 + 1).collect(),
        ),
        (
            "disjoint_ranges",
            (0..1400).collect(),
            (10_000..11_400).collect(),
        ),
        (
            "random_with_ties",
            random_sorted(1731, 90),
            random_sorted(1977, 90),
        ),
        ("singleton_vs_run", vec![600], (0..1800).collect()),
    ]
}

fn policies() -> [DispatchPolicy; 6] {
    [
        DispatchPolicy::Adaptive,
        DispatchPolicy::Fixed(SegmentKernel::Classic),
        DispatchPolicy::Fixed(SegmentKernel::BranchLean),
        DispatchPolicy::Fixed(SegmentKernel::Galloping),
        DispatchPolicy::Fixed(SegmentKernel::Simd),
        DispatchPolicy::Fixed(SegmentKernel::CoRank),
    ]
}

const THREADS: [usize; 3] = [2, 4, 7];

/// Stability, asserted directly on the output rather than through the
/// oracle: within a tie class, provenance strictly increases — A's
/// elements (tags < 1_000_000, in input order) before B's (in input order).
fn assert_stable(out: &[Kv], label: &str) {
    for w in out.windows(2) {
        if w[0].0 == w[1].0 {
            assert!(
                w[0].1 < w[1].1,
                "{label}: tie class out of stable order: {:?} before {:?}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn every_policy_produces_the_stable_order_on_every_family() {
    for (name, ka, kb) in families() {
        let (a, b) = tag(&ka, &kb);
        let n = a.len() + b.len();
        let mut oracle = vec![(0, 0); n];
        merge_into_by(&a, &b, &mut oracle, &cmp);
        assert_stable(&oracle, name);
        for policy in policies() {
            with_dispatch_policy(policy, || {
                for threads in THREADS {
                    let label = format!("{name}: {policy:?}, threads={threads}");
                    let mut out = vec![(0, 0); n];
                    parallel_merge_into_by(&a, &b, &mut out, threads, &cmp);
                    assert_eq!(out, oracle, "{label}");
                    assert_stable(&out, &label);
                }
            });
        }
    }
}

#[test]
fn the_exact_balance_co_rank_merge_is_stable_on_every_family() {
    // The top-level co-rank parallel entry cuts the output at the exactly
    // balanced 1303.4312 boundaries instead of the ⌊k·n/p⌋ diagonals; its
    // stability proof is block-split uniqueness, checked here byte-for-byte
    // against the oracle under every family and thread count.
    for (name, ka, kb) in families() {
        let (a, b) = tag(&ka, &kb);
        let n = a.len() + b.len();
        let mut oracle = vec![(0, 0); n];
        merge_into_by(&a, &b, &mut oracle, &cmp);
        for threads in THREADS {
            let label = format!("{name}: stable_parallel, threads={threads}");
            let mut out = vec![(0, 0); n];
            stable_parallel_merge_into_by(&a, &b, &mut out, threads, &cmp);
            assert_eq!(out, oracle, "{label}");
            assert_stable(&out, &label);
        }
    }
}

#[test]
fn batched_merges_keep_the_stable_order_under_every_policy() {
    // The batch kernel shares the adaptive segment dispatch; the
    // duplicate-heavy families must come out stable under every policy
    // when many pairs share one worker budget.
    let fams = families();
    let tagged: Vec<(Vec<Kv>, Vec<Kv>)> = fams.iter().map(|(_, ka, kb)| tag(ka, kb)).collect();
    let pairs: Vec<(&[Kv], &[Kv])> = tagged
        .iter()
        .map(|(a, b)| (a.as_slice(), b.as_slice()))
        .collect();
    let mut oracle = Vec::new();
    for (a, b) in &pairs {
        let mut m = vec![(0, 0); a.len() + b.len()];
        merge_into_by(a, b, &mut m, &cmp);
        oracle.extend(m);
    }
    for policy in policies() {
        with_dispatch_policy(policy, || {
            for threads in THREADS {
                let mut out = vec![(0, 0); oracle.len()];
                batch_merge_into_by(&pairs, &mut out, threads, &cmp);
                assert_eq!(out, oracle, "{policy:?}, threads={threads}");
            }
        });
    }
}
