//! Differential oracle tests: every parallel merge variant in the core
//! crate must produce output *identical* to the sequential reference merge
//! ([`merge_into_by`]) — not merely sorted output — on a family of
//! adversarial inputs. Elements are `(key, provenance)` pairs compared by
//! key only, so byte-for-byte equality with the stable sequential oracle
//! also pins down stability: within a tie class, all of `A`'s elements
//! precede all of `B`'s, each side in original order.

use mergepath_suite::mergepath::merge::batch::batch_merge_into_by;
use mergepath_suite::mergepath::merge::hierarchical::{
    hierarchical_merge_into_by, HierarchicalConfig,
};
use mergepath_suite::mergepath::merge::inplace::parallel_inplace_merge_by;
use mergepath_suite::mergepath::merge::kway::parallel_kway_merge_by;
use mergepath_suite::mergepath::merge::parallel::parallel_merge_into_by;
use mergepath_suite::mergepath::merge::segmented::{
    segmented_parallel_merge_into_by, SpmConfig, Staging,
};
use mergepath_suite::mergepath::merge::sequential::merge_into_by;
use mergepath_suite::workloads::prng::Prng;

/// A keyed element: compared by `.0`, disambiguated by provenance `.1`.
type Kv = (i32, u32);

fn cmp(x: &Kv, y: &Kv) -> std::cmp::Ordering {
    x.0.cmp(&y.0)
}

/// Tags `a`'s elements with provenance 0.. and `b`'s with 1_000_000.. so
/// every element of the merged output is globally unique.
fn tag(a: &[i32], b: &[i32]) -> (Vec<Kv>, Vec<Kv>) {
    let ta = a.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
    let tb = b
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, 1_000_000 + i as u32))
        .collect();
    (ta, tb)
}

/// The adversarial input families from the paper's worst cases: heavy
/// ties, one-sided consumption, duplicate-dense keys, interleaved runs.
fn adversarial_inputs() -> Vec<(&'static str, Vec<i32>, Vec<i32>)> {
    let mut rng = Prng::seed_from_u64(0xD1FF);
    let mut random_sorted = |len: usize, key_space: u64| -> Vec<i32> {
        let mut v: Vec<i32> = (0..len).map(|_| rng.below(key_space) as i32).collect();
        v.sort_unstable();
        v
    };
    vec![
        ("all_equal", vec![7; 700], vec![7; 450]),
        ("one_side_empty", (0..900).collect(), vec![]),
        ("other_side_empty", vec![], (0..900).collect()),
        (
            "duplicate_heavy",
            random_sorted(800, 5),
            random_sorted(650, 5),
        ),
        (
            "interleaved_runs",
            (0..600).map(|x| x * 2).collect(),
            (0..600).map(|x| x * 2 + 1).collect(),
        ),
        (
            "disjoint_a_below_b",
            (0..500).collect(),
            (1000..1600).collect(),
        ),
        (
            "disjoint_b_below_a",
            (1000..1600).collect(),
            (0..500).collect(),
        ),
        (
            "random_with_ties",
            random_sorted(731, 90),
            random_sorted(977, 90),
        ),
        ("singleton_vs_run", vec![250], (0..500).collect()),
    ]
}

/// Stability invariant, checked directly on the merged output: within a
/// run of equal keys, provenance must be ordered "all A (ascending), then
/// all B (ascending)".
fn assert_stable(out: &[Kv], name: &str) {
    for w in out.windows(2) {
        if w[0].0 == w[1].0 {
            assert!(
                w[0].1 < w[1].1,
                "{name}: tie class out of stable order: {:?} before {:?}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn every_variant_matches_the_sequential_oracle() {
    for (name, ka, kb) in adversarial_inputs() {
        let (a, b) = tag(&ka, &kb);
        let n = a.len() + b.len();
        let mut oracle = vec![(0, 0); n];
        merge_into_by(&a, &b, &mut oracle, &cmp);
        assert_stable(&oracle, name);

        for threads in [1usize, 2, 3, 5, 8, 16] {
            let label = format!("{name}, threads={threads}");

            let mut out = vec![(0, 0); n];
            parallel_merge_into_by(&a, &b, &mut out, threads, &cmp);
            assert_eq!(out, oracle, "parallel: {label}");

            for staging in [Staging::Windowed, Staging::Cyclic] {
                let spm = SpmConfig::new(91, threads).with_staging(staging);
                out.fill((0, 0));
                segmented_parallel_merge_into_by(&a, &b, &mut out, &spm, &cmp);
                assert_eq!(out, oracle, "segmented {staging:?}: {label}");
            }

            let pairs: Vec<(&[Kv], &[Kv])> = vec![(&a, &b)];
            out.fill((0, 0));
            batch_merge_into_by(&pairs, &mut out, threads, &cmp);
            assert_eq!(out, oracle, "batch: {label}");

            let mut v: Vec<Kv> = a.iter().chain(b.iter()).copied().collect();
            parallel_inplace_merge_by(&mut v, a.len(), threads, &cmp);
            assert_eq!(v, oracle, "inplace: {label}");

            let lists: Vec<&[Kv]> = vec![&a, &b];
            out.fill((0, 0));
            parallel_kway_merge_by(&lists, &mut out, threads, &cmp);
            assert_eq!(out, oracle, "kway: {label}");

            let hier = HierarchicalConfig {
                blocks: threads,
                threads_per_block: 4,
                tile: 64,
            };
            out.fill((0, 0));
            hierarchical_merge_into_by(&a, &b, &mut out, &hier, &cmp);
            assert_eq!(out, oracle, "hierarchical: {label}");
        }
    }
}

#[test]
fn every_dispatch_policy_matches_the_oracle_on_every_family() {
    // The adaptive layer's contract: whatever kernel the run-structure
    // probe picks — and whatever kernel a fixed policy pins — the output
    // is byte-identical to the sequential oracle on all nine adversarial
    // families. The sweep covers Adaptive plus each kernel forced, so a
    // probe misroute can only ever cost speed, never correctness; the
    // scoped override serializes concurrent sweeps.
    use mergepath_suite::mergepath::merge::adaptive::{
        with_dispatch_policy, DispatchPolicy, SegmentKernel,
    };
    let policies = [
        DispatchPolicy::Adaptive,
        DispatchPolicy::Fixed(SegmentKernel::Classic),
        DispatchPolicy::Fixed(SegmentKernel::BranchLean),
        DispatchPolicy::Fixed(SegmentKernel::Galloping),
        // Forced-Simd on (key, tag) pairs exercises the vector entry
        // point's internal fallback: the comparator is not the canonical
        // one, so every segment must take the scalar path byte-identically.
        DispatchPolicy::Fixed(SegmentKernel::Simd),
        // Forced-CoRank routes every segment through the co-rank stable
        // block kernel, whose block cuts are the provably unique stable
        // splits — these families are where that proof is observable.
        DispatchPolicy::Fixed(SegmentKernel::CoRank),
    ];
    for (name, ka, kb) in adversarial_inputs() {
        let (a, b) = tag(&ka, &kb);
        let n = a.len() + b.len();
        let mut oracle = vec![(0, 0); n];
        merge_into_by(&a, &b, &mut oracle, &cmp);
        for policy in policies {
            with_dispatch_policy(policy, || {
                for threads in [1usize, 3, 8] {
                    let mut out = vec![(0, 0); n];
                    parallel_merge_into_by(&a, &b, &mut out, threads, &cmp);
                    assert_eq!(out, oracle, "{name}: {policy:?}, threads={threads}");

                    let pairs: Vec<(&[Kv], &[Kv])> = vec![(&a, &b)];
                    out.fill((0, 0));
                    batch_merge_into_by(&pairs, &mut out, threads, &cmp);
                    assert_eq!(out, oracle, "batch {name}: {policy:?}, threads={threads}");
                }
            });
        }
    }
}

#[test]
fn adaptive_dispatch_survives_permuted_schedules_under_forced_kernels() {
    // The schedule dimension crossed with the dispatch dimension: every
    // kernel of the schedule checker runs under permuted virtual schedules
    // while the segment dispatch is pinned to each sequential kernel in
    // turn. CREW exclusivity and coverage must hold regardless of which
    // inner kernel writes the segments.
    use mergepath_check::{check_kernel_on, CheckConfig, Kernel};
    use mergepath_suite::mergepath::merge::adaptive::{
        with_dispatch_policy, DispatchPolicy, SegmentKernel,
    };
    let (name, ka, kb) = &adversarial_inputs()[3]; // duplicate_heavy
    let (a, b) = tag(ka, kb);
    let cfg = CheckConfig {
        threads: 4,
        schedules: 4,
        seed: 0xD1FF,
        pram_limit: 0,
        steal_orders: false,
    };
    for policy in [
        DispatchPolicy::Adaptive,
        DispatchPolicy::Fixed(SegmentKernel::Classic),
        DispatchPolicy::Fixed(SegmentKernel::BranchLean),
        DispatchPolicy::Fixed(SegmentKernel::Galloping),
        DispatchPolicy::Fixed(SegmentKernel::Simd),
        DispatchPolicy::Fixed(SegmentKernel::CoRank),
    ] {
        with_dispatch_policy(policy, || {
            for &kernel in &Kernel::ALL {
                if let Err(e) = check_kernel_on(kernel, &a, &b, &cfg) {
                    panic!("{name}: {} under {policy:?}: {e}", kernel.name());
                }
            }
        });
    }
}

#[test]
fn every_kernel_survives_permuted_schedules_on_adversarial_inputs() {
    // The schedule dimension: each adversarial family runs under 8
    // seed-permuted virtual schedules per kernel (mergepath-check's
    // deterministic executor). The checker demands byte-identical agreement
    // with its sequential oracle on every schedule *and* verifies CREW
    // disjointness, exact coverage and the Thm 14 bound on the recorded
    // access sets — turning each differential case into a scheduling proof.
    use mergepath_check::{check_kernel_on, CheckConfig, Kernel};
    for (name, ka, kb) in adversarial_inputs() {
        let (a, b) = tag(&ka, &kb);
        for threads in [2usize, 4] {
            let cfg = CheckConfig {
                threads,
                schedules: 8,
                seed: 0xD1FF ^ threads as u64,
                pram_limit: 0, // machine cross-validation covered in mergepath-check
                steal_orders: false,
            };
            for &kernel in &Kernel::ALL {
                if let Err(e) = check_kernel_on(kernel, &a, &b, &cfg) {
                    panic!("{name}: {} threads={threads}: {e}", kernel.name());
                }
            }
        }
    }
}

#[test]
fn batch_variant_matches_oracle_on_ragged_batches() {
    // The batch kernel's own adversary: many pairs of wildly different
    // sizes, including empty pairs, merged under one worker budget.
    let families = adversarial_inputs();
    let tagged: Vec<(Vec<Kv>, Vec<Kv>)> = families.iter().map(|(_, ka, kb)| tag(ka, kb)).collect();
    let pairs: Vec<(&[Kv], &[Kv])> = tagged
        .iter()
        .map(|(a, b)| (a.as_slice(), b.as_slice()))
        .collect();
    let mut oracle = Vec::new();
    for (a, b) in &pairs {
        let mut m = vec![(0, 0); a.len() + b.len()];
        merge_into_by(a, b, &mut m, &cmp);
        oracle.extend(m);
    }
    for threads in [1usize, 3, 8, 32] {
        let mut out = vec![(0, 0); oracle.len()];
        batch_merge_into_by(&pairs, &mut out, threads, &cmp);
        assert_eq!(out, oracle, "threads={threads}");
    }
}

#[test]
fn kway_variant_matches_oracle_on_many_lists() {
    // k > 2 sorted lists with shared provenance-tagged key space: the
    // k-way merge's stable order is "by key, then by list index, then by
    // position", which a pairwise fold of the sequential oracle yields
    // when each list's provenance band is ordered by list index.
    let mut rng = Prng::seed_from_u64(0xCAFE);
    let lists_data: Vec<Vec<Kv>> = (0..7)
        .map(|li| {
            let len = 100 + rng.below(400) as usize;
            let mut keys: Vec<i32> = (0..len).map(|_| rng.below(40) as i32).collect();
            keys.sort_unstable();
            keys.iter()
                .enumerate()
                .map(|(i, &k)| (k, li as u32 * 1_000_000 + i as u32))
                .collect()
        })
        .collect();
    let lists: Vec<&[Kv]> = lists_data.iter().map(|l| l.as_slice()).collect();
    // Fold with the two-way oracle; provenance bands keep the fold stable.
    let mut oracle: Vec<Kv> = Vec::new();
    for l in &lists {
        let mut next = vec![(0, 0); oracle.len() + l.len()];
        merge_into_by(&oracle, l, &mut next, &cmp);
        oracle = next;
    }
    assert_stable(&oracle, "kway_fold");
    for threads in [1usize, 2, 5, 9] {
        let mut out = vec![(0, 0); oracle.len()];
        parallel_kway_merge_by(&lists, &mut out, threads, &cmp);
        assert_eq!(out, oracle, "threads={threads}");
    }
}
