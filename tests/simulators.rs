//! Integration tests for the two analysis substrates working against the
//! real kernels: cache scenarios reproduce the §IV phenomena, and the PRAM
//! bandwidth model reproduces the §VI saturation.

use mergepath_suite::cache_sim::cache::CacheConfig;
use mergepath_suite::cache_sim::scenarios::{
    parallel_merge_shared, sequential_merge, spm_cyclic_shared, spm_windowed_shared,
};
use mergepath_suite::cache_sim::MemoryLayout;
use mergepath_suite::mergepath::merge::segmented::SpmConfig;
use mergepath_suite::pram::kernels::measure_merge_bw;
use mergepath_suite::workloads::{merge_pair, MergeWorkload};

#[test]
fn three_way_associativity_suffices_sequentially() {
    // The §IV.B remark, end to end: same data, same capacity-per-way,
    // aligned streams; ways swept 1..4.
    let (a, b) = merge_pair(MergeWorkload::Uniform, 1 << 13, 0x3A);
    let way = 4096u64;
    let mut rates = Vec::new();
    for ways in [1usize, 2, 3, 4] {
        let cfg = CacheConfig {
            capacity_bytes: ways * way as usize,
            line_bytes: 64,
            associativity: ways,
        };
        let layout = MemoryLayout::set_aligned(4, way, 0);
        rates.push(sequential_merge(&a, &b, layout, cfg).miss_rate());
    }
    // 1-way thrashes; 3-way reaches the compulsory floor; 4-way adds ~nothing.
    assert!(
        rates[0] > 3.0 * rates[2],
        "1-way {} vs 3-way {}",
        rates[0],
        rates[2]
    );
    assert!((rates[2] - rates[3]).abs() < 0.01, "3-way ≈ 4-way");
}

#[test]
fn spm_outperforms_basic_merge_on_simple_caches() {
    // The Hypercore scenario (§VI): simple shared cache, several cores.
    // Basic Algorithm 1 lets p workers walk 3p unbounded streams; SPM
    // confines them to a fixed staging footprint.
    let (a, b) = merge_pair(MergeWorkload::Uniform, 1 << 14, 0x5B);
    let cfg = CacheConfig {
        capacity_bytes: 16 * 1024,
        line_bytes: 64,
        associativity: 1, // direct-mapped: the "simple cache"
    };
    let spm = SpmConfig::new(cfg.capacity_elems(4), 4);
    let layout = MemoryLayout::natural(4, 1 << 14, 1 << 14, spm.segment_len() as u64);
    let basic = parallel_merge_shared(&a, &b, 4, layout, cfg);
    let cyclic = spm_cyclic_shared(&a, &b, &spm, layout, cfg);
    assert!(
        cyclic.miss_rate() < basic.miss_rate(),
        "SPM {} should beat basic {} on a direct-mapped shared cache",
        cyclic.miss_rate(),
        basic.miss_rate()
    );
}

#[test]
fn windowed_spm_matches_semantics_while_tracing() {
    // The windowed scenario consumes exactly the full inputs (its internal
    // accounting drives the windows); totals must reconcile.
    let (a, b) = merge_pair(MergeWorkload::DuplicateHeavy, 3000, 0x77);
    let spm = SpmConfig::new(99, 3);
    let layout = MemoryLayout::natural(4, 3000, 3000, spm.segment_len() as u64);
    let cfg = CacheConfig::new(64 * 1024, 8);
    let stats = spm_windowed_shared(&a, &b, &spm, layout, cfg);
    // Every output element is written exactly once → at least N accesses.
    assert!(stats.accesses() >= 6000);
}

#[test]
fn bandwidth_model_caps_speedup() {
    let (a32, b32) = merge_pair(MergeWorkload::Uniform, 1 << 14, 0x88);
    let a: Vec<u64> = a32.iter().map(|&x| x as u64).collect();
    let b: Vec<u64> = b32.iter().map(|&x| x as u64).collect();
    let (t1, _) = measure_merge_bw(&a, &b, 1, false, Some(8.0)).unwrap();
    let (t16, _) = measure_merge_bw(&a, &b, 16, false, Some(8.0)).unwrap();
    let speedup = t1.time as f64 / t16.time as f64;
    // 4 memory ops of 5 total per element → cap = 8 / (4/5) = 10.
    assert!(speedup < 10.5, "bandwidth cap exceeded: {speedup}");
    assert!(speedup > 9.0, "cap should be nearly reached: {speedup}");
    // Unlimited bandwidth for contrast.
    let (u1, _) = measure_merge_bw(&a, &b, 1, false, None).unwrap();
    let (u16, _) = measure_merge_bw(&a, &b, 16, false, None).unwrap();
    assert!(u1.time as f64 / u16.time as f64 > 15.0);
}

#[test]
fn scenario_miss_counts_scale_with_data_not_cache() {
    // Streaming compulsory misses are a property of the data size; cache
    // capacity beyond the working set must not change them.
    let (a, b) = merge_pair(MergeWorkload::Uniform, 1 << 13, 0x99);
    let layout = MemoryLayout::natural(4, 1 << 13, 1 << 13, 0);
    let m1 = sequential_merge(&a, &b, layout, CacheConfig::new(1 << 20, 8));
    let m2 = sequential_merge(&a, &b, layout, CacheConfig::new(1 << 22, 8));
    assert_eq!(m1.misses, m2.misses);
}
