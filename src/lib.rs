//! Workspace umbrella crate: hosts the cross-crate integration tests and
//! the runnable examples. Re-exports the member crates for convenience.
pub use mergepath;
pub use mergepath_baselines as baselines;
pub use mergepath_cache_sim as cache_sim;
pub use mergepath_pram as pram;
pub use mergepath_serve as serve;
pub use mergepath_workloads as workloads;
