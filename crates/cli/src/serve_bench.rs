//! `mp serve` and `mp bench --serve` — the serving-layer harness behind
//! `BENCH_serve.json`.
//!
//! Two entry points share one machinery:
//!
//! * [`run_serve`] drives a single live daemon run (`mp serve`) with a
//!   [`TimelineRecorder`] attached, checks every completed response
//!   against the sequential oracle, and summarizes stats plus the
//!   `serve_*` telemetry counters.
//! * [`run_serve_bench`] sweeps arrival pattern × concurrency level
//!   (`mp bench --serve`) and renders the `bench_serve` artifact through
//!   the shared envelope writer. Each cell pairs a **deterministic
//!   replay** of the admission policy (reproducible outcome counts, pure
//!   function of `(seed, config)`) with a **live run** (measured
//!   throughput and p50/p99 latency) over the same arrival plan.
//!
//! The live half paces submissions along the plan's arrival timestamps
//! with the real clock, so latency numbers are machine-dependent like the
//! other `BENCH_*` timings; the replay half is the artifact's
//! reproducible anchor (`tests/serve_determinism.rs` pins it).

use std::fmt::Write as _;

use mergepath::merge::sequential::merge_into_by;
use mergepath::telemetry::artifact::{render_artifact, EnvFingerprint};
use mergepath::telemetry::TimelineRecorder;
use mergepath_serve::{
    replay, NoRecorder, Outcome, ReplayConfig, ReplayOutcome, Request, ServeConfig, ServeStats,
    Server, ServiceModel,
};
use mergepath_telemetry::now_ns;
use mergepath_workloads::{
    arrival_plan, merge_pair_sized, ArrivalPattern, PlanConfig, RequestSpec,
};

/// Knobs shared by `mp serve` and every cell of `mp bench --serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeBenchConfig {
    /// Requests per arrival plan.
    pub requests: usize,
    /// Mean per-side input length (per-request lengths are drawn around
    /// it by the plan).
    pub mean_len: usize,
    /// Target mean inter-arrival gap, nanoseconds.
    pub mean_gap_ns: u64,
    /// Relative deadline per request, nanoseconds (0 = none).
    pub deadline_ns: u64,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Pool-thread budget shared by in-flight requests.
    pub worker_budget: usize,
    /// Concurrency levels (serving threads) the bench sweeps.
    pub levels: Vec<usize>,
    /// Root seed for the arrival plans.
    pub seed: u64,
}

impl ServeBenchConfig {
    /// The full configuration behind the committed artifact.
    pub fn full(worker_budget: usize, seed: u64) -> Self {
        ServeBenchConfig {
            requests: 512,
            mean_len: 4096,
            mean_gap_ns: 50_000,
            deadline_ns: 5_000_000,
            queue_capacity: 64,
            worker_budget,
            levels: vec![1, 4, 16, 64],
            seed,
        }
    }

    /// A fast configuration for CI's `verify-serve` gate and tests.
    /// Still ≥ 4 concurrency levels — the artifact's schema contract.
    pub fn smoke(worker_budget: usize, seed: u64) -> Self {
        ServeBenchConfig {
            requests: 96,
            mean_len: 1024,
            mean_gap_ns: 20_000,
            deadline_ns: 5_000_000,
            queue_capacity: 32,
            worker_budget,
            levels: vec![1, 2, 4, 8],
            seed,
        }
    }

    fn plan_config(&self, pattern: ArrivalPattern) -> PlanConfig {
        PlanConfig {
            pattern,
            requests: self.requests,
            mean_gap_ns: self.mean_gap_ns,
            deadline_ns: self.deadline_ns,
            mean_len: self.mean_len,
            seed: self.seed,
        }
    }
}

/// The deterministic service-time model the replay half charges per
/// request: a fixed dispatch overhead plus linear per-element work (Thm 2
/// — sequential merge is linear in the output length). Calibration is
/// loose on purpose; the replay needs a *consistent* cost notion, not an
/// accurate one, and changing it changes `BENCH_serve.json`'s replay
/// counts everywhere at once.
pub const REPLAY_SERVICE_MODEL: ServiceModel = ServiceModel {
    base_ns: 20_000,
    per_item_ns: 25,
};

/// One live run's inputs: the regenerated request arrays and the
/// sequential oracle's answer for each.
struct PreparedRequest {
    spec: RequestSpec,
    a: Vec<u32>,
    b: Vec<u32>,
    expected: Vec<u32>,
}

/// Regenerates every planned request's inputs from
/// `(workload, len_a, len_b, data_seed)` and computes the sequential
/// oracle answer — all before any clock starts, so preparation cost never
/// pollutes the measured run.
fn prepare(plan: &[RequestSpec]) -> Vec<PreparedRequest> {
    plan.iter()
        .map(|spec| {
            let (a, b) = merge_pair_sized(spec.workload, spec.len_a, spec.len_b, spec.data_seed);
            let mut expected = vec![0u32; a.len() + b.len()];
            merge_into_by(&a, &b, &mut expected, &|x: &u32, y: &u32| x.cmp(y));
            PreparedRequest {
                spec: *spec,
                a,
                b,
                expected,
            }
        })
        .collect()
}

/// Outcome of one live paced run.
struct LiveRun {
    stats: ServeStats,
    wall_ns: u64,
    correctness_failures: usize,
}

/// Plays `prepared` through a live daemon under `cfg`, pacing submissions
/// along the plan's arrival timestamps. Every completed response is
/// compared byte-for-byte against the sequential oracle.
fn live_run<R>(prepared: &[PreparedRequest], cfg: ServeConfig, rec: R) -> LiveRun
where
    R: mergepath_serve::Recorder + Send + Sync + 'static,
{
    let server: Server<u32, R> = Server::start(cfg, rec);
    let t0 = now_ns();
    let mut handles = Vec::with_capacity(prepared.len());
    for p in prepared {
        // Pace: wait out the plan's inter-arrival gap. Short waits spin
        // (sleep granularity on most platforms is far coarser than the
        // microsecond-scale gaps the plans use).
        let due = t0.saturating_add(p.spec.arrival_ns);
        loop {
            let now = now_ns();
            if now >= due {
                break;
            }
            let remaining = due - now;
            if remaining > 200_000 {
                std::thread::sleep(std::time::Duration::from_nanos(remaining / 2));
            } else {
                std::hint::spin_loop();
            }
        }
        let mut req = Request::merge(p.spec.id as u64, p.a.clone(), p.b.clone());
        if p.spec.deadline_ns != 0 {
            req = req.with_deadline_in(p.spec.deadline_ns);
        }
        if let Ok(h) = server.submit(req) {
            handles.push(h);
        }
    }
    let mut correctness_failures = 0usize;
    for h in handles {
        let id = h.id as usize;
        match h.wait() {
            Outcome::Completed { output, .. } => {
                if output != prepared[id].expected {
                    correctness_failures += 1;
                }
            }
            Outcome::Rejected(_) => {}
            Outcome::Failed => correctness_failures += 1,
        }
    }
    let wall_ns = now_ns().saturating_sub(t0);
    let stats = server.shutdown();
    LiveRun {
        stats,
        wall_ns,
        correctness_failures,
    }
}

/// One pattern × concurrency cell of the bench table.
#[derive(Debug, Clone)]
struct ServeRow {
    pattern: &'static str,
    concurrency: usize,
    stats: ServeStats,
    wall_ns: u64,
    correctness_failures: usize,
    replay_completed: usize,
    replay_rejected_queue_full: usize,
    replay_rejected_deadline: usize,
}

impl ServeRow {
    fn throughput_rps(&self) -> f64 {
        self.stats.completed as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

/// The rendered artifacts of one `mp bench --serve` run.
#[derive(Debug, Clone)]
pub struct ServeBenchArtifacts {
    /// Human-readable summary for stdout.
    pub summary: String,
    /// `BENCH_serve.json` contents.
    pub serve_json: String,
}

fn rows_payload(cfg: &ServeBenchConfig, rows: &[ServeRow]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"requests\":{},\"mean_len\":{},\"mean_gap_ns\":{},\"deadline_ns\":{},\
         \"queue_capacity\":{},\"worker_budget\":{},\"seed\":{},\
         \"replay_base_ns\":{},\"replay_per_item_ns\":{},\"levels\":[",
        cfg.requests,
        cfg.mean_len,
        cfg.mean_gap_ns,
        cfg.deadline_ns,
        cfg.queue_capacity,
        cfg.worker_budget,
        cfg.seed,
        REPLAY_SERVICE_MODEL.base_ns,
        REPLAY_SERVICE_MODEL.per_item_ns,
    );
    for (i, l) in cfg.levels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{l}");
    }
    out.push_str("],\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"pattern\":\"{}\",\"concurrency\":{},\"submitted\":{},\"completed\":{},\
             \"rejected_queue_full\":{},\"rejected_deadline\":{},\"failed\":{},\"lost\":{},\
             \"correctness_failures\":{},\"queue_depth_peak\":{},\"inflight_peak\":{},\
             \"wall_ns\":{},\"throughput_rps\":{},\"p50_ns\":{},\"p99_ns\":{},\
             \"replay_completed\":{},\"replay_rejected_queue_full\":{},\
             \"replay_rejected_deadline\":{},\"latency\":{}}}",
            r.pattern,
            r.concurrency,
            r.stats.submitted,
            r.stats.completed,
            r.stats.rejected_queue_full,
            r.stats.rejected_deadline,
            r.stats.failed,
            r.stats.lost(),
            r.correctness_failures,
            r.stats.queue_depth_peak,
            r.stats.inflight_peak,
            r.wall_ns,
            r.throughput_rps(),
            r.stats.latency.percentile(0.50),
            r.stats.latency.percentile(0.99),
            r.replay_completed,
            r.replay_rejected_queue_full,
            r.replay_rejected_deadline,
            r.stats.latency.to_json(),
        );
    }
    out.push_str("]}");
    out
}

/// Runs the pattern × concurrency sweep and renders `BENCH_serve.json`.
///
/// # Panics
/// Panics if the assembled artifact fails the envelope self-check, if a
/// live run loses a request, or if any completed response differs from
/// the sequential oracle — all bugs, not input conditions.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServeBenchArtifacts {
    assert!(cfg.levels.len() >= 4, "the artifact sweeps ≥ 4 levels");
    let env = EnvFingerprint::capture();
    let mut summary = format!(
        "mp bench --serve: requests={} mean_len={} gap={}ns deadline={}ns queue={} budget={} seed={}\n",
        cfg.requests,
        cfg.mean_len,
        cfg.mean_gap_ns,
        cfg.deadline_ns,
        cfg.queue_capacity,
        cfg.worker_budget,
        cfg.seed,
    );
    let _ = writeln!(
        summary,
        "  pattern      conc   done  rej_q  rej_d   thr(req/s)     p50        p99"
    );
    let mut rows = Vec::new();
    for pattern in ArrivalPattern::ALL {
        let plan = arrival_plan(&cfg.plan_config(pattern));
        let prepared = prepare(&plan);
        for &level in &cfg.levels {
            let log = replay(
                &plan,
                &ReplayConfig {
                    queue_capacity: cfg.queue_capacity,
                    max_inflight: level,
                },
                &REPLAY_SERVICE_MODEL,
            );
            let count = |o: ReplayOutcome| log.iter().filter(|e| e.outcome == o).count();
            let live = live_run(
                &prepared,
                ServeConfig {
                    queue_capacity: cfg.queue_capacity,
                    max_inflight: level,
                    worker_budget: cfg.worker_budget,
                },
                NoRecorder,
            );
            assert_eq!(
                live.stats.lost(),
                0,
                "{} @ {level}: live run lost requests",
                pattern.name()
            );
            assert_eq!(
                live.correctness_failures,
                0,
                "{} @ {level}: completed response differed from the oracle",
                pattern.name()
            );
            let row = ServeRow {
                pattern: pattern.name(),
                concurrency: level,
                stats: live.stats,
                wall_ns: live.wall_ns,
                correctness_failures: live.correctness_failures,
                replay_completed: count(ReplayOutcome::Completed),
                replay_rejected_queue_full: count(ReplayOutcome::RejectedQueueFull),
                replay_rejected_deadline: count(ReplayOutcome::RejectedDeadline),
            };
            let _ = writeln!(
                summary,
                "  {:<12} {:>4} {:>6} {:>6} {:>6} {:>12.0} {:>9}ns {:>9}ns",
                row.pattern,
                row.concurrency,
                row.stats.completed,
                row.stats.rejected_queue_full,
                row.stats.rejected_deadline,
                row.throughput_rps(),
                row.stats.latency.percentile(0.50),
                row.stats.latency.percentile(0.99),
            );
            rows.push(row);
        }
    }
    let serve_json = render_artifact("bench_serve", &env, &rows_payload(cfg, &rows))
        .expect("serve artifact must pass its own schema check");
    ServeBenchArtifacts {
        summary,
        serve_json,
    }
}

/// Configuration of one `mp serve` demonstration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRunConfig {
    /// Requests in the arrival plan.
    pub requests: usize,
    /// Serving threads (maximum in-flight requests).
    pub concurrency: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Relative deadline per request, nanoseconds (0 = none).
    pub deadline_ns: u64,
    /// Arrival process.
    pub pattern: ArrivalPattern,
    /// Mean per-side input length.
    pub mean_len: usize,
    /// Pool-thread budget shared by in-flight requests.
    pub worker_budget: usize,
    /// Plan seed.
    pub seed: u64,
}

/// Runs one live daemon session (`mp serve`) with the
/// [`TimelineRecorder`] attached and renders a stats + telemetry summary.
///
/// # Panics
/// Panics if the run loses a request or a completed response differs from
/// the sequential oracle.
pub fn run_serve(cfg: &ServeRunConfig) -> String {
    let plan = arrival_plan(&PlanConfig {
        pattern: cfg.pattern,
        requests: cfg.requests,
        mean_gap_ns: 10_000,
        deadline_ns: cfg.deadline_ns,
        mean_len: cfg.mean_len,
        seed: cfg.seed,
    });
    let prepared = prepare(&plan);
    let rec = std::sync::Arc::new(TimelineRecorder::new());
    let live = live_run(
        &prepared,
        ServeConfig {
            queue_capacity: cfg.queue_capacity,
            max_inflight: cfg.concurrency,
            worker_budget: cfg.worker_budget,
        },
        std::sync::Arc::clone(&rec),
    );
    assert_eq!(live.stats.lost(), 0, "live run lost requests");
    assert_eq!(
        live.correctness_failures, 0,
        "completed response differed from the oracle"
    );
    let telemetry = std::sync::Arc::try_unwrap(rec)
        .ok()
        .expect("server released its recorder handle at shutdown")
        .finish();
    let counter = |name: &str| -> u64 {
        telemetry
            .counters
            .iter()
            .filter(|c| c.kind.name() == name)
            .map(|c| c.total)
            .sum()
    };
    let s = &live.stats;
    let mut out = format!(
        "mp serve: pattern={} requests={} concurrency={} queue={} budget={} deadline={}ns seed={}\n",
        cfg.pattern.name(),
        cfg.requests,
        cfg.concurrency,
        cfg.queue_capacity,
        cfg.worker_budget,
        cfg.deadline_ns,
        cfg.seed,
    );
    let _ = writeln!(
        out,
        "  submitted={} completed={} rejected_queue_full={} rejected_deadline={} failed={} lost={}",
        s.submitted,
        s.completed,
        s.rejected_queue_full,
        s.rejected_deadline,
        s.failed,
        s.lost(),
    );
    let _ = writeln!(
        out,
        "  peaks: inflight={} queue_depth={}  wall={:.3}ms  throughput={:.0} req/s",
        s.inflight_peak,
        s.queue_depth_peak,
        live.wall_ns as f64 / 1e6,
        s.completed as f64 / (live.wall_ns.max(1) as f64 / 1e9),
    );
    let _ = writeln!(
        out,
        "  latency: p50={}ns p90={}ns p99={}ns max={}ns (n={})",
        s.latency.percentile(0.50),
        s.latency.percentile(0.90),
        s.latency.percentile(0.99),
        s.latency.max(),
        s.latency.count(),
    );
    let _ = writeln!(
        out,
        "  telemetry: serve_completed={} serve_rejected_queue_full={} serve_rejected_deadline={} \
         kernel_spans={} comparisons={}",
        counter("serve_completed"),
        counter("serve_rejected_queue_full"),
        counter("serve_rejected_deadline"),
        telemetry.spans.len(),
        counter("comparisons"),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergepath::telemetry::artifact::check_artifact;
    use mergepath::telemetry::json::Value;

    fn tiny() -> ServeBenchConfig {
        ServeBenchConfig {
            requests: 24,
            mean_len: 256,
            mean_gap_ns: 5_000,
            deadline_ns: 5_000_000,
            queue_capacity: 8,
            worker_budget: 2,
            levels: vec![1, 2, 3, 4],
            seed: 9,
        }
    }

    #[test]
    fn smoke_serve_bench_produces_schema_valid_artifact() {
        let run = run_serve_bench(&tiny());
        let doc = check_artifact(&run.serve_json, "bench_serve").expect("serve envelope");
        let rows = doc
            .get("payload")
            .and_then(|p| p.get("rows"))
            .and_then(Value::as_array)
            .expect("rows array");
        // 3 patterns × 4 levels.
        assert_eq!(rows.len(), 12);
        for r in rows {
            for col in [
                "concurrency",
                "submitted",
                "completed",
                "lost",
                "correctness_failures",
                "throughput_rps",
                "p50_ns",
                "p99_ns",
                "replay_completed",
                "replay_rejected_queue_full",
                "replay_rejected_deadline",
            ] {
                assert!(
                    r.get(col).and_then(Value::as_f64).is_some(),
                    "missing {col}"
                );
            }
            assert_eq!(r.get("lost").and_then(Value::as_f64), Some(0.0));
            assert_eq!(
                r.get("correctness_failures").and_then(Value::as_f64),
                Some(0.0)
            );
            let pattern = r.get("pattern").and_then(Value::as_str).unwrap();
            assert!(ArrivalPattern::parse(pattern).is_some(), "{pattern}");
        }
        assert!(run.summary.contains("steady"));
        assert!(run.summary.contains("bursty"));
        assert!(run.summary.contains("heavy-tail"));
    }

    #[test]
    fn replay_counts_in_the_artifact_are_reproducible() {
        let a = run_serve_bench(&tiny());
        let b = run_serve_bench(&tiny());
        let pick = |json: &str| -> Vec<(String, f64, f64, f64)> {
            let doc = check_artifact(json, "bench_serve").unwrap();
            doc.get("payload")
                .and_then(|p| p.get("rows"))
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .map(|r| {
                    (
                        r.get("pattern")
                            .and_then(Value::as_str)
                            .unwrap()
                            .to_string(),
                        r.get("replay_completed").and_then(Value::as_f64).unwrap(),
                        r.get("replay_rejected_queue_full")
                            .and_then(Value::as_f64)
                            .unwrap(),
                        r.get("replay_rejected_deadline")
                            .and_then(Value::as_f64)
                            .unwrap(),
                    )
                })
                .collect()
        };
        assert_eq!(pick(&a.serve_json), pick(&b.serve_json));
    }

    #[test]
    fn run_serve_summary_reports_stats_and_counters() {
        let out = run_serve(&ServeRunConfig {
            requests: 16,
            concurrency: 4,
            queue_capacity: 16,
            deadline_ns: 0,
            pattern: ArrivalPattern::Steady,
            mean_len: 512,
            worker_budget: 2,
            seed: 3,
        });
        assert!(out.contains("submitted=16"));
        assert!(out.contains("lost=0"));
        assert!(out.contains("serve_completed=16"));
        assert!(out.contains("latency: p50="));
    }
}
