//! `mp serve` and `mp bench --serve` — the serving-layer harness behind
//! `BENCH_serve.json`.
//!
//! Two entry points share one machinery:
//!
//! * [`run_serve`] drives a single live daemon run (`mp serve`) with a
//!   [`TimelineRecorder`] attached, checks every completed response
//!   against the sequential oracle, and summarizes stats plus the
//!   `serve_*` telemetry counters.
//! * [`run_serve_bench`] sweeps arrival pattern × concurrency level
//!   (`mp bench --serve`) and renders the `bench_serve` artifact through
//!   the shared envelope writer. Each cell pairs a **deterministic
//!   replay** of the admission policy (reproducible outcome counts, pure
//!   function of `(seed, config)`) with a **live run** (measured
//!   throughput and p50/p99 latency) over the same arrival plan.
//!
//! The live half paces submissions along the plan's arrival timestamps
//! with the real clock, so latency numbers are machine-dependent like the
//! other `BENCH_*` timings; the replay half is the artifact's
//! reproducible anchor (`tests/serve_determinism.rs` pins it).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;

use mergepath::merge::sequential::merge_into_by;
use mergepath::telemetry::artifact::{render_artifact, EnvFingerprint};
use mergepath::telemetry::TimelineRecorder;
use mergepath_serve::{
    replay, NoProbe, NoRecorder, ObserverConfig, Outcome, QueuePolicy, ReplayConfig, ReplayOutcome,
    Request, RoundGaugeRecorder, ServeConfig, ServeObserver, ServeProbe, ServeStats, Server,
    ServiceModel, Waterfall,
};
use mergepath_telemetry::{now_ns, LatencyHistogram};
use mergepath_workloads::{
    arrival_plan, merge_pair_sized, ArrivalPattern, PlanConfig, RequestSpec,
};

/// Knobs shared by `mp serve` and every cell of `mp bench --serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeBenchConfig {
    /// Requests per arrival plan.
    pub requests: usize,
    /// Mean per-side input length (per-request lengths are drawn around
    /// it by the plan).
    pub mean_len: usize,
    /// Target mean inter-arrival gap, nanoseconds.
    pub mean_gap_ns: u64,
    /// Relative deadline per request, nanoseconds (0 = none).
    pub deadline_ns: u64,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Pool-thread budget shared by in-flight requests.
    pub worker_budget: usize,
    /// Concurrency levels (serving threads) the bench sweeps.
    pub levels: Vec<usize>,
    /// Root seed for the arrival plans.
    pub seed: u64,
}

impl ServeBenchConfig {
    /// The full configuration behind the committed artifact.
    pub fn full(worker_budget: usize, seed: u64) -> Self {
        ServeBenchConfig {
            requests: 512,
            mean_len: 4096,
            mean_gap_ns: 50_000,
            deadline_ns: 5_000_000,
            queue_capacity: 64,
            worker_budget,
            levels: vec![1, 4, 16, 64],
            seed,
        }
    }

    /// A fast configuration for CI's `verify-serve` gate and tests.
    /// Still ≥ 4 concurrency levels — the artifact's schema contract.
    pub fn smoke(worker_budget: usize, seed: u64) -> Self {
        ServeBenchConfig {
            requests: 96,
            mean_len: 1024,
            mean_gap_ns: 20_000,
            deadline_ns: 5_000_000,
            queue_capacity: 32,
            worker_budget,
            levels: vec![1, 2, 4, 8],
            seed,
        }
    }

    fn plan_config(&self, pattern: ArrivalPattern) -> PlanConfig {
        PlanConfig {
            pattern,
            requests: self.requests,
            mean_gap_ns: self.mean_gap_ns,
            deadline_ns: self.deadline_ns,
            mean_len: self.mean_len,
            seed: self.seed,
        }
    }

    /// Coalescing ceiling for the live runs: several mean-sized merges
    /// worth of combined output, so queued bursts of small merges batch
    /// while oversized requests still run alone.
    fn batch_max_items(&self) -> usize {
        self.mean_len * 8
    }
}

/// The deterministic service-time model the replay half charges per
/// request: a fixed dispatch overhead plus linear per-element work (Thm 2
/// — sequential merge is linear in the output length). Calibration is
/// loose on purpose; the replay needs a *consistent* cost notion, not an
/// accurate one, and changing it changes `BENCH_serve.json`'s replay
/// counts everywhere at once.
pub const REPLAY_SERVICE_MODEL: ServiceModel = ServiceModel {
    base_ns: 20_000,
    per_item_ns: 25,
};

/// One live run's inputs: the regenerated request arrays and the
/// sequential oracle's answer for each.
struct PreparedRequest {
    spec: RequestSpec,
    a: Vec<u32>,
    b: Vec<u32>,
    expected: Vec<u32>,
}

/// Regenerates every planned request's inputs from
/// `(workload, len_a, len_b, data_seed)` and computes the sequential
/// oracle answer — all before any clock starts, so preparation cost never
/// pollutes the measured run.
fn prepare(plan: &[RequestSpec]) -> Vec<PreparedRequest> {
    plan.iter()
        .map(|spec| {
            let (a, b) = merge_pair_sized(spec.workload, spec.len_a, spec.len_b, spec.data_seed);
            let mut expected = vec![0u32; a.len() + b.len()];
            merge_into_by(&a, &b, &mut expected, &|x: &u32, y: &u32| x.cmp(y));
            PreparedRequest {
                spec: *spec,
                a,
                b,
                expected,
            }
        })
        .collect()
}

/// Outcome of one live paced run.
struct LiveRun {
    stats: ServeStats,
    wall_ns: u64,
    correctness_failures: usize,
}

/// Plays `prepared` through a live daemon under `cfg`, pacing submissions
/// along the plan's arrival timestamps. Every completed response is
/// compared byte-for-byte against the sequential oracle.
fn live_run<R, P>(prepared: &[PreparedRequest], cfg: ServeConfig, rec: R, probe: P) -> LiveRun
where
    R: mergepath_serve::Recorder + Send + Sync + 'static,
    P: ServeProbe + Send + Sync + 'static,
{
    let server: Server<u32, R, P> = Server::start_with_probe(cfg, rec, probe);
    let t0 = now_ns();
    let mut handles = Vec::with_capacity(prepared.len());
    for p in prepared {
        // Pace: wait out the plan's inter-arrival gap. Short waits spin
        // (sleep granularity on most platforms is far coarser than the
        // microsecond-scale gaps the plans use).
        let due = t0.saturating_add(p.spec.arrival_ns);
        loop {
            let now = now_ns();
            if now >= due {
                break;
            }
            let remaining = due - now;
            if remaining > 200_000 {
                std::thread::sleep(std::time::Duration::from_nanos(remaining / 2));
            } else {
                std::hint::spin_loop();
            }
        }
        let mut req = Request::merge(p.spec.id as u64, p.a.clone(), p.b.clone());
        if p.spec.deadline_ns != 0 {
            req = req.with_deadline_in(p.spec.deadline_ns);
        }
        if let Ok(h) = server.submit(req) {
            handles.push(h);
        }
    }
    let mut correctness_failures = 0usize;
    for h in handles {
        let id = h.id as usize;
        match h.wait() {
            Outcome::Completed { output, .. } => {
                if output != prepared[id].expected {
                    correctness_failures += 1;
                }
            }
            Outcome::Rejected(_) => {}
            Outcome::Failed => correctness_failures += 1,
        }
    }
    let wall_ns = now_ns().saturating_sub(t0);
    let stats = server.shutdown();
    LiveRun {
        stats,
        wall_ns,
        correctness_failures,
    }
}

/// One pattern × concurrency cell of the bench table.
#[derive(Debug, Clone)]
struct ServeRow {
    pattern: &'static str,
    concurrency: usize,
    stats: ServeStats,
    wall_ns: u64,
    correctness_failures: usize,
    replay_completed: usize,
    replay_rejected_queue_full: usize,
    replay_rejected_deadline: usize,
    replay_fifo_deadline_miss: usize,
    replay_edf_deadline_miss: usize,
    pool_steals: u64,
    pool_stolen_shares: u64,
}

impl ServeRow {
    fn throughput_rps(&self) -> f64 {
        self.stats.completed as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Mean coalesced-round width: requests per batched round, 0 when the
    /// cell never batched.
    fn batch_width(&self) -> f64 {
        if self.stats.batched_rounds == 0 {
            0.0
        } else {
            self.stats.batched_requests as f64 / self.stats.batched_rounds as f64
        }
    }
}

/// The rendered artifacts of one `mp bench --serve` run.
#[derive(Debug, Clone)]
pub struct ServeBenchArtifacts {
    /// Human-readable summary for stdout.
    pub summary: String,
    /// `BENCH_serve.json` contents.
    pub serve_json: String,
}

/// One arm of the round-overlap cell: the same bursty plan, with
/// concurrent pool rounds either force-serialized (the pre-work-stealing
/// executor's one-round-at-a-time behaviour, reproduced through
/// [`mergepath::executor::serialize_rounds`]) or free to overlap.
#[derive(Debug, Clone)]
struct OverlapArm {
    serialized: bool,
    completed: u64,
    wall_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
    pool_steals: u64,
    pool_stolen_shares: u64,
}

impl OverlapArm {
    fn to_json(&self) -> String {
        format!(
            "{{\"serialized\":{},\"completed\":{},\"wall_ns\":{},\"p50_ns\":{},\
             \"p99_ns\":{},\"pool_steals\":{},\"pool_stolen_shares\":{}}}",
            self.serialized,
            self.completed,
            self.wall_ns,
            self.p50_ns,
            self.p99_ns,
            self.pool_steals,
            self.pool_stolen_shares,
        )
    }
}

/// The round-overlap before/after comparison the artifact carries
/// alongside the sweep rows.
#[derive(Debug, Clone)]
struct OverlapCell {
    concurrency: usize,
    serialized: OverlapArm,
    overlapped: OverlapArm,
}

impl OverlapCell {
    fn to_json(&self) -> String {
        format!(
            "{{\"pattern\":\"bursty\",\"concurrency\":{},\"serialized\":{},\"overlapped\":{}}}",
            self.concurrency,
            self.serialized.to_json(),
            self.overlapped.to_json(),
        )
    }
}

/// Runs the round-overlap comparison: the bursty plan at the sweep's
/// highest concurrency level, once with concurrent rounds force-serialized
/// (the old pool's mutual exclusion, recreated via the executor's
/// compatibility guard) and once with overlap enabled (the work-stealing
/// default). The pair is the artifact's before/after evidence on the
/// latency tail, and the overlapped arm's steal counters witness that
/// cross-worker stealing actually happened during the run.
fn overlap_cell(cfg: &ServeBenchConfig) -> OverlapCell {
    let level = *cfg.levels.iter().max().expect("levels is non-empty");
    let plan = arrival_plan(&cfg.plan_config(ArrivalPattern::Bursty));
    let prepared = prepare(&plan);
    let serve_cfg = ServeConfig {
        queue_capacity: cfg.queue_capacity,
        max_inflight: level,
        worker_budget: cfg.worker_budget,
        policy: QueuePolicy::Edf,
        batch_max_items: cfg.batch_max_items(),
    };
    let arm = |serialized: bool| -> OverlapArm {
        let guard = serialized.then(mergepath::executor::serialize_rounds);
        let s0 = mergepath::executor::global().steal_stats();
        let live = live_run(&prepared, serve_cfg, NoRecorder, NoProbe);
        let s1 = mergepath::executor::global().steal_stats();
        drop(guard);
        assert_eq!(live.stats.lost(), 0, "round-overlap arm lost requests");
        assert_eq!(
            live.correctness_failures, 0,
            "round-overlap arm differed from the oracle"
        );
        OverlapArm {
            serialized,
            completed: live.stats.completed,
            wall_ns: live.wall_ns,
            p50_ns: live.stats.latency.percentile(0.50),
            p99_ns: live.stats.latency.percentile(0.99),
            pool_steals: s1.steals.saturating_sub(s0.steals),
            pool_stolen_shares: s1.stolen_shares.saturating_sub(s0.stolen_shares),
        }
    };
    // Serialized arm first, so the overlapped arm never reads stale cache
    // warmth as a scheduling win; both arms replay the identical plan.
    let serialized = arm(true);
    let overlapped = arm(false);
    OverlapCell {
        concurrency: level,
        serialized,
        overlapped,
    }
}

fn rows_payload(cfg: &ServeBenchConfig, rows: &[ServeRow], overlap: &OverlapCell) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"requests\":{},\"mean_len\":{},\"mean_gap_ns\":{},\"deadline_ns\":{},\
         \"queue_capacity\":{},\"worker_budget\":{},\"seed\":{},\
         \"replay_base_ns\":{},\"replay_per_item_ns\":{},\"levels\":[",
        cfg.requests,
        cfg.mean_len,
        cfg.mean_gap_ns,
        cfg.deadline_ns,
        cfg.queue_capacity,
        cfg.worker_budget,
        cfg.seed,
        REPLAY_SERVICE_MODEL.base_ns,
        REPLAY_SERVICE_MODEL.per_item_ns,
    );
    for (i, l) in cfg.levels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{l}");
    }
    out.push_str("],\"round_overlap\":");
    out.push_str(&overlap.to_json());
    out.push_str(",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"pattern\":\"{}\",\"concurrency\":{},\"submitted\":{},\"completed\":{},\
             \"rejected_queue_full\":{},\"rejected_deadline\":{},\"failed\":{},\"lost\":{},\
             \"correctness_failures\":{},\"queue_depth_peak\":{},\"inflight_peak\":{},\
             \"wall_ns\":{},\"throughput_rps\":{},\"p50_ns\":{},\"p99_ns\":{},\
             \"serve_batched\":{},\"batched_requests\":{},\"batch_width\":{},\
             \"replay_completed\":{},\"replay_rejected_queue_full\":{},\
             \"replay_rejected_deadline\":{},\"replay_fifo_deadline_miss\":{},\
             \"replay_edf_deadline_miss\":{},\"pool_steals\":{},\
             \"pool_stolen_shares\":{},\"latency\":{}}}",
            r.pattern,
            r.concurrency,
            r.stats.submitted,
            r.stats.completed,
            r.stats.rejected_queue_full,
            r.stats.rejected_deadline,
            r.stats.failed,
            r.stats.lost(),
            r.correctness_failures,
            r.stats.queue_depth_peak,
            r.stats.inflight_peak,
            r.wall_ns,
            r.throughput_rps(),
            r.stats.latency.percentile(0.50),
            r.stats.latency.percentile(0.99),
            r.stats.batched_rounds,
            r.stats.batched_requests,
            r.batch_width(),
            r.replay_completed,
            r.replay_rejected_queue_full,
            r.replay_rejected_deadline,
            r.replay_fifo_deadline_miss,
            r.replay_edf_deadline_miss,
            r.pool_steals,
            r.pool_stolen_shares,
            r.stats.latency.to_json(),
        );
    }
    out.push_str("]}");
    out
}

/// Runs the pattern × concurrency sweep and renders `BENCH_serve.json`.
///
/// # Panics
/// Panics if the assembled artifact fails the envelope self-check, if a
/// live run loses a request, or if any completed response differs from
/// the sequential oracle — all bugs, not input conditions.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServeBenchArtifacts {
    assert!(cfg.levels.len() >= 4, "the artifact sweeps ≥ 4 levels");
    let env = EnvFingerprint::capture();
    let mut summary = format!(
        "mp bench --serve: requests={} mean_len={} gap={}ns deadline={}ns queue={} budget={} seed={}\n",
        cfg.requests,
        cfg.mean_len,
        cfg.mean_gap_ns,
        cfg.deadline_ns,
        cfg.queue_capacity,
        cfg.worker_budget,
        cfg.seed,
    );
    let _ = writeln!(
        summary,
        "  pattern      conc   done  rej_q  rej_d   thr(req/s)     p50        p99   batched  fifo/edf miss"
    );
    let mut rows = Vec::new();
    for pattern in ArrivalPattern::ALL {
        let plan = arrival_plan(&cfg.plan_config(pattern));
        let prepared = prepare(&plan);
        for &level in &cfg.levels {
            // Replay the admission policy under BOTH queue orderings: the
            // EDF log is the daemon's own policy (and feeds the replay_*
            // columns); the FIFO log exists purely for the per-cell
            // deadline-miss comparison the artifact carries.
            let replay_under = |policy: QueuePolicy| {
                replay(
                    &plan,
                    &ReplayConfig {
                        queue_capacity: cfg.queue_capacity,
                        max_inflight: level,
                        policy,
                    },
                    &REPLAY_SERVICE_MODEL,
                )
            };
            let log = replay_under(QueuePolicy::Edf);
            let log_fifo = replay_under(QueuePolicy::Fifo);
            let count = |o: ReplayOutcome| log.iter().filter(|e| e.outcome == o).count();
            let fifo_miss = log_fifo
                .iter()
                .filter(|e| e.outcome == ReplayOutcome::RejectedDeadline)
                .count();
            let steals_before = mergepath::executor::global().steal_stats();
            let live = live_run(
                &prepared,
                ServeConfig {
                    queue_capacity: cfg.queue_capacity,
                    max_inflight: level,
                    worker_budget: cfg.worker_budget,
                    policy: QueuePolicy::Edf,
                    batch_max_items: cfg.batch_max_items(),
                },
                NoRecorder,
                NoProbe,
            );
            let steals_after = mergepath::executor::global().steal_stats();
            assert_eq!(
                live.stats.lost(),
                0,
                "{} @ {level}: live run lost requests",
                pattern.name()
            );
            assert_eq!(
                live.correctness_failures,
                0,
                "{} @ {level}: completed response differed from the oracle",
                pattern.name()
            );
            let row = ServeRow {
                pattern: pattern.name(),
                concurrency: level,
                stats: live.stats,
                wall_ns: live.wall_ns,
                correctness_failures: live.correctness_failures,
                replay_completed: count(ReplayOutcome::Completed),
                replay_rejected_queue_full: count(ReplayOutcome::RejectedQueueFull),
                replay_rejected_deadline: count(ReplayOutcome::RejectedDeadline),
                replay_fifo_deadline_miss: fifo_miss,
                replay_edf_deadline_miss: count(ReplayOutcome::RejectedDeadline),
                pool_steals: steals_after.steals.saturating_sub(steals_before.steals),
                pool_stolen_shares: steals_after
                    .stolen_shares
                    .saturating_sub(steals_before.stolen_shares),
            };
            let _ = writeln!(
                summary,
                "  {:<12} {:>4} {:>6} {:>6} {:>6} {:>12.0} {:>9}ns {:>9}ns  bat={:<4} miss f/e={}/{}",
                row.pattern,
                row.concurrency,
                row.stats.completed,
                row.stats.rejected_queue_full,
                row.stats.rejected_deadline,
                row.throughput_rps(),
                row.stats.latency.percentile(0.50),
                row.stats.latency.percentile(0.99),
                row.stats.batched_rounds,
                row.replay_fifo_deadline_miss,
                row.replay_edf_deadline_miss,
            );
            rows.push(row);
        }
    }
    let overlap = overlap_cell(cfg);
    let _ = writeln!(
        summary,
        "  round-overlap (bursty @ {}): serialized p99={}ns | overlapped p99={}ns \
         steals={} stolen_shares={}",
        overlap.concurrency,
        overlap.serialized.p99_ns,
        overlap.overlapped.p99_ns,
        overlap.overlapped.pool_steals,
        overlap.overlapped.pool_stolen_shares,
    );
    let serve_json = render_artifact("bench_serve", &env, &rows_payload(cfg, &rows, &overlap))
        .expect("serve artifact must pass its own schema check");
    ServeBenchArtifacts {
        summary,
        serve_json,
    }
}

/// Configuration of one `mp serve` demonstration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRunConfig {
    /// Requests in the arrival plan.
    pub requests: usize,
    /// Serving threads (maximum in-flight requests).
    pub concurrency: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Relative deadline per request, nanoseconds (0 = none).
    pub deadline_ns: u64,
    /// Arrival process.
    pub pattern: ArrivalPattern,
    /// Mean per-side input length.
    pub mean_len: usize,
    /// Pool-thread budget shared by in-flight requests.
    pub worker_budget: usize,
    /// Plan seed.
    pub seed: u64,
    /// When set, the live metrics directory: periodic Prometheus-text +
    /// JSONL snapshots, the `METRICS_serve.json` envelope, and anomaly
    /// flight dumps are written under it.
    pub metrics_out: Option<String>,
}

/// How often the live snapshot thread rewrites `metrics.prom` and appends
/// to `metrics.jsonl` while the run is in flight.
const SNAPSHOT_INTERVAL: std::time::Duration = std::time::Duration::from_millis(100);

/// Writes one snapshot tick: `metrics.prom` is rewritten in place (the
/// scrape-style file), `metrics.jsonl` gets one appended line (the
/// history). Diagnostics never fail the run — errors are swallowed.
fn write_snapshot_tick(dir: &std::path::Path, obs: &ServeObserver) {
    let snap = obs.snapshot();
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join("metrics.prom"), snap.to_prometheus());
    let mut line = snap.to_json();
    line.push('\n');
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("metrics.jsonl"))
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Runs one live daemon session (`mp serve`) with the
/// [`TimelineRecorder`] attached and the live observability layer
/// ([`ServeObserver`]) threaded through the request path, and renders a
/// stats + waterfall-attribution + telemetry summary.
///
/// With `metrics_out` set, the observer also writes periodic snapshots
/// and dump-on-anomaly flight recordings into that directory (see
/// README §Live metrics).
///
/// # Panics
/// Panics if the run loses a request, a completed response differs from
/// the sequential oracle, or the live metric counters fail to reconcile
/// exactly with [`ServeStats`].
pub fn run_serve(cfg: &ServeRunConfig) -> String {
    let plan = arrival_plan(&PlanConfig {
        pattern: cfg.pattern,
        requests: cfg.requests,
        mean_gap_ns: 10_000,
        deadline_ns: cfg.deadline_ns,
        mean_len: cfg.mean_len,
        seed: cfg.seed,
    });
    let prepared = prepare(&plan);
    let metrics_dir = cfg.metrics_out.as_ref().map(PathBuf::from);
    let obs = Arc::new(ServeObserver::new(ObserverConfig {
        dump_dir: metrics_dir.clone(),
        ..ObserverConfig::default()
    }));
    let timeline = Arc::new(TimelineRecorder::new());
    let rec = RoundGaugeRecorder::new(Arc::clone(&timeline), Arc::clone(&obs));

    // Periodic exposition: a background thread snapshots the registry at
    // a fixed cadence while the daemon serves. Snapshots never pause
    // serving threads, so the cadence is a freshness knob, not a cost.
    let stop = Arc::new(AtomicBool::new(false));
    let snapshot_thread = metrics_dir.clone().map(|dir| {
        let obs = Arc::clone(&obs);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(AtomicOrdering::Relaxed) {
                write_snapshot_tick(&dir, &obs);
                std::thread::sleep(SNAPSHOT_INTERVAL);
            }
        })
    });

    let live = live_run(
        &prepared,
        ServeConfig {
            queue_capacity: cfg.queue_capacity,
            max_inflight: cfg.concurrency,
            worker_budget: cfg.worker_budget,
            policy: QueuePolicy::Edf,
            batch_max_items: cfg.mean_len * 8,
        },
        rec,
        Arc::clone(&obs),
    );
    stop.store(true, AtomicOrdering::Relaxed);
    if let Some(t) = snapshot_thread {
        let _ = t.join();
    }
    assert_eq!(live.stats.lost(), 0, "live run lost requests");
    assert_eq!(
        live.correctness_failures, 0,
        "completed response differed from the oracle"
    );
    let telemetry = Arc::try_unwrap(timeline)
        .ok()
        .expect("server released its recorder handle at shutdown")
        .finish();
    let counter = |name: &str| -> u64 {
        telemetry
            .counters
            .iter()
            .filter(|c| c.kind.name() == name)
            .map(|c| c.total)
            .sum()
    };
    let s = &live.stats;
    let mut out = format!(
        "mp serve: pattern={} requests={} concurrency={} queue={} budget={} deadline={}ns seed={}\n",
        cfg.pattern.name(),
        cfg.requests,
        cfg.concurrency,
        cfg.queue_capacity,
        cfg.worker_budget,
        cfg.deadline_ns,
        cfg.seed,
    );
    let _ = writeln!(
        out,
        "  submitted={} completed={} rejected_queue_full={} rejected_deadline={} failed={} lost={}",
        s.submitted,
        s.completed,
        s.rejected_queue_full,
        s.rejected_deadline,
        s.failed,
        s.lost(),
    );
    let _ = writeln!(
        out,
        "  peaks: inflight={} queue_depth={}  wall={:.3}ms  throughput={:.0} req/s",
        s.inflight_peak,
        s.queue_depth_peak,
        live.wall_ns as f64 / 1e6,
        s.completed as f64 / (live.wall_ns.max(1) as f64 / 1e9),
    );
    let _ = writeln!(
        out,
        "  batching: rounds={} coalesced_requests={}",
        s.batched_rounds, s.batched_requests,
    );
    let _ = writeln!(
        out,
        "  latency: p50={}ns p90={}ns p99={}ns max={}ns (n={})",
        s.latency.percentile(0.50),
        s.latency.percentile(0.90),
        s.latency.percentile(0.99),
        s.latency.max(),
        s.latency.count(),
    );
    let _ = writeln!(
        out,
        "  telemetry: serve_completed={} serve_rejected_queue_full={} serve_rejected_deadline={} \
         kernel_spans={} comparisons={}",
        counter("serve_completed"),
        counter("serve_rejected_queue_full"),
        counter("serve_rejected_deadline"),
        telemetry.spans.len(),
        counter("comparisons"),
    );

    // Live counters must reconcile *exactly* with the daemon's own
    // bookkeeping: both sides increment at the same points of the request
    // path, so any drift is a bug in the observability layer.
    let snap = obs.snapshot();
    for (name, expected) in [
        ("serve_submitted_total", s.submitted),
        ("serve_completed_total", s.completed),
        ("serve_rejected_queue_full_total", s.rejected_queue_full),
        ("serve_rejected_deadline_total", s.rejected_deadline),
        ("serve_failed_total", s.failed),
    ] {
        assert_eq!(
            snap.counter(name),
            Some(expected),
            "{name} must reconcile exactly with ServeStats"
        );
    }
    let _ = writeln!(
        out,
        "  metrics: counters reconcile exactly with stats  flight_events={} pool_rounds={}",
        obs.flight().recorded(),
        snap.counter("pool_rounds_total").unwrap_or(0),
    );
    out.push_str("  waterfall attribution (completed requests):\n");
    for line in obs.attribution_table().lines() {
        let _ = writeln!(out, "    {line}");
    }

    // Replay parity: the deterministic simulation of this exact plan and
    // admission policy, printed beside the live counts. Replay numbers
    // are a pure function of (seed, config); live ones are subject to
    // real scheduling, so they bracket rather than equal the prediction.
    let log = replay(
        &plan,
        &ReplayConfig {
            queue_capacity: cfg.queue_capacity,
            max_inflight: cfg.concurrency,
            policy: QueuePolicy::Edf,
        },
        &REPLAY_SERVICE_MODEL,
    );
    let log_fifo = replay(
        &plan,
        &ReplayConfig {
            queue_capacity: cfg.queue_capacity,
            max_inflight: cfg.concurrency,
            policy: QueuePolicy::Fifo,
        },
        &REPLAY_SERVICE_MODEL,
    );
    let rcount = |o: ReplayOutcome| log.iter().filter(|e| e.outcome == o).count();
    let fifo_miss = log_fifo
        .iter()
        .filter(|e| e.outcome == ReplayOutcome::RejectedDeadline)
        .count();
    let _ = writeln!(
        out,
        "  replay parity: live completed={} rej_q={} rej_d={} | replay completed={} rej_q={} rej_d={} \
         (model base={}ns per_item={}ns)",
        s.completed,
        s.rejected_queue_full,
        s.rejected_deadline,
        rcount(ReplayOutcome::Completed),
        rcount(ReplayOutcome::RejectedQueueFull),
        rcount(ReplayOutcome::RejectedDeadline),
        REPLAY_SERVICE_MODEL.base_ns,
        REPLAY_SERVICE_MODEL.per_item_ns,
    );
    let _ = writeln!(
        out,
        "  policy comparison: deadline misses fifo={} edf={} (replayed over the same plan)",
        fifo_miss,
        rcount(ReplayOutcome::RejectedDeadline),
    );

    let dumps = obs.dump_paths();
    if !dumps.is_empty() {
        let _ = writeln!(out, "  flight dumps ({}):", dumps.len());
        for p in &dumps {
            let _ = writeln!(out, "    {}", p.display());
        }
    }
    if let Some(dir) = &metrics_dir {
        write_snapshot_tick(dir, &obs);
        let mut payload = String::from("{\"snapshot\":");
        payload.push_str(&snap.to_json());
        payload.push_str(",\"dumps\":[");
        for (i, p) in dumps.iter().enumerate() {
            if i > 0 {
                payload.push(',');
            }
            mergepath::telemetry::json::write_str(&mut payload, &p.to_string_lossy());
        }
        payload.push_str("]}");
        let env = EnvFingerprint::capture();
        let doc = render_artifact("metrics_serve", &env, &payload)
            .expect("metrics artifact must pass its own schema check");
        let path = dir.join("METRICS_serve.json");
        if std::fs::write(&path, doc).is_ok() {
            let _ = writeln!(
                out,
                "  metrics written to {}: metrics.prom metrics.jsonl METRICS_serve.json",
                dir.display()
            );
        }
    }
    out
}

/// Observability overhead of one metrics-on vs metrics-off comparison
/// (committed into `BENCH_telemetry.json` as the `serve_overhead`
/// section; `cargo xtask verify-metrics` gates `overhead` at ≤ 3%).
#[derive(Debug, Clone)]
pub struct ServeOverhead {
    /// Requests per repetition.
    pub requests: usize,
    /// Mean per-side input length.
    pub mean_len: usize,
    /// Interleaved repetitions per arm.
    pub reps: usize,
    /// Fastest wall time of the metrics-off arm, nanoseconds.
    pub wall_off_ns: u64,
    /// Fastest wall time of the metrics-on arm, nanoseconds.
    pub wall_on_ns: u64,
    /// p99 latency across all metrics-off repetitions, nanoseconds.
    pub p99_off_ns: u64,
    /// p99 latency across all metrics-on repetitions, nanoseconds.
    pub p99_on_ns: u64,
    /// Relative wall-time delta of the A/B arms (trimmed means,
    /// `max(0, on/off − 1)`). Informational: on a shared machine this
    /// carries several percent of scheduler noise either way.
    pub wall_ratio: f64,
    /// Deterministic cost of one completed request's full probe-hook
    /// sequence (submit → enqueue → dequeue → start → complete),
    /// nanoseconds, measured in a tight loop.
    pub hook_ns_per_request: f64,
    /// The gated overhead estimate: `hook_ns_per_request` divided by the
    /// metrics-off per-request service time. Stable run-to-run, unlike
    /// the wall ratio, so `cargo xtask verify-metrics` gates on this.
    pub overhead: f64,
}

impl ServeOverhead {
    /// Renders the JSON object embedded in `BENCH_telemetry.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"mean_len\":{},\"reps\":{},\"wall_off_ns\":{},\
             \"wall_on_ns\":{},\"p99_off_ns\":{},\"p99_on_ns\":{},\
             \"wall_ratio\":{},\"hook_ns_per_request\":{},\"overhead\":{}}}",
            self.requests,
            self.mean_len,
            self.reps,
            self.wall_off_ns,
            self.wall_on_ns,
            self.p99_off_ns,
            self.p99_on_ns,
            self.wall_ratio,
            self.hook_ns_per_request,
            self.overhead,
        )
    }
}

/// One unpaced batch run: submit everything at once, wait for everything,
/// measure the wall. No pacing, no deadlines, capacity ≥ requests — the
/// daemon is the only variable, so the off/on delta isolates probe cost.
fn unpaced_run<P>(
    prepared: &[PreparedRequest],
    cfg: ServeConfig,
    probe: P,
) -> (u64, LatencyHistogram)
where
    P: ServeProbe + Send + Sync + 'static,
{
    let server: Server<u32, NoRecorder, P> = Server::start_with_probe(cfg, NoRecorder, probe);
    let t0 = now_ns();
    let mut handles = Vec::with_capacity(prepared.len());
    for p in prepared {
        if let Ok(h) = server.submit(Request::merge(p.spec.id as u64, p.a.clone(), p.b.clone())) {
            handles.push(h);
        }
    }
    for h in handles {
        let _ = h.wait();
    }
    let wall = now_ns().saturating_sub(t0);
    (wall, server.shutdown().latency)
}

/// Measures the observability layer's cost two ways.
///
/// **A/B walls** (`wall_ratio`): interleaved metrics-off / metrics-on
/// repetitions of the same unpaced batch, order-alternated so cache and
/// frequency state never systematically favors one arm, compared by
/// trimmed means (the [20%, 60%) band of each arm's sorted walls).
/// Honest but noisy: on a shared machine the delta carries several
/// percent of scheduler noise either way, so it is reported, not gated.
///
/// **Hook microbench** (`overhead`, the gated number): the full probe
/// sequence of one completed request — submit, enqueue, dequeue, start,
/// complete — timed over 100k tight-loop iterations and divided by the
/// metrics-off per-request service time. Deterministic run-to-run, and
/// it moves exactly when the hot path regresses (a new lock, an
/// allocation, an extra histogram), which is what the 3% budget in
/// `cargo xtask verify-metrics` is protecting.
pub fn measure_serve_overhead(
    requests: usize,
    mean_len: usize,
    reps: usize,
    worker_budget: usize,
    seed: u64,
) -> ServeOverhead {
    let plan = arrival_plan(&PlanConfig {
        pattern: ArrivalPattern::Steady,
        requests,
        mean_gap_ns: 1,
        deadline_ns: 0,
        mean_len,
        seed,
    });
    let prepared = prepare(&plan);
    let cfg = ServeConfig {
        queue_capacity: requests.max(1),
        max_inflight: 4,
        worker_budget,
        policy: QueuePolicy::Edf,
        // No coalescing: the off/on arms must charge identical per-request
        // work for the probe-cost delta to be the only variable.
        batch_max_items: 0,
    };
    let reps = reps.max(21);
    // One observer shared across reps, and one untimed warm-up pair first:
    // a fresh registry and flight ring are page-faulted on first touch, a
    // one-time cost that would otherwise be billed to the first timed
    // metrics-on window and read as per-request overhead.
    let obs = Arc::new(ServeObserver::new(ObserverConfig::default()));
    let _ = unpaced_run(&prepared, cfg, NoProbe);
    let _ = unpaced_run(&prepared, cfg, Arc::clone(&obs));
    let mut walls_off = Vec::with_capacity(reps);
    let mut walls_on = Vec::with_capacity(reps);
    let mut lat_off = LatencyHistogram::new();
    let mut lat_on = LatencyHistogram::new();
    for i in 0..reps {
        // Alternate which arm runs first so cache and frequency state left
        // by the previous run never systematically favors one arm.
        let first_off = i % 2 == 0;
        for leg in 0..2 {
            if (leg == 0) == first_off {
                let (w, h) = unpaced_run(&prepared, cfg, NoProbe);
                walls_off.push(w);
                lat_off.merge_from(&h);
            } else {
                let (w, h) = unpaced_run(&prepared, cfg, Arc::clone(&obs));
                walls_on.push(w);
                lat_on.merge_from(&h);
            }
        }
    }
    // Location estimate per arm: the mean of the [20%, 60%) band of its
    // sorted walls. Scheduler bursts inflate the slow tail and cache
    // luck produces stray fast outliers; trimming both ends — the same
    // band on both arms — compares typical runs against typical runs.
    let trimmed_mean = |v: &mut Vec<u64>| -> f64 {
        v.sort_unstable();
        let band = &v[v.len() / 5..(v.len() * 3 / 5).max(v.len() / 5 + 1)];
        band.iter().sum::<u64>() as f64 / band.len() as f64
    };
    let mean_off = trimmed_mean(&mut walls_off);
    let mean_on = trimmed_mean(&mut walls_on);
    let wall_ratio = (mean_on / mean_off.max(1.0) - 1.0).max(0.0);
    let wall_off_ns = walls_off[0];
    let wall_on_ns = walls_on[0];

    // The gated estimate: time the full hook sequence of one completed
    // request in a tight loop (deterministic to a few percent of itself,
    // where the A/B wall delta above carries a few percent of the whole
    // wall in scheduler noise) and compare against the metrics-off
    // per-request service time.
    let wf = Waterfall {
        queue_ns: 10_000,
        dispatch_ns: 1_000,
        compute_ns: 100_000,
        emit_ns: 1_000,
    };
    const HOOK_REPS: u64 = 100_000;
    let t0 = now_ns();
    for i in 0..HOOK_REPS {
        obs.on_submit(i, i, 0);
        obs.on_enqueue(i, 1);
        obs.on_dequeue(i, i + 1, i, 0);
        obs.on_start(i, i + 2, 1, 1);
        obs.on_complete(i, i + 3, 0, &wf);
    }
    let hook_ns_per_request = now_ns().saturating_sub(t0) as f64 / HOOK_REPS as f64;
    let service_ns = mean_off / requests.max(1) as f64;
    let overhead = hook_ns_per_request / service_ns.max(1.0);
    ServeOverhead {
        requests,
        mean_len,
        reps,
        wall_off_ns,
        wall_on_ns,
        p99_off_ns: lat_off.percentile(0.99),
        p99_on_ns: lat_on.percentile(0.99),
        wall_ratio,
        hook_ns_per_request,
        overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergepath::telemetry::artifact::check_artifact;
    use mergepath::telemetry::json::Value;

    fn tiny() -> ServeBenchConfig {
        ServeBenchConfig {
            requests: 24,
            mean_len: 256,
            mean_gap_ns: 5_000,
            deadline_ns: 5_000_000,
            queue_capacity: 8,
            worker_budget: 2,
            levels: vec![1, 2, 3, 4],
            seed: 9,
        }
    }

    #[test]
    fn smoke_serve_bench_produces_schema_valid_artifact() {
        let run = run_serve_bench(&tiny());
        let doc = check_artifact(&run.serve_json, "bench_serve").expect("serve envelope");
        let rows = doc
            .get("payload")
            .and_then(|p| p.get("rows"))
            .and_then(Value::as_array)
            .expect("rows array");
        // 3 patterns × 4 levels.
        assert_eq!(rows.len(), 12);
        for r in rows {
            for col in [
                "concurrency",
                "submitted",
                "completed",
                "lost",
                "correctness_failures",
                "throughput_rps",
                "p50_ns",
                "p99_ns",
                "serve_batched",
                "batched_requests",
                "batch_width",
                "replay_completed",
                "replay_rejected_queue_full",
                "replay_rejected_deadline",
                "replay_fifo_deadline_miss",
                "replay_edf_deadline_miss",
                "pool_steals",
                "pool_stolen_shares",
            ] {
                assert!(
                    r.get(col).and_then(Value::as_f64).is_some(),
                    "missing {col}"
                );
            }
            assert_eq!(r.get("lost").and_then(Value::as_f64), Some(0.0));
            assert_eq!(
                r.get("correctness_failures").and_then(Value::as_f64),
                Some(0.0)
            );
            let pattern = r.get("pattern").and_then(Value::as_str).unwrap();
            assert!(ArrivalPattern::parse(pattern).is_some(), "{pattern}");
            // The replay_* columns are the EDF policy's log — the
            // deadline-miss pair must agree on the EDF side.
            assert_eq!(
                r.get("replay_rejected_deadline").and_then(Value::as_f64),
                r.get("replay_edf_deadline_miss").and_then(Value::as_f64),
            );
        }
        assert!(run.summary.contains("steady"));
        assert!(run.summary.contains("bursty"));
        assert!(run.summary.contains("heavy-tail"));
        assert!(run.summary.contains("round-overlap (bursty @ 4):"));

        // The round-overlap cell: both arms present, complete, and tagged.
        let overlap = doc
            .get("payload")
            .and_then(|p| p.get("round_overlap"))
            .expect("round_overlap cell");
        assert_eq!(
            overlap.get("pattern").and_then(Value::as_str),
            Some("bursty")
        );
        assert_eq!(
            overlap.get("concurrency").and_then(Value::as_f64),
            Some(4.0)
        );
        for (arm, want_serialized) in [("serialized", true), ("overlapped", false)] {
            let a = overlap.get(arm).expect("overlap arm");
            assert!(
                matches!(a.get("serialized"), Some(Value::Bool(b)) if *b == want_serialized),
                "{arm} tag"
            );
            for col in [
                "completed",
                "wall_ns",
                "p50_ns",
                "p99_ns",
                "pool_steals",
                "pool_stolen_shares",
            ] {
                assert!(a.get(col).and_then(Value::as_f64).is_some(), "{arm}.{col}");
            }
            assert!(
                a.get("completed").and_then(Value::as_f64).unwrap() > 0.0,
                "{arm} completed requests"
            );
        }
    }

    #[test]
    fn replay_counts_in_the_artifact_are_reproducible() {
        let a = run_serve_bench(&tiny());
        let b = run_serve_bench(&tiny());
        let pick = |json: &str| -> Vec<(String, f64, f64, f64)> {
            let doc = check_artifact(json, "bench_serve").unwrap();
            doc.get("payload")
                .and_then(|p| p.get("rows"))
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .map(|r| {
                    (
                        r.get("pattern")
                            .and_then(Value::as_str)
                            .unwrap()
                            .to_string(),
                        r.get("replay_completed").and_then(Value::as_f64).unwrap(),
                        r.get("replay_rejected_queue_full")
                            .and_then(Value::as_f64)
                            .unwrap(),
                        r.get("replay_rejected_deadline")
                            .and_then(Value::as_f64)
                            .unwrap()
                            + r.get("replay_fifo_deadline_miss")
                                .and_then(Value::as_f64)
                                .unwrap(),
                    )
                })
                .collect()
        };
        assert_eq!(pick(&a.serve_json), pick(&b.serve_json));
    }

    #[test]
    fn run_serve_summary_reports_stats_and_counters() {
        let out = run_serve(&ServeRunConfig {
            requests: 16,
            concurrency: 4,
            queue_capacity: 16,
            deadline_ns: 0,
            pattern: ArrivalPattern::Steady,
            mean_len: 512,
            worker_budget: 2,
            seed: 3,
            metrics_out: None,
        });
        assert!(out.contains("submitted=16"));
        assert!(out.contains("lost=0"));
        assert!(out.contains("serve_completed=16"));
        assert!(out.contains("latency: p50="));
        assert!(out.contains("counters reconcile exactly"));
        assert!(out.contains("waterfall attribution"));
        assert!(out.contains("compute"));
        assert!(out.contains("replay parity:"));
        assert!(out.contains("batching: rounds="));
        assert!(out.contains("policy comparison: deadline misses fifo="));
    }

    #[test]
    fn run_serve_with_metrics_out_writes_snapshots_and_anomaly_dump() {
        let dir = mergepath_serve::observe::test_scratch_dir("run-serve");
        // A 1ns relative deadline has always expired by dequeue time, so
        // the first dequeue deterministically triggers the deadline-miss
        // flight dump.
        let out = run_serve(&ServeRunConfig {
            requests: 24,
            concurrency: 2,
            queue_capacity: 24,
            deadline_ns: 1,
            pattern: ArrivalPattern::Bursty,
            mean_len: 256,
            worker_budget: 2,
            seed: 5,
            metrics_out: Some(dir.to_string_lossy().into_owned()),
        });
        assert!(out.contains("flight dumps"));
        assert!(out.contains("deadline_miss"));
        assert!(out.contains("metrics written to"));

        let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("metrics.prom");
        assert!(prom.contains("serve_submitted_total 24"));
        assert!(prom.contains("# TYPE serve_latency_ns summary"));

        let jsonl = std::fs::read_to_string(dir.join("metrics.jsonl")).expect("metrics.jsonl");
        let last = jsonl.lines().last().expect("≥1 snapshot line");
        let snap = mergepath::telemetry::json::parse(last).expect("snapshot parses");
        assert_eq!(
            snap.get("type").and_then(|v| v.as_str()),
            Some("metrics_snapshot")
        );

        let envelope =
            std::fs::read_to_string(dir.join("METRICS_serve.json")).expect("METRICS_serve.json");
        let doc = check_artifact(&envelope, "metrics_serve").expect("metrics envelope");
        let payload = doc.get("payload").expect("payload");
        assert_eq!(
            payload
                .get("snapshot")
                .and_then(|s| s.get("counters"))
                .and_then(|c| c.get("serve_submitted_total"))
                .and_then(Value::as_f64),
            Some(24.0)
        );
        let dumps = payload
            .get("dumps")
            .and_then(Value::as_array)
            .expect("dumps array");
        assert!(!dumps.is_empty(), "deadline miss must have dumped");
        let dump_path = dumps[0].as_str().expect("dump path string");
        let dump = std::fs::read_to_string(dump_path).expect("dump readable");
        let header = mergepath::telemetry::json::parse(dump.lines().next().unwrap()).unwrap();
        assert_eq!(
            header.get("trigger").and_then(|v| v.as_str()),
            Some("deadline_miss")
        );
        mergepath_serve::observe::remove_scratch_dir(&dir);
    }

    #[test]
    fn overhead_measurement_produces_sane_numbers() {
        let o = measure_serve_overhead(16, 256, 3, 2, 11);
        assert_eq!(o.requests, 16);
        assert_eq!(o.reps, 21, "rep count is floored for a stable trimmed mean");
        assert!(o.wall_off_ns > 0 && o.wall_on_ns > 0);
        assert!(o.p99_off_ns > 0 && o.p99_on_ns > 0);
        assert!(o.hook_ns_per_request > 0.0, "the hook loop was timed");
        assert!(o.wall_ratio >= 0.0);
        assert!(o.overhead > 0.0, "hook cost over service time is never 0");
        let parsed = mergepath::telemetry::json::parse(&o.to_json()).expect("overhead json");
        for key in ["overhead", "wall_ratio", "hook_ns_per_request"] {
            assert!(parsed.get(key).and_then(Value::as_f64).is_some(), "{key}");
        }
    }
}
