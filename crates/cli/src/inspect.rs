//! `mp inspect` — render observability artifacts human-readably.
//!
//! The serving daemon's live layer emits three machine formats (DESIGN.md
//! §12): flight dumps (`flight-NNN-<trigger>.jsonl`), metrics-snapshot
//! JSONL streams (`metrics.jsonl`), and the `METRICS_serve.json` envelope.
//! This module detects which one a file is from its content and renders a
//! post-mortem view: dump events grouped per request in lifecycle order
//! with inter-event timing, snapshot counters/gauges/quantiles as a table,
//! and the envelope's final snapshot plus its dump index.

use std::fmt::Write as _;

use crate::CliError;
use mergepath::telemetry::artifact::check_artifact;
use mergepath::telemetry::json::{self, Value};
use mergepath_serve::FlightEventKind;

/// Renders `contents` (read from `path`) according to its detected format.
///
/// # Errors
/// Returns [`CliError::CheckFailed`] when the file is not one of the three
/// observability formats or is malformed.
pub fn render_inspect(path: &str, contents: &str) -> Result<String, CliError> {
    let first = contents
        .lines()
        .next()
        .ok_or_else(|| CliError::CheckFailed(format!("{path}: empty file")))?;
    let head =
        json::parse(first).map_err(|e| CliError::CheckFailed(format!("{path}: not JSON ({e})")))?;
    match head.get("type").and_then(Value::as_str) {
        Some("flight_dump") => render_flight_dump(path, &head, contents),
        Some("metrics_snapshot") => render_snapshot_stream(path, contents),
        Some("metrics_serve") => render_metrics_envelope(path, contents),
        Some(other) => Err(CliError::CheckFailed(format!(
            "{path}: unknown document type {other:?} (expected flight_dump, \
             metrics_snapshot, or metrics_serve)"
        ))),
        None => Err(CliError::CheckFailed(format!(
            "{path}: first line carries no string `type`"
        ))),
    }
}

fn f64_field(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// One parsed `flight_event` line.
struct Event {
    seq: u64,
    t_ns: f64,
    request_id: u64,
    kind: String,
    arg0: f64,
    arg1: f64,
}

/// What an event's `arg0`/`arg1` mean, spelled out per kind (mirrors the
/// [`FlightEventKind`] payload contract). `t_ns` is the event's own
/// timestamp (Dequeue derives queue wait from it and the submit stamp).
fn describe_args(kind: &str, t_ns: f64, arg0: f64, arg1: f64) -> String {
    match FlightEventKind::parse(kind) {
        Some(FlightEventKind::Submit) => {
            if arg0 == 0.0 {
                "no deadline".to_string()
            } else {
                format!("deadline@{}", fmt_ns(arg0))
            }
        }
        Some(FlightEventKind::RejectQueueFull) => format!("capacity={arg0:.0}"),
        Some(FlightEventKind::Dequeue) => {
            format!("waited {} depth={arg1:.0}", fmt_ns((t_ns - arg0).max(0.0)))
        }
        Some(FlightEventKind::RejectDeadline) => {
            format!("deadline@{} late by {}", fmt_ns(arg0), fmt_ns(arg1))
        }
        Some(FlightEventKind::Start) => format!("share={arg0:.0} inflight={arg1:.0}"),
        Some(FlightEventKind::Complete) => {
            format!("latency={} compute={}", fmt_ns(arg0), fmt_ns(arg1))
        }
        Some(FlightEventKind::Fail) => "kernel panicked (contained)".to_string(),
        None => format!("arg0={arg0} arg1={arg1}"),
    }
}

fn render_flight_dump(path: &str, head: &Value, contents: &str) -> Result<String, CliError> {
    let mut out = format!(
        "flight dump {path}\n  trigger={} seq={:.0} events={:.0} at t={}\n",
        head.get("trigger").and_then(Value::as_str).unwrap_or("?"),
        f64_field(head, "seq"),
        f64_field(head, "events"),
        fmt_ns(f64_field(head, "t_ns")),
    );
    if let Some(counters) = head.get("counters").and_then(Value::as_object) {
        out.push_str("  counters at dump time:\n");
        for (name, v) in counters {
            let _ = writeln!(out, "    {name:<36} {:>10.0}", v.as_f64().unwrap_or(0.0));
        }
    }
    let mut events = Vec::new();
    for (i, line) in contents.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line)
            .map_err(|e| CliError::CheckFailed(format!("{path}:{}: {e}", i + 1)))?;
        if v.get("type").and_then(Value::as_str) != Some("flight_event") {
            return Err(CliError::CheckFailed(format!(
                "{path}:{}: expected a flight_event line",
                i + 1
            )));
        }
        events.push(Event {
            seq: f64_field(&v, "seq") as u64,
            t_ns: f64_field(&v, "t_ns"),
            request_id: f64_field(&v, "request_id") as u64,
            kind: v
                .get("kind")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            arg0: f64_field(&v, "arg0"),
            arg1: f64_field(&v, "arg1"),
        });
    }
    // Group by request, each request's events in seq order; requests
    // ordered by their first appearance in the ring (oldest first), so the
    // anomaly the dump was triggered by reads bottom-up like a log tail.
    events.sort_by_key(|e| e.seq);
    let mut order: Vec<u64> = Vec::new();
    for e in &events {
        if !order.contains(&e.request_id) {
            order.push(e.request_id);
        }
    }
    let t0 = events.first().map(|e| e.t_ns).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "  {} event(s) across {} request(s), ring window {}:",
        events.len(),
        order.len(),
        fmt_ns(events.last().map(|e| e.t_ns - t0).unwrap_or(0.0)),
    );
    for id in order {
        let _ = writeln!(out, "  request {id}:");
        let mut prev: Option<f64> = None;
        for e in events.iter().filter(|e| e.request_id == id) {
            let delta = prev.map(|p| e.t_ns - p).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "    +{:<10} {:<18} {}  [seq {}]",
                fmt_ns(delta),
                e.kind,
                describe_args(&e.kind, e.t_ns, e.arg0, e.arg1),
                e.seq,
            );
            prev = Some(e.t_ns);
        }
    }
    Ok(out)
}

/// Renders one parsed `metrics_snapshot` object as an indented table.
fn render_snapshot(out: &mut String, snap: &Value) {
    let _ = writeln!(out, "  snapshot at t={}", fmt_ns(f64_field(snap, "t_ns")));
    for (section, title) in [("counters", "counters"), ("gauges", "gauges")] {
        if let Some(map) = snap.get(section).and_then(Value::as_object) {
            let _ = writeln!(out, "  {title}:");
            for (name, v) in map {
                let _ = writeln!(out, "    {name:<36} {:>10.0}", v.as_f64().unwrap_or(0.0));
            }
        }
    }
    if let Some(hists) = snap.get("histograms").and_then(Value::as_object) {
        let _ = writeln!(
            out,
            "  histograms:\n    {:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in hists {
            let _ = writeln!(
                out,
                "    {name:<28} {:>8.0} {:>10} {:>10} {:>10} {:>10}",
                f64_field(h, "count"),
                fmt_ns(f64_field(h, "p50_ns")),
                fmt_ns(f64_field(h, "p90_ns")),
                fmt_ns(f64_field(h, "p99_ns")),
                fmt_ns(f64_field(h, "max_ns")),
            );
        }
    }
}

fn render_snapshot_stream(path: &str, contents: &str) -> Result<String, CliError> {
    let mut last = None;
    let mut count = 0usize;
    for (i, line) in contents.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line)
            .map_err(|e| CliError::CheckFailed(format!("{path}:{}: {e}", i + 1)))?;
        if v.get("type").and_then(Value::as_str) != Some("metrics_snapshot") {
            return Err(CliError::CheckFailed(format!(
                "{path}:{}: expected a metrics_snapshot line",
                i + 1
            )));
        }
        count += 1;
        last = Some(v);
    }
    let last = last.ok_or_else(|| CliError::CheckFailed(format!("{path}: no snapshots")))?;
    let mut out = format!("metrics stream {path}: {count} snapshot(s); latest:\n");
    render_snapshot(&mut out, &last);
    Ok(out)
}

fn render_metrics_envelope(path: &str, contents: &str) -> Result<String, CliError> {
    let doc = check_artifact(contents, "metrics_serve")
        .map_err(|e| CliError::CheckFailed(format!("{path}: {e}")))?;
    let payload = doc
        .get("payload")
        .ok_or_else(|| CliError::CheckFailed(format!("{path}: envelope without payload")))?;
    let mut out = format!("metrics envelope {path} (schema-checked):\n");
    if let Some(snap) = payload.get("snapshot") {
        render_snapshot(&mut out, snap);
    }
    match payload.get("dumps").and_then(Value::as_array) {
        Some(dumps) if !dumps.is_empty() => {
            let _ = writeln!(out, "  flight dumps ({}):", dumps.len());
            for d in dumps {
                let _ = writeln!(out, "    {}", d.as_str().unwrap_or("?"));
            }
        }
        _ => out.push_str("  flight dumps: none (no anomalies)\n"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergepath_serve::observe::{remove_scratch_dir, test_scratch_dir};
    use mergepath_workloads::ArrivalPattern;

    /// End-to-end: a deadline-missing serve run's artifacts all render.
    #[test]
    fn inspect_renders_every_live_artifact_format() {
        let dir = test_scratch_dir("inspect");
        crate::serve_bench::run_serve(&crate::serve_bench::ServeRunConfig {
            requests: 16,
            concurrency: 2,
            queue_capacity: 16,
            deadline_ns: 1,
            pattern: ArrivalPattern::Steady,
            mean_len: 128,
            worker_budget: 2,
            seed: 8,
            metrics_out: Some(dir.to_string_lossy().into_owned()),
        });

        let read = |name: &str| std::fs::read_to_string(dir.join(name)).expect(name);
        let stream = render_inspect("metrics.jsonl", &read("metrics.jsonl")).expect("stream");
        assert!(stream.contains("serve_submitted_total"));
        assert!(stream.contains("histograms:"));

        let envelope =
            render_inspect("METRICS_serve.json", &read("METRICS_serve.json")).expect("envelope");
        assert!(envelope.contains("schema-checked"));
        assert!(envelope.contains("flight dumps (1)"));

        let dump_name = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .find(|n| n.starts_with("flight-"))
            .expect("a flight dump exists");
        let dump = render_inspect(&dump_name, &read(&dump_name)).expect("dump");
        assert!(dump.contains("trigger=deadline_miss"));
        assert!(dump.contains("reject_deadline"));
        assert!(dump.contains("request "));
        remove_scratch_dir(&dir);
    }

    #[test]
    fn inspect_rejects_unknown_and_empty_documents() {
        assert!(render_inspect("x", "").is_err());
        assert!(render_inspect("x", "not json").is_err());
        assert!(render_inspect("x", "{\"type\":\"mystery\"}").is_err());
    }
}
