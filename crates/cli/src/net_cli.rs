//! `mp serve --listen` / `mp client` — the out-of-process front end.
//!
//! [`run_listen`] binds the TCP daemon ([`NetServer`]) and blocks until
//! stdin reaches EOF (the conventional "run until the supervisor closes
//! the pipe" contract; `cargo xtask verify-net` drives it exactly that
//! way). [`run_client`] is the matching load generator: it regenerates
//! deterministic request inputs across **all nine adversarial merge
//! families**, pipelines them over one connection, and verifies every
//! `ok` response byte-for-byte against the in-process sequential oracle
//! (`merge_into_by`) — the loopback twin of the invariant
//! `tests/serve_invariants.rs` proves in-process.
//!
//! With `--malformed` the client additionally probes the daemon's
//! protocol hygiene: a garbage frame on a throwaway connection must be
//! answered by a clean close of *that* connection only, after which a
//! fresh connection still serves.

use std::fmt::Write as _;
use std::io::Read as _;

use mergepath::merge::sequential::merge_into_by;
use mergepath::telemetry::artifact::{render_artifact, EnvFingerprint};
use mergepath_serve::{
    NetClient, NetOp, NetRequest, NetServer, NetStatus, NoRecorder, QueuePolicy, ServeConfig,
};
use mergepath_workloads::{merge_pair_sized, MergeWorkload};

use crate::CliError;

/// Knobs of one `mp serve --listen` session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListenConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Serving threads (maximum in-flight requests).
    pub concurrency: usize,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Mean request length the batching ceiling is sized from.
    pub mean_len: usize,
    /// Pool-thread budget shared by in-flight requests.
    pub worker_budget: usize,
}

/// The [`ServeConfig`] a listen session runs: the daemon's default EDF
/// policy with coalescing sized to several mean requests.
fn listen_serve_config(cfg: &ListenConfig) -> ServeConfig {
    ServeConfig {
        queue_capacity: cfg.queue_capacity,
        max_inflight: cfg.concurrency,
        worker_budget: cfg.worker_budget,
        policy: QueuePolicy::Edf,
        batch_max_items: cfg.mean_len * 8,
    }
}

/// Binds the TCP daemon, prints `listening on ADDR` (flushed, so a
/// supervisor can parse the ephemeral port), blocks until stdin reaches
/// EOF, then shuts down and returns the final stats summary.
///
/// # Errors
/// Returns [`CliError::Io`] if the bind fails.
pub fn run_listen(cfg: &ListenConfig) -> Result<String, CliError> {
    let server = NetServer::start(listen_serve_config(cfg), NoRecorder, cfg.addr.as_str())
        .map_err(|e| CliError::Io(format!("bind {}: {e}", cfg.addr)))?;
    println!("mp serve: listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Serve until the supervisor closes our stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().lock().read_to_end(&mut sink);

    let protocol_errors = server.protocol_errors();
    let s = server.shutdown();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mp serve: shutdown submitted={} completed={} rejected_queue_full={} \
         rejected_deadline={} failed={} lost={} batched_rounds={} protocol_errors={}",
        s.submitted,
        s.completed,
        s.rejected_queue_full,
        s.rejected_deadline,
        s.failed,
        s.lost(),
        s.batched_rounds,
        protocol_errors,
    );
    Ok(out)
}

/// Knobs of one `mp client` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Daemon address, e.g. `127.0.0.1:4780`.
    pub addr: String,
    /// Requests to pipeline over the connection.
    pub requests: usize,
    /// Mean per-side input length.
    pub mean_len: usize,
    /// Input-synthesis seed.
    pub seed: u64,
    /// Relative deadline per request, milliseconds (0 = none).
    pub deadline_ms: u64,
    /// Also probe protocol hygiene with a malformed frame.
    pub malformed: bool,
    /// When set, write the `net_loopback` artifact here.
    pub out: Option<String>,
}

/// One prepared request with its oracle answer.
struct ClientRequest {
    workload: MergeWorkload,
    a: Vec<u32>,
    b: Vec<u32>,
    expected: Vec<u32>,
}

/// Deterministic request mix: the nine adversarial families round-robin,
/// per-side lengths varying around `mean_len` so frames are ragged.
fn prepare(requests: usize, mean_len: usize, seed: u64) -> Vec<ClientRequest> {
    (0..requests)
        .map(|i| {
            let workload = MergeWorkload::ALL[i % MergeWorkload::ALL.len()];
            let len_a = mean_len / 2 + (i * 37) % mean_len.max(1);
            let len_b = mean_len / 2 + (i * 61 + 13) % mean_len.max(1);
            let (a, b) = merge_pair_sized(workload, len_a, len_b, seed.wrapping_add(i as u64));
            let mut expected = vec![0u32; a.len() + b.len()];
            merge_into_by(&a, &b, &mut expected, &|x: &u32, y: &u32| x.cmp(y));
            ClientRequest {
                workload,
                a,
                b,
                expected,
            }
        })
        .collect()
}

fn io_err(ctx: &str, e: impl core::fmt::Display) -> CliError {
    CliError::Io(format!("{ctx}: {e}"))
}

/// Result of the `--malformed` hygiene probe.
struct MalformedProbe {
    connection_closed: bool,
    daemon_survived: bool,
}

/// Sends 32 bytes of garbage (a full header's worth of wrong magic) on a
/// throwaway connection and checks the daemon closes it — then proves a
/// fresh connection still serves.
fn probe_malformed(addr: &str) -> Result<MalformedProbe, CliError> {
    let mut bad = NetClient::connect(addr).map_err(|e| io_err("connect (malformed probe)", e))?;
    bad.send_raw(&[0xBAu8; 32])
        .map_err(|e| io_err("send malformed frame", e))?;
    // The daemon must answer a garbage frame by closing the connection:
    // the next read sees either a clean EOF or a reset, never a response
    // frame and never a hang.
    let connection_closed = match bad.recv() {
        Ok(None) => true,
        Ok(Some(_)) => false,
        Err(_) => true,
    };

    let mut fresh = NetClient::connect(addr).map_err(|e| io_err("reconnect after probe", e))?;
    let resp = fresh
        .call(&NetRequest {
            id: u64::MAX,
            deadline_rel_ns: 0,
            op: NetOp::Merge {
                a: vec![1, 3],
                b: vec![2, 4],
            },
        })
        .map_err(|e| io_err("call after probe", e))?;
    let daemon_survived = resp.status == NetStatus::Ok && resp.output == vec![1, 2, 3, 4];
    Ok(MalformedProbe {
        connection_closed,
        daemon_survived,
    })
}

/// Runs the loopback client. Returns the human summary; when
/// `cfg.out` is set the `net_loopback` artifact is also written there.
///
/// # Errors
/// [`CliError::Io`] on connection trouble, [`CliError::CheckFailed`] if
/// any `ok` response differs from the oracle, a response goes missing, or
/// the `--malformed` probe finds the daemon misbehaving.
pub fn run_client(cfg: &ClientConfig) -> Result<String, CliError> {
    let prepared = prepare(cfg.requests, cfg.mean_len, cfg.seed);
    let mut client = NetClient::connect(cfg.addr.as_str()).map_err(|e| io_err("connect", e))?;

    // Pipelined: every request goes out before the first response is
    // read. The daemon's per-connection writer preserves submission
    // order, so responses come back in id order.
    let deadline_rel_ns = cfg.deadline_ms * 1_000_000;
    for (i, p) in prepared.iter().enumerate() {
        client
            .send(&NetRequest {
                id: i as u64,
                deadline_rel_ns,
                op: NetOp::Merge {
                    a: p.a.clone(),
                    b: p.b.clone(),
                },
            })
            .map_err(|e| io_err("send", e))?;
    }

    let mut ok = 0usize;
    let mut rejected_queue_full = 0usize;
    let mut rejected_deadline = 0usize;
    let mut failed = 0usize;
    let mut mismatches = 0usize;
    for (i, p) in prepared.iter().enumerate() {
        let resp = match client.recv() {
            Ok(Some(resp)) => resp,
            Ok(None) => {
                return Err(CliError::CheckFailed(format!(
                    "connection closed after {i} of {} responses",
                    prepared.len()
                )))
            }
            Err(e) => return Err(CliError::CheckFailed(format!("response {i}: {e}"))),
        };
        if resp.id != i as u64 {
            return Err(CliError::CheckFailed(format!(
                "response order violated: expected id {i}, got {}",
                resp.id
            )));
        }
        match resp.status {
            NetStatus::Ok => {
                ok += 1;
                if resp.output != p.expected {
                    mismatches += 1;
                }
            }
            NetStatus::RejectedQueueFull => rejected_queue_full += 1,
            NetStatus::RejectedDeadline => rejected_deadline += 1,
            NetStatus::Failed => failed += 1,
        }
    }

    let probe = if cfg.malformed {
        Some(probe_malformed(&cfg.addr)?)
    } else {
        None
    };

    let mut out = format!(
        "mp client: addr={} requests={} mean_len={} seed={} deadline={}ms\n",
        cfg.addr, cfg.requests, cfg.mean_len, cfg.seed, cfg.deadline_ms,
    );
    let _ = writeln!(
        out,
        "  ok={ok} rejected_queue_full={rejected_queue_full} \
         rejected_deadline={rejected_deadline} failed={failed} mismatches={mismatches}",
    );
    let families: Vec<&'static str> = {
        let mut seen = Vec::new();
        for p in &prepared {
            if !seen.contains(&p.workload.name()) {
                seen.push(p.workload.name());
            }
        }
        seen
    };
    let _ = writeln!(out, "  families: {}", families.join(" "));
    if let Some(p) = &probe {
        let _ = writeln!(
            out,
            "  malformed probe: connection_closed={} daemon_survived={}",
            p.connection_closed, p.daemon_survived,
        );
    }

    if let Some(path) = &cfg.out {
        let mut payload = format!(
            "{{\"addr\":\"{}\",\"requests\":{},\"mean_len\":{},\"seed\":{},\
             \"deadline_ms\":{},\"ok\":{ok},\"rejected_queue_full\":{rejected_queue_full},\
             \"rejected_deadline\":{rejected_deadline},\"failed\":{failed},\
             \"mismatches\":{mismatches},\"families\":[",
            cfg.addr, cfg.requests, cfg.mean_len, cfg.seed, cfg.deadline_ms,
        );
        for (i, f) in families.iter().enumerate() {
            if i > 0 {
                payload.push(',');
            }
            let _ = write!(payload, "\"{f}\"");
        }
        payload.push(']');
        if let Some(p) = &probe {
            let _ = write!(
                payload,
                ",\"malformed_probe\":{{\"connection_closed\":{},\"daemon_survived\":{}}}",
                p.connection_closed, p.daemon_survived,
            );
        }
        payload.push('}');
        let env = EnvFingerprint::capture();
        let doc = render_artifact("net_loopback", &env, &payload)
            .map_err(|e| CliError::Io(format!("net_loopback artifact: {e}")))?;
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, doc).map_err(|e| io_err(path, e))?;
        let _ = writeln!(out, "  artifact: {path}");
    }

    if mismatches != 0 {
        return Err(CliError::CheckFailed(format!(
            "{mismatches} completed response(s) differed from the sequential oracle"
        )));
    }
    if ok + rejected_queue_full + rejected_deadline + failed != cfg.requests {
        return Err(CliError::CheckFailed("responses went missing".into()));
    }
    if let Some(p) = &probe {
        if !p.connection_closed {
            return Err(CliError::CheckFailed(
                "daemon answered a malformed frame instead of closing".into(),
            ));
        }
        if !p.daemon_survived {
            return Err(CliError::CheckFailed(
                "daemon stopped serving after a malformed frame".into(),
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergepath::telemetry::artifact::check_artifact;
    use mergepath::telemetry::json::Value;

    fn local_daemon() -> NetServer {
        NetServer::start(
            ServeConfig {
                queue_capacity: 256,
                max_inflight: 2,
                worker_budget: 2,
                policy: QueuePolicy::Edf,
                batch_max_items: 2048,
            },
            NoRecorder,
            "127.0.0.1:0",
        )
        .expect("bind loopback")
    }

    #[test]
    fn client_round_trips_all_nine_families_and_probes_hygiene() {
        let server = local_daemon();
        let addr = server.local_addr().to_string();
        let dir = mergepath_serve::observe::test_scratch_dir("net-cli");
        let artifact_path = dir.join("NET_loopback.json");
        let out = run_client(&ClientConfig {
            addr,
            requests: 27, // 3 × the nine families
            mean_len: 128,
            seed: 7,
            deadline_ms: 0,
            malformed: true,
            out: Some(artifact_path.to_string_lossy().into_owned()),
        })
        .expect("loopback run");
        assert!(out.contains("ok=27"), "{out}");
        assert!(out.contains("mismatches=0"), "{out}");
        assert!(
            out.contains("malformed probe: connection_closed=true daemon_survived=true"),
            "{out}"
        );
        for family in MergeWorkload::ALL {
            assert!(out.contains(family.name()), "{}: missing", family.name());
        }

        let doc = std::fs::read_to_string(&artifact_path).expect("artifact written");
        let v = check_artifact(&doc, "net_loopback").expect("envelope");
        let payload = v.get("payload").unwrap();
        assert_eq!(payload.get("ok").and_then(Value::as_f64), Some(27.0));
        assert_eq!(payload.get("mismatches").and_then(Value::as_f64), Some(0.0));
        assert_eq!(
            payload
                .get("families")
                .and_then(Value::as_array)
                .map(|f| f.len()),
            Some(9)
        );
        assert_eq!(
            payload
                .get("malformed_probe")
                .and_then(|p| p.get("daemon_survived"))
                .and_then(|b| match b {
                    Value::Bool(b) => Some(*b),
                    _ => None,
                }),
            Some(true)
        );

        // The garbage frame was counted, and the daemon lost nothing.
        assert_eq!(server.protocol_errors(), 1);
        let stats = server.shutdown();
        assert_eq!(stats.lost(), 0);
        assert_eq!(stats.completed, 27 + 1); // + the post-probe request
        mergepath_serve::observe::remove_scratch_dir(&dir);
    }

    #[test]
    fn client_reports_connection_failure_as_io() {
        // A port nothing listens on: connect must fail cleanly.
        let err = run_client(&ClientConfig {
            addr: "127.0.0.1:1".into(),
            requests: 1,
            mean_len: 16,
            seed: 1,
            deadline_ms: 0,
            malformed: false,
            out: None,
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_)), "{err:?}");
    }
}
