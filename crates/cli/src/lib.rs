//! # mergepath-cli — the `mp` command
//!
//! A small command-line front end over the `mergepath` library:
//!
//! ```text
//! mp merge  A.txt B.txt [-o OUT] [--threads N] [--numeric]
//! mp sort   FILE       [-o OUT] [--threads N] [--numeric] [--algo ALGO]
//! mp select A.txt B.txt --rank K [--numeric]       # k-th of the merged view
//! mp check  FILE [--numeric]                        # is the file sorted?
//! mp check  --kernel K|all [--n N] [--threads P] [--seed S]
//!           [--schedules K]                          # schedule-exploration check
//! mp trace  --kernel K [--n N] [--threads P] [--seed S]
//!           [--trace-out F] [--metrics-out F]       # run + record telemetry
//! mp bench  [--n N] [--threads P] [--seed S] [--reps R]
//!           [--out-dir D] [--smoke] [--serve]       # BENCH_*.json artifacts
//! mp serve  [--requests N] [--concurrency C] [--queue-capacity Q]
//!           [--deadline-ms D] [--pattern P] [--n LEN] [--threads B]
//!           [--seed S] [--metrics-out DIR]          # live daemon session
//! mp serve  --listen ADDR [--concurrency C] [--queue-capacity Q]
//!           [--n LEN] [--threads B]                 # TCP daemon (until stdin EOF)
//! mp client --addr ADDR [--requests N] [--n LEN] [--seed S]
//!           [--deadline-ms D] [--malformed] [--out F] # loopback load + oracle check
//! mp inspect FILE                                   # render metrics / flight dumps
//! ```
//!
//! `mp check --kernel …` drives the deterministic schedule checker
//! (`mergepath-check`): the kernel runs under several seed-permuted
//! single-threaded virtual schedules while a shadow recorder captures every
//! output write, and the tool verifies CREW exclusivity (Thm 9), exact
//! coverage, the Thm 14 `⌈N/p⌉` bound, and byte-identical agreement with a
//! sequential oracle. Violations exit non-zero with the offending schedule
//! and round.
//!
//! `mp trace` runs one kernel on a synthetic workload with the
//! [`TimelineRecorder`](mergepath::telemetry::TimelineRecorder) attached and
//! writes a Chrome `trace_event` JSON file (loadable in Perfetto /
//! `chrome://tracing`) plus a flat JSONL metrics stream ending in a
//! load-balance summary line (Theorem 14's `⌈N/p⌉` prediction against the
//! observed per-worker element counts).
//!
//! Files are line-oriented. By default lines compare lexicographically
//! (like `sort`); `--numeric` parses each line as an `i64` (like
//! `sort -n`) and reports the first unparsable line. `mp merge` requires
//! both inputs to be sorted and verifies that up front, pinpointing the
//! first out-of-order line — the library's `try_*` discipline surfacing
//! in the tool.
//!
//! The argument parser is hand-rolled (the workspace's no-extra-deps
//! stance); all logic lives in this library crate so it is unit-testable,
//! with `main.rs` a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod inspect;
pub mod net_cli;
pub mod serve_bench;

use std::fmt::Write as _;

use mergepath::merge::batch::batch_merge_into_recorded;
use mergepath::merge::hierarchical::{hierarchical_merge_into_recorded, HierarchicalConfig};
use mergepath::merge::inplace::parallel_inplace_merge_recorded;
use mergepath::merge::kway::parallel_kway_merge_recorded;
use mergepath::merge::parallel::{parallel_merge_into_by, parallel_merge_into_recorded};
use mergepath::merge::segmented::{segmented_parallel_merge_into_recorded, SpmConfig};
use mergepath::select::kth_of_union_by;
use mergepath::sort::cache_aware::{
    cache_aware_parallel_sort_by, cache_aware_parallel_sort_recorded, CacheAwareConfig,
};
use mergepath::sort::kway::{kway_merge_sort_by, kway_merge_sort_recorded};
use mergepath::sort::natural::natural_merge_sort_by;
use mergepath::sort::parallel::{parallel_merge_sort_by, parallel_merge_sort_recorded};
use mergepath::telemetry::{LoadBalanceReport, TimelineRecorder};
use mergepath_workloads::{
    merge_pair_sized, sorted_keys, unsorted_keys, ArrivalPattern, MergeWorkload, SortWorkload,
};

/// Everything that can go wrong, with user-facing messages.
#[derive(Debug, PartialEq, Eq)]
pub enum CliError {
    /// Bad command line; the message includes usage.
    Usage(String),
    /// I/O problem reading or writing a file.
    Io(String),
    /// An input that must be sorted is not.
    NotSorted {
        /// Offending file name.
        file: String,
        /// 1-based line number of the first out-of-order line.
        line: usize,
    },
    /// `--numeric` was given but a line did not parse.
    BadNumber {
        /// Offending file name.
        file: String,
        /// 1-based line number.
        line: usize,
        /// The line's contents.
        text: String,
    },
    /// `--rank` out of range.
    RankOutOfRange {
        /// Requested rank.
        rank: usize,
        /// Total elements available.
        total: usize,
    },
    /// `mp check --kernel`: the schedule checker found a violation.
    CheckFailed(String),
}

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Io(msg) => write!(f, "io error: {msg}"),
            CliError::NotSorted { file, line } => {
                write!(f, "{file}: not sorted (first violation at line {line})")
            }
            CliError::BadNumber { file, line, text } => {
                write!(f, "{file}:{line}: not a number: {text:?}")
            }
            CliError::RankOutOfRange { rank, total } => {
                write!(f, "rank {rank} out of range (merged length {total})")
            }
            CliError::CheckFailed(msg) => write!(f, "check failed: {msg}"),
        }
    }
}

/// The usage text printed on argument errors.
pub const USAGE: &str = "usage:
  mp merge  A B [-o OUT] [--threads N] [--numeric]
  mp sort   FILE [-o OUT] [--threads N] [--numeric] [--algo parallel|kway|natural|cache-aware]
  mp select A B --rank K [--numeric]
  mp check  FILE [--numeric]
  mp check  --kernel KERNEL|all [--n N] [--threads P] [--seed S] [--schedules K]
            [--dispatch adaptive|classic|branch-lean|galloping|simd|co_rank] [--steal-orders]
  mp trace  --kernel KERNEL
            [--n N] [--threads P] [--seed S] [--trace-out F] [--metrics-out F]
  mp bench  [--n N] [--threads P] [--seed S] [--reps R] [--out-dir D] [--smoke] [--serve]
  mp serve  [--requests N] [--concurrency C] [--queue-capacity Q] [--deadline-ms D]
            [--pattern steady|bursty|heavy-tail] [--n LEN] [--threads B] [--seed S]
            [--metrics-out DIR]
  mp serve  --listen ADDR [--concurrency C] [--queue-capacity Q] [--n LEN] [--threads B]
  mp client --addr ADDR [--requests N] [--n LEN] [--seed S] [--deadline-ms D]
            [--malformed] [--out FILE]
  mp inspect FILE
where KERNEL is parallel|segmented|batch|inplace|kway|hierarchical|\
sort-parallel|sort-kway|sort-cache-aware";

/// Sorting algorithm selector for `mp sort`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortAlgo {
    /// The §III parallel merge sort (default).
    #[default]
    Parallel,
    /// Single-round k-way merge sort.
    Kway,
    /// Adaptive natural-runs sort.
    Natural,
    /// The §IV.C cache-aware sort.
    CacheAware,
}

impl SortAlgo {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "parallel" => Ok(SortAlgo::Parallel),
            "kway" => Ok(SortAlgo::Kway),
            "natural" => Ok(SortAlgo::Natural),
            "cache-aware" => Ok(SortAlgo::CacheAware),
            other => Err(CliError::Usage(format!("unknown --algo {other:?}"))),
        }
    }
}

/// Kernel selector for `mp trace` — every parallel kernel of the suite plus
/// the sorts built on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKernel {
    /// Algorithm 1 parallel merge.
    Parallel,
    /// Algorithm 2 segmented (SPM) merge.
    Segmented,
    /// Batched pairwise merges under one worker budget.
    Batch,
    /// Rotation-based parallel in-place merge.
    Inplace,
    /// Rank-partitioned parallel k-way merge.
    Kway,
    /// Two-level (GPU-shaped) hierarchical merge.
    Hierarchical,
    /// §III parallel merge sort.
    SortParallel,
    /// Single-round k-way merge sort.
    SortKway,
    /// §IV.C cache-aware sort.
    SortCacheAware,
}

impl TraceKernel {
    /// Parses a `--kernel` name.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "parallel" => Ok(TraceKernel::Parallel),
            "segmented" => Ok(TraceKernel::Segmented),
            "batch" => Ok(TraceKernel::Batch),
            "inplace" => Ok(TraceKernel::Inplace),
            "kway" => Ok(TraceKernel::Kway),
            "hierarchical" => Ok(TraceKernel::Hierarchical),
            "sort-parallel" => Ok(TraceKernel::SortParallel),
            "sort-kway" => Ok(TraceKernel::SortKway),
            "sort-cache-aware" => Ok(TraceKernel::SortCacheAware),
            other => Err(CliError::Usage(format!("unknown --kernel {other:?}"))),
        }
    }

    /// The kernel's `--kernel` name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKernel::Parallel => "parallel",
            TraceKernel::Segmented => "segmented",
            TraceKernel::Batch => "batch",
            TraceKernel::Inplace => "inplace",
            TraceKernel::Kway => "kway",
            TraceKernel::Hierarchical => "hierarchical",
            TraceKernel::SortParallel => "sort-parallel",
            TraceKernel::SortKway => "sort-kway",
            TraceKernel::SortCacheAware => "sort-cache-aware",
        }
    }
}

/// Per-segment dispatch override for `mp check --kernel`.
///
/// `adaptive` (the default) checks the probe's real choices; the fixed
/// variants pin every segment to one scalar kernel; `simd` pins the
/// vectorized kernel and switches the checker to primitive-key inputs with
/// the canonical comparator, since that is the only configuration the SIMD
/// eligibility gate lets through (on scalar `(key, tag)` inputs a forced
/// `simd` run would silently fall back and check nothing new).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckDispatch {
    /// Probe each segment (default).
    #[default]
    Adaptive,
    /// Force the classic two-pointer segment kernel.
    Classic,
    /// Force the branch-lean segment kernel.
    BranchLean,
    /// Force the galloping segment kernel.
    Galloping,
    /// Force the SIMD segment kernel on primitive-key inputs.
    Simd,
    /// Force the co-rank stable block kernel. Stays on the provenance-
    /// tagged `(key, tag)` duplicate-heavy inputs — exactly where stability
    /// is observable — so the checker's oracle comparison proves the
    /// kernel's stable tie break along with CREW exclusivity and the
    /// `⌈E/s⌉` exact-balance cap.
    CoRank,
}

impl CheckDispatch {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "adaptive" => Ok(CheckDispatch::Adaptive),
            "classic" => Ok(CheckDispatch::Classic),
            "branch-lean" => Ok(CheckDispatch::BranchLean),
            "galloping" => Ok(CheckDispatch::Galloping),
            "simd" => Ok(CheckDispatch::Simd),
            "co_rank" => Ok(CheckDispatch::CoRank),
            other => Err(CliError::Usage(format!("unknown --dispatch {other:?}"))),
        }
    }

    /// The core dispatch policy this selector forces.
    pub fn policy(self) -> mergepath::merge::adaptive::DispatchPolicy {
        use mergepath::merge::adaptive::{DispatchPolicy, SegmentKernel};
        match self {
            CheckDispatch::Adaptive => DispatchPolicy::Adaptive,
            CheckDispatch::Classic => DispatchPolicy::Fixed(SegmentKernel::Classic),
            CheckDispatch::BranchLean => DispatchPolicy::Fixed(SegmentKernel::BranchLean),
            CheckDispatch::Galloping => DispatchPolicy::Fixed(SegmentKernel::Galloping),
            CheckDispatch::Simd => DispatchPolicy::Fixed(SegmentKernel::Simd),
            CheckDispatch::CoRank => DispatchPolicy::Fixed(SegmentKernel::CoRank),
        }
    }
}

/// A parsed command.
#[derive(Debug, PartialEq, Eq)]
pub enum Command {
    /// `mp merge`.
    Merge {
        /// First sorted input.
        a: String,
        /// Second sorted input.
        b: String,
        /// Output path (stdout if absent).
        out: Option<String>,
        /// Worker count.
        threads: usize,
        /// Numeric comparison.
        numeric: bool,
    },
    /// `mp sort`.
    Sort {
        /// Input path.
        file: String,
        /// Output path (stdout if absent).
        out: Option<String>,
        /// Worker count.
        threads: usize,
        /// Numeric comparison.
        numeric: bool,
        /// Algorithm choice.
        algo: SortAlgo,
    },
    /// `mp select`.
    Select {
        /// First sorted input.
        a: String,
        /// Second sorted input.
        b: String,
        /// 0-based rank into the merged view.
        rank: usize,
        /// Numeric comparison.
        numeric: bool,
    },
    /// `mp check FILE`.
    Check {
        /// Input path.
        file: String,
        /// Numeric comparison.
        numeric: bool,
    },
    /// `mp check --kernel` — the deterministic schedule-exploration check.
    CheckSchedules {
        /// Kernel under check; `None` means all nine.
        kernel: Option<TraceKernel>,
        /// Total output size `N`.
        n: usize,
        /// Logical worker count `p`.
        threads: usize,
        /// Base seed for input synthesis and schedule permutations.
        seed: u64,
        /// Number of permuted virtual schedules per kernel.
        schedules: usize,
        /// Per-segment dispatch override active during the check.
        dispatch: CheckDispatch,
        /// Draw round orders from the simulated work-stealing deque
        /// protocol instead of uniform shuffles (`--steal-orders`).
        steal_orders: bool,
    },
    /// `mp trace`.
    Trace {
        /// Kernel to run under the recorder.
        kernel: TraceKernel,
        /// Total output size `N`.
        n: usize,
        /// Logical worker count `p`.
        threads: usize,
        /// Workload PRNG seed.
        seed: u64,
        /// Chrome trace output path (default `mp-trace.json`).
        trace_out: String,
        /// JSONL metrics output path (default `mp-metrics.jsonl`).
        metrics_out: String,
    },
    /// `mp bench` — the reproducible perf harness (see [`bench`]).
    Bench {
        /// Elements per measured merge/sort.
        n: usize,
        /// Logical worker count `p`.
        threads: usize,
        /// Workload PRNG seed.
        seed: u64,
        /// Timing repetitions per data point.
        reps: usize,
        /// Directory receiving the three `BENCH_*.json` artifacts.
        out_dir: String,
        /// Also run the serving sweep and emit `BENCH_serve.json`.
        serve: bool,
        /// `--smoke` was given: size the serving sweep for CI.
        smoke: bool,
    },
    /// `mp serve` — one live daemon session (see [`serve_bench`]).
    Serve {
        /// Requests in the arrival plan.
        requests: usize,
        /// Serving threads (maximum in-flight requests).
        concurrency: usize,
        /// Bounded admission-queue capacity.
        queue_capacity: usize,
        /// Relative per-request deadline, milliseconds (0 = none).
        deadline_ms: u64,
        /// Arrival process.
        pattern: ArrivalPattern,
        /// Mean per-side input length.
        mean_len: usize,
        /// Pool-thread budget shared by in-flight requests.
        threads: usize,
        /// Plan seed.
        seed: u64,
        /// Live-metrics output directory (`--metrics-out`), if any.
        metrics_out: Option<String>,
        /// `--listen ADDR`: run the TCP front end instead of the
        /// self-driving in-process session (handled by the `mp` binary —
        /// it blocks until stdin EOF).
        listen: Option<String>,
    },
    /// `mp client` — pipelined loopback load against `mp serve --listen`,
    /// every `ok` response checked against the sequential oracle (see
    /// [`net_cli`]).
    Client {
        /// Daemon address.
        addr: String,
        /// Requests to pipeline.
        requests: usize,
        /// Mean per-side input length.
        mean_len: usize,
        /// Input-synthesis seed.
        seed: u64,
        /// Relative deadline per request, milliseconds (0 = none).
        deadline_ms: u64,
        /// Also probe protocol hygiene with a malformed frame.
        malformed: bool,
        /// Artifact output path (`--out`), if any.
        out: Option<String>,
    },
    /// `mp inspect` — render a metrics snapshot, flight dump, or
    /// `METRICS_serve.json` envelope human-readably (see [`inspect`]).
    Inspect {
        /// Path of the file to render.
        file: String,
    },
}

/// Parses an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut out = None;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut numeric = false;
    let mut algo = SortAlgo::default();
    let mut rank: Option<usize> = None;
    let mut kernel: Option<&str> = None;
    let mut n: Option<usize> = None;
    let mut schedules = 8usize;
    let mut seed = 42u64;
    let mut trace_out = String::from("mp-trace.json");
    let mut metrics_out: Option<String> = None;
    let mut reps: Option<usize> = None;
    let mut out_dir = String::from(".");
    let mut smoke = false;
    let mut dispatch = CheckDispatch::default();
    let mut steal_orders = false;
    let mut serve = false;
    let mut requests = 256usize;
    let mut concurrency = 64usize;
    let mut queue_capacity = 256usize;
    let mut deadline_ms: Option<u64> = None;
    let mut pattern = ArrivalPattern::Steady;
    let mut listen: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut malformed = false;
    let mut it = args.iter();
    let sub = it
        .next()
        .ok_or_else(|| CliError::Usage("missing subcommand".into()))?;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--output" => {
                out = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("-o needs a path".into()))?
                        .clone(),
                );
            }
            "--threads" => {
                let t = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--threads needs a count".into()))?;
                threads = t
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t > 0)
                    .ok_or_else(|| CliError::Usage(format!("bad thread count {t:?}")))?;
            }
            "--numeric" | "-n" => numeric = true,
            "--algo" => {
                let a = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--algo needs a name".into()))?;
                algo = SortAlgo::parse(a)?;
            }
            "--rank" => {
                let r = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--rank needs an index".into()))?;
                rank = Some(
                    r.parse::<usize>()
                        .map_err(|_| CliError::Usage(format!("bad rank {r:?}")))?,
                );
            }
            "--kernel" => {
                kernel = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--kernel needs a name".into()))?,
                );
            }
            "--n" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--n needs a count".into()))?;
                n = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&v| v > 0)
                        .ok_or_else(|| CliError::Usage(format!("bad element count {v:?}")))?,
                );
            }
            "--schedules" => {
                let s = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--schedules needs a count".into()))?;
                schedules = s
                    .parse::<usize>()
                    .ok()
                    .filter(|&s| s > 0)
                    .ok_or_else(|| CliError::Usage(format!("bad schedule count {s:?}")))?;
            }
            "--seed" => {
                let s = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--seed needs a value".into()))?;
                seed = s
                    .parse::<u64>()
                    .map_err(|_| CliError::Usage(format!("bad seed {s:?}")))?;
            }
            "--trace-out" => {
                trace_out = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--trace-out needs a path".into()))?
                    .clone();
            }
            "--metrics-out" => {
                metrics_out = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--metrics-out needs a path".into()))?
                        .clone(),
                );
            }
            "--reps" => {
                let r = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--reps needs a count".into()))?;
                reps = Some(
                    r.parse::<usize>()
                        .ok()
                        .filter(|&r| r > 0)
                        .ok_or_else(|| CliError::Usage(format!("bad rep count {r:?}")))?,
                );
            }
            "--out-dir" => {
                out_dir = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--out-dir needs a path".into()))?
                    .clone();
            }
            "--smoke" => smoke = true,
            "--serve" => serve = true,
            "--requests" => {
                let r = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--requests needs a count".into()))?;
                requests = r
                    .parse::<usize>()
                    .ok()
                    .filter(|&r| r > 0)
                    .ok_or_else(|| CliError::Usage(format!("bad request count {r:?}")))?;
            }
            "--concurrency" => {
                let c = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--concurrency needs a count".into()))?;
                concurrency = c
                    .parse::<usize>()
                    .ok()
                    .filter(|&c| c > 0)
                    .ok_or_else(|| CliError::Usage(format!("bad concurrency {c:?}")))?;
            }
            "--queue-capacity" => {
                let q = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--queue-capacity needs a count".into()))?;
                queue_capacity = q
                    .parse::<usize>()
                    .ok()
                    .filter(|&q| q > 0)
                    .ok_or_else(|| CliError::Usage(format!("bad queue capacity {q:?}")))?;
            }
            "--deadline-ms" => {
                let d = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--deadline-ms needs a value".into()))?;
                deadline_ms = Some(
                    d.parse::<u64>()
                        .map_err(|_| CliError::Usage(format!("bad deadline {d:?}")))?,
                );
            }
            "--listen" => {
                listen = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--listen needs an address".into()))?
                        .clone(),
                );
            }
            "--addr" => {
                addr = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--addr needs an address".into()))?
                        .clone(),
                );
            }
            "--malformed" => malformed = true,
            "--out" => {
                out = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--out needs a path".into()))?
                        .clone(),
                );
            }
            "--pattern" => {
                let p = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--pattern needs a name".into()))?;
                pattern = ArrivalPattern::parse(p)
                    .ok_or_else(|| CliError::Usage(format!("unknown --pattern {p:?}")))?;
            }
            "--dispatch" => {
                let d = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--dispatch needs a name".into()))?;
                dispatch = CheckDispatch::parse(d)?;
            }
            "--steal-orders" => steal_orders = true,
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag {other:?}")));
            }
            other => positional.push(other),
        }
    }
    match (sub.as_str(), positional.as_slice()) {
        ("merge", [a, b]) => Ok(Command::Merge {
            a: a.to_string(),
            b: b.to_string(),
            out,
            threads,
            numeric,
        }),
        ("sort", [file]) => Ok(Command::Sort {
            file: file.to_string(),
            out,
            threads,
            numeric,
            algo,
        }),
        ("select", [a, b]) => Ok(Command::Select {
            a: a.to_string(),
            b: b.to_string(),
            rank: rank.ok_or_else(|| CliError::Usage("select needs --rank".into()))?,
            numeric,
        }),
        ("check", [file]) => Ok(Command::Check {
            file: file.to_string(),
            numeric,
        }),
        ("check", []) => {
            let kernel = match kernel
                .ok_or_else(|| CliError::Usage("check needs a FILE or --kernel".into()))?
            {
                "all" => None,
                name => Some(TraceKernel::parse(name)?),
            };
            Ok(Command::CheckSchedules {
                kernel,
                n: n.unwrap_or(4096),
                threads,
                seed,
                schedules,
                dispatch,
                steal_orders,
            })
        }
        ("trace", []) => Ok(Command::Trace {
            kernel: TraceKernel::parse(
                kernel.ok_or_else(|| CliError::Usage("trace needs --kernel".into()))?,
            )?,
            n: n.unwrap_or(1_000_000),
            threads,
            seed,
            trace_out,
            metrics_out: metrics_out.unwrap_or_else(|| "mp-metrics.jsonl".into()),
        }),
        ("bench", []) => {
            // --smoke sets CI-friendly defaults; explicit --n/--reps win.
            let defaults = if smoke {
                bench::BenchConfig::smoke(threads, seed)
            } else {
                bench::BenchConfig::full(threads, seed)
            };
            Ok(Command::Bench {
                n: n.unwrap_or(defaults.n),
                threads,
                seed,
                reps: reps.unwrap_or(defaults.reps),
                out_dir,
                serve,
                smoke,
            })
        }
        ("serve", []) => Ok(Command::Serve {
            requests,
            concurrency,
            queue_capacity,
            deadline_ms: deadline_ms.unwrap_or(50),
            pattern,
            mean_len: n.unwrap_or(2048),
            threads,
            seed,
            metrics_out,
            listen,
        }),
        ("client", []) => Ok(Command::Client {
            addr: addr.ok_or_else(|| CliError::Usage("client needs --addr".into()))?,
            requests,
            mean_len: n.unwrap_or(1024),
            seed,
            // Unlike `mp serve`, the loopback check defaults to no
            // deadline: every request should complete and be oracle-checked.
            deadline_ms: deadline_ms.unwrap_or(0),
            malformed,
            out,
        }),
        ("inspect", [file]) => Ok(Command::Inspect {
            file: file.to_string(),
        }),
        (sub, pos) => Err(CliError::Usage(format!(
            "bad arguments for {sub:?} (got {} positional argument(s))",
            pos.len()
        ))),
    }
}

/// A line plus its numeric key when `--numeric` is active.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Record {
    key: Option<i64>,
    text: String,
}

fn compare(numeric: bool) -> impl Fn(&Record, &Record) -> core::cmp::Ordering + Sync {
    move |x: &Record, y: &Record| {
        if numeric {
            x.key.cmp(&y.key)
        } else {
            x.text.cmp(&y.text)
        }
    }
}

/// Parses file contents into records, validating numerics.
pub fn parse_records(file: &str, contents: &str, numeric: bool) -> Result<Vec<Record>, CliError> {
    contents
        .lines()
        .enumerate()
        .map(|(idx, line)| {
            let key = if numeric {
                Some(
                    line.trim()
                        .parse::<i64>()
                        .map_err(|_| CliError::BadNumber {
                            file: file.to_string(),
                            line: idx + 1,
                            text: line.to_string(),
                        })?,
                )
            } else {
                None
            };
            Ok(Record {
                key,
                text: line.to_string(),
            })
        })
        .collect()
}

fn ensure_sorted(file: &str, records: &[Record], numeric: bool) -> Result<(), CliError> {
    let cmp = compare(numeric);
    for (idx, w) in records.windows(2).enumerate() {
        if cmp(&w[0], &w[1]) == core::cmp::Ordering::Greater {
            return Err(CliError::NotSorted {
                file: file.to_string(),
                line: idx + 1,
            });
        }
    }
    Ok(())
}

fn render(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = writeln!(out, "{}", r.text);
    }
    out
}

/// Executes a command against in-memory file contents (`load` maps path →
/// contents). Returns the text to print. Separated from real I/O so the
/// whole tool is unit-testable.
pub fn execute<L>(cmd: &Command, load: L) -> Result<String, CliError>
where
    L: Fn(&str) -> Result<String, CliError>,
{
    match cmd {
        Command::Merge {
            a,
            b,
            threads,
            numeric,
            ..
        } => {
            let ra = parse_records(a, &load(a)?, *numeric)?;
            let rb = parse_records(b, &load(b)?, *numeric)?;
            ensure_sorted(a, &ra, *numeric)?;
            ensure_sorted(b, &rb, *numeric)?;
            let mut merged = vec![Record::default(); ra.len() + rb.len()];
            parallel_merge_into_by(&ra, &rb, &mut merged, *threads, &compare(*numeric));
            Ok(render(&merged))
        }
        Command::Sort {
            file,
            threads,
            numeric,
            algo,
            ..
        } => {
            let mut records = parse_records(file, &load(file)?, *numeric)?;
            let cmp = compare(*numeric);
            match algo {
                SortAlgo::Parallel => parallel_merge_sort_by(&mut records, *threads, &cmp),
                SortAlgo::Kway => kway_merge_sort_by(&mut records, *threads, &cmp),
                SortAlgo::Natural => natural_merge_sort_by(&mut records, *threads, &cmp),
                SortAlgo::CacheAware => {
                    let cfg =
                        mergepath::sort::cache_aware::CacheAwareConfig::new(64 * 1024, *threads);
                    cache_aware_parallel_sort_by(&mut records, &cfg, &cmp);
                }
            }
            Ok(render(&records))
        }
        Command::Select {
            a,
            b,
            rank,
            numeric,
        } => {
            let ra = parse_records(a, &load(a)?, *numeric)?;
            let rb = parse_records(b, &load(b)?, *numeric)?;
            ensure_sorted(a, &ra, *numeric)?;
            ensure_sorted(b, &rb, *numeric)?;
            let total = ra.len() + rb.len();
            if *rank >= total {
                return Err(CliError::RankOutOfRange { rank: *rank, total });
            }
            let rec = kth_of_union_by(&ra, &rb, *rank, &compare(*numeric));
            Ok(format!("{}\n", rec.text))
        }
        Command::Check { file, numeric } => {
            let records = parse_records(file, &load(file)?, *numeric)?;
            match ensure_sorted(file, &records, *numeric) {
                Ok(()) => Ok(format!("{file}: sorted ({} lines)\n", records.len())),
                Err(e) => Err(e),
            }
        }
        Command::CheckSchedules {
            kernel,
            n,
            threads,
            seed,
            schedules,
            dispatch,
            steal_orders,
        } => {
            let cfg = mergepath_check::CheckConfig {
                threads: *threads,
                schedules: *schedules,
                seed: *seed,
                steal_orders: *steal_orders,
                ..mergepath_check::CheckConfig::default()
            };
            let kernels: Vec<mergepath_check::Kernel> = match kernel {
                Some(k) => vec![mergepath_check::Kernel::parse(k.name())
                    .expect("TraceKernel and check Kernel share names")],
                None => mergepath_check::Kernel::ALL.to_vec(),
            };
            // Forcing the SIMD kernel switches to primitive-key inputs:
            // the (key, tag) checker comparator is deliberately ineligible
            // for vectorization, so the scalar check set would fall back
            // and prove nothing about the vector path.
            let keyed = *dispatch == CheckDispatch::Simd;
            mergepath::merge::adaptive::with_dispatch_policy(dispatch.policy(), || {
                let mut out = String::new();
                for k in kernels {
                    let report = if keyed {
                        mergepath_check::check_kernel_keys(k, *n, &cfg)
                    } else {
                        mergepath_check::check_kernel(k, *n, &cfg)
                    }
                    .map_err(|e| CliError::CheckFailed(e.to_string()))?;
                    let _ = writeln!(out, "{report}");
                }
                Ok(out)
            })
        }
        Command::Trace {
            kernel,
            n,
            threads,
            seed,
            ..
        } => Ok(run_trace(*kernel, *n, *threads, *seed).summary),
        Command::Bench {
            n,
            threads,
            seed,
            reps,
            serve,
            smoke,
            ..
        } => {
            let cfg = bench::BenchConfig {
                n: *n,
                threads: *threads,
                seed: *seed,
                reps: *reps,
            };
            let mut summary = bench::run_bench(&cfg).summary;
            if *serve {
                let serve_cfg = if *smoke {
                    serve_bench::ServeBenchConfig::smoke(*threads, *seed)
                } else {
                    serve_bench::ServeBenchConfig::full(*threads, *seed)
                };
                summary.push_str(&serve_bench::run_serve_bench(&serve_cfg).summary);
            }
            Ok(summary)
        }
        Command::Serve {
            listen: Some(listen_addr),
            concurrency,
            queue_capacity,
            mean_len,
            threads,
            ..
        } => net_cli::run_listen(&net_cli::ListenConfig {
            addr: listen_addr.clone(),
            concurrency: *concurrency,
            queue_capacity: *queue_capacity,
            mean_len: *mean_len,
            worker_budget: *threads,
        }),
        Command::Serve {
            requests,
            concurrency,
            queue_capacity,
            deadline_ms,
            pattern,
            mean_len,
            threads,
            seed,
            metrics_out,
            listen: None,
        } => Ok(serve_bench::run_serve(&serve_bench::ServeRunConfig {
            requests: *requests,
            concurrency: *concurrency,
            queue_capacity: *queue_capacity,
            deadline_ns: deadline_ms * 1_000_000,
            pattern: *pattern,
            mean_len: *mean_len,
            worker_budget: *threads,
            seed: *seed,
            metrics_out: metrics_out.clone(),
        })),
        Command::Client {
            addr,
            requests,
            mean_len,
            seed,
            deadline_ms,
            malformed,
            out,
        } => net_cli::run_client(&net_cli::ClientConfig {
            addr: addr.clone(),
            requests: *requests,
            mean_len: *mean_len,
            seed: *seed,
            deadline_ms: *deadline_ms,
            malformed: *malformed,
            out: out.clone(),
        }),
        Command::Inspect { file } => inspect::render_inspect(file, &load(file)?),
    }
}

/// The rendered artifacts of one traced kernel run.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Human-readable summary for stdout.
    pub summary: String,
    /// Chrome `trace_event` JSON (Perfetto / `chrome://tracing`).
    pub chrome_json: String,
    /// Flat JSONL metrics: a run header, every event, then a
    /// `load_balance` summary line.
    pub metrics_jsonl: String,
    /// The derived load-balance report.
    pub report: LoadBalanceReport,
}

/// Runs `kernel` once on a deterministic synthetic workload of `n` total
/// output elements, reporting into `rec`. Generic over the recorder so the
/// same body drives both the untraced timing loops (`NoRecorder`) of
/// `mp bench` and the traced runs of `mp trace`.
pub fn run_kernel_recorded<R: mergepath::telemetry::Recorder>(
    kernel: TraceKernel,
    n: usize,
    threads: usize,
    seed: u64,
    rec: &R,
) {
    // The canonical comparator keeps traced/benched runs eligible for the
    // adaptive probe's SIMD arm, exactly like the public entry points.
    let cmp = mergepath::merge::simd::natural_cmp::<u32>;
    match kernel {
        TraceKernel::Parallel => {
            let (a, b) = merge_pair_sized(MergeWorkload::Uniform, n / 2, n - n / 2, seed);
            let mut out = vec![0u32; n];
            parallel_merge_into_recorded(&a, &b, &mut out, threads, &cmp, rec);
        }
        TraceKernel::Segmented => {
            let (a, b) = merge_pair_sized(MergeWorkload::Uniform, n / 2, n - n / 2, seed);
            let mut out = vec![0u32; n];
            let spm = SpmConfig::new(64 * 1024, threads);
            segmented_parallel_merge_into_recorded(&a, &b, &mut out, &spm, &cmp, rec);
        }
        TraceKernel::Batch => {
            // A ragged batch: one pair per worker, sizes differing by design.
            let pair_count = threads.max(2);
            let data: Vec<(Vec<u32>, Vec<u32>)> = (0..pair_count)
                .map(|i| {
                    let lo = i * n / pair_count;
                    let hi = (i + 1) * n / pair_count;
                    let total = hi - lo;
                    merge_pair_sized(
                        MergeWorkload::Uniform,
                        total / 2,
                        total - total / 2,
                        seed.wrapping_add(i as u64),
                    )
                })
                .collect();
            let pairs: Vec<(&[u32], &[u32])> = data
                .iter()
                .map(|(a, b)| (a.as_slice(), b.as_slice()))
                .collect();
            let mut out = vec![0u32; n];
            batch_merge_into_recorded(&pairs, &mut out, threads, &cmp, rec);
        }
        TraceKernel::Inplace => {
            let (a, b) = merge_pair_sized(MergeWorkload::Uniform, n / 2, n - n / 2, seed);
            let mid = a.len();
            let mut v = a;
            v.extend(b);
            parallel_inplace_merge_recorded(&mut v, mid, threads, &cmp, rec);
        }
        TraceKernel::Kway => {
            let k = 8usize.min(n.max(1));
            let lists: Vec<Vec<u32>> = (0..k)
                .map(|i| {
                    let lo = i * n / k;
                    let hi = (i + 1) * n / k;
                    sorted_keys(hi - lo, seed.wrapping_add(i as u64))
                })
                .collect();
            let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
            let mut out = vec![0u32; n];
            parallel_kway_merge_recorded(&refs, &mut out, threads, &cmp, rec);
        }
        TraceKernel::Hierarchical => {
            let (a, b) = merge_pair_sized(MergeWorkload::Uniform, n / 2, n - n / 2, seed);
            let mut out = vec![0u32; n];
            let cfg = HierarchicalConfig::new(threads);
            hierarchical_merge_into_recorded(&a, &b, &mut out, &cfg, &cmp, rec);
        }
        TraceKernel::SortParallel => {
            let mut v = unsorted_keys(SortWorkload::Uniform, n, seed);
            parallel_merge_sort_recorded(&mut v, threads, &cmp, rec);
        }
        TraceKernel::SortKway => {
            let mut v = unsorted_keys(SortWorkload::Uniform, n, seed);
            kway_merge_sort_recorded(&mut v, threads, &cmp, rec);
        }
        TraceKernel::SortCacheAware => {
            let mut v = unsorted_keys(SortWorkload::Uniform, n, seed);
            let cfg = CacheAwareConfig::new(64 * 1024, threads);
            cache_aware_parallel_sort_recorded(&mut v, &cfg, &cmp, rec);
        }
    }
}

/// Runs `kernel` on a deterministic synthetic workload of `n` total output
/// elements with the [`TimelineRecorder`] attached, and renders both
/// exporters plus the load-balance report.
pub fn run_trace(kernel: TraceKernel, n: usize, threads: usize, seed: u64) -> TraceRun {
    let rec = TimelineRecorder::new();
    run_kernel_recorded(kernel, n, threads, seed, &rec);
    let telemetry = rec.finish();
    let report = telemetry.load_balance(n as u64, threads);
    let chrome_json = telemetry.to_chrome_trace();

    let mut metrics_jsonl = format!(
        "{{\"type\":\"run\",\"kernel\":\"{}\",\"n\":{},\"threads\":{},\"seed\":{}}}\n",
        kernel.name(),
        n,
        threads,
        seed
    );
    metrics_jsonl.push_str(&telemetry.to_jsonl());
    metrics_jsonl.push_str(&report.to_json());
    metrics_jsonl.push('\n');

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "traced {}: n={} threads={} seed={}",
        kernel.name(),
        n,
        threads,
        seed
    );
    let _ = writeln!(
        summary,
        "  items/worker: max={} min={} predicted ceil(N/p)={} thm14_exact={}",
        report.max_items, report.min_items, report.predicted_max, report.thm14_exact
    );
    let _ = writeln!(
        summary,
        "  busy/worker:  max={:.3}ms min={:.3}ms mean={:.3}ms imbalance={:.3}",
        report.busy.max_ns as f64 / 1e6,
        report.busy.min_ns as f64 / 1e6,
        report.busy.mean_ns / 1e6,
        report.busy.imbalance
    );
    let comparisons: u64 = telemetry
        .counters
        .iter()
        .filter(|c| c.kind.name() == "comparisons")
        .map(|c| c.total)
        .sum();
    let probes: u64 = telemetry
        .counters
        .iter()
        .filter(|c| c.kind.name() == "diagonal_probe_steps")
        .map(|c| c.total)
        .sum();
    let _ = writeln!(
        summary,
        "  spans={} comparisons={} diagonal_probe_steps={} rounds={} round_wait={}ns",
        telemetry.spans.len(),
        comparisons,
        probes,
        telemetry.rounds.len(),
        report.total_wait_ns
    );
    TraceRun {
        summary,
        chrome_json,
        metrics_jsonl,
        report,
    }
}

/// Real-filesystem loader for [`execute`].
pub fn fs_loader(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    fn memfs<'f>(
        files: &'f [(&'f str, &'f str)],
    ) -> impl Fn(&str) -> Result<String, CliError> + 'f {
        move |path: &str| {
            files
                .iter()
                .find(|(p, _)| *p == path)
                .map(|(_, c)| c.to_string())
                .ok_or_else(|| CliError::Io(format!("{path}: not found")))
        }
    }

    #[test]
    fn parse_merge_command() {
        let cmd = parse_args(&argv("merge a.txt b.txt -o out.txt --threads 4 -n")).unwrap();
        assert_eq!(
            cmd,
            Command::Merge {
                a: "a.txt".into(),
                b: "b.txt".into(),
                out: Some("out.txt".into()),
                threads: 4,
                numeric: true
            }
        );
    }

    #[test]
    fn parse_errors_are_usage() {
        assert!(matches!(
            parse_args(&argv("merge only-one")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("frobnicate x")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("sort f --threads 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("sort f --algo bogus")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("select a b")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("sort f --bad-flag")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse_args(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn merge_lexicographic() {
        let cmd = parse_args(&argv("merge a b --threads 2")).unwrap();
        let fs = memfs(&[("a", "apple\ncherry\n"), ("b", "banana\ndate\n")]);
        let out = execute(&cmd, fs).unwrap();
        assert_eq!(out, "apple\nbanana\ncherry\ndate\n");
    }

    #[test]
    fn merge_numeric_differs_from_lexicographic() {
        let fs = memfs(&[("a", "2\n10\n"), ("b", "1\n9\n")]);
        let numeric = parse_args(&argv("merge a b -n")).unwrap();
        assert_eq!(execute(&numeric, &fs).unwrap(), "1\n2\n9\n10\n");
        // Lexicographically, "10" < "2": file `a` is NOT sorted as text.
        let lex = parse_args(&argv("merge a b")).unwrap();
        assert_eq!(
            execute(&lex, &fs).unwrap_err(),
            CliError::NotSorted {
                file: "a".into(),
                line: 1
            }
        );
    }

    #[test]
    fn merge_rejects_unsorted_input() {
        let fs = memfs(&[("a", "3\n1\n"), ("b", "2\n")]);
        let cmd = parse_args(&argv("merge a b -n")).unwrap();
        assert_eq!(
            execute(&cmd, fs).unwrap_err(),
            CliError::NotSorted {
                file: "a".into(),
                line: 1
            }
        );
    }

    #[test]
    fn merge_reports_bad_numbers() {
        let fs = memfs(&[("a", "1\ntwo\n"), ("b", "3\n")]);
        let cmd = parse_args(&argv("merge a b -n")).unwrap();
        assert_eq!(
            execute(&cmd, fs).unwrap_err(),
            CliError::BadNumber {
                file: "a".into(),
                line: 2,
                text: "two".into()
            }
        );
    }

    #[test]
    fn sort_all_algorithms_agree() {
        let input = "5\n3\n9\n1\n3\n-2\n";
        let files = [("f", input)];
        let fs = memfs(&files);
        let mut outputs = Vec::new();
        for algo in ["parallel", "kway", "natural", "cache-aware"] {
            let cmd = parse_args(&argv(&format!("sort f -n --algo {algo} --threads 3"))).unwrap();
            outputs.push(execute(&cmd, &fs).unwrap());
        }
        assert_eq!(outputs[0], "-2\n1\n3\n3\n5\n9\n");
        assert!(outputs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn sort_is_stable_on_equal_keys() {
        // Numeric ties keep input order of the text lines.
        let fs = memfs(&[("f", "2 b\n1 z\n2 a\n")]);
        let cmd_text = parse_args(&argv("sort f")).unwrap();
        assert_eq!(execute(&cmd_text, &fs).unwrap(), "1 z\n2 a\n2 b\n");
        // With numeric keys "2 b" and "2 a" tie ... but "2 b" fails to
        // parse as i64, so numeric mode reports it.
        let cmd_num = parse_args(&argv("sort f -n")).unwrap();
        assert!(matches!(
            execute(&cmd_num, &fs).unwrap_err(),
            CliError::BadNumber { .. }
        ));
    }

    #[test]
    fn select_finds_median() {
        let fs = memfs(&[("a", "1\n3\n5\n"), ("b", "2\n4\n")]);
        let cmd = parse_args(&argv("select a b --rank 2 -n")).unwrap();
        assert_eq!(execute(&cmd, &fs).unwrap(), "3\n");
        let cmd = parse_args(&argv("select a b --rank 5 -n")).unwrap();
        assert_eq!(
            execute(&cmd, &fs).unwrap_err(),
            CliError::RankOutOfRange { rank: 5, total: 5 }
        );
    }

    #[test]
    fn check_reports_status() {
        let fs = memfs(&[("good", "1\n2\n3\n"), ("bad", "2\n1\n")]);
        let ok = parse_args(&argv("check good -n")).unwrap();
        assert!(execute(&ok, &fs).unwrap().contains("sorted (3 lines)"));
        let bad = parse_args(&argv("check bad -n")).unwrap();
        assert!(matches!(
            execute(&bad, &fs).unwrap_err(),
            CliError::NotSorted { .. }
        ));
    }

    #[test]
    fn empty_files_are_fine() {
        let fs = memfs(&[("a", ""), ("b", "x\n")]);
        let cmd = parse_args(&argv("merge a b")).unwrap();
        assert_eq!(execute(&cmd, fs).unwrap(), "x\n");
    }

    #[test]
    fn error_display_is_informative() {
        let e = CliError::NotSorted {
            file: "f".into(),
            line: 7,
        };
        assert!(e.to_string().contains("line 7"));
        assert!(CliError::Usage("x".into()).to_string().contains("usage:"));
    }

    #[test]
    fn large_merge_through_the_cli_path() {
        let a: String = (0..5000).map(|x| format!("{}\n", x * 2)).collect();
        let b: String = (0..5000).map(|x| format!("{}\n", x * 2 + 1)).collect();
        let files = [("a", a.as_str()), ("b", b.as_str())];
        let fs = memfs(&files);
        let cmd = parse_args(&argv("merge a b -n --threads 4")).unwrap();
        let out = execute(&cmd, fs).unwrap();
        let nums: Vec<i64> = out.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(nums.len(), 10_000);
        assert!(nums.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn parse_trace_command() {
        let cmd = parse_args(&argv(
            "trace --kernel hierarchical --n 5000 --threads 3 --seed 9 \
             --trace-out t.json --metrics-out m.jsonl",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                kernel: TraceKernel::Hierarchical,
                n: 5000,
                threads: 3,
                seed: 9,
                trace_out: "t.json".into(),
                metrics_out: "m.jsonl".into(),
            }
        );
    }

    #[test]
    fn trace_defaults_and_errors() {
        let cmd = parse_args(&argv("trace --kernel parallel")).unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                kernel: TraceKernel::Parallel,
                n: 1_000_000,
                threads: mergepath::executor::default_threads(),
                seed: 42,
                trace_out: "mp-trace.json".into(),
                metrics_out: "mp-metrics.jsonl".into(),
            }
        );
        assert!(matches!(
            parse_args(&argv("trace")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("trace --kernel bogus")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("trace --kernel parallel --n 0")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn trace_kernel_names_round_trip() {
        for name in [
            "parallel",
            "segmented",
            "batch",
            "inplace",
            "kway",
            "hierarchical",
            "sort-parallel",
            "sort-kway",
            "sort-cache-aware",
        ] {
            assert_eq!(TraceKernel::parse(name).unwrap().name(), name);
        }
    }

    #[test]
    fn run_trace_parallel_satisfies_thm14_and_exports_parse() {
        let run = run_trace(TraceKernel::Parallel, 10_000, 4, 7);
        assert!(run.report.thm14_exact);
        assert_eq!(run.report.predicted_max, 2500);
        assert_eq!(run.report.max_items, 2500);
        // Both artifacts must be valid JSON (the trace as one document, the
        // metrics line by line).
        mergepath::telemetry::json::parse(&run.chrome_json).unwrap();
        let mut saw_load_balance = false;
        for line in run.metrics_jsonl.lines() {
            let v = mergepath::telemetry::json::parse(line).unwrap();
            if v.get("type").and_then(|t| t.as_str()) == Some("load_balance") {
                saw_load_balance = true;
            }
        }
        assert!(saw_load_balance);
        assert!(run.summary.contains("thm14_exact=true"));
    }

    #[test]
    fn run_trace_covers_every_kernel() {
        for kernel in [
            TraceKernel::Segmented,
            TraceKernel::Batch,
            TraceKernel::Inplace,
            TraceKernel::Kway,
            TraceKernel::Hierarchical,
            TraceKernel::SortParallel,
            TraceKernel::SortKway,
            TraceKernel::SortCacheAware,
        ] {
            let run = run_trace(kernel, 3000, 3, 11);
            assert!(
                !run.report.per_worker_items.is_empty(),
                "{}: no per-worker items",
                kernel.name()
            );
            mergepath::telemetry::json::parse(&run.chrome_json).unwrap();
        }
    }

    #[test]
    fn parse_check_schedules_command() {
        let cmd = parse_args(&argv(
            "check --kernel segmented --n 600 --threads 3 --seed 5 --schedules 4",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::CheckSchedules {
                kernel: Some(TraceKernel::Segmented),
                n: 600,
                threads: 3,
                seed: 5,
                schedules: 4,
                dispatch: CheckDispatch::Adaptive,
                steal_orders: false,
            }
        );
        // `all` selects every kernel; defaults fill the rest.
        let cmd = parse_args(&argv("check --kernel all --threads 2")).unwrap();
        assert_eq!(
            cmd,
            Command::CheckSchedules {
                kernel: None,
                n: 4096,
                threads: 2,
                seed: 42,
                schedules: 8,
                dispatch: CheckDispatch::Adaptive,
                steal_orders: false,
            }
        );
        // --steal-orders switches the schedule family.
        let cmd = parse_args(&argv("check --kernel all --steal-orders")).unwrap();
        assert!(matches!(
            cmd,
            Command::CheckSchedules {
                steal_orders: true,
                ..
            }
        ));
        // --dispatch pins a per-segment kernel for the whole run.
        let cmd = parse_args(&argv("check --kernel all --dispatch simd")).unwrap();
        assert!(matches!(
            cmd,
            Command::CheckSchedules {
                dispatch: CheckDispatch::Simd,
                ..
            }
        ));
        let cmd = parse_args(&argv("check --kernel all --dispatch co_rank")).unwrap();
        assert!(matches!(
            cmd,
            Command::CheckSchedules {
                dispatch: CheckDispatch::CoRank,
                ..
            }
        ));
    }

    #[test]
    fn check_schedules_parse_errors() {
        // A bare `check` has neither FILE nor --kernel.
        assert!(matches!(
            parse_args(&argv("check")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("check --kernel bogus")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("check --kernel all --schedules 0")),
            Err(CliError::Usage(_))
        ));
        // `all` is only meaningful to `check`, not `trace`.
        assert!(matches!(
            parse_args(&argv("trace --kernel all")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("check --kernel all --dispatch bogus")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn check_schedules_reports_one_line_per_kernel() {
        let cmd = parse_args(&argv(
            "check --kernel all --n 500 --threads 3 --schedules 3",
        ))
        .unwrap();
        let out = execute(&cmd, memfs(&[])).unwrap();
        assert_eq!(out.lines().count(), 9);
        for line in out.lines() {
            assert!(line.contains(": ok"), "{line}");
        }
        let one = parse_args(&argv("check --kernel kway --n 400 --threads 2")).unwrap();
        let out = execute(&one, memfs(&[])).unwrap();
        assert!(out.starts_with("kway: ok"), "{out}");
    }

    #[test]
    fn check_schedules_runs_under_every_dispatch_override() {
        // Each override must pass the full check sweep; `simd` additionally
        // swaps in the primitive-key inputs (meaningful in both build
        // configurations — without the feature the entry point falls back
        // to scalar and the run degenerates to a plain correctness check).
        // `co_rank` deliberately stays on the provenance-tagged keyed
        // inputs, where the oracle comparison proves its stable tie break.
        for dispatch in [
            "adaptive",
            "classic",
            "branch-lean",
            "galloping",
            "simd",
            "co_rank",
        ] {
            let cmd = parse_args(&argv(&format!(
                "check --kernel parallel --n 600 --threads 3 --schedules 2 --dispatch {dispatch}"
            )))
            .unwrap();
            let out = execute(&cmd, memfs(&[])).unwrap();
            assert!(out.starts_with("parallel: ok"), "{dispatch}: {out}");
        }
    }

    #[test]
    fn parse_serve_command() {
        let cmd = parse_args(&argv(
            "serve --requests 32 --concurrency 8 --queue-capacity 16 --deadline-ms 5 \
             --pattern bursty --n 512 --threads 2 --seed 7",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                requests: 32,
                concurrency: 8,
                queue_capacity: 16,
                deadline_ms: 5,
                pattern: ArrivalPattern::Bursty,
                mean_len: 512,
                threads: 2,
                seed: 7,
                metrics_out: None,
                listen: None,
            }
        );
        // --metrics-out turns on the live metrics directory.
        let cmd = parse_args(&argv("serve --requests 32 --metrics-out out/metrics")).unwrap();
        assert!(matches!(
            cmd,
            Command::Serve {
                requests: 32,
                metrics_out: Some(ref dir),
                ..
            } if dir == "out/metrics"
        ));
        // Defaults: 64-way concurrency, steady arrivals, 50 ms deadline.
        let cmd = parse_args(&argv("serve")).unwrap();
        assert!(matches!(
            cmd,
            Command::Serve {
                requests: 256,
                concurrency: 64,
                queue_capacity: 256,
                deadline_ms: 50,
                pattern: ArrivalPattern::Steady,
                mean_len: 2048,
                ..
            }
        ));
    }

    #[test]
    fn parse_listen_and_client_commands() {
        // --listen switches mp serve to the TCP front end.
        let cmd = parse_args(&argv("serve --listen 127.0.0.1:0 --concurrency 4")).unwrap();
        assert!(matches!(
            cmd,
            Command::Serve {
                listen: Some(ref a),
                concurrency: 4,
                ..
            } if a == "127.0.0.1:0"
        ));
        let cmd = parse_args(&argv(
            "client --addr 127.0.0.1:4780 --requests 18 --n 64 --seed 3 --deadline-ms 7 \
             --malformed --out NET.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Client {
                addr: "127.0.0.1:4780".into(),
                requests: 18,
                mean_len: 64,
                seed: 3,
                deadline_ms: 7,
                malformed: true,
                out: Some("NET.json".into()),
            }
        );
        // Client defaults: no deadline (everything should complete), no
        // artifact, no hygiene probe.
        let cmd = parse_args(&argv("client --addr 127.0.0.1:1")).unwrap();
        assert!(matches!(
            cmd,
            Command::Client {
                deadline_ms: 0,
                malformed: false,
                out: None,
                mean_len: 1024,
                ..
            }
        ));
        // --addr is mandatory.
        assert!(matches!(
            parse_args(&argv("client --requests 4")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_parse_errors() {
        for bad in [
            "serve --pattern poisson",
            "serve --requests 0",
            "serve --concurrency 0",
            "serve --queue-capacity 0",
            "serve --deadline-ms x",
            "serve extra-positional",
        ] {
            assert!(
                matches!(parse_args(&argv(bad)), Err(CliError::Usage(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn parse_inspect_command() {
        let cmd = parse_args(&argv("inspect dumps/flight-000-deadline_miss.jsonl")).unwrap();
        assert_eq!(
            cmd,
            Command::Inspect {
                file: "dumps/flight-000-deadline_miss.jsonl".into(),
            }
        );
        assert!(matches!(
            parse_args(&argv("inspect")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&argv("inspect a b")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn inspect_through_execute_renders_a_dump() {
        use mergepath_serve::{AnomalyTrigger, ObserverConfig, ServeObserver, ServeProbe as _};
        let obs = ServeObserver::new(ObserverConfig::default());
        obs.on_submit(5, 100, 90);
        obs.on_reject_deadline(5, 150, 90);
        let body = obs.render_dump(AnomalyTrigger::DeadlineMiss, 0);
        let cmd = parse_args(&argv("inspect dump.jsonl")).unwrap();
        let out = execute(&cmd, memfs(&[("dump.jsonl", body.as_str())])).unwrap();
        assert!(out.contains("trigger=deadline_miss"), "{out}");
        assert!(out.contains("request 5:"), "{out}");
        assert!(out.contains("reject_deadline"), "{out}");
    }

    #[test]
    fn parse_bench_serve_flag() {
        let cmd = parse_args(&argv("bench --smoke --serve --threads 2 --seed 5")).unwrap();
        assert!(matches!(
            cmd,
            Command::Bench {
                serve: true,
                smoke: true,
                ..
            }
        ));
        let cmd = parse_args(&argv("bench --smoke")).unwrap();
        assert!(matches!(cmd, Command::Bench { serve: false, .. }));
    }

    #[test]
    fn serve_through_execute_returns_summary() {
        let cmd = parse_args(&argv(
            "serve --requests 8 --concurrency 2 --queue-capacity 8 --deadline-ms 0 \
             --n 256 --threads 2 --seed 11",
        ))
        .unwrap();
        let out = execute(&cmd, memfs(&[])).unwrap();
        assert!(out.contains("submitted=8"), "{out}");
        assert!(out.contains("lost=0"), "{out}");
        assert!(out.contains("serve_completed=8"), "{out}");
    }

    #[test]
    fn trace_through_execute_returns_summary() {
        let cmd = parse_args(&argv("trace --kernel kway --n 2000 --threads 2")).unwrap();
        let out = execute(&cmd, memfs(&[])).unwrap();
        assert!(out.contains("traced kway"));
    }
}
