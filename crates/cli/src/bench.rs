//! `mp bench` — the reproducible perf harness behind the committed
//! `BENCH_*.json` artifacts.
//!
//! Three artifacts come out of one run, all through the shared envelope
//! writer ([`mergepath::telemetry::artifact`]) so they can never disagree
//! on schema version or environment fingerprint:
//!
//! * `BENCH_merge.json` — the parallel merge across four workload
//!   families (uniform, duplicate-heavy, run-structured, adversarial-tie),
//!   each measured under the adaptive per-segment dispatch **and** under a
//!   pinned classic kernel, with median ns/element, comparison counts,
//!   per-kernel segment counters, and the Thm 14 load-balance skew.
//! * `BENCH_sort.json` — the §III parallel merge sort across four sort
//!   families, same columns.
//! * `BENCH_telemetry.json` — traced vs untraced wall-clock and the
//!   load-balance report for every parallel kernel (the observation-cost
//!   table previously produced by the standalone `bench_telemetry` bin,
//!   refreshed here so it shares the other artifacts' fingerprint).
//!
//! Everything is seeded and pure-computation; the only I/O happens in
//! `main.rs`, so the whole harness is unit-testable at smoke scale.

use std::fmt::Write as _;
use std::time::Instant;

use mergepath::merge::adaptive::{with_dispatch_policy, DispatchPolicy, SegmentKernel};
use mergepath::merge::parallel::{parallel_merge_into_by, parallel_merge_into_recorded};
use mergepath::merge::simd::{natural_cmp, simd_enabled};
use mergepath::merge::stable::stable_parallel_merge_into_recorded;
use mergepath::sort::parallel::{parallel_merge_sort_by, parallel_merge_sort_recorded};
use mergepath::telemetry::artifact::{render_artifact, EnvFingerprint};
use mergepath::telemetry::{NoRecorder, Telemetry, TimelineRecorder};
use mergepath_workloads::{merge_pair_sized, unsorted_keys, MergeWorkload, SortWorkload};

use crate::{run_kernel_recorded, TraceKernel};

/// Scale and reproducibility knobs for one `mp bench` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Total output elements per measured merge / sorted elements per sort.
    pub n: usize,
    /// Worker count.
    pub threads: usize,
    /// Workload PRNG seed.
    pub seed: u64,
    /// Timing repetitions per data point (the median is reported).
    pub reps: usize,
}

impl BenchConfig {
    /// The full configuration behind the committed artifacts.
    pub fn full(threads: usize, seed: u64) -> Self {
        BenchConfig {
            n: 1 << 20,
            threads,
            seed,
            reps: 5,
        }
    }

    /// A fast configuration for CI's `verify-bench` gate and tests.
    pub fn smoke(threads: usize, seed: u64) -> Self {
        BenchConfig {
            n: 1 << 16,
            threads,
            seed,
            reps: 3,
        }
    }
}

/// The rendered artifacts of one `mp bench` run, ready to write to disk.
#[derive(Debug, Clone)]
pub struct BenchArtifacts {
    /// Human-readable summary for stdout.
    pub summary: String,
    /// `BENCH_merge.json` contents.
    pub merge_json: String,
    /// `BENCH_sort.json` contents.
    pub sort_json: String,
    /// `BENCH_telemetry.json` contents.
    pub telemetry_json: String,
}

/// The merge workload families the harness sweeps. `adversarial-tie` is
/// built inline (every element equal — the tie-handling worst case) rather
/// than as a tenth [`MergeWorkload`] variant, which exhaustive kernel
/// sweeps elsewhere size against.
pub const MERGE_FAMILIES: [&str; 4] = ["uniform", "duplicate-heavy", "runs", "adversarial-tie"];

/// The sort workload families the harness sweeps.
pub const SORT_FAMILIES: [SortWorkload; 4] = [
    SortWorkload::Uniform,
    SortWorkload::DuplicateHeavy,
    SortWorkload::Sorted,
    SortWorkload::OrganPipe,
];

fn merge_inputs(family: &str, n: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let (na, nb) = (n / 2, n - n / 2);
    match family {
        "uniform" => merge_pair_sized(MergeWorkload::Uniform, na, nb, seed),
        "duplicate-heavy" => merge_pair_sized(MergeWorkload::DuplicateHeavy, na, nb, seed),
        "runs" => merge_pair_sized(MergeWorkload::Runs, na, nb, seed),
        "adversarial-tie" => (vec![7u32; na], vec![7u32; nb]),
        other => unreachable!("unknown merge family {other}"),
    }
}

/// Median wall-clock nanoseconds of `reps` runs of `f`.
fn median_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

/// One family's measurements: the adaptive dispatch plus every pinned
/// segment kernel (classic, branch-lean, SIMD, co-rank). Without the
/// `simd` feature the pinned-SIMD column degenerates to branch-lean
/// numbers, since the entry point falls back; `simd_enabled` in the
/// payload says which.
#[derive(Debug, Clone)]
struct FamilyRow {
    family: String,
    adaptive_ns_per_elem: f64,
    classic_ns_per_elem: f64,
    branch_lean_ns_per_elem: f64,
    simd_ns_per_elem: f64,
    co_rank_ns_per_elem: f64,
    comparisons: u64,
    segments: [u64; 5],
    max_items: u64,
    predicted_max: u64,
    imbalance: f64,
    /// Items-based worker imbalance (`max_items · p / n`) of a pinned
    /// co-rank traced run. Deterministic — it depends only on cut
    /// arithmetic, never on timing — so `verify-bench` can hard-gate it:
    /// the exact-balance schedule keeps it within `1 + p/n`.
    imbalance_co_rank: f64,
    /// Segments the *pinned* co-rank run routed through the kernel —
    /// proof in the artifact that the co-rank columns measured the real
    /// code path (the adaptive `segments` counters only show co-rank
    /// segments when the probe itself picks the kernel).
    pinned_co_rank_segments: u64,
}

fn counter_total(t: &Telemetry, name: &str) -> u64 {
    t.counters
        .iter()
        .filter(|c| c.kind.name() == name)
        .map(|c| c.total)
        .sum()
}

fn family_row(
    family: &str,
    n: usize,
    cfg: &BenchConfig,
    mut timed: impl FnMut(),
    traced: impl FnOnce(&TimelineRecorder),
    co_rank_traced: impl FnOnce(&TimelineRecorder),
) -> FamilyRow {
    let adaptive_ns =
        with_dispatch_policy(DispatchPolicy::Adaptive, || median_ns(cfg.reps, &mut timed));
    let classic_ns = with_dispatch_policy(DispatchPolicy::Fixed(SegmentKernel::Classic), || {
        median_ns(cfg.reps, &mut timed)
    });
    let branch_lean_ns =
        with_dispatch_policy(DispatchPolicy::Fixed(SegmentKernel::BranchLean), || {
            median_ns(cfg.reps, &mut timed)
        });
    let simd_ns = with_dispatch_policy(DispatchPolicy::Fixed(SegmentKernel::Simd), || {
        median_ns(cfg.reps, &mut timed)
    });
    let co_rank_ns = with_dispatch_policy(DispatchPolicy::Fixed(SegmentKernel::CoRank), || {
        median_ns(cfg.reps, &mut timed)
    });
    let telemetry = with_dispatch_policy(DispatchPolicy::Adaptive, || {
        let rec = TimelineRecorder::new();
        traced(&rec);
        rec.finish()
    });
    let report = telemetry.load_balance(n as u64, cfg.threads);
    // The co-rank column's load balance comes from its own traced run so
    // the exact-balance claim is measured, not inferred. Items per worker
    // are schedule arithmetic, hence exactly reproducible.
    let co_telemetry = with_dispatch_policy(DispatchPolicy::Fixed(SegmentKernel::CoRank), || {
        let rec = TimelineRecorder::new();
        co_rank_traced(&rec);
        rec.finish()
    });
    let co_report = co_telemetry.load_balance(n as u64, cfg.threads);
    let imbalance_co_rank = if n == 0 {
        1.0
    } else {
        co_report.max_items as f64 * cfg.threads as f64 / n as f64
    };
    FamilyRow {
        family: family.to_string(),
        adaptive_ns_per_elem: adaptive_ns / n as f64,
        classic_ns_per_elem: classic_ns / n as f64,
        branch_lean_ns_per_elem: branch_lean_ns / n as f64,
        simd_ns_per_elem: simd_ns / n as f64,
        co_rank_ns_per_elem: co_rank_ns / n as f64,
        comparisons: counter_total(&telemetry, "comparisons"),
        segments: [
            counter_total(&telemetry, "segments_classic"),
            counter_total(&telemetry, "segments_branch_lean"),
            counter_total(&telemetry, "segments_galloping"),
            counter_total(&telemetry, "segments_simd"),
            counter_total(&telemetry, "segments_co_rank"),
        ],
        max_items: report.max_items,
        predicted_max: report.predicted_max,
        imbalance: report.busy.imbalance,
        imbalance_co_rank,
        pinned_co_rank_segments: counter_total(&co_telemetry, "segments_co_rank"),
    }
}

fn rows_payload(cfg: &BenchConfig, rows: &[FamilyRow]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"n\":{},\"threads\":{},\"seed\":{},\"reps\":{},\"simd_enabled\":{},\"families\":[",
        cfg.n,
        cfg.threads,
        cfg.seed,
        cfg.reps,
        simd_enabled()
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"family\":\"{}\",\"adaptive_ns_per_elem\":{},\"classic_ns_per_elem\":{},\
             \"branch_lean_ns_per_elem\":{},\"simd_ns_per_elem\":{},\"co_rank_ns_per_elem\":{},\
             \"speedup_vs_classic\":{},\"speedup_simd_vs_classic\":{},\
             \"speedup_simd_vs_branch_lean\":{},\"speedup_co_rank_vs_classic\":{},\
             \"comparisons\":{},\"segments_classic\":{},\
             \"segments_branch_lean\":{},\"segments_galloping\":{},\"segments_simd\":{},\
             \"segments_co_rank\":{},\"pinned_co_rank_segments\":{},\
             \"max_items\":{},\"predicted_max\":{},\"imbalance\":{},\"imbalance_co_rank\":{}}}",
            r.family,
            r.adaptive_ns_per_elem,
            r.classic_ns_per_elem,
            r.branch_lean_ns_per_elem,
            r.simd_ns_per_elem,
            r.co_rank_ns_per_elem,
            r.classic_ns_per_elem / r.adaptive_ns_per_elem.max(f64::MIN_POSITIVE),
            r.classic_ns_per_elem / r.simd_ns_per_elem.max(f64::MIN_POSITIVE),
            r.branch_lean_ns_per_elem / r.simd_ns_per_elem.max(f64::MIN_POSITIVE),
            r.classic_ns_per_elem / r.co_rank_ns_per_elem.max(f64::MIN_POSITIVE),
            r.comparisons,
            r.segments[0],
            r.segments[1],
            r.segments[2],
            r.segments[3],
            r.segments[4],
            r.pinned_co_rank_segments,
            r.max_items,
            r.predicted_max,
            r.imbalance,
            r.imbalance_co_rank,
        );
    }
    out.push_str("]}");
    out
}

fn summarize(title: &str, rows: &[FamilyRow], out: &mut String) {
    let _ = writeln!(
        out,
        "{title}: family, adaptive/classic/branch-lean/simd/co-rank ns/elem, adaptive speedup, \
         segments (c/bl/g/s/cr), co-rank imbalance"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<16} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>6.3}x  {}/{}/{}/{}/{}  {:.5}",
            r.family,
            r.adaptive_ns_per_elem,
            r.classic_ns_per_elem,
            r.branch_lean_ns_per_elem,
            r.simd_ns_per_elem,
            r.co_rank_ns_per_elem,
            r.classic_ns_per_elem / r.adaptive_ns_per_elem.max(f64::MIN_POSITIVE),
            r.segments[0],
            r.segments[1],
            r.segments[2],
            r.segments[3],
            r.segments[4],
            r.imbalance_co_rank,
        );
    }
}

/// The telemetry artifact's payload: traced vs untraced wall-clock plus
/// the load-balance report for every parallel kernel, and the serving
/// layer's metrics-on vs metrics-off overhead (`serve_overhead` — the
/// number `cargo xtask verify-metrics` gates at ≤ 3%). Shared by
/// `mp bench` and the standalone `bench_telemetry` bin so both refresh
/// `BENCH_telemetry.json` with the same schema.
pub fn telemetry_payload(n: usize, threads: usize, seed: u64, reps: usize) -> String {
    let mut payload = String::new();
    let _ = write!(
        payload,
        "{{\"n\":{n},\"threads\":{threads},\"reps\":{reps},\"kernels\":["
    );
    let kernels = [
        TraceKernel::Parallel,
        TraceKernel::Segmented,
        TraceKernel::Batch,
        TraceKernel::Inplace,
        TraceKernel::Kway,
        TraceKernel::Hierarchical,
        TraceKernel::SortParallel,
        TraceKernel::SortKway,
        TraceKernel::SortCacheAware,
    ];
    for (i, kernel) in kernels.into_iter().enumerate() {
        let untraced_ns = median_ns(reps, || {
            run_kernel_recorded(kernel, n, threads, seed, &NoRecorder)
        });
        let traced_ns = median_ns(reps, || {
            let rec = TimelineRecorder::new();
            run_kernel_recorded(kernel, n, threads, seed, &rec);
            drop(rec.finish());
        });
        let rec = TimelineRecorder::new();
        run_kernel_recorded(kernel, n, threads, seed, &rec);
        let telemetry = rec.finish();
        let report = telemetry.load_balance(n as u64, threads);
        if i > 0 {
            payload.push(',');
        }
        let _ = write!(
            payload,
            "{{\"kernel\":\"{}\",\"untraced_s\":{},\"traced_s\":{},\"overhead\":{},\
             \"spans\":{},\"load_balance\":{}}}",
            kernel.name(),
            untraced_ns / 1e9,
            traced_ns / 1e9,
            traced_ns / untraced_ns.max(f64::MIN_POSITIVE) - 1.0,
            telemetry.spans.len(),
            report.to_json(),
        );
    }
    // Serving-layer observability overhead at a bench point scaled from
    // the kernel sweep's `n` (same requests-per-batch as the serve bench's
    // queue capacity).
    payload.push_str("],\"serve_overhead\":");
    let overhead = crate::serve_bench::measure_serve_overhead(
        1024,
        (n / 32).clamp(2048, 8192),
        reps,
        threads,
        seed,
    );
    payload.push_str(&overhead.to_json());
    payload.push('}');
    payload
}

/// Runs the full harness and renders all three artifacts.
///
/// # Panics
/// Panics if an assembled artifact fails the envelope self-check — a bug
/// in this module, not an input condition.
pub fn run_bench(cfg: &BenchConfig) -> BenchArtifacts {
    let env = EnvFingerprint::capture();
    // The canonical comparator keeps the sweep eligible for the probe's
    // SIMD arm — the same dispatch callers of the plain `_by` entry points
    // get on primitive keys.
    let cmp = natural_cmp::<u32>;
    let mut summary = format!(
        "mp bench: n={} threads={} seed={} reps={} simd_enabled={}\n",
        cfg.n,
        cfg.threads,
        cfg.seed,
        cfg.reps,
        simd_enabled()
    );

    // --- merge sweep ---
    let merge_rows: Vec<FamilyRow> = MERGE_FAMILIES
        .iter()
        .map(|family| {
            let (a, b) = merge_inputs(family, cfg.n, cfg.seed);
            let mut out = vec![0u32; cfg.n];
            family_row(
                family,
                cfg.n,
                cfg,
                || parallel_merge_into_by(&a, &b, &mut out, cfg.threads, &cmp),
                |rec| {
                    let mut traced_out = vec![0u32; cfg.n];
                    parallel_merge_into_recorded(&a, &b, &mut traced_out, cfg.threads, &cmp, rec);
                },
                // The co-rank balance row traces the exact-balance entry —
                // the ⌈n/p⌉ cut schedule is the property being published.
                |rec| {
                    let mut traced_out = vec![0u32; cfg.n];
                    stable_parallel_merge_into_recorded(
                        &a,
                        &b,
                        &mut traced_out,
                        cfg.threads,
                        &cmp,
                        rec,
                    );
                },
            )
        })
        .collect();
    summarize("merge", &merge_rows, &mut summary);

    // --- sort sweep ---
    let sort_rows: Vec<FamilyRow> = SORT_FAMILIES
        .iter()
        .map(|family| {
            let v = unsorted_keys(*family, cfg.n, cfg.seed);
            family_row(
                family.name(),
                cfg.n,
                cfg,
                || {
                    let mut w = v.clone();
                    parallel_merge_sort_by(&mut w, cfg.threads, &cmp);
                },
                |rec| {
                    let mut w = v.clone();
                    parallel_merge_sort_recorded(&mut w, cfg.threads, &cmp, rec);
                },
                // Sort has no exact-balance top-level entry; the pinned run
                // still proves the co-rank segment kernel carried the merges.
                |rec| {
                    let mut w = v.clone();
                    parallel_merge_sort_recorded(&mut w, cfg.threads, &cmp, rec);
                },
            )
        })
        .collect();
    summarize("sort", &sort_rows, &mut summary);

    // --- telemetry refresh (same writer, same fingerprint) ---
    let telemetry = telemetry_payload(cfg.n, cfg.threads, cfg.seed, cfg.reps);

    let merge_json = render_artifact("bench_merge", &env, &rows_payload(cfg, &merge_rows))
        .expect("merge artifact must pass its own schema check");
    let sort_json = render_artifact("bench_sort", &env, &rows_payload(cfg, &sort_rows))
        .expect("sort artifact must pass its own schema check");
    let telemetry_json = render_artifact("bench_telemetry", &env, &telemetry)
        .expect("telemetry artifact must pass its own schema check");
    BenchArtifacts {
        summary,
        merge_json,
        sort_json,
        telemetry_json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergepath::telemetry::artifact::{check_artifact, same_env};
    use mergepath::telemetry::json::{self, Value};

    fn family_names(doc: &Value) -> Vec<String> {
        doc.get("payload")
            .and_then(|p| p.get("families"))
            .and_then(Value::as_array)
            .expect("families array")
            .iter()
            .map(|f| f.get("family").and_then(Value::as_str).unwrap().to_string())
            .collect()
    }

    #[test]
    fn smoke_bench_produces_three_consistent_artifacts() {
        let cfg = BenchConfig {
            n: 1 << 12,
            threads: 4,
            seed: 7,
            reps: 1,
        };
        let run = run_bench(&cfg);
        let merge = check_artifact(&run.merge_json, "bench_merge").expect("merge envelope");
        let sort = check_artifact(&run.sort_json, "bench_sort").expect("sort envelope");
        let telemetry =
            check_artifact(&run.telemetry_json, "bench_telemetry").expect("telemetry envelope");
        assert!(same_env(&merge, &sort) && same_env(&sort, &telemetry));
        assert_eq!(family_names(&merge), MERGE_FAMILIES);
        assert_eq!(
            family_names(&sort),
            ["uniform", "duplicate-heavy", "sorted", "organ-pipe"]
        );
        let kernels = telemetry
            .get("payload")
            .and_then(|p| p.get("kernels"))
            .and_then(Value::as_array)
            .expect("kernels array");
        assert_eq!(kernels.len(), 9);
        let serve_overhead = telemetry
            .get("payload")
            .and_then(|p| p.get("serve_overhead"))
            .expect("serve_overhead section");
        for key in [
            "wall_off_ns",
            "wall_on_ns",
            "p99_off_ns",
            "p99_on_ns",
            "overhead",
        ] {
            assert!(
                serve_overhead.get(key).and_then(Value::as_f64).is_some(),
                "serve_overhead missing {key}"
            );
        }
        assert!(run.summary.contains("merge:"));
        assert!(run.summary.contains("sort:"));
        // The payload says which build configuration produced the numbers,
        // and every family carries the pinned-kernel columns.
        assert_eq!(
            merge.get("payload").and_then(|p| p.get("simd_enabled")),
            Some(&Value::Bool(simd_enabled()))
        );
        for doc in [&merge, &sort] {
            for f in doc
                .get("payload")
                .and_then(|p| p.get("families"))
                .and_then(Value::as_array)
                .unwrap()
            {
                for col in [
                    "branch_lean_ns_per_elem",
                    "simd_ns_per_elem",
                    "speedup_simd_vs_branch_lean",
                    "segments_simd",
                    "co_rank_ns_per_elem",
                    "speedup_co_rank_vs_classic",
                    "segments_co_rank",
                    "pinned_co_rank_segments",
                    "imbalance_co_rank",
                ] {
                    assert!(
                        f.get(col).and_then(Value::as_f64).is_some(),
                        "missing {col}"
                    );
                }
                // The pinned co-rank sweep must have exercised the real
                // kernel, not a fallback.
                assert!(
                    f.get("pinned_co_rank_segments")
                        .and_then(Value::as_f64)
                        .unwrap()
                        > 0.0,
                    "pinned co-rank run recorded no co-rank segments"
                );
            }
        }
    }

    #[test]
    fn co_rank_imbalance_is_within_the_exact_balance_bound_on_merges() {
        // The exact-balance cut schedule hands every non-tail worker
        // exactly ⌈n/p⌉ output ranks, so the items-based imbalance of the
        // pinned co-rank merge is at most 1 + p/n — far inside the 1.005
        // gate `cargo xtask verify-bench` enforces on the committed
        // artifact. Deterministic: it is cut arithmetic, not timing.
        let cfg = BenchConfig {
            n: 1 << 14,
            threads: 4,
            seed: 11,
            reps: 1,
        };
        let run = run_bench(&cfg);
        let doc = json::parse(&run.merge_json).unwrap();
        let families = doc
            .get("payload")
            .and_then(|p| p.get("families"))
            .and_then(Value::as_array)
            .unwrap();
        let bound = 1.0 + cfg.threads as f64 / cfg.n as f64;
        for f in families {
            let family = f.get("family").and_then(Value::as_str).unwrap();
            let imbalance = f.get("imbalance_co_rank").and_then(Value::as_f64).unwrap();
            assert!(
                imbalance <= bound + 1e-9,
                "{family}: co-rank imbalance {imbalance} exceeds 1 + p/n = {bound}"
            );
        }
    }

    #[test]
    fn duplicate_heavy_merge_routes_to_galloping_segments() {
        // PROBE_MIN_LEN-sized shares of a duplicate-heavy input must be
        // recognized by the probe; the committed artifact's speedup claim
        // rests on this routing actually happening.
        let cfg = BenchConfig {
            n: 1 << 14,
            threads: 2,
            seed: 3,
            reps: 1,
        };
        let run = run_bench(&cfg);
        let doc = json::parse(&run.merge_json).unwrap();
        let families = doc
            .get("payload")
            .and_then(|p| p.get("families"))
            .and_then(Value::as_array)
            .unwrap();
        for f in families {
            let family = f.get("family").and_then(Value::as_str).unwrap();
            let galloping = f.get("segments_galloping").and_then(Value::as_f64).unwrap();
            let classic = f.get("segments_classic").and_then(Value::as_f64).unwrap();
            let simd = f.get("segments_simd").and_then(Value::as_f64).unwrap();
            match family {
                "duplicate-heavy" => {
                    assert!(galloping > 0.0, "{family}: no galloping segments")
                }
                // Ties all go to A, so the merge path is an L: every share
                // is one-sided (a pure copy) and the probe rightly stays
                // on the classic kernel.
                "adversarial-tie" => {
                    assert!(classic > 0.0 && galloping == 0.0, "{family}: not one-sided")
                }
                // Fine interleaving of primitive keys under the canonical
                // comparator: the probe's last arm picks the SIMD kernel
                // exactly when the feature compiled it in, branch-lean
                // otherwise — never galloping.
                "uniform" => {
                    assert_eq!(galloping, 0.0, "uniform must not gallop");
                    if simd_enabled() {
                        assert!(simd > 0.0, "uniform must vectorize with the feature on");
                    } else {
                        assert_eq!(simd, 0.0, "simd segments impossible without the feature");
                    }
                }
                _ => {}
            }
            assert!(classic >= 0.0);
        }
    }

    #[test]
    fn median_ns_is_order_insensitive() {
        let mut calls = 0u32;
        let ns = median_ns(3, || calls += 1);
        assert_eq!(calls, 3);
        assert!(ns >= 0.0);
    }
}
