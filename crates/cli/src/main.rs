//! Thin I/O shim over [`mergepath_cli`]: parse, execute, print.

use mergepath_cli::{execute, fs_loader, parse_args, run_trace, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("mp: {e}");
            std::process::exit(2);
        }
    };
    if let Command::Trace {
        kernel,
        n,
        threads,
        seed,
        trace_out,
        metrics_out,
    } = &cmd
    {
        let run = run_trace(*kernel, *n, *threads, *seed);
        for (path, body) in [
            (trace_out, &run.chrome_json),
            (metrics_out, &run.metrics_jsonl),
        ] {
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("mp: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
        print!("{}", run.summary);
        println!("  trace: {trace_out}\n  metrics: {metrics_out}");
        return;
    }
    match execute(&cmd, fs_loader) {
        Ok(output) => {
            let out_path = match &cmd {
                Command::Merge { out, .. } | Command::Sort { out, .. } => out.clone(),
                _ => None,
            };
            match out_path {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, output) {
                        eprintln!("mp: cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                }
                None => print!("{output}"),
            }
        }
        Err(e) => {
            eprintln!("mp: {e}");
            std::process::exit(1);
        }
    }
}
