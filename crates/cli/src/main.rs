//! Thin I/O shim over [`mergepath_cli`]: parse, execute, print.

use mergepath_cli::{bench, execute, fs_loader, parse_args, run_trace, serve_bench, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("mp: {e}");
            std::process::exit(2);
        }
    };
    if let Command::Trace {
        kernel,
        n,
        threads,
        seed,
        trace_out,
        metrics_out,
    } = &cmd
    {
        let run = run_trace(*kernel, *n, *threads, *seed);
        for (path, body) in [
            (trace_out, &run.chrome_json),
            (metrics_out, &run.metrics_jsonl),
        ] {
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("mp: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
        print!("{}", run.summary);
        println!("  trace: {trace_out}\n  metrics: {metrics_out}");
        return;
    }
    if let Command::Bench {
        n,
        threads,
        seed,
        reps,
        out_dir,
        serve,
        smoke,
    } = &cmd
    {
        let cfg = bench::BenchConfig {
            n: *n,
            threads: *threads,
            seed: *seed,
            reps: *reps,
        };
        let run = bench::run_bench(&cfg);
        let dir = std::path::Path::new(out_dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("mp: cannot create {out_dir}: {e}");
            std::process::exit(1);
        }
        let mut files = vec![
            ("BENCH_merge.json", run.merge_json),
            ("BENCH_sort.json", run.sort_json),
            ("BENCH_telemetry.json", run.telemetry_json),
        ];
        print!("{}", run.summary);
        if *serve {
            let serve_cfg = if *smoke {
                serve_bench::ServeBenchConfig::smoke(*threads, *seed)
            } else {
                serve_bench::ServeBenchConfig::full(*threads, *seed)
            };
            let serve_run = serve_bench::run_serve_bench(&serve_cfg);
            print!("{}", serve_run.summary);
            files.push(("BENCH_serve.json", serve_run.serve_json));
        }
        for (name, body) in &files {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("mp: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        let names: Vec<&str> = files.iter().map(|(n, _)| *n).collect();
        println!("  artifacts: {out_dir}/{{{}}}", names.join(","));
        return;
    }
    match execute(&cmd, fs_loader) {
        Ok(output) => {
            let out_path = match &cmd {
                Command::Merge { out, .. } | Command::Sort { out, .. } => out.clone(),
                _ => None,
            };
            match out_path {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, output) {
                        eprintln!("mp: cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                }
                None => print!("{output}"),
            }
        }
        Err(e) => {
            eprintln!("mp: {e}");
            std::process::exit(1);
        }
    }
}
