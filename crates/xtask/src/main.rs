//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! The workspace must stay **hermetic**: every dependency is either the
//! standard library or an in-repo path crate, so a fresh checkout builds
//! and tests with no network or registry access. `verify-offline` is the
//! gate for that property — CI (or a release checklist) runs it so a
//! crates-io dependency can never silently creep back into the graph.

use std::env;
use std::process::{Command, ExitCode};

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask <task> [--simd]");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  verify-offline   build (release) and test the whole workspace with");
    eprintln!("                   cargo's --offline flag; fails if anything needs the");
    eprintln!("                   network or the registry");
    eprintln!("  verify-telemetry run `mp trace` on a small input and schema-check the");
    eprintln!("                   Chrome trace and JSONL metrics it emits (Thm 14");
    eprintln!("                   per-worker bounds included)");
    eprintln!("  verify-schedules run `mp check --kernel all` (CREW exclusivity, exact");
    eprintln!("                   coverage and Thm 14 across permuted virtual schedules");
    eprintln!("                   for every kernel) plus a steal-order leg (--steal-orders,");
    eprintln!("                   round orders drawn from the simulated work-stealing deque");
    eprintln!("                   protocol) and a forced co-rank leg");
    eprintln!("                   (--dispatch co_rank, stable tie break on keyed inputs),");
    eprintln!("                   then rebuild with the injected partition fault");
    eprintln!("                   (--cfg mergepath_mutate) and prove the checker reports");
    eprintln!("                   the overlap and the co-rank tie-break inversion");
    eprintln!("  bench            run `mp bench` at full scale, refreshing the committed");
    eprintln!("                   BENCH_merge.json / BENCH_sort.json / BENCH_telemetry.json");
    eprintln!("                   at the workspace root");
    eprintln!("  verify-bench     run `mp bench --smoke` into target/xtask/bench, schema-");
    eprintln!("                   check the three artifacts (shared envelope + fingerprint),");
    eprintln!("                   append per-family medians to results/bench_history.jsonl");
    eprintln!("                   and WARN (not fail) when a fresh median ns/element");
    eprintln!("                   regresses >10% against the rolling median of the last");
    eprintln!(
        "                   {HISTORY_WINDOW} same-environment history entries (falling back to the"
    );
    eprintln!("                   committed artifact when the history is empty); hard-fails");
    eprintln!("                   when any merge family's pinned co-rank items imbalance");
    eprintln!(
        "                   exceeds {CO_RANK_IMBALANCE_CAP} (exact balance is deterministic)"
    );
    eprintln!("  verify-serve     run `mp bench --smoke --serve` (4 pool threads) into");
    eprintln!("                   target/xtask/serve, schema-check BENCH_serve.json (all");
    eprintln!("                   three arrival patterns at >= 4 concurrency levels, zero");
    eprintln!("                   lost requests, zero correctness failures, a round-overlap");
    eprintln!("                   cell, and pool_steals > 0 witnessed under the bursty");
    eprintln!("                   pattern) and append a serve_history line to");
    eprintln!("                   results/bench_history.jsonl");
    eprintln!("  verify-net       spawn `mp serve --listen 127.0.0.1:0` out of process,");
    eprintln!("                   drive `mp client --malformed` over the loopback TCP");
    eprintln!("                   socket (nine adversarial families, oracle-checked, plus");
    eprintln!("                   a garbage-frame hygiene probe), schema-check the");
    eprintln!("                   NET_loopback.json artifact and require a clean lost=0");
    eprintln!("                   daemon shutdown");
    eprintln!("  verify-metrics   run an overloaded `mp serve --metrics-out` (bursty");
    eprintln!("                   arrivals, 1 ms deadline) into target/xtask/metrics and");
    eprintln!("                   schema-check everything the live layer wrote: the");
    eprintln!("                   Prometheus text, the snapshot JSONL, the METRICS_serve");
    eprintln!("                   envelope and the automatic anomaly flight dump; then run");
    eprintln!("                   the allocation-free hot-path tests and fail if the");
    eprintln!("                   measured observability overhead exceeds 3%");
    eprintln!();
    eprintln!("flags:");
    eprintln!("  --simd           build every cargo invocation with `--features simd` so the");
    eprintln!("                   vectorized segment kernel is compiled in, and add the");
    eprintln!("                   forced-SIMD leg to verify-schedules");
    ExitCode::FAILURE
}

/// How many trailing same-environment history entries feed the rolling
/// median that fresh bench numbers are judged against.
const HISTORY_WINDOW: usize = 5;

/// Hard ceiling on the pinned co-rank merge's items-based worker imbalance
/// (`max_items · p / n`). The exact-balance cut schedule guarantees
/// `1 + p/n` (≈ 1.00006 at smoke scale), so 1.005 leaves room for nothing
/// but a broken schedule — and unlike the ns/element medians the number is
/// pure cut arithmetic, deterministic across machines, hence a gate rather
/// than a warning.
const CO_RANK_IMBALANCE_CAP: f64 = 1.005;

/// Where `verify-bench` accumulates one JSONL line per run.
const HISTORY_PATH: &str = "results/bench_history.jsonl";

/// Feature flags handed to every cargo invocation of a task run.
#[derive(Clone, Copy)]
struct BuildOpts {
    /// Compile with `--features simd`.
    simd: bool,
}

impl BuildOpts {
    /// The extra cargo arguments this configuration needs.
    fn feature_args(&self) -> &'static [&'static str] {
        if self.simd {
            &["--features", "simd"]
        } else {
            &[]
        }
    }
}

/// Runs `cargo <args>` against the workspace root, echoing the command.
fn cargo(args: &[&str]) -> bool {
    cargo_env(args, &[])
}

/// [`cargo`] with extra environment variables (echoed alongside the
/// command).
fn cargo_env(args: &[&str], envs: &[(&str, &str)]) -> bool {
    let cargo = env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let prefix: String = envs.iter().map(|(k, v)| format!("{k}={v} ")).collect();
    println!("$ {prefix}cargo {}", args.join(" "));
    let mut cmd = Command::new(cargo);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    match cmd.status() {
        Ok(status) => status.success(),
        Err(e) => {
            eprintln!("failed to spawn cargo: {e}");
            false
        }
    }
}

fn verify_offline(opts: BuildOpts) -> ExitCode {
    let steps: &[&[&str]] = &[
        &["build", "--offline", "--release", "--workspace"],
        &["test", "--offline", "-q", "--workspace"],
    ];
    for step in steps {
        let mut args = step.to_vec();
        args.extend_from_slice(opts.feature_args());
        if !cargo(&args) {
            eprintln!("verify-offline: FAILED at `cargo {}`", args.join(" "));
            return ExitCode::FAILURE;
        }
    }
    println!("verify-offline: OK (workspace builds and tests with no network)");
    ExitCode::SUCCESS
}

/// Schema-checks one `mp trace` run: the Chrome trace must be one JSON
/// document with a non-empty `traceEvents` array, and every metrics line
/// must parse, include a `load_balance` summary, and satisfy Thm 14 for the
/// single-round parallel merge (per-worker counts each ≤ ⌈N/p⌉, sum = N).
fn check_trace_outputs(trace_path: &str, metrics_path: &str, n: u64, p: u64) -> Result<(), String> {
    let trace = std::fs::read_to_string(trace_path).map_err(|e| format!("{trace_path}: {e}"))?;
    let doc = mergepath_telemetry::json::parse(&trace).map_err(|e| format!("{trace_path}: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{trace_path}: missing traceEvents array"))?;
    if events.is_empty() {
        return Err(format!("{trace_path}: traceEvents is empty"));
    }
    for ev in events {
        for key in ["name", "ph"] {
            if ev.get(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!("{trace_path}: event without string `{key}`"));
            }
        }
    }

    let metrics =
        std::fs::read_to_string(metrics_path).map_err(|e| format!("{metrics_path}: {e}"))?;
    let mut balance = None;
    for (i, line) in metrics.lines().enumerate() {
        let v = mergepath_telemetry::json::parse(line)
            .map_err(|e| format!("{metrics_path}:{}: {e}", i + 1))?;
        if v.get("type").and_then(|t| t.as_str()).is_none() {
            return Err(format!("{metrics_path}:{}: line without `type`", i + 1));
        }
        if v.get("type").and_then(|t| t.as_str()) == Some("load_balance") {
            balance = Some(v);
        }
    }
    let balance = balance.ok_or_else(|| format!("{metrics_path}: no load_balance line"))?;
    let items: Vec<u64> = balance
        .get("per_worker_items")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{metrics_path}: load_balance without per_worker_items"))?
        .iter()
        .map(|w| w.get("items").and_then(|x| x.as_f64()).unwrap_or(-1.0) as u64)
        .collect();
    let ceil = n.div_ceil(p);
    let sum: u64 = items.iter().sum();
    if sum != n || items.iter().any(|&c| c > ceil) {
        return Err(format!(
            "{metrics_path}: Thm 14 violated: sum={sum} (want {n}), max={} (want ≤ {ceil})",
            items.iter().max().copied().unwrap_or(0)
        ));
    }
    if balance.get("thm14_exact") != Some(&mergepath_telemetry::json::Value::Bool(true)) {
        return Err(format!("{metrics_path}: thm14_exact is not true"));
    }
    Ok(())
}

fn verify_telemetry(opts: BuildOpts) -> ExitCode {
    let dir = std::path::Path::new("target").join("xtask");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("verify-telemetry: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let trace = dir.join("verify-trace.json");
    let metrics = dir.join("verify-metrics.jsonl");
    let (n, p) = (100_000u64, 4u64);
    let n_arg = n.to_string();
    let p_arg = p.to_string();
    let trace_arg = trace.display().to_string();
    let metrics_arg = metrics.display().to_string();
    let mut args = vec!["run", "--offline", "--release", "-q", "-p", "mergepath-cli"];
    args.extend_from_slice(opts.feature_args());
    args.extend_from_slice(&[
        "--bin",
        "mp",
        "--",
        "trace",
        "--kernel",
        "parallel",
        "--n",
        &n_arg,
        "--threads",
        &p_arg,
        "--trace-out",
        &trace_arg,
        "--metrics-out",
        &metrics_arg,
    ]);
    if !cargo(&args) {
        eprintln!("verify-telemetry: FAILED running `mp trace`");
        return ExitCode::FAILURE;
    }
    match check_trace_outputs(&trace_arg, &metrics_arg, n, p) {
        Ok(()) => {
            println!(
                "verify-telemetry: OK (Chrome trace + JSONL metrics valid, Thm 14 bounds hold)"
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("verify-telemetry: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The schedule-exploration gate, in two halves:
///
/// 1. **Soundness of the kernels**: `mp check --kernel all` must accept
///    every kernel — CREW-exclusive, exactly covering, Thm 14-bounded and
///    oracle-identical under permuted virtual schedules.
/// 2. **Sensitivity of the checker**: the workspace is rebuilt with
///    `--cfg mergepath_mutate` (a deliberate off-by-one in the Algorithm 1
///    partition that makes two shares write the same boundary slot with the
///    same value — invisible to output diffing, plus a lane swap in the
///    SIMD bitonic network that corrupts merged values) and every mutation
///    self-test must observe the checker convicting its fault. A separate
///    target directory keeps the mutated artifacts from poisoning the
///    normal build cache.
///
/// A second leg always draws round orders from the simulated
/// work-stealing deque protocol (`--steal-orders`): executor-realistic
/// interleavings where the executing worker differs from the pushing
/// worker, covering the reorderings a live stolen ticket can produce. A
/// third leg always forces the co-rank stable kernel
/// (`mp check --kernel all --dispatch co_rank`): its inputs stay
/// provenance-tagged and duplicate-heavy, so the oracle comparison proves
/// the A-before-B tie break on top of CREW exclusivity and the ⌈E/s⌉ cap.
/// With `--simd`, two more legs force the vectorized segment kernel over
/// primitive-key inputs (`mp check --kernel all --dispatch simd`, with
/// and without `--steal-orders`), and the mutation leg compiles the
/// lane-swap fault in.
fn verify_schedules(opts: BuildOpts) -> ExitCode {
    let mut runs: Vec<Vec<&str>> = Vec::new();
    let mut base = vec!["run", "--offline", "--release", "-q", "-p", "mergepath-cli"];
    base.extend_from_slice(opts.feature_args());
    base.extend_from_slice(&[
        "--bin",
        "mp",
        "--",
        "check",
        "--kernel",
        "all",
        "--n",
        "4096",
        "--threads",
        "4",
        "--schedules",
        "8",
    ]);
    runs.push(base.clone());
    let mut steal = base.clone();
    steal.push("--steal-orders");
    runs.push(steal);
    let mut co_rank = base.clone();
    co_rank.extend_from_slice(&["--dispatch", "co_rank"]);
    runs.push(co_rank);
    if opts.simd {
        let mut forced = base.clone();
        forced.extend_from_slice(&["--dispatch", "simd"]);
        runs.push(forced);
        let mut forced_steal = base;
        forced_steal.extend_from_slice(&["--dispatch", "simd", "--steal-orders"]);
        runs.push(forced_steal);
    }
    for check in &runs {
        if !cargo(check) {
            eprintln!("verify-schedules: FAILED: `mp check --kernel all` found a violation");
            return ExitCode::FAILURE;
        }
    }
    let mut mutate = vec!["test", "--offline", "-q", "-p", "mergepath-check"];
    mutate.extend_from_slice(opts.feature_args());
    mutate.extend_from_slice(&["--test", "mutation"]);
    let envs = [
        ("RUSTFLAGS", "--cfg mergepath_mutate"),
        ("CARGO_TARGET_DIR", "target/mutate"),
    ];
    if !cargo_env(&mutate, &envs) {
        eprintln!("verify-schedules: FAILED: the checker did not detect an injected fault");
        return ExitCode::FAILURE;
    }
    println!(
        "verify-schedules: OK (all kernels CREW-exclusive under permuted and \
         steal-order schedules; injected faults detected)"
    );
    ExitCode::SUCCESS
}

/// Runs `mp bench` with the given extra arguments.
fn run_mp_bench(opts: BuildOpts, extra: &[&str]) -> bool {
    run_mp_bench_env(opts, extra, &[])
}

/// [`run_mp_bench`] with extra environment variables (e.g.
/// `MERGEPATH_THREADS` to size the global pool above this machine's core
/// count so work-stealing paths actually engage).
fn run_mp_bench_env(opts: BuildOpts, extra: &[&str], envs: &[(&str, &str)]) -> bool {
    let mut args = vec!["run", "--offline", "--release", "-q", "-p", "mergepath-cli"];
    args.extend_from_slice(opts.feature_args());
    args.extend_from_slice(&["--bin", "mp", "--", "bench"]);
    args.extend_from_slice(extra);
    cargo_env(&args, envs)
}

fn bench(opts: BuildOpts) -> ExitCode {
    if !run_mp_bench(opts, &["--out-dir", "."]) {
        eprintln!("bench: FAILED running `mp bench`");
        return ExitCode::FAILURE;
    }
    println!("bench: OK (BENCH_merge.json / BENCH_sort.json / BENCH_telemetry.json refreshed)");
    ExitCode::SUCCESS
}

/// Reads and envelope-checks one artifact, returning the parsed document.
fn load_artifact(
    path: &std::path::Path,
    doc_type: &str,
) -> Result<mergepath_telemetry::json::Value, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    mergepath_telemetry::artifact::check_artifact(&doc, doc_type)
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Per-family `adaptive_ns_per_elem` medians from a bench_merge/bench_sort
/// artifact.
fn family_medians(doc: &mergepath_telemetry::json::Value) -> Vec<(String, f64)> {
    use mergepath_telemetry::json::Value;
    doc.get("payload")
        .and_then(|p| p.get("families"))
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|f| {
            Some((
                f.get("family")?.as_str()?.to_string(),
                f.get("adaptive_ns_per_elem")?.as_f64()?,
            ))
        })
        .collect()
}

/// Every `*_ns_per_elem` median of a bench artifact, per family: the rows
/// that feed the regression history.
fn family_metrics(doc: &mergepath_telemetry::json::Value) -> Vec<(String, Vec<(String, f64)>)> {
    use mergepath_telemetry::json::Value;
    doc.get("payload")
        .and_then(|p| p.get("families"))
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|f| {
            let family = f.get("family")?.as_str()?.to_string();
            let metrics = f
                .as_object()?
                .iter()
                .filter_map(|(key, v)| {
                    Some((key.strip_suffix("_ns_per_elem")?.to_string(), v.as_f64()?))
                })
                .collect();
            Some((family, metrics))
        })
        .collect()
}

/// Renders the JSONL history entry for one `verify-bench` run: the shared
/// environment fingerprint plus every per-family ns/element median of the
/// merge and sort artifacts.
fn render_history_entry(
    merge: &mergepath_telemetry::json::Value,
    sort: &mergepath_telemetry::json::Value,
) -> String {
    use mergepath_telemetry::json::{write_f64, write_str, write_value, Value};
    let mut out = String::from("{\"type\":\"bench_history\",\"env\":");
    write_value(&mut out, merge.get("env").unwrap_or(&Value::Null));
    for (kind, doc) in [("merge", merge), ("sort", sort)] {
        out.push_str(",\"");
        out.push_str(kind);
        out.push_str("\":{");
        for (fi, (family, metrics)) in family_metrics(doc).iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            write_str(&mut out, family);
            out.push_str(":{");
            for (mi, (metric, ns)) in metrics.iter().enumerate() {
                if mi > 0 {
                    out.push(',');
                }
                write_str(&mut out, metric);
                out.push(':');
                write_f64(&mut out, *ns);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Loads the history entries of `results/bench_history.jsonl` that carry
/// the same environment fingerprint as the fresh run (numbers from other
/// machines or build configurations are never comparable). Unparseable
/// lines are skipped, so a corrupted history degrades to an empty one.
fn load_history(
    env: Option<&mergepath_telemetry::json::Value>,
) -> Vec<mergepath_telemetry::json::Value> {
    use mergepath_telemetry::json::Value;
    let Ok(text) = std::fs::read_to_string(HISTORY_PATH) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| mergepath_telemetry::json::parse(line).ok())
        .filter(|e| e.get("type").and_then(Value::as_str) == Some("bench_history"))
        .filter(|e| e.get("env") == env)
        .collect()
}

/// Judges the fresh artifact's per-family `adaptive` medians against the
/// rolling median of the last [`HISTORY_WINDOW`] same-environment history
/// entries, printing non-gating warnings for >10% regressions. Returns
/// `false` when the history held nothing to judge against (the caller then
/// falls back to the committed-artifact comparison).
fn judge_against_history(
    name: &str,
    kind: &str,
    fresh: &mergepath_telemetry::json::Value,
    history: &[mergepath_telemetry::json::Value],
) -> bool {
    let window = &history[history.len().saturating_sub(HISTORY_WINDOW)..];
    let mut judged = false;
    for (family, metrics) in family_metrics(fresh) {
        let Some(&(_, fresh_ns)) = metrics.iter().find(|(m, _)| m == "adaptive") else {
            continue;
        };
        let mut past: Vec<f64> = window
            .iter()
            .filter_map(|e| e.get(kind)?.get(&family)?.get("adaptive")?.as_f64())
            .collect();
        if past.is_empty() {
            continue;
        }
        judged = true;
        past.sort_by(f64::total_cmp);
        let median = past[past.len() / 2];
        if fresh_ns > median * 1.10 {
            println!(
                "verify-bench: WARNING: {name} {family}: fresh {fresh_ns:.3} ns/elem vs \
                 rolling median {median:.3} of the last {} run(s) (+{:.1}%, threshold 10%)",
                past.len(),
                (fresh_ns / median - 1.0) * 100.0
            );
        }
    }
    judged
}

/// Appends one rendered history line, creating `results/` on first use.
fn append_history(entry: &str) -> Result<(), String> {
    use std::io::Write as _;
    let path = std::path::Path::new(HISTORY_PATH);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{HISTORY_PATH}: {e}"))?;
    writeln!(file, "{entry}").map_err(|e| format!("{HISTORY_PATH}: {e}"))
}

/// Compares a fresh artifact against the committed one (if present) and
/// prints non-gating warnings for >10% median ns/element regressions.
fn warn_on_regression(name: &str, doc_type: &str, fresh: &mergepath_telemetry::json::Value) {
    let committed_path = std::path::Path::new(name);
    if !committed_path.exists() {
        println!("verify-bench: no committed {name}; skipping regression comparison");
        return;
    }
    let committed = match load_artifact(committed_path, doc_type) {
        Ok(doc) => doc,
        Err(e) => {
            println!("verify-bench: WARNING: committed {name} fails the schema check ({e})");
            return;
        }
    };
    if !mergepath_telemetry::artifact::same_env(fresh, &committed) {
        println!(
            "verify-bench: WARNING: {name} was produced on a different environment; \
             ns/element numbers are not directly comparable"
        );
    }
    let fresh_rows = family_medians(fresh);
    let committed_rows = family_medians(&committed);
    for (family, fresh_ns) in &fresh_rows {
        let Some((_, committed_ns)) = committed_rows.iter().find(|(f, _)| f == family) else {
            continue;
        };
        if *fresh_ns > committed_ns * 1.10 {
            println!(
                "verify-bench: WARNING: {name} {family}: fresh {fresh_ns:.3} ns/elem vs \
                 committed {committed_ns:.3} (+{:.1}%, threshold 10%)",
                (fresh_ns / committed_ns - 1.0) * 100.0
            );
        }
    }
}

/// Every merge family's `imbalance_co_rank` (items-based, from the pinned
/// co-rank traced run over exact-balance cuts) must sit under
/// [`CO_RANK_IMBALANCE_CAP`]. The duplicate-heavy family is the one the
/// co-rank kernel exists for, but the exact-balance argument is
/// input-oblivious, so all four are held to the same cap.
fn check_co_rank_imbalance(merge: &mergepath_telemetry::json::Value) -> Result<(), String> {
    use mergepath_telemetry::json::Value;
    let families = merge
        .get("payload")
        .and_then(|p| p.get("families"))
        .and_then(Value::as_array)
        .ok_or("payload.families missing")?;
    let mut seen_dup_heavy = false;
    for f in families {
        let family = f
            .get("family")
            .and_then(Value::as_str)
            .ok_or("family row without a name")?;
        seen_dup_heavy |= family == "duplicate-heavy";
        let imbalance = f
            .get("imbalance_co_rank")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{family}: imbalance_co_rank missing"))?;
        if imbalance > CO_RANK_IMBALANCE_CAP {
            return Err(format!(
                "{family}: co-rank items imbalance {imbalance} exceeds the \
                 {CO_RANK_IMBALANCE_CAP} exact-balance cap"
            ));
        }
    }
    if !seen_dup_heavy {
        return Err("duplicate-heavy family missing from the merge sweep".into());
    }
    Ok(())
}

fn verify_bench(opts: BuildOpts) -> ExitCode {
    let dir = std::path::Path::new("target").join("xtask").join("bench");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("verify-bench: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let out_dir = dir.display().to_string();
    if !run_mp_bench(opts, &["--smoke", "--out-dir", &out_dir]) {
        eprintln!("verify-bench: FAILED running `mp bench --smoke`");
        return ExitCode::FAILURE;
    }
    let specs = [
        ("BENCH_merge.json", "bench_merge"),
        ("BENCH_sort.json", "bench_sort"),
        ("BENCH_telemetry.json", "bench_telemetry"),
    ];
    let mut fresh = Vec::new();
    for (name, doc_type) in specs {
        match load_artifact(&dir.join(name), doc_type) {
            Ok(doc) => fresh.push(doc),
            Err(e) => {
                eprintln!("verify-bench: FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The three artifacts of one run must carry the same fingerprint.
    for pair in fresh.windows(2) {
        if !mergepath_telemetry::artifact::same_env(&pair[0], &pair[1]) {
            eprintln!("verify-bench: FAILED: artifacts disagree on the environment fingerprint");
            return ExitCode::FAILURE;
        }
    }
    // The exact-balance gate: deterministic, so a violation is a bug in the
    // cut schedule, never noise.
    if let Err(e) = check_co_rank_imbalance(&fresh[0]) {
        eprintln!("verify-bench: FAILED: BENCH_merge.json: {e}");
        return ExitCode::FAILURE;
    }
    // Judge against the rolling history first; artifacts with no usable
    // history fall back to the committed-baseline comparison.
    let history = load_history(fresh[0].get("env"));
    if !judge_against_history("BENCH_merge.json", "merge", &fresh[0], &history) {
        warn_on_regression("BENCH_merge.json", "bench_merge", &fresh[0]);
    }
    if !judge_against_history("BENCH_sort.json", "sort", &fresh[1], &history) {
        warn_on_regression("BENCH_sort.json", "bench_sort", &fresh[1]);
    }
    match append_history(&render_history_entry(&fresh[0], &fresh[1])) {
        Ok(()) => println!(
            "verify-bench: appended run #{} to {HISTORY_PATH}",
            history.len() + 1
        ),
        Err(e) => println!("verify-bench: WARNING: could not append history ({e})"),
    }
    println!(
        "verify-bench: OK (three artifacts schema-checked, shared fingerprint; \
         regressions are warnings only)"
    );
    ExitCode::SUCCESS
}

/// Validates one fresh `bench_serve` payload: all three arrival patterns
/// present, ≥ 4 concurrency levels, on every row the zero-lost /
/// zero-correctness-failure / zero-contained-panic invariants, a complete
/// `round_overlap` before/after cell, and — when the run had ≥ 2 pool
/// threads — the work-stealing witness: `pool_steals > 0` somewhere under
/// the bursty pattern.
fn check_serve_payload(
    doc: &mergepath_telemetry::json::Value,
    expect_steals: bool,
) -> Result<(), String> {
    use mergepath_telemetry::json::Value;
    let rows = doc
        .get("payload")
        .and_then(|p| p.get("rows"))
        .and_then(Value::as_array)
        .ok_or("payload.rows missing")?;
    if rows.is_empty() {
        return Err("payload.rows is empty".into());
    }
    let mut patterns = std::collections::BTreeSet::new();
    let mut levels = std::collections::BTreeSet::new();
    let mut bursty_batched_rounds = 0.0;
    let mut bursty_pool_steals = 0.0;
    for (i, r) in rows.iter().enumerate() {
        let pattern = r
            .get("pattern")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("row {i}: pattern missing"))?;
        patterns.insert(pattern.to_string());
        let level = r
            .get("concurrency")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("row {i}: concurrency missing"))? as u64;
        levels.insert(level);
        for col in [
            "throughput_rps",
            "p50_ns",
            "p99_ns",
            "completed",
            "serve_batched",
            "batched_requests",
            "batch_width",
            "replay_fifo_deadline_miss",
            "replay_edf_deadline_miss",
            "pool_steals",
            "pool_stolen_shares",
        ] {
            if r.get(col).and_then(Value::as_f64).is_none() {
                return Err(format!("row {i} ({pattern} @ {level}): {col} missing"));
            }
        }
        if pattern == "bursty" {
            bursty_batched_rounds += r
                .get("serve_batched")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            bursty_pool_steals += r.get("pool_steals").and_then(Value::as_f64).unwrap_or(0.0);
        }
        for (col, want) in [
            ("lost", 0.0),
            ("correctness_failures", 0.0),
            ("failed", 0.0),
        ] {
            let got = r
                .get(col)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("row {i} ({pattern} @ {level}): {col} missing"))?;
            if got != want {
                return Err(format!(
                    "row {i} ({pattern} @ {level}): {col} = {got}, want 0"
                ));
            }
        }
    }
    for want in ["steady", "bursty", "heavy-tail"] {
        if !patterns.contains(want) {
            return Err(format!("pattern {want:?} missing from the sweep"));
        }
    }
    if levels.len() < 4 {
        return Err(format!(
            "only {} distinct concurrency level(s); the sweep needs >= 4",
            levels.len()
        ));
    }
    // The batching witness: bursty arrivals pile compatible small merges
    // into the queue, so the daemon must have coalesced at least one pool
    // round somewhere in the bursty cells.
    if bursty_batched_rounds <= 0.0 {
        return Err(
            "no bursty row recorded a batched round (serve_batched == 0 everywhere)".into(),
        );
    }
    // The round-overlap cell: both arms present and complete, and the
    // overlapped arm at least as described by its own tag.
    let overlap = doc
        .get("payload")
        .and_then(|p| p.get("round_overlap"))
        .ok_or("payload.round_overlap missing")?;
    if overlap.get("pattern").and_then(Value::as_str) != Some("bursty") {
        return Err("round_overlap.pattern is not bursty".into());
    }
    let mut overlapped_steals = 0.0;
    for (arm, want_serialized) in [("serialized", true), ("overlapped", false)] {
        let a = overlap
            .get(arm)
            .ok_or_else(|| format!("round_overlap.{arm} missing"))?;
        match a.get("serialized") {
            Some(Value::Bool(b)) if *b == want_serialized => {}
            other => {
                return Err(format!(
                    "round_overlap.{arm}.serialized = {other:?}, want {want_serialized}"
                ))
            }
        }
        for col in ["completed", "wall_ns", "p50_ns", "p99_ns", "pool_steals"] {
            if a.get(col).and_then(Value::as_f64).is_none() {
                return Err(format!("round_overlap.{arm}.{col} missing"));
            }
        }
        if a.get("completed").and_then(Value::as_f64) == Some(0.0) {
            return Err(format!("round_overlap.{arm} completed no requests"));
        }
        if arm == "overlapped" {
            overlapped_steals = a.get("pool_steals").and_then(Value::as_f64).unwrap_or(0.0);
        }
    }
    // The work-stealing witness: the gate's bench runs with a forced
    // multi-thread pool (`MERGEPATH_THREADS`), so the bursty cells (sweep
    // rows plus the overlapped arm) must have recorded at least one
    // productive steal — otherwise the executor quietly degraded to the
    // old serialized behaviour.
    if expect_steals && bursty_pool_steals + overlapped_steals <= 0.0 {
        return Err(
            "pool_steals == 0 across every bursty cell despite a multi-thread pool: \
             the work-stealing path never engaged"
                .into(),
        );
    }
    Ok(())
}

/// Renders the JSONL history entry for one `verify-serve` run: the shared
/// environment fingerprint plus per-(pattern, concurrency) throughput and
/// latency percentiles.
fn render_serve_history_entry(doc: &mergepath_telemetry::json::Value) -> String {
    use mergepath_telemetry::json::{write_f64, write_str, write_value, Value};
    let mut out = String::from("{\"type\":\"serve_history\",\"env\":");
    write_value(&mut out, doc.get("env").unwrap_or(&Value::Null));
    out.push_str(",\"rows\":[");
    let rows = doc
        .get("payload")
        .and_then(|p| p.get("rows"))
        .and_then(Value::as_array)
        .unwrap_or(&[]);
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"pattern\":");
        write_str(
            &mut out,
            r.get("pattern").and_then(Value::as_str).unwrap_or("?"),
        );
        for col in [
            "concurrency",
            "completed",
            "throughput_rps",
            "p50_ns",
            "p99_ns",
            "pool_steals",
        ] {
            out.push_str(",\"");
            out.push_str(col);
            out.push_str("\":");
            write_f64(&mut out, r.get(col).and_then(Value::as_f64).unwrap_or(-1.0));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn verify_serve(opts: BuildOpts) -> ExitCode {
    let dir = std::path::Path::new("target").join("xtask").join("serve");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("verify-serve: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let out_dir = dir.display().to_string();
    // Force a 4-thread pool regardless of the host's core count: the
    // round-overlap cell and the pool_steals witness are meaningless on a
    // single-thread pool, where every round runs inline.
    if !run_mp_bench_env(
        opts,
        &[
            "--smoke",
            "--serve",
            "--threads",
            "4",
            "--out-dir",
            &out_dir,
        ],
        &[("MERGEPATH_THREADS", "4")],
    ) {
        eprintln!("verify-serve: FAILED running `mp bench --smoke --serve`");
        return ExitCode::FAILURE;
    }
    let fresh = match load_artifact(&dir.join("BENCH_serve.json"), "bench_serve") {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("verify-serve: FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = check_serve_payload(&fresh, true) {
        eprintln!("verify-serve: FAILED: BENCH_serve.json: {e}");
        return ExitCode::FAILURE;
    }
    match append_history(&render_serve_history_entry(&fresh)) {
        Ok(()) => println!("verify-serve: appended serve_history to {HISTORY_PATH}"),
        Err(e) => println!("verify-serve: WARNING: could not append history ({e})"),
    }
    println!(
        "verify-serve: OK (3 patterns x >=4 concurrency levels; zero lost requests, \
         zero correctness failures; round-overlap cell present, pool steals witnessed)"
    );
    ExitCode::SUCCESS
}

/// Validates one fresh `net_loopback` payload: every request answered Ok
/// and byte-identical to the sequential oracle, all nine adversarial
/// families exercised, and the malformed-frame probe confirming the
/// daemon closed the abusive connection yet survived to serve another.
fn check_net_payload(doc: &mergepath_telemetry::json::Value) -> Result<(), String> {
    use mergepath_telemetry::json::Value;
    let payload = doc.get("payload").ok_or("payload missing")?;
    let num = |key: &str| -> Result<f64, String> {
        payload
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("payload.{key} missing"))
    };
    let requests = num("requests")?;
    if requests <= 0.0 {
        return Err("payload.requests is zero".into());
    }
    if num("ok")? != requests {
        return Err(format!("ok = {} of {requests} requests", num("ok")?));
    }
    for key in [
        "mismatches",
        "rejected_queue_full",
        "rejected_deadline",
        "failed",
    ] {
        if num(key)? != 0.0 {
            return Err(format!("payload.{key} = {}, want 0", num(key)?));
        }
    }
    let families = payload
        .get("families")
        .and_then(Value::as_array)
        .ok_or("payload.families missing")?;
    if families.len() != 9 {
        return Err(format!(
            "{} merge families exercised, want all 9",
            families.len()
        ));
    }
    let probe = payload
        .get("malformed_probe")
        .ok_or("payload.malformed_probe missing (client must run with --malformed)")?;
    for key in ["connection_closed", "daemon_survived"] {
        match probe.get(key) {
            Some(Value::Bool(true)) => {}
            other => return Err(format!("malformed_probe.{key} = {other:?}, want true")),
        }
    }
    Ok(())
}

/// End-to-end loopback gate for the out-of-process daemon: spawn
/// `mp serve --listen 127.0.0.1:0`, parse the ephemeral port off its
/// stdout, drive `mp client --malformed` against it (nine families,
/// oracle-checked, plus the garbage-frame hygiene probe), schema-check
/// the `NET_loopback.json` artifact, then close the daemon's stdin and
/// require a clean `lost=0` shutdown line.
fn verify_net(opts: BuildOpts) -> ExitCode {
    use std::io::{BufRead as _, BufReader, Read as _};
    use std::process::Stdio;

    let dir = std::path::Path::new("target").join("xtask").join("net");
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("verify-net: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }

    // Build up front so the daemon spawn below goes straight to execution
    // and its first stdout line is the listen banner.
    let mut build = vec![
        "build",
        "--offline",
        "--release",
        "-q",
        "-p",
        "mergepath-cli",
        "--bin",
        "mp",
    ];
    build.extend_from_slice(opts.feature_args());
    if !cargo(&build) {
        eprintln!("verify-net: FAILED building the mp binary");
        return ExitCode::FAILURE;
    }

    let cargo_bin = env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut daemon_args = vec![
        "run".to_string(),
        "--offline".into(),
        "--release".into(),
        "-q".into(),
        "-p".into(),
        "mergepath-cli".into(),
    ];
    daemon_args.extend(opts.feature_args().iter().map(|s| s.to_string()));
    for a in [
        "--bin",
        "mp",
        "--",
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--concurrency",
        "4",
        "--queue-capacity",
        "256",
        "--n",
        "256",
        "--threads",
        "2",
    ] {
        daemon_args.push(a.to_string());
    }
    println!("$ cargo {} &", daemon_args.join(" "));
    let mut daemon = match std::process::Command::new(&cargo_bin)
        .args(&daemon_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => {
            eprintln!("verify-net: failed to spawn the daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut daemon_out = BufReader::new(daemon.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    let addr = match daemon_out.read_line(&mut banner) {
        Ok(_) if banner.starts_with("mp serve: listening on ") => banner
            .trim_start_matches("mp serve: listening on ")
            .trim()
            .to_string(),
        other => {
            eprintln!(
                "verify-net: FAILED: no listen banner from the daemon ({other:?}: {banner:?})"
            );
            let _ = daemon.kill();
            return ExitCode::FAILURE;
        }
    };
    println!("verify-net: daemon listening on {addr}");

    let artifact = dir.join("NET_loopback.json");
    let artifact_arg = artifact.display().to_string();
    let mut client = vec!["run", "--offline", "--release", "-q", "-p", "mergepath-cli"];
    client.extend_from_slice(opts.feature_args());
    client.extend_from_slice(&[
        "--bin",
        "mp",
        "--",
        "client",
        "--addr",
        &addr,
        "--requests",
        "36",
        "--n",
        "256",
        "--seed",
        "7",
        "--malformed",
        "--out",
        &artifact_arg,
    ]);
    let client_ok = cargo(&client);

    // Loopback check done (or failed): close the daemon's stdin so it
    // shuts down, and read its final stats line either way.
    drop(daemon.stdin.take());
    let mut rest = String::new();
    let _ = daemon_out.read_to_string(&mut rest);
    let daemon_status = daemon.wait();

    if !client_ok {
        eprintln!("verify-net: FAILED: `mp client` reported a loopback failure");
        return ExitCode::FAILURE;
    }
    match load_artifact(&artifact, "net_loopback").and_then(|doc| check_net_payload(&doc)) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("verify-net: FAILED: NET_loopback.json: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !matches!(daemon_status, Ok(s) if s.success()) {
        eprintln!("verify-net: FAILED: the daemon exited abnormally ({daemon_status:?})");
        return ExitCode::FAILURE;
    }
    let shutdown = rest
        .lines()
        .find(|l| l.starts_with("mp serve: shutdown "))
        .unwrap_or("");
    println!("verify-net: {}", shutdown.trim_start_matches("mp serve: "));
    if !shutdown.contains(" lost=0 ") {
        eprintln!("verify-net: FAILED: daemon shutdown line lacks lost=0: {shutdown:?}");
        return ExitCode::FAILURE;
    }
    // The hygiene probe deliberately feeds the daemon one garbage frame.
    if !shutdown.contains("protocol_errors=1") {
        eprintln!("verify-net: FAILED: expected exactly one counted protocol error: {shutdown:?}");
        return ExitCode::FAILURE;
    }
    println!(
        "verify-net: OK (loopback oracle-identical across 9 families, malformed-frame \
         probe contained, clean lost=0 shutdown)"
    );
    ExitCode::SUCCESS
}

/// Schema-checks everything one metrics-enabled serve run wrote under
/// `dir`: the Prometheus-text scrape file, the snapshot JSONL stream, the
/// `METRICS_serve.json` envelope (shared artifact schema), and at least
/// one automatic anomaly flight dump whose every line parses. The final
/// JSONL snapshot and the envelope snapshot must agree that all
/// `requests` submissions were counted. Returns the number of dumps.
fn check_metrics_outputs(dir: &std::path::Path, requests: f64) -> Result<usize, String> {
    use mergepath_telemetry::json::{self, Value};

    let prom_path = dir.join("metrics.prom");
    let prom =
        std::fs::read_to_string(&prom_path).map_err(|e| format!("{}: {e}", prom_path.display()))?;
    for needle in [
        "# TYPE serve_submitted_total counter",
        "# TYPE serve_latency_ns summary",
        "serve_stage_queue_ns",
    ] {
        if !prom.contains(needle) {
            return Err(format!("{}: missing {needle:?}", prom_path.display()));
        }
    }

    let jsonl_path = dir.join("metrics.jsonl");
    let jsonl = std::fs::read_to_string(&jsonl_path)
        .map_err(|e| format!("{}: {e}", jsonl_path.display()))?;
    let mut last = None;
    for (i, line) in jsonl.lines().enumerate() {
        let v =
            json::parse(line).map_err(|e| format!("{}:{}: {e}", jsonl_path.display(), i + 1))?;
        if v.get("type").and_then(Value::as_str) != Some("metrics_snapshot") {
            return Err(format!(
                "{}:{}: line is not a metrics_snapshot",
                jsonl_path.display(),
                i + 1
            ));
        }
        last = Some(v);
    }
    let last = last.ok_or_else(|| format!("{}: no snapshots", jsonl_path.display()))?;
    let submitted = |snap: &Value| {
        snap.get("counters")
            .and_then(|c| c.get("serve_submitted_total"))
            .and_then(Value::as_f64)
    };
    if submitted(&last) != Some(requests) {
        return Err(format!(
            "{}: final snapshot counted {:?} submissions, want {requests}",
            jsonl_path.display(),
            submitted(&last)
        ));
    }

    let doc = load_artifact(&dir.join("METRICS_serve.json"), "metrics_serve")?;
    let payload = doc
        .get("payload")
        .ok_or("METRICS_serve.json: envelope without payload")?;
    let snap = payload
        .get("snapshot")
        .ok_or("METRICS_serve.json: payload without snapshot")?;
    if submitted(snap) != Some(requests) {
        return Err(format!(
            "METRICS_serve.json: envelope snapshot counted {:?} submissions, want {requests}",
            submitted(snap)
        ));
    }
    let dumps = payload
        .get("dumps")
        .and_then(Value::as_array)
        .ok_or("METRICS_serve.json: payload without dumps array")?;
    if dumps.is_empty() {
        return Err(
            "no anomaly flight dump: the overloaded run should have missed \
                    its 1 ms deadline"
                .into(),
        );
    }
    for d in dumps {
        let path = d
            .as_str()
            .ok_or("METRICS_serve.json: non-string dump path")?;
        let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let head = json::parse(body.lines().next().unwrap_or(""))
            .map_err(|e| format!("{path}: header: {e}"))?;
        if head.get("type").and_then(Value::as_str) != Some("flight_dump")
            || head.get("trigger").and_then(Value::as_str).is_none()
        {
            return Err(format!(
                "{path}: header is not a flight_dump with a trigger"
            ));
        }
        for (i, line) in body.lines().enumerate().skip(1) {
            let v = json::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
            if v.get("type").and_then(Value::as_str) != Some("flight_event") {
                return Err(format!("{path}:{}: line is not a flight_event", i + 1));
            }
        }
    }
    Ok(dumps.len())
}

/// The observability-overhead gate: `BENCH_telemetry.json` carries a
/// `serve_overhead` point (metrics-on vs metrics-off medians of the same
/// unpaced serve workload); the enabled layer must cost at most 3%.
fn check_overhead(dir: &std::path::Path) -> Result<f64, String> {
    use mergepath_telemetry::json::Value;
    let doc = load_artifact(&dir.join("BENCH_telemetry.json"), "bench_telemetry")?;
    let overhead = doc
        .get("payload")
        .and_then(|p| p.get("serve_overhead"))
        .and_then(|o| o.get("overhead"))
        .and_then(Value::as_f64)
        .ok_or("BENCH_telemetry.json: payload.serve_overhead.overhead missing")?;
    if overhead > 0.03 {
        return Err(format!(
            "observability overhead {:.2}% exceeds the 3% budget",
            overhead * 100.0
        ));
    }
    Ok(overhead)
}

/// The live-observability gate (DESIGN.md §12), in three legs:
///
/// 1. **Anomaly path**: an overloaded `mp serve --metrics-out` run —
///    bursty arrivals, large merges, 1 ms deadline — deterministically
///    misses deadlines, so the flight recorder must dump automatically;
///    every file the live layer wrote is then schema-checked.
/// 2. **Hot-path cost**: the `metrics_invariants` integration tests prove
///    with a counting allocator that every probe hook and flight-ring
///    write is allocation-free, that waterfall stages partition latency
///    exactly, and that the disabled [`NoProbe`] path stays zero-sized.
/// 3. **Overhead budget**: a smoke `mp bench` refreshes the
///    `serve_overhead` point and >3% metrics-on overhead fails the gate.
fn verify_metrics(opts: BuildOpts) -> ExitCode {
    let dir = std::path::Path::new("target").join("xtask").join("metrics");
    // Stale dumps from an earlier run must not satisfy the gate.
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("verify-metrics: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let dir_arg = dir.display().to_string();
    let mut args = vec!["run", "--offline", "--release", "-q", "-p", "mergepath-cli"];
    args.extend_from_slice(opts.feature_args());
    args.extend_from_slice(&[
        "--bin",
        "mp",
        "--",
        "serve",
        "--requests",
        "48",
        "--concurrency",
        "4",
        "--queue-capacity",
        "64",
        "--deadline-ms",
        "1",
        "--pattern",
        "bursty",
        "--n",
        "65536",
        "--threads",
        "2",
        "--seed",
        "42",
        "--metrics-out",
        &dir_arg,
    ]);
    if !cargo(&args) {
        eprintln!("verify-metrics: FAILED running the overloaded `mp serve`");
        return ExitCode::FAILURE;
    }
    let dumps = match check_metrics_outputs(&dir, 48.0) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("verify-metrics: FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut tests = vec![
        "test",
        "--offline",
        "-q",
        "-p",
        "mergepath-suite",
        "--test",
        "metrics_invariants",
        "--test",
        "histogram_props",
    ];
    tests.extend_from_slice(opts.feature_args());
    if !cargo(&tests) {
        eprintln!("verify-metrics: FAILED: hot-path allocation / histogram invariants");
        return ExitCode::FAILURE;
    }
    let bench_dir = std::path::Path::new("target")
        .join("xtask")
        .join("metrics-bench");
    if let Err(e) = std::fs::create_dir_all(&bench_dir) {
        eprintln!("verify-metrics: cannot create {}: {e}", bench_dir.display());
        return ExitCode::FAILURE;
    }
    let bench_arg = bench_dir.display().to_string();
    if !run_mp_bench(opts, &["--smoke", "--out-dir", &bench_arg]) {
        eprintln!("verify-metrics: FAILED running `mp bench --smoke` for the overhead point");
        return ExitCode::FAILURE;
    }
    match check_overhead(&bench_dir) {
        Ok(overhead) => println!(
            "verify-metrics: OK ({dumps} anomaly dump(s) schema-checked, hot path \
             allocation-free, observability overhead {:.2}% <= 3%)",
            overhead * 100.0
        ),
        Err(e) => {
            eprintln!("verify-metrics: FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let task = args.next();
    let mut opts = BuildOpts { simd: false };
    for flag in args {
        match flag.as_str() {
            "--simd" => opts.simd = true,
            other => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
        }
    }
    match task.as_deref() {
        Some("verify-offline") => verify_offline(opts),
        Some("verify-telemetry") => verify_telemetry(opts),
        Some("verify-schedules") => verify_schedules(opts),
        Some("bench") => bench(opts),
        Some("verify-bench") => verify_bench(opts),
        Some("verify-serve") => verify_serve(opts),
        Some("verify-net") => verify_net(opts),
        Some("verify-metrics") => verify_metrics(opts),
        _ => usage(),
    }
}
