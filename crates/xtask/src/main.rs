//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! The workspace must stay **hermetic**: every dependency is either the
//! standard library or an in-repo path crate, so a fresh checkout builds
//! and tests with no network or registry access. `verify-offline` is the
//! gate for that property — CI (or a release checklist) runs it so a
//! crates-io dependency can never silently creep back into the graph.

use std::env;
use std::process::{Command, ExitCode};

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  verify-offline   build (release) and test the whole workspace with");
    eprintln!("                   cargo's --offline flag; fails if anything needs the");
    eprintln!("                   network or the registry");
    ExitCode::FAILURE
}

/// Runs `cargo <args>` against the workspace root, echoing the command.
fn cargo(args: &[&str]) -> bool {
    let cargo = env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    println!("$ cargo {}", args.join(" "));
    match Command::new(cargo).args(args).status() {
        Ok(status) => status.success(),
        Err(e) => {
            eprintln!("failed to spawn cargo: {e}");
            false
        }
    }
}

fn verify_offline() -> ExitCode {
    let steps: &[&[&str]] = &[
        &["build", "--offline", "--release", "--workspace"],
        &["test", "--offline", "-q", "--workspace"],
    ];
    for step in steps {
        if !cargo(step) {
            eprintln!("verify-offline: FAILED at `cargo {}`", step.join(" "));
            return ExitCode::FAILURE;
        }
    }
    println!("verify-offline: OK (workspace builds and tests with no network)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let task = env::args().nth(1);
    match task.as_deref() {
        Some("verify-offline") => verify_offline(),
        _ => usage(),
    }
}
