//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! The workspace must stay **hermetic**: every dependency is either the
//! standard library or an in-repo path crate, so a fresh checkout builds
//! and tests with no network or registry access. `verify-offline` is the
//! gate for that property — CI (or a release checklist) runs it so a
//! crates-io dependency can never silently creep back into the graph.

use std::env;
use std::process::{Command, ExitCode};

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  verify-offline   build (release) and test the whole workspace with");
    eprintln!("                   cargo's --offline flag; fails if anything needs the");
    eprintln!("                   network or the registry");
    eprintln!("  verify-telemetry run `mp trace` on a small input and schema-check the");
    eprintln!("                   Chrome trace and JSONL metrics it emits (Thm 14");
    eprintln!("                   per-worker bounds included)");
    eprintln!("  verify-schedules run `mp check --kernel all` (CREW exclusivity, exact");
    eprintln!("                   coverage and Thm 14 across permuted virtual schedules");
    eprintln!("                   for every kernel), then rebuild with the injected");
    eprintln!("                   partition fault (--cfg mergepath_mutate) and prove the");
    eprintln!("                   checker reports the overlap");
    eprintln!("  bench            run `mp bench` at full scale, refreshing the committed");
    eprintln!("                   BENCH_merge.json / BENCH_sort.json / BENCH_telemetry.json");
    eprintln!("                   at the workspace root");
    eprintln!("  verify-bench     run `mp bench --smoke` into target/xtask/bench, schema-");
    eprintln!("                   check the three artifacts (shared envelope + fingerprint),");
    eprintln!("                   and WARN (not fail) when a fresh median ns/element");
    eprintln!("                   regresses >10% against a committed artifact");
    ExitCode::FAILURE
}

/// Runs `cargo <args>` against the workspace root, echoing the command.
fn cargo(args: &[&str]) -> bool {
    cargo_env(args, &[])
}

/// [`cargo`] with extra environment variables (echoed alongside the
/// command).
fn cargo_env(args: &[&str], envs: &[(&str, &str)]) -> bool {
    let cargo = env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let prefix: String = envs.iter().map(|(k, v)| format!("{k}={v} ")).collect();
    println!("$ {prefix}cargo {}", args.join(" "));
    let mut cmd = Command::new(cargo);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    match cmd.status() {
        Ok(status) => status.success(),
        Err(e) => {
            eprintln!("failed to spawn cargo: {e}");
            false
        }
    }
}

fn verify_offline() -> ExitCode {
    let steps: &[&[&str]] = &[
        &["build", "--offline", "--release", "--workspace"],
        &["test", "--offline", "-q", "--workspace"],
    ];
    for step in steps {
        if !cargo(step) {
            eprintln!("verify-offline: FAILED at `cargo {}`", step.join(" "));
            return ExitCode::FAILURE;
        }
    }
    println!("verify-offline: OK (workspace builds and tests with no network)");
    ExitCode::SUCCESS
}

/// Schema-checks one `mp trace` run: the Chrome trace must be one JSON
/// document with a non-empty `traceEvents` array, and every metrics line
/// must parse, include a `load_balance` summary, and satisfy Thm 14 for the
/// single-round parallel merge (per-worker counts each ≤ ⌈N/p⌉, sum = N).
fn check_trace_outputs(trace_path: &str, metrics_path: &str, n: u64, p: u64) -> Result<(), String> {
    let trace = std::fs::read_to_string(trace_path).map_err(|e| format!("{trace_path}: {e}"))?;
    let doc = mergepath_telemetry::json::parse(&trace).map_err(|e| format!("{trace_path}: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{trace_path}: missing traceEvents array"))?;
    if events.is_empty() {
        return Err(format!("{trace_path}: traceEvents is empty"));
    }
    for ev in events {
        for key in ["name", "ph"] {
            if ev.get(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!("{trace_path}: event without string `{key}`"));
            }
        }
    }

    let metrics =
        std::fs::read_to_string(metrics_path).map_err(|e| format!("{metrics_path}: {e}"))?;
    let mut balance = None;
    for (i, line) in metrics.lines().enumerate() {
        let v = mergepath_telemetry::json::parse(line)
            .map_err(|e| format!("{metrics_path}:{}: {e}", i + 1))?;
        if v.get("type").and_then(|t| t.as_str()).is_none() {
            return Err(format!("{metrics_path}:{}: line without `type`", i + 1));
        }
        if v.get("type").and_then(|t| t.as_str()) == Some("load_balance") {
            balance = Some(v);
        }
    }
    let balance = balance.ok_or_else(|| format!("{metrics_path}: no load_balance line"))?;
    let items: Vec<u64> = balance
        .get("per_worker_items")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{metrics_path}: load_balance without per_worker_items"))?
        .iter()
        .map(|w| w.get("items").and_then(|x| x.as_f64()).unwrap_or(-1.0) as u64)
        .collect();
    let ceil = n.div_ceil(p);
    let sum: u64 = items.iter().sum();
    if sum != n || items.iter().any(|&c| c > ceil) {
        return Err(format!(
            "{metrics_path}: Thm 14 violated: sum={sum} (want {n}), max={} (want ≤ {ceil})",
            items.iter().max().copied().unwrap_or(0)
        ));
    }
    if balance.get("thm14_exact") != Some(&mergepath_telemetry::json::Value::Bool(true)) {
        return Err(format!("{metrics_path}: thm14_exact is not true"));
    }
    Ok(())
}

fn verify_telemetry() -> ExitCode {
    let dir = std::path::Path::new("target").join("xtask");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("verify-telemetry: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let trace = dir.join("verify-trace.json");
    let metrics = dir.join("verify-metrics.jsonl");
    let (n, p) = (100_000u64, 4u64);
    let n_arg = n.to_string();
    let p_arg = p.to_string();
    let trace_arg = trace.display().to_string();
    let metrics_arg = metrics.display().to_string();
    let args = [
        "run",
        "--offline",
        "--release",
        "-q",
        "-p",
        "mergepath-cli",
        "--bin",
        "mp",
        "--",
        "trace",
        "--kernel",
        "parallel",
        "--n",
        &n_arg,
        "--threads",
        &p_arg,
        "--trace-out",
        &trace_arg,
        "--metrics-out",
        &metrics_arg,
    ];
    if !cargo(&args) {
        eprintln!("verify-telemetry: FAILED running `mp trace`");
        return ExitCode::FAILURE;
    }
    match check_trace_outputs(&trace_arg, &metrics_arg, n, p) {
        Ok(()) => {
            println!(
                "verify-telemetry: OK (Chrome trace + JSONL metrics valid, Thm 14 bounds hold)"
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("verify-telemetry: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The schedule-exploration gate, in two halves:
///
/// 1. **Soundness of the kernels**: `mp check --kernel all` must accept
///    every kernel — CREW-exclusive, exactly covering, Thm 14-bounded and
///    oracle-identical under permuted virtual schedules.
/// 2. **Sensitivity of the checker**: the workspace is rebuilt with
///    `--cfg mergepath_mutate` (a deliberate off-by-one in the Algorithm 1
///    partition that makes two shares write the same boundary slot with the
///    same value — invisible to output diffing) and the mutation self-test
///    must observe the checker reporting `WriteOverlap`. A separate target
///    directory keeps the mutated artifacts from poisoning the normal
///    build cache.
fn verify_schedules() -> ExitCode {
    let check = [
        "run",
        "--offline",
        "--release",
        "-q",
        "-p",
        "mergepath-cli",
        "--bin",
        "mp",
        "--",
        "check",
        "--kernel",
        "all",
        "--n",
        "4096",
        "--threads",
        "4",
        "--schedules",
        "8",
    ];
    if !cargo(&check) {
        eprintln!("verify-schedules: FAILED: `mp check --kernel all` found a violation");
        return ExitCode::FAILURE;
    }
    let mutate = [
        "test",
        "--offline",
        "-q",
        "-p",
        "mergepath-check",
        "--test",
        "mutation",
        "mutation_overlap_is_detected",
    ];
    let envs = [
        ("RUSTFLAGS", "--cfg mergepath_mutate"),
        ("CARGO_TARGET_DIR", "target/mutate"),
    ];
    if !cargo_env(&mutate, &envs) {
        eprintln!("verify-schedules: FAILED: the checker did not detect the injected fault");
        return ExitCode::FAILURE;
    }
    println!(
        "verify-schedules: OK (all kernels CREW-exclusive under permuted schedules; \
         injected partition fault detected)"
    );
    ExitCode::SUCCESS
}

/// Runs `mp bench` with the given extra arguments.
fn run_mp_bench(extra: &[&str]) -> bool {
    let mut args = vec![
        "run",
        "--offline",
        "--release",
        "-q",
        "-p",
        "mergepath-cli",
        "--bin",
        "mp",
        "--",
        "bench",
    ];
    args.extend_from_slice(extra);
    cargo(&args)
}

fn bench() -> ExitCode {
    if !run_mp_bench(&["--out-dir", "."]) {
        eprintln!("bench: FAILED running `mp bench`");
        return ExitCode::FAILURE;
    }
    println!("bench: OK (BENCH_merge.json / BENCH_sort.json / BENCH_telemetry.json refreshed)");
    ExitCode::SUCCESS
}

/// Reads and envelope-checks one artifact, returning the parsed document.
fn load_artifact(
    path: &std::path::Path,
    doc_type: &str,
) -> Result<mergepath_telemetry::json::Value, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    mergepath_telemetry::artifact::check_artifact(&doc, doc_type)
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Per-family `adaptive_ns_per_elem` medians from a bench_merge/bench_sort
/// artifact.
fn family_medians(doc: &mergepath_telemetry::json::Value) -> Vec<(String, f64)> {
    use mergepath_telemetry::json::Value;
    doc.get("payload")
        .and_then(|p| p.get("families"))
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|f| {
            Some((
                f.get("family")?.as_str()?.to_string(),
                f.get("adaptive_ns_per_elem")?.as_f64()?,
            ))
        })
        .collect()
}

/// Compares a fresh artifact against the committed one (if present) and
/// prints non-gating warnings for >10% median ns/element regressions.
fn warn_on_regression(name: &str, doc_type: &str, fresh: &mergepath_telemetry::json::Value) {
    let committed_path = std::path::Path::new(name);
    if !committed_path.exists() {
        println!("verify-bench: no committed {name}; skipping regression comparison");
        return;
    }
    let committed = match load_artifact(committed_path, doc_type) {
        Ok(doc) => doc,
        Err(e) => {
            println!("verify-bench: WARNING: committed {name} fails the schema check ({e})");
            return;
        }
    };
    if !mergepath_telemetry::artifact::same_env(fresh, &committed) {
        println!(
            "verify-bench: WARNING: {name} was produced on a different environment; \
             ns/element numbers are not directly comparable"
        );
    }
    let fresh_rows = family_medians(fresh);
    let committed_rows = family_medians(&committed);
    for (family, fresh_ns) in &fresh_rows {
        let Some((_, committed_ns)) = committed_rows.iter().find(|(f, _)| f == family) else {
            continue;
        };
        if *fresh_ns > committed_ns * 1.10 {
            println!(
                "verify-bench: WARNING: {name} {family}: fresh {fresh_ns:.3} ns/elem vs \
                 committed {committed_ns:.3} (+{:.1}%, threshold 10%)",
                (fresh_ns / committed_ns - 1.0) * 100.0
            );
        }
    }
}

fn verify_bench() -> ExitCode {
    let dir = std::path::Path::new("target").join("xtask").join("bench");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("verify-bench: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let out_dir = dir.display().to_string();
    if !run_mp_bench(&["--smoke", "--out-dir", &out_dir]) {
        eprintln!("verify-bench: FAILED running `mp bench --smoke`");
        return ExitCode::FAILURE;
    }
    let specs = [
        ("BENCH_merge.json", "bench_merge"),
        ("BENCH_sort.json", "bench_sort"),
        ("BENCH_telemetry.json", "bench_telemetry"),
    ];
    let mut fresh = Vec::new();
    for (name, doc_type) in specs {
        match load_artifact(&dir.join(name), doc_type) {
            Ok(doc) => fresh.push(doc),
            Err(e) => {
                eprintln!("verify-bench: FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The three artifacts of one run must carry the same fingerprint.
    for pair in fresh.windows(2) {
        if !mergepath_telemetry::artifact::same_env(&pair[0], &pair[1]) {
            eprintln!("verify-bench: FAILED: artifacts disagree on the environment fingerprint");
            return ExitCode::FAILURE;
        }
    }
    warn_on_regression("BENCH_merge.json", "bench_merge", &fresh[0]);
    warn_on_regression("BENCH_sort.json", "bench_sort", &fresh[1]);
    println!(
        "verify-bench: OK (three artifacts schema-checked, shared fingerprint; \
         regressions are warnings only)"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let task = env::args().nth(1);
    match task.as_deref() {
        Some("verify-offline") => verify_offline(),
        Some("verify-telemetry") => verify_telemetry(),
        Some("verify-schedules") => verify_schedules(),
        Some("bench") => bench(),
        Some("verify-bench") => verify_bench(),
        _ => usage(),
    }
}
