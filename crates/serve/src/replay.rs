//! Deterministic discrete-event replay of the daemon's admission policy.
//!
//! A live [`Server`](crate::Server) run resolves deadlines against the
//! wall clock, so *which* requests get rejected depends on machine speed
//! and scheduling noise — fine for latency measurement, useless for
//! reproducibility. This module re-implements the exact same policy —
//! bounded queue dequeued in [`QueuePolicy`] order (FIFO or EDF,
//! mirroring the live daemon's selection rule ticket for ticket),
//! queue-full checked at arrival, deadline checked inclusively
//! (`now >= deadline` misses) when a serving slot frees — as a
//! discrete-event simulation over a planned arrival schedule and a
//! deterministic integer service-time model. The outcome log is then a
//! **pure function of `(seed, config)`**: `tests/serve_determinism.rs`
//! pins this property, and `BENCH_serve.json` embeds the replay counts —
//! including the per-cell FIFO-vs-EDF deadline-miss comparison — as its
//! reproducible half (live latencies are the measured half).
//!
//! The simulation is integer-only (no floats, no real clock), so two runs
//! on any two machines agree bit-for-bit.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use mergepath_workloads::arrival::RequestSpec;

use crate::server::QueuePolicy;

/// The admission limits the replay shares with the live daemon
/// (mirrors the corresponding [`ServeConfig`](crate::ServeConfig)
/// fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Number of serving slots (maximum concurrently executing
    /// requests).
    pub max_inflight: usize,
    /// Dequeue ordering — the same [`QueuePolicy`] the live daemon
    /// applies, so a replay under `Edf` predicts the daemon's EDF
    /// behaviour and one under `Fifo` gives the counterfactual.
    pub policy: QueuePolicy,
}

/// Deterministic service-time model:
/// `service_ns = base_ns + per_item_ns · (len_a + len_b)`.
///
/// A linear-work stand-in for the merge kernels (Thm 2: sequential merge
/// is linear in the output length), calibrated loosely — the replay needs
/// a *consistent* notion of service time, not an accurate one.
///
/// The model is deliberately **overlap-agnostic**: it charges the serving
/// slot the full linear work regardless of how many pool shares the live
/// daemon would fan the request across, and regardless of whether the
/// work-stealing executor overlaps its round with others. Intra-request
/// parallelism only moves the *live* latency numbers; keeping it out of
/// the model is what lets the replay columns of `BENCH_serve.json` stay
/// bit-comparable across executor changes (the round-overlap cell
/// measures that live-side difference directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Fixed per-request overhead, nanoseconds.
    pub base_ns: u64,
    /// Cost per merged element, nanoseconds.
    pub per_item_ns: u64,
}

impl ServiceModel {
    /// Service time for one planned request.
    pub fn service_ns(&self, spec: &RequestSpec) -> u64 {
        self.base_ns.saturating_add(
            self.per_item_ns
                .saturating_mul((spec.len_a + spec.len_b) as u64),
        )
    }
}

/// How the replay resolved one planned request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Ran to completion.
    Completed,
    /// Bounced at arrival: queue at capacity and no free slot.
    RejectedQueueFull,
    /// Deadline had passed when a slot finally freed.
    RejectedDeadline,
}

impl ReplayOutcome {
    /// Stable name for logs and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            ReplayOutcome::Completed => "completed",
            ReplayOutcome::RejectedQueueFull => "rejected_queue_full",
            ReplayOutcome::RejectedDeadline => "rejected_deadline",
        }
    }
}

/// One line of the replay's outcome log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayEntry {
    /// The planned request this entry resolves (plan order).
    pub id: usize,
    /// The terminal state.
    pub outcome: ReplayOutcome,
    /// When execution began (0 for rejections).
    pub start_ns: u64,
    /// When execution finished — or when the rejection was decided.
    pub finish_ns: u64,
}

/// A request occupying a queue slot in the simulation.
struct Waiting {
    id: usize,
    deadline_abs: u64, // 0 = none
    service_ns: u64,
}

/// Replays `plan` through the admission policy under `cfg`, charging each
/// request `model.service_ns` of slot time.
///
/// Deterministic and total: every plan entry appears in the returned log
/// exactly once (sorted by id) — the simulated counterpart of the live
/// daemon's zero-lost-requests invariant.
pub fn replay(plan: &[RequestSpec], cfg: &ReplayConfig, model: &ServiceModel) -> Vec<ReplayEntry> {
    assert!(cfg.queue_capacity > 0, "queue capacity must be at least 1");
    assert!(cfg.max_inflight > 0, "max_inflight must be at least 1");
    let mut log: Vec<ReplayEntry> = Vec::with_capacity(plan.len());
    // Completion times of the requests currently holding serving slots.
    let mut slots: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let mut queue: VecDeque<Waiting> = VecDeque::new();

    // The next queued request under `policy` — the replay twin of the
    // live daemon's `next_index`: FIFO takes the front, EDF the smallest
    // deadline (0 = none ranks last, earliest-queued wins ties).
    fn take_next(queue: &mut VecDeque<Waiting>, policy: QueuePolicy) -> Option<Waiting> {
        if queue.is_empty() {
            return None;
        }
        match policy {
            QueuePolicy::Fifo => queue.pop_front(),
            QueuePolicy::Edf => {
                let mut best = 0usize;
                let mut best_key = u64::MAX;
                for (i, w) in queue.iter().enumerate() {
                    let key = if w.deadline_abs == 0 {
                        u64::MAX
                    } else {
                        w.deadline_abs
                    };
                    if key < best_key {
                        best_key = key;
                        best = i;
                    }
                }
                queue.remove(best)
            }
        }
    }

    // Frees every slot whose completion is ≤ `now`, immediately refilling
    // each from the queue in policy order (deadline judged inclusively at
    // the instant the slot frees — the replay twin of the live
    // dequeue-time `>=` check).
    fn drain_until<F: FnMut(ReplayEntry)>(
        now: u64,
        policy: QueuePolicy,
        slots: &mut BinaryHeap<Reverse<u64>>,
        queue: &mut VecDeque<Waiting>,
        emit: &mut F,
    ) {
        while let Some(&Reverse(t)) = slots.peek() {
            if t > now {
                break;
            }
            slots.pop();
            // The slot freed at time t: hand it to the policy's next
            // queued request whose deadline still stands.
            while let Some(w) = take_next(queue, policy) {
                if w.deadline_abs != 0 && t >= w.deadline_abs {
                    emit(ReplayEntry {
                        id: w.id,
                        outcome: ReplayOutcome::RejectedDeadline,
                        start_ns: 0,
                        finish_ns: t,
                    });
                    continue;
                }
                emit(ReplayEntry {
                    id: w.id,
                    outcome: ReplayOutcome::Completed,
                    start_ns: t,
                    finish_ns: t + w.service_ns,
                });
                slots.push(Reverse(t + w.service_ns));
                break;
            }
        }
    }

    for spec in plan {
        let now = spec.arrival_ns;
        let mut emit = |e: ReplayEntry| log.push(e);
        drain_until(now, cfg.policy, &mut slots, &mut queue, &mut emit);
        let deadline_abs = if spec.deadline_ns == 0 {
            0
        } else {
            spec.arrival_ns.saturating_add(spec.deadline_ns)
        };
        let service_ns = model.service_ns(spec);
        if slots.len() < cfg.max_inflight && queue.is_empty() {
            // A free slot and nobody ahead: start immediately.
            log.push(ReplayEntry {
                id: spec.id,
                outcome: ReplayOutcome::Completed,
                start_ns: now,
                finish_ns: now + service_ns,
            });
            slots.push(Reverse(now + service_ns));
        } else if queue.len() < cfg.queue_capacity {
            queue.push_back(Waiting {
                id: spec.id,
                deadline_abs,
                service_ns,
            });
        } else {
            log.push(ReplayEntry {
                id: spec.id,
                outcome: ReplayOutcome::RejectedQueueFull,
                start_ns: 0,
                finish_ns: now,
            });
        }
    }

    // End of arrivals: let the system run dry.
    {
        let mut emit = |e: ReplayEntry| log.push(e);
        drain_until(u64::MAX, cfg.policy, &mut slots, &mut queue, &mut emit);
    }
    debug_assert!(queue.is_empty(), "drain must empty the queue");
    log.sort_unstable_by_key(|e| e.id);
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergepath_workloads::arrival::{arrival_plan, ArrivalPattern, PlanConfig};
    use mergepath_workloads::MergeWorkload;

    fn spec(id: usize, arrival_ns: u64, deadline_ns: u64, len: usize) -> RequestSpec {
        RequestSpec {
            id,
            arrival_ns,
            deadline_ns,
            workload: MergeWorkload::Uniform,
            len_a: len,
            len_b: len,
            data_seed: 0,
        }
    }

    const UNIT: ServiceModel = ServiceModel {
        base_ns: 0,
        per_item_ns: 1,
    }; // service = len_a + len_b

    #[test]
    fn single_server_tandem_hand_checked() {
        // One slot, queue of one. Service time 100 each (len 50+50).
        // t=0: r0 starts (finishes 100). t=10: r1 queues. t=20: r2 bounces
        // (queue full). t=100: slot frees, r1 starts (finishes 200).
        let plan = [spec(0, 0, 0, 50), spec(1, 10, 0, 50), spec(2, 20, 0, 50)];
        let cfg = ReplayConfig {
            queue_capacity: 1,
            max_inflight: 1,
            policy: QueuePolicy::Fifo,
        };
        let log = replay(&plan, &cfg, &UNIT);
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].outcome, ReplayOutcome::Completed);
        assert_eq!((log[0].start_ns, log[0].finish_ns), (0, 100));
        assert_eq!(log[1].outcome, ReplayOutcome::Completed);
        assert_eq!((log[1].start_ns, log[1].finish_ns), (100, 200));
        assert_eq!(log[2].outcome, ReplayOutcome::RejectedQueueFull);
        assert_eq!(log[2].finish_ns, 20);
    }

    #[test]
    fn deadline_judged_when_the_slot_frees() {
        // r1's deadline (arrival 10 + 50 = 60) passes while r0 (service
        // 100) holds the slot; at t=100 the slot frees and r1 is rejected,
        // letting r2 (no deadline) run instead.
        let plan = [spec(0, 0, 0, 50), spec(1, 10, 50, 50), spec(2, 20, 0, 50)];
        let cfg = ReplayConfig {
            queue_capacity: 4,
            max_inflight: 1,
            policy: QueuePolicy::Fifo,
        };
        let log = replay(&plan, &cfg, &UNIT);
        assert_eq!(log[1].outcome, ReplayOutcome::RejectedDeadline);
        assert_eq!(log[1].finish_ns, 100, "rejected the moment the slot freed");
        assert_eq!(log[2].outcome, ReplayOutcome::Completed);
        assert_eq!((log[2].start_ns, log[2].finish_ns), (100, 200));
    }

    #[test]
    fn deadline_met_when_service_is_fast() {
        // Same shape but r0 is short: r1 starts at t=20, inside its
        // deadline.
        let plan = [spec(0, 0, 0, 10), spec(1, 10, 50, 10)];
        let cfg = ReplayConfig {
            queue_capacity: 4,
            max_inflight: 1,
            policy: QueuePolicy::Fifo,
        };
        let log = replay(&plan, &cfg, &UNIT);
        assert!(log.iter().all(|e| e.outcome == ReplayOutcome::Completed));
        assert_eq!(log[1].start_ns, 20);
    }

    #[test]
    fn two_slots_run_in_parallel() {
        let plan = [spec(0, 0, 0, 50), spec(1, 10, 0, 50)];
        let cfg = ReplayConfig {
            queue_capacity: 1,
            max_inflight: 2,
            policy: QueuePolicy::Fifo,
        };
        let log = replay(&plan, &cfg, &UNIT);
        assert_eq!(log[0].start_ns, 0);
        assert_eq!(log[1].start_ns, 10, "second slot admits immediately");
    }

    #[test]
    fn replay_is_total_and_deterministic_over_generated_plans() {
        for pattern in ArrivalPattern::ALL {
            for policy in QueuePolicy::ALL {
                let plan = arrival_plan(&PlanConfig {
                    pattern,
                    requests: 2000,
                    mean_gap_ns: 10_000,
                    deadline_ns: 400_000,
                    mean_len: 2000,
                    seed: 99,
                });
                let cfg = ReplayConfig {
                    queue_capacity: 16,
                    max_inflight: 4,
                    policy,
                };
                let model = ServiceModel {
                    base_ns: 5_000,
                    per_item_ns: 10,
                };
                let a = replay(&plan, &cfg, &model);
                let b = replay(&plan, &cfg, &model);
                assert_eq!(a, b, "{}: replay must be deterministic", pattern.name());
                // Total: every id exactly once, in order.
                assert_eq!(a.len(), plan.len());
                for (i, e) in a.iter().enumerate() {
                    assert_eq!(e.id, i, "{}: lost or duplicated request", pattern.name());
                }
                // Under this overload there must be visible backpressure of
                // both kinds (the bench relies on rejections being exercised).
                let qf = a
                    .iter()
                    .filter(|e| e.outcome == ReplayOutcome::RejectedQueueFull)
                    .count();
                let dl = a
                    .iter()
                    .filter(|e| e.outcome == ReplayOutcome::RejectedDeadline)
                    .count();
                let done = a
                    .iter()
                    .filter(|e| e.outcome == ReplayOutcome::Completed)
                    .count();
                assert!(done > 0, "{}: nothing completed", pattern.name());
                assert!(
                    qf + dl > 0,
                    "{}: overload produced no rejections",
                    pattern.name()
                );
                // Completed requests never start before arrival and start
                // strictly inside their deadline (inclusive boundary: at
                // the deadline is already a miss).
                for e in &a {
                    if e.outcome == ReplayOutcome::Completed {
                        let s = &plan[e.id];
                        assert!(e.start_ns >= s.arrival_ns);
                        if s.deadline_ns != 0 {
                            assert!(e.start_ns < s.arrival_ns + s.deadline_ns);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn edf_completes_what_fifo_sacrifices() {
        // One slot held until t=100 by r0. r1 (deadline t=300) arrives
        // before r2 (deadline t=110); both need 50ns of service. FIFO
        // serves r1 first, so r2's deadline passes in queue; EDF serves
        // the tighter r2 first and both complete.
        let plan = [spec(0, 0, 0, 50), spec(1, 10, 290, 25), spec(2, 20, 90, 25)];
        let fifo = replay(
            &plan,
            &ReplayConfig {
                queue_capacity: 4,
                max_inflight: 1,
                policy: QueuePolicy::Fifo,
            },
            &UNIT,
        );
        assert_eq!(fifo[1].outcome, ReplayOutcome::Completed);
        assert_eq!((fifo[1].start_ns, fifo[1].finish_ns), (100, 150));
        assert_eq!(fifo[2].outcome, ReplayOutcome::RejectedDeadline);
        assert_eq!(fifo[2].finish_ns, 150, "judged when the slot freed");

        let edf = replay(
            &plan,
            &ReplayConfig {
                queue_capacity: 4,
                max_inflight: 1,
                policy: QueuePolicy::Edf,
            },
            &UNIT,
        );
        assert_eq!(edf[2].outcome, ReplayOutcome::Completed);
        assert_eq!((edf[2].start_ns, edf[2].finish_ns), (100, 150));
        assert_eq!(edf[1].outcome, ReplayOutcome::Completed);
        assert_eq!((edf[1].start_ns, edf[1].finish_ns), (150, 200));
    }

    #[test]
    fn slot_freeing_exactly_at_the_deadline_rejects() {
        // r1's absolute deadline is 10 + 90 = 100 — exactly when r0's
        // slot frees. The inclusive boundary rejects it: at the deadline
        // is already too late (the strict `>` rule would have served it).
        let plan = [spec(0, 0, 0, 50), spec(1, 10, 90, 25)];
        for policy in QueuePolicy::ALL {
            let log = replay(
                &plan,
                &ReplayConfig {
                    queue_capacity: 4,
                    max_inflight: 1,
                    policy,
                },
                &UNIT,
            );
            assert_eq!(
                log[1].outcome,
                ReplayOutcome::RejectedDeadline,
                "{}: t == deadline must miss",
                policy.name()
            );
            assert_eq!(log[1].finish_ns, 100);
        }
    }

    #[test]
    fn ample_capacity_completes_everything() {
        let plan = arrival_plan(&PlanConfig {
            pattern: ArrivalPattern::Steady,
            requests: 500,
            mean_gap_ns: 1_000_000,
            deadline_ns: 0,
            mean_len: 100,
            seed: 5,
        });
        let cfg = ReplayConfig {
            queue_capacity: 500,
            max_inflight: 8,
            policy: QueuePolicy::Edf,
        };
        let model = ServiceModel {
            base_ns: 100,
            per_item_ns: 1,
        };
        let log = replay(&plan, &cfg, &model);
        assert!(log.iter().all(|e| e.outcome == ReplayOutcome::Completed));
    }
}
