//! TCP front-end for the serving daemon: length-prefixed binary framing,
//! a hand-rolled codec (no dependencies), and the [`NetServer`] /
//! [`NetClient`] pair that takes `mp serve` out-of-process.
//!
//! # Wire format (version 1)
//!
//! Every frame is a fixed 32-byte header followed by a payload of
//! little-endian `u32` keys. All multi-byte header fields are
//! little-endian.
//!
//! Request frame (client → server):
//!
//! ```text
//! offset  size  field
//!      0     4  magic          b"MPN1"
//!      4     1  version        1
//!      5     1  op             1 = merge, 2 = sort
//!      6     1  key type       1 = u32 little-endian
//!      7     1  reserved       must be 0
//!      8     8  request id     echoed verbatim in the response
//!     16     8  deadline       relative ns from receipt; 0 = none
//!     24     4  len_a          keys in the first payload
//!     28     4  len_b          keys in the second payload (0 for sort)
//!     32     …  payload        len_a keys, then len_b keys, 4 bytes each
//! ```
//!
//! Response frame (server → client):
//!
//! ```text
//! offset  size  field
//!      0     4  magic          b"MPR1"
//!      4     1  version        1
//!      5     1  status         0 = ok, 1 = queue full,
//!                              2 = deadline expired, 3 = failed
//!      6     2  reserved       must be 0
//!      8     8  request id
//!     16     8  latency ns     submit → completion (0 unless ok)
//!     24     4  len_out        keys in the payload (0 unless ok)
//!     28     4  reserved       must be 0
//!     32     …  payload        len_out keys, 4 bytes each
//! ```
//!
//! Responses preserve request order per connection, so a client may
//! pipeline any number of requests before reading the first response.
//!
//! Robustness contract (pinned by `tests/net_protocol.rs`): every
//! malformed input — wrong magic or version, unknown op / key type /
//! status, a declared payload beyond [`MAX_KEYS_PER_SIDE`], a truncated
//! header or payload, a mid-stream disconnect — decodes to a typed
//! [`ProtocolError`], never a panic and never a hang, and the oversized
//! check runs **before** any payload allocation so a hostile length
//! prefix cannot balloon memory.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use mergepath_telemetry::Recorder;

use crate::server::{
    Outcome, RejectReason, Request, RequestKind, ResponseHandle, ServeConfig, ServeStats, Server,
};

/// First four bytes of every request frame.
pub const REQUEST_MAGIC: [u8; 4] = *b"MPN1";
/// First four bytes of every response frame.
pub const RESPONSE_MAGIC: [u8; 4] = *b"MPR1";
/// The one protocol version this codec speaks.
pub const WIRE_VERSION: u8 = 1;
/// Fixed header length of both frame kinds, bytes.
pub const HEADER_LEN: usize = 32;
/// Op byte: merge two sorted payloads.
pub const OP_MERGE: u8 = 1;
/// Op byte: sort one payload.
pub const OP_SORT: u8 = 2;
/// Key-type byte: little-endian `u32`.
pub const KEY_TYPE_U32: u8 = 1;
/// Upper bound on a single declared payload length, in keys. Checked
/// before any allocation, so a hostile length prefix is rejected as
/// [`ProtocolError::Oversized`] instead of reserving gigabytes.
pub const MAX_KEYS_PER_SIDE: usize = 1 << 24;

/// Typed decode failure. The codec never panics and never hangs: every
/// malformed, truncated, or oversized input maps to one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame did not start with the expected magic.
    BadMagic([u8; 4]),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown op byte in a request frame.
    BadOp(u8),
    /// Unknown key-type byte in a request frame.
    BadKeyType(u8),
    /// Unknown status byte in a response frame.
    BadStatus(u8),
    /// Structurally invalid frame (reserved bytes set, a sort frame
    /// carrying a second payload, a non-ok response carrying output, …).
    Malformed(&'static str),
    /// A declared payload length exceeds [`MAX_KEYS_PER_SIDE`]. Raised
    /// before any allocation.
    Oversized {
        /// The length the frame declared, in keys.
        declared: u64,
        /// The limit it exceeded, in keys.
        limit: u64,
    },
    /// The stream ended mid-frame (clean EOF *between* frames is not an
    /// error — `read_request`/`read_response` return `Ok(None)` there).
    Truncated {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// An underlying I/O failure.
    Io(ErrorKind),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            ProtocolError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::BadOp(op) => write!(f, "unknown op byte {op}"),
            ProtocolError::BadKeyType(k) => write!(f, "unknown key type {k}"),
            ProtocolError::BadStatus(s) => write!(f, "unknown status byte {s}"),
            ProtocolError::Malformed(why) => write!(f, "malformed frame: {why}"),
            ProtocolError::Oversized { declared, limit } => {
                write!(
                    f,
                    "declared payload of {declared} keys exceeds limit {limit}"
                )
            }
            ProtocolError::Truncated { expected, got } => {
                write!(
                    f,
                    "stream truncated mid-frame: wanted {expected} bytes, got {got}"
                )
            }
            ProtocolError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e.kind())
    }
}

/// The computation a request frame asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetOp {
    /// Merge two sorted key arrays (stable: ties take from `a` first).
    Merge {
        /// Left sorted payload.
        a: Vec<u32>,
        /// Right sorted payload.
        b: Vec<u32>,
    },
    /// Sort one key array (stable).
    Sort {
        /// The keys to sort.
        keys: Vec<u32>,
    },
}

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetRequest {
    /// Caller-assigned id, echoed verbatim in the response.
    pub id: u64,
    /// Deadline relative to server receipt, nanoseconds; `0` = none.
    pub deadline_rel_ns: u64,
    /// The computation.
    pub op: NetOp,
}

/// Response status byte, mirroring [`Outcome`] over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetStatus {
    /// Completed; the payload carries the output keys.
    Ok,
    /// Bounced synchronously off the full admission queue.
    RejectedQueueFull,
    /// Deadline expired while queued.
    RejectedDeadline,
    /// The kernel panicked (contained server-side).
    Failed,
}

impl NetStatus {
    fn to_byte(self) -> u8 {
        match self {
            NetStatus::Ok => 0,
            NetStatus::RejectedQueueFull => 1,
            NetStatus::RejectedDeadline => 2,
            NetStatus::Failed => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        match b {
            0 => Ok(NetStatus::Ok),
            1 => Ok(NetStatus::RejectedQueueFull),
            2 => Ok(NetStatus::RejectedDeadline),
            3 => Ok(NetStatus::Failed),
            other => Err(ProtocolError::BadStatus(other)),
        }
    }

    /// Stable name for logs and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            NetStatus::Ok => "ok",
            NetStatus::RejectedQueueFull => "rejected_queue_full",
            NetStatus::RejectedDeadline => "rejected_deadline",
            NetStatus::Failed => "failed",
        }
    }
}

/// One decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetResponse {
    /// The request id this response resolves.
    pub id: u64,
    /// How the request ended.
    pub status: NetStatus,
    /// Submit-to-completion latency on the server, nanoseconds (0 unless
    /// [`NetStatus::Ok`]).
    pub latency_ns: u64,
    /// The merged / sorted keys (empty unless [`NetStatus::Ok`]).
    pub output: Vec<u32>,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn get_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn put_keys(buf: &mut Vec<u8>, keys: &[u32]) {
    buf.reserve(keys.len() * 4);
    for k in keys {
        buf.extend_from_slice(&k.to_le_bytes());
    }
}

/// Reads exactly `buf.len()` bytes. Returns `Ok(false)` on a clean EOF
/// before the first byte (frame boundary), [`ProtocolError::Truncated`]
/// on EOF mid-buffer, and retries `Interrupted`.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, ProtocolError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(ProtocolError::Truncated {
                    expected: buf.len(),
                    got,
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e.kind())),
        }
    }
    Ok(true)
}

/// Reads `len` keys, validated against [`MAX_KEYS_PER_SIDE`] by the
/// caller before this allocates.
fn read_keys<R: Read>(r: &mut R, len: usize) -> Result<Vec<u32>, ProtocolError> {
    let mut raw = vec![0u8; len * 4];
    if !read_full(r, &mut raw)? && len > 0 {
        return Err(ProtocolError::Truncated {
            expected: len * 4,
            got: 0,
        });
    }
    Ok(raw.chunks_exact(4).map(get_u32).collect())
}

/// Encodes `req` as one wire frame.
pub fn encode_request(req: &NetRequest) -> Vec<u8> {
    let (op, len_a, len_b) = match &req.op {
        NetOp::Merge { a, b } => (OP_MERGE, a.len(), b.len()),
        NetOp::Sort { keys } => (OP_SORT, keys.len(), 0),
    };
    let mut buf = Vec::with_capacity(HEADER_LEN + (len_a + len_b) * 4);
    buf.extend_from_slice(&REQUEST_MAGIC);
    buf.push(WIRE_VERSION);
    buf.push(op);
    buf.push(KEY_TYPE_U32);
    buf.push(0); // reserved
    put_u64(&mut buf, req.id);
    put_u64(&mut buf, req.deadline_rel_ns);
    put_u32(&mut buf, len_a as u32);
    put_u32(&mut buf, len_b as u32);
    match &req.op {
        NetOp::Merge { a, b } => {
            put_keys(&mut buf, a);
            put_keys(&mut buf, b);
        }
        NetOp::Sort { keys } => put_keys(&mut buf, keys),
    }
    buf
}

/// Writes `req` as one frame.
pub fn write_request<W: Write>(w: &mut W, req: &NetRequest) -> std::io::Result<()> {
    w.write_all(&encode_request(req))
}

/// Reads one request frame. `Ok(None)` means the stream ended cleanly at
/// a frame boundary; every malformed, truncated, or oversized input maps
/// to a typed [`ProtocolError`].
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<NetRequest>, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header)? {
        return Ok(None);
    }
    if header[0..4] != REQUEST_MAGIC {
        return Err(ProtocolError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    if header[4] != WIRE_VERSION {
        return Err(ProtocolError::BadVersion(header[4]));
    }
    let op = header[5];
    if op != OP_MERGE && op != OP_SORT {
        return Err(ProtocolError::BadOp(op));
    }
    if header[6] != KEY_TYPE_U32 {
        return Err(ProtocolError::BadKeyType(header[6]));
    }
    if header[7] != 0 {
        return Err(ProtocolError::Malformed("reserved request byte set"));
    }
    let id = get_u64(&header[8..16]);
    let deadline_rel_ns = get_u64(&header[16..24]);
    let len_a = get_u32(&header[24..28]) as usize;
    let len_b = get_u32(&header[28..32]) as usize;
    for len in [len_a, len_b] {
        if len > MAX_KEYS_PER_SIDE {
            return Err(ProtocolError::Oversized {
                declared: len as u64,
                limit: MAX_KEYS_PER_SIDE as u64,
            });
        }
    }
    let op = match op {
        OP_MERGE => {
            let a = read_keys(r, len_a)?;
            let b = read_keys(r, len_b)?;
            NetOp::Merge { a, b }
        }
        _ => {
            if len_b != 0 {
                return Err(ProtocolError::Malformed(
                    "sort frame carries a second payload",
                ));
            }
            let keys = read_keys(r, len_a)?;
            NetOp::Sort { keys }
        }
    };
    Ok(Some(NetRequest {
        id,
        deadline_rel_ns,
        op,
    }))
}

/// Encodes `resp` as one wire frame.
pub fn encode_response(resp: &NetResponse) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + resp.output.len() * 4);
    buf.extend_from_slice(&RESPONSE_MAGIC);
    buf.push(WIRE_VERSION);
    buf.push(resp.status.to_byte());
    buf.extend_from_slice(&[0u8; 2]); // reserved
    put_u64(&mut buf, resp.id);
    put_u64(&mut buf, resp.latency_ns);
    put_u32(&mut buf, resp.output.len() as u32);
    put_u32(&mut buf, 0); // reserved
    put_keys(&mut buf, &resp.output);
    buf
}

/// Writes `resp` as one frame.
pub fn write_response<W: Write>(w: &mut W, resp: &NetResponse) -> std::io::Result<()> {
    w.write_all(&encode_response(resp))
}

/// Reads one response frame. `Ok(None)` on clean EOF at a frame
/// boundary; typed [`ProtocolError`] for everything malformed.
pub fn read_response<R: Read>(r: &mut R) -> Result<Option<NetResponse>, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header)? {
        return Ok(None);
    }
    if header[0..4] != RESPONSE_MAGIC {
        return Err(ProtocolError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    if header[4] != WIRE_VERSION {
        return Err(ProtocolError::BadVersion(header[4]));
    }
    let status = NetStatus::from_byte(header[5])?;
    if header[6] != 0 || header[7] != 0 {
        return Err(ProtocolError::Malformed("reserved response bytes set"));
    }
    let id = get_u64(&header[8..16]);
    let latency_ns = get_u64(&header[16..24]);
    let len_out = get_u32(&header[24..28]) as usize;
    if get_u32(&header[28..32]) != 0 {
        return Err(ProtocolError::Malformed("reserved response word set"));
    }
    if len_out > 2 * MAX_KEYS_PER_SIDE {
        return Err(ProtocolError::Oversized {
            declared: len_out as u64,
            limit: 2 * MAX_KEYS_PER_SIDE as u64,
        });
    }
    if status != NetStatus::Ok && len_out != 0 {
        return Err(ProtocolError::Malformed("non-ok response carries output"));
    }
    let output = read_keys(r, len_out)?;
    Ok(Some(NetResponse {
        id,
        status,
        latency_ns,
        output,
    }))
}

/// A `Read` adapter over a timeout-configured [`TcpStream`] that turns
/// read timeouts into a poll of the server's shutdown flag, so a
/// connection reader can never hang on a silent client while the daemon
/// is trying to stop.
struct PollRead<'a> {
    stream: &'a TcpStream,
    closed: &'a AtomicBool,
}

impl Read for PollRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            let mut stream: &TcpStream = self.stream;
            match stream.read(buf) {
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if self.closed.load(Ordering::Relaxed) {
                        return Err(std::io::Error::new(
                            ErrorKind::ConnectionAborted,
                            "server shutting down",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

/// What a connection's reader hands its writer, in request order.
enum Pending {
    /// An admitted request: resolve the handle, then write the outcome.
    Resolve(u64, ResponseHandle<u32>),
    /// A synchronous rejection: write it directly.
    Reject(u64, RejectReason),
}

/// The out-of-process front door: a TCP listener feeding an in-process
/// [`Server`] — one reader and one writer thread per connection, bridged
/// by an ordered channel so pipelined requests come back in request
/// order while the daemon executes them with its full concurrency
/// (batching and EDF included; the wire adds no policy of its own).
pub struct NetServer<R = mergepath_telemetry::NoRecorder>
where
    R: Recorder + Send + Sync + 'static,
{
    addr: SocketAddr,
    closed: Arc<AtomicBool>,
    protocol_errors: Arc<AtomicU64>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    server: Arc<Server<u32, R>>,
}

impl<R> NetServer<R>
where
    R: Recorder + Send + Sync + 'static,
{
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// starts the daemon plus the accept loop.
    pub fn start<A: ToSocketAddrs>(cfg: ServeConfig, rec: R, addr: A) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let server = Arc::new(Server::start(cfg, rec));
        let closed = Arc::new(AtomicBool::new(false));
        let protocol_errors = Arc::new(AtomicU64::new(0));
        let accept = {
            let server = Arc::clone(&server);
            let closed = Arc::clone(&closed);
            let protocol_errors = Arc::clone(&protocol_errors);
            std::thread::Builder::new()
                .name("mp-net-accept".into())
                .spawn(move || accept_loop(listener, server, closed, protocol_errors))
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            addr,
            closed,
            protocol_errors,
            accept: Some(accept),
            server,
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Malformed frames seen so far across all connections.
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Live daemon counters.
    pub fn stats(&self) -> ServeStats {
        self.server.stats()
    }

    /// Stops accepting, drains every connection and the daemon queue,
    /// joins all threads, and returns the final stats
    /// (`stats().lost() == 0` — the wire layer loses nothing either).
    pub fn shutdown(mut self) -> ServeStats {
        self.closed.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let conns = accept.join().unwrap_or_default();
            for c in conns {
                let _ = c.join();
            }
        }
        match Arc::try_unwrap(self.server) {
            Ok(server) => server.shutdown(),
            Err(server) => {
                // Unreachable after the joins above; degrade to a live
                // snapshot rather than panicking in shutdown.
                server.stats()
            }
        }
    }
}

fn accept_loop<R>(
    listener: TcpListener,
    server: Arc<Server<u32, R>>,
    closed: Arc<AtomicBool>,
    protocol_errors: Arc<AtomicU64>,
) -> Vec<JoinHandle<()>>
where
    R: Recorder + Send + Sync + 'static,
{
    let mut conns = Vec::new();
    for stream in listener.incoming() {
        if closed.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(&server);
        let closed = Arc::clone(&closed);
        let protocol_errors = Arc::clone(&protocol_errors);
        if let Ok(h) = std::thread::Builder::new()
            .name("mp-net-conn".into())
            .spawn(move || serve_connection(stream, &server, &closed, &protocol_errors))
        {
            conns.push(h);
        }
    }
    conns
}

/// One connection: this thread reads and submits frames; a paired writer
/// thread resolves handles and writes responses in request order.
fn serve_connection<R>(
    stream: TcpStream,
    server: &Server<u32, R>,
    closed: &AtomicBool,
    protocol_errors: &AtomicU64,
) where
    R: Recorder + Send + Sync + 'static,
{
    // 100ms poll so shutdown is never blocked on a silent client.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Pending>();
    let writer = std::thread::Builder::new()
        .name("mp-net-write".into())
        .spawn(move || write_loop(write_half, rx))
        .expect("spawn connection writer");

    let mut reader = PollRead {
        stream: &stream,
        closed,
    };
    loop {
        match read_request(&mut reader) {
            Ok(Some(net_req)) => {
                let id = net_req.id;
                let kind = match net_req.op {
                    NetOp::Merge { a, b } => RequestKind::Merge { a, b },
                    NetOp::Sort { keys } => RequestKind::Sort { keys },
                };
                let mut req = Request {
                    id,
                    kind,
                    deadline_ns: 0,
                };
                if net_req.deadline_rel_ns != 0 {
                    req = req.with_deadline_in(net_req.deadline_rel_ns);
                }
                let pending = match server.submit(req) {
                    Ok(handle) => Pending::Resolve(id, handle),
                    Err(reason) => Pending::Reject(id, reason),
                };
                if tx.send(pending).is_err() {
                    break; // writer gone (client hung up mid-write)
                }
            }
            Ok(None) => break, // clean close at a frame boundary
            Err(_protocol) => {
                // A typed decode failure: count it and drop the
                // connection. Resynchronizing an unframed byte stream is
                // guesswork; closing is the honest answer.
                protocol_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

fn write_loop(mut stream: TcpStream, rx: mpsc::Receiver<Pending>) {
    while let Ok(pending) = rx.recv() {
        let resp = match pending {
            Pending::Resolve(id, handle) => match handle.wait() {
                Outcome::Completed {
                    output, latency_ns, ..
                } => NetResponse {
                    id,
                    status: NetStatus::Ok,
                    latency_ns,
                    output,
                },
                Outcome::Rejected(RejectReason::QueueFull) => {
                    reject(id, NetStatus::RejectedQueueFull)
                }
                Outcome::Rejected(RejectReason::DeadlineExpired) => {
                    reject(id, NetStatus::RejectedDeadline)
                }
                Outcome::Failed => reject(id, NetStatus::Failed),
            },
            Pending::Reject(id, RejectReason::QueueFull) => {
                reject(id, NetStatus::RejectedQueueFull)
            }
            Pending::Reject(id, RejectReason::DeadlineExpired) => {
                reject(id, NetStatus::RejectedDeadline)
            }
        };
        if write_response(&mut stream, &resp).is_err() {
            break; // client gone; admitted work still resolves server-side
        }
    }
    let _ = stream.flush();
}

fn reject(id: u64, status: NetStatus) -> NetResponse {
    NetResponse {
        id,
        status,
        latency_ns: 0,
        output: Vec::new(),
    }
}

/// A blocking client for the wire protocol. `send` and `recv` are
/// independent, so callers can pipeline: send N frames, then read N
/// responses (they come back in send order).
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects to a [`NetServer`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient { stream })
    }

    /// Sends one request frame (does not wait for the response).
    pub fn send(&mut self, req: &NetRequest) -> std::io::Result<()> {
        write_request(&mut self.stream, req)
    }

    /// Sends raw bytes — deliberately malformed frames for protocol
    /// tests and smoke runs.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads the next response frame; `Ok(None)` when the server closed
    /// the connection cleanly.
    pub fn recv(&mut self) -> Result<Option<NetResponse>, ProtocolError> {
        read_response(&mut self.stream)
    }

    /// Send + receive one request (no pipelining).
    pub fn call(&mut self, req: &NetRequest) -> Result<NetResponse, ProtocolError> {
        self.send(req)?;
        match self.recv()? {
            Some(resp) => Ok(resp),
            None => Err(ProtocolError::Truncated {
                expected: HEADER_LEN,
                got: 0,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::QueuePolicy;
    use mergepath_telemetry::NoRecorder;

    fn merge_req(id: u64, a: Vec<u32>, b: Vec<u32>) -> NetRequest {
        NetRequest {
            id,
            deadline_rel_ns: 0,
            op: NetOp::Merge { a, b },
        }
    }

    #[test]
    fn request_frames_round_trip() {
        let reqs = [
            merge_req(7, vec![1, 3, 5], vec![2, 4, 6]),
            merge_req(8, vec![], vec![]),
            NetRequest {
                id: u64::MAX,
                deadline_rel_ns: 123_456,
                op: NetOp::Sort {
                    keys: vec![5, 1, 4, 2, 3],
                },
            },
        ];
        for req in &reqs {
            let bytes = encode_request(req);
            let mut cursor: &[u8] = &bytes;
            let decoded = read_request(&mut cursor)
                .expect("decodes")
                .expect("one frame");
            assert_eq!(&decoded, req);
            assert!(cursor.is_empty(), "frame consumed exactly");
        }
    }

    #[test]
    fn response_frames_round_trip() {
        let resps = [
            NetResponse {
                id: 1,
                status: NetStatus::Ok,
                latency_ns: 999,
                output: vec![1, 2, 3],
            },
            NetResponse {
                id: 2,
                status: NetStatus::RejectedDeadline,
                latency_ns: 0,
                output: vec![],
            },
        ];
        for resp in &resps {
            let bytes = encode_response(resp);
            let mut cursor: &[u8] = &bytes;
            let decoded = read_response(&mut cursor)
                .expect("decodes")
                .expect("one frame");
            assert_eq!(&decoded, resp);
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        let mut empty: &[u8] = &[];
        assert_eq!(read_request(&mut empty), Ok(None));
        let mut empty: &[u8] = &[];
        assert_eq!(read_response(&mut empty), Ok(None));
    }

    #[test]
    fn status_names_are_stable() {
        assert_eq!(NetStatus::Ok.name(), "ok");
        assert_eq!(NetStatus::RejectedQueueFull.name(), "rejected_queue_full");
        assert_eq!(NetStatus::RejectedDeadline.name(), "rejected_deadline");
        assert_eq!(NetStatus::Failed.name(), "failed");
        for b in 0..4u8 {
            assert_eq!(NetStatus::from_byte(b).unwrap().to_byte(), b);
        }
    }

    #[test]
    fn loopback_round_trip_over_a_real_socket() {
        let net = NetServer::start(
            ServeConfig {
                queue_capacity: 32,
                max_inflight: 2,
                worker_budget: 2,
                policy: QueuePolicy::Edf,
                batch_max_items: 4096,
            },
            NoRecorder,
            "127.0.0.1:0",
        )
        .expect("bind loopback");
        let mut client = NetClient::connect(net.local_addr()).expect("connect");
        let resp = client
            .call(&merge_req(42, vec![1, 4, 7], vec![2, 3, 9]))
            .expect("round trip");
        assert_eq!(resp.id, 42);
        assert_eq!(resp.status, NetStatus::Ok);
        assert_eq!(resp.output, vec![1, 2, 3, 4, 7, 9]);
        assert!(resp.latency_ns > 0);
        drop(client);
        let stats = net.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.lost(), 0);
    }
}
