//! Live observability for the daemon: the [`ServeProbe`] hook trait, its
//! zero-cost [`NoProbe`] default, and [`ServeObserver`] — the production
//! implementation bundling a [`MetricsRegistry`], per-stage waterfall
//! histograms, and a dump-on-anomaly [`FlightRecorder`].
//!
//! The probe mirrors the kernel-side [`Recorder`] contract exactly:
//! `Server` is generic over `P: ServeProbe`, every hook call site (and
//! every timestamp read feeding one) is guarded by `P::ACTIVE`, and the
//! default [`NoProbe`] is a ZST with `ACTIVE == false`, so the
//! metrics-disabled daemon monomorphizes to the pre-observability code —
//! byte-identical kernel output, no extra clock reads
//! (`tests/metrics_invariants.rs` holds the hot path to zero allocation).
//!
//! Anomaly triggers (DESIGN.md §12): the observer dumps the flight ring
//! as JSONL on the **first deadline miss**, on a **`QueueFull` burst**
//! (a configurable number of synchronous rejections inside a sliding
//! window), and on the **first contained request panic** — plus on
//! demand. Dumps are rate-limited by a cooldown so a pathological burst
//! cannot turn the recorder itself into an I/O storm.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mergepath_telemetry::{
    now_ns, FlightEvent, FlightEventKind, FlightRecorder, MetricsRegistry, MetricsSnapshot,
    Recorder, Waterfall,
};

/// Counter names registered by [`ServeObserver`], in index order.
pub const COUNTER_NAMES: &[&str] = &[
    "serve_submitted_total",
    "serve_completed_total",
    "serve_rejected_queue_full_total",
    "serve_rejected_deadline_total",
    "serve_failed_total",
    "serve_flight_dumps_total",
    "pool_rounds_total",
    "pool_steals_total",
    "pool_stolen_shares_total",
];
const C_SUBMITTED: usize = 0;
const C_COMPLETED: usize = 1;
const C_REJECTED_QUEUE_FULL: usize = 2;
const C_REJECTED_DEADLINE: usize = 3;
const C_FAILED: usize = 4;
const C_FLIGHT_DUMPS: usize = 5;
const C_POOL_ROUNDS: usize = 6;
const C_POOL_STEALS: usize = 7;
const C_POOL_STOLEN_SHARES: usize = 8;

/// Gauge names registered by [`ServeObserver`], in index order.
pub const GAUGE_NAMES: &[&str] = &[
    "serve_queue_depth",
    "serve_inflight",
    "serve_queue_depth_peak",
    "serve_inflight_peak",
    "pool_rounds_active",
];
const G_QUEUE_DEPTH: usize = 0;
const G_INFLIGHT: usize = 1;
const G_QUEUE_DEPTH_PEAK: usize = 2;
const G_INFLIGHT_PEAK: usize = 3;
const G_POOL_ROUNDS_ACTIVE: usize = 4;

/// Histogram names registered by [`ServeObserver`]: the four waterfall
/// stages, end-to-end latency, and the executor's round submit-to-start
/// queue wait, in index order.
pub const HISTOGRAM_NAMES: &[&str] = &[
    "serve_stage_queue_ns",
    "serve_stage_dispatch_ns",
    "serve_stage_compute_ns",
    "serve_stage_emit_ns",
    "serve_latency_ns",
    "round_queue_wait_ns",
];
const H_QUEUE: usize = 0;
const H_DISPATCH: usize = 1;
const H_COMPUTE: usize = 2;
const H_EMIT: usize = 3;
const H_LATENCY: usize = 4;
const H_ROUND_QUEUE_WAIT: usize = 5;

/// Lifecycle hooks the [`Server`](crate::Server) request path reports
/// into. All methods take `&self` and are called concurrently from the
/// submitter and every serving thread; implementations must be cheap —
/// they sit on the serving hot path.
///
/// Timestamps are on the shared [`now_ns`] clock, the same clock that
/// judges deadlines, so a probe's waterfall arithmetic is always
/// consistent with the daemon's verdicts.
pub trait ServeProbe: Sync {
    /// Compile-time activity flag; `false` only for [`NoProbe`]. Call
    /// sites (and their timestamp reads) are guarded by this constant.
    const ACTIVE: bool = true;

    /// A request was offered to `submit` (admitted or not).
    fn on_submit(&self, id: u64, t_ns: u64, deadline_ns: u64) {
        let _ = (id, t_ns, deadline_ns);
    }

    /// The request was admitted; the queue is now `depth` deep.
    fn on_enqueue(&self, id: u64, depth: usize) {
        let _ = (id, depth);
    }

    /// The request bounced synchronously off the full queue.
    fn on_reject_queue_full(&self, id: u64, t_ns: u64, capacity: usize) {
        let _ = (id, t_ns, capacity);
    }

    /// A serving thread popped the request; `depth` is the queue depth
    /// after the pop.
    fn on_dequeue(&self, id: u64, t_ns: u64, submit_ns: u64, depth: usize) {
        let _ = (id, t_ns, submit_ns, depth);
    }

    /// The request's deadline had expired by dequeue time.
    fn on_reject_deadline(&self, id: u64, t_ns: u64, deadline_ns: u64) {
        let _ = (id, t_ns, deadline_ns);
    }

    /// Kernel execution began with `share` logical workers; `inflight`
    /// counts this request.
    fn on_start(&self, id: u64, t_ns: u64, share: usize, inflight: usize) {
        let _ = (id, t_ns, share, inflight);
    }

    /// The request resolved successfully; `inflight` no longer counts it.
    fn on_complete(&self, id: u64, t_ns: u64, inflight: usize, waterfall: &Waterfall) {
        let _ = (id, t_ns, inflight, waterfall);
    }

    /// The request's kernel panicked (contained); `inflight` no longer
    /// counts it.
    fn on_fail(&self, id: u64, t_ns: u64, inflight: usize) {
        let _ = (id, t_ns, inflight);
    }
}

/// The zero-cost default probe: a ZST with `ACTIVE = false`. The
/// `Server<T, R, NoProbe>` instantiation is the pre-observability daemon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl ServeProbe for NoProbe {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn on_submit(&self, _id: u64, _t_ns: u64, _deadline_ns: u64) {}
    #[inline(always)]
    fn on_enqueue(&self, _id: u64, _depth: usize) {}
    #[inline(always)]
    fn on_reject_queue_full(&self, _id: u64, _t_ns: u64, _capacity: usize) {}
    #[inline(always)]
    fn on_dequeue(&self, _id: u64, _t_ns: u64, _submit_ns: u64, _depth: usize) {}
    #[inline(always)]
    fn on_reject_deadline(&self, _id: u64, _t_ns: u64, _deadline_ns: u64) {}
    #[inline(always)]
    fn on_start(&self, _id: u64, _t_ns: u64, _share: usize, _inflight: usize) {}
    #[inline(always)]
    fn on_complete(&self, _id: u64, _t_ns: u64, _inflight: usize, _waterfall: &Waterfall) {}
    #[inline(always)]
    fn on_fail(&self, _id: u64, _t_ns: u64, _inflight: usize) {}
}

/// Shared ownership delegates, mirroring the `Recorder` blanket impl: the
/// daemon holds an `Arc<ServeObserver>` while the caller keeps another
/// handle to snapshot and dump from outside.
impl<P: ServeProbe + Send + Sync> ServeProbe for Arc<P> {
    const ACTIVE: bool = P::ACTIVE;

    #[inline(always)]
    fn on_submit(&self, id: u64, t_ns: u64, deadline_ns: u64) {
        P::on_submit(self, id, t_ns, deadline_ns);
    }
    #[inline(always)]
    fn on_enqueue(&self, id: u64, depth: usize) {
        P::on_enqueue(self, id, depth);
    }
    #[inline(always)]
    fn on_reject_queue_full(&self, id: u64, t_ns: u64, capacity: usize) {
        P::on_reject_queue_full(self, id, t_ns, capacity);
    }
    #[inline(always)]
    fn on_dequeue(&self, id: u64, t_ns: u64, submit_ns: u64, depth: usize) {
        P::on_dequeue(self, id, t_ns, submit_ns, depth);
    }
    #[inline(always)]
    fn on_reject_deadline(&self, id: u64, t_ns: u64, deadline_ns: u64) {
        P::on_reject_deadline(self, id, t_ns, deadline_ns);
    }
    #[inline(always)]
    fn on_start(&self, id: u64, t_ns: u64, share: usize, inflight: usize) {
        P::on_start(self, id, t_ns, share, inflight);
    }
    #[inline(always)]
    fn on_complete(&self, id: u64, t_ns: u64, inflight: usize, waterfall: &Waterfall) {
        P::on_complete(self, id, t_ns, inflight, waterfall);
    }
    #[inline(always)]
    fn on_fail(&self, id: u64, t_ns: u64, inflight: usize) {
        P::on_fail(self, id, t_ns, inflight);
    }
}

/// Why a flight dump was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyTrigger {
    /// First request whose deadline expired while it waited.
    DeadlineMiss,
    /// [`ObserverConfig::queue_full_burst`] synchronous rejections inside
    /// one [`ObserverConfig::queue_full_window_ns`] window.
    QueueFullBurst,
    /// First contained request panic.
    Panic,
    /// Explicit [`ServeObserver::dump_on_demand`] call.
    OnDemand,
}

impl AnomalyTrigger {
    /// Stable name, used in dump filenames and headers.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyTrigger::DeadlineMiss => "deadline_miss",
            AnomalyTrigger::QueueFullBurst => "queue_full_burst",
            AnomalyTrigger::Panic => "panic",
            AnomalyTrigger::OnDemand => "on_demand",
        }
    }
}

/// Sizing and trigger thresholds for a [`ServeObserver`].
#[derive(Debug, Clone)]
pub struct ObserverConfig {
    /// Flight-recorder ring capacity (events retained).
    pub flight_capacity: usize,
    /// Where anomaly dumps are written; `None` records anomalies in the
    /// counters but writes nothing.
    pub dump_dir: Option<PathBuf>,
    /// `QueueFull` rejections within the window that constitute a burst.
    pub queue_full_burst: u64,
    /// The burst-detection window, nanoseconds.
    pub queue_full_window_ns: u64,
    /// Minimum spacing between burst-triggered dumps, nanoseconds
    /// (first-deadline-miss and first-panic dumps fire exactly once and
    /// ignore the cooldown).
    pub dump_cooldown_ns: u64,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            flight_capacity: 1024,
            dump_dir: None,
            queue_full_burst: 8,
            queue_full_window_ns: 1_000_000_000,
            dump_cooldown_ns: 1_000_000_000,
        }
    }
}

/// The production [`ServeProbe`]: live counters/gauges, per-stage
/// waterfall histograms, and the dump-on-anomaly flight recorder.
///
/// All hook paths are allocation-free (registry cells and flight slots
/// are preallocated); only an actual anomaly dump touches the filesystem.
/// The observer's counters reconcile **exactly** with
/// [`ServeStats`](crate::ServeStats) after shutdown — both are
/// incremented at the same points of the request path — which
/// `mp serve` asserts on every run.
pub struct ServeObserver {
    cfg: ObserverConfig,
    registry: MetricsRegistry,
    flight: FlightRecorder,
    dumped_deadline: AtomicBool,
    dumped_panic: AtomicBool,
    burst_window_start: AtomicU64,
    burst_window_count: AtomicU64,
    last_burst_dump_ns: AtomicU64,
    dump_seq: AtomicU64,
    dumps: Mutex<Vec<PathBuf>>,
}

impl ServeObserver {
    /// Builds an observer; all metric and flight storage is allocated
    /// here.
    pub fn new(cfg: ObserverConfig) -> Self {
        ServeObserver {
            registry: MetricsRegistry::new(COUNTER_NAMES, GAUGE_NAMES, HISTOGRAM_NAMES),
            flight: FlightRecorder::new(cfg.flight_capacity),
            cfg,
            dumped_deadline: AtomicBool::new(false),
            dumped_panic: AtomicBool::new(false),
            burst_window_start: AtomicU64::new(0),
            burst_window_count: AtomicU64::new(0),
            last_burst_dump_ns: AtomicU64::new(0),
            dump_seq: AtomicU64::new(0),
            dumps: Mutex::new(Vec::new()),
        }
    }

    /// The underlying registry (for direct reads in tests and tools).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The underlying flight ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Snapshots every metric at this instant without pausing writers.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot(now_ns())
    }

    /// Bumps the pool-round counters (wired from the executor's
    /// round-level callbacks via [`RoundGaugeRecorder`]).
    pub fn round_started(&self) {
        self.registry.counter_add(C_POOL_ROUNDS, 1);
        self.registry.gauge_add(G_POOL_ROUNDS_ACTIVE, 1);
    }

    /// Closes one pool round.
    pub fn round_finished(&self) {
        self.registry.gauge_sub(G_POOL_ROUNDS_ACTIVE, 1);
    }

    /// Records a round's submit-to-first-share queue wait (wired from the
    /// executor's `round_wait_ns` callback via [`RoundGaugeRecorder`]).
    pub fn on_round_queue_wait(&self, ns: u64) {
        self.registry.histogram_record(H_ROUND_QUEUE_WAIT, ns);
    }

    /// Bumps the work-stealing witness counters (wired from the
    /// executor's per-round steal report via [`RoundGaugeRecorder`]).
    /// `steals` counts productive ticket steals; `stolen_shares` the
    /// logical shares those tickets executed.
    pub fn on_pool_steals(&self, steals: u64, stolen_shares: u64) {
        self.registry.counter_add(C_POOL_STEALS, steals);
        self.registry
            .counter_add(C_POOL_STOLEN_SHARES, stolen_shares);
    }

    /// Renders the p99 waterfall attribution table from the stage
    /// histograms accumulated so far.
    pub fn attribution_table(&self) -> String {
        let queue = self.registry.histogram_value(H_QUEUE);
        let dispatch = self.registry.histogram_value(H_DISPATCH);
        let compute = self.registry.histogram_value(H_COMPUTE);
        let emit = self.registry.histogram_value(H_EMIT);
        let total = self.registry.histogram_value(H_LATENCY);
        mergepath_telemetry::waterfall::render_attribution(
            &[
                ("queue", &queue),
                ("dispatch", &dispatch),
                ("compute", &compute),
                ("emit", &emit),
            ],
            &total,
        )
    }

    /// Paths of every dump written so far, in write order.
    pub fn dump_paths(&self) -> Vec<PathBuf> {
        self.dumps.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Writes a flight dump right now, regardless of anomaly state.
    pub fn dump_on_demand(&self) -> Option<PathBuf> {
        self.write_dump(AnomalyTrigger::OnDemand)
    }

    /// Serializes the current ring (plus a header line) to
    /// `<dump_dir>/flight-<seq>-<trigger>.jsonl`. Returns `None` when no
    /// dump directory is configured or the write fails — the daemon never
    /// fails a request over a diagnostics problem.
    fn write_dump(&self, trigger: AnomalyTrigger) -> Option<PathBuf> {
        let dir = self.cfg.dump_dir.as_ref()?;
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let body = self.render_dump(trigger, seq);
        let path = dir.join(format!("flight-{seq:03}-{}.jsonl", trigger.name()));
        std::fs::create_dir_all(dir).ok()?;
        std::fs::write(&path, body).ok()?;
        self.registry.counter_add(C_FLIGHT_DUMPS, 1);
        self.dumps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(path.clone());
        Some(path)
    }

    /// The dump text: a `flight_dump` header line (trigger, time, counter
    /// context) followed by one `flight_event` line per retained event,
    /// oldest first.
    pub fn render_dump(&self, trigger: AnomalyTrigger, seq: u64) -> String {
        use mergepath_telemetry::json::{write_f64, write_str};
        let events = self.flight.snapshot();
        let mut out = String::from("{\"type\":\"flight_dump\",\"trigger\":");
        write_str(&mut out, trigger.name());
        out.push_str(",\"seq\":");
        write_f64(&mut out, seq as f64);
        out.push_str(",\"t_ns\":");
        write_f64(&mut out, now_ns() as f64);
        out.push_str(",\"events\":");
        write_f64(&mut out, events.len() as f64);
        out.push_str(",\"counters\":{");
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push(':');
            write_f64(&mut out, self.registry.counter_value(i) as f64);
        }
        out.push_str("}}\n");
        out.push_str(&FlightRecorder::to_jsonl(&events));
        out
    }

    fn note_queue_full(&self, t_ns: u64) {
        let start = self.burst_window_start.load(Ordering::Relaxed);
        if t_ns.saturating_sub(start) > self.cfg.queue_full_window_ns {
            // Window elapsed: whoever wins the race opens a fresh one.
            if self
                .burst_window_start
                .compare_exchange(start, t_ns, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.burst_window_count.store(1, Ordering::Relaxed);
                return;
            }
        }
        let count = self.burst_window_count.fetch_add(1, Ordering::Relaxed) + 1;
        if count == self.cfg.queue_full_burst {
            let last = self.last_burst_dump_ns.load(Ordering::Relaxed);
            let cooled = last == 0 || t_ns.saturating_sub(last) >= self.cfg.dump_cooldown_ns;
            if cooled
                && self
                    .last_burst_dump_ns
                    .compare_exchange(last, t_ns.max(1), Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                self.write_dump(AnomalyTrigger::QueueFullBurst);
            }
        }
    }
}

impl std::fmt::Debug for ServeObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeObserver")
            .field("flight", &self.flight)
            .field("dumps", &self.dump_paths().len())
            .finish()
    }
}

impl ServeProbe for ServeObserver {
    fn on_submit(&self, id: u64, t_ns: u64, deadline_ns: u64) {
        self.registry.counter_add(C_SUBMITTED, 1);
        self.flight.record(FlightEvent {
            seq: 0,
            t_ns,
            request_id: id,
            kind: FlightEventKind::Submit,
            arg0: deadline_ns,
            arg1: 0,
        });
    }

    fn on_enqueue(&self, _id: u64, depth: usize) {
        self.registry.gauge_set(G_QUEUE_DEPTH, depth as u64);
        self.registry.gauge_max(G_QUEUE_DEPTH_PEAK, depth as u64);
    }

    fn on_reject_queue_full(&self, id: u64, t_ns: u64, capacity: usize) {
        self.registry.counter_add(C_REJECTED_QUEUE_FULL, 1);
        self.flight.record(FlightEvent {
            seq: 0,
            t_ns,
            request_id: id,
            kind: FlightEventKind::RejectQueueFull,
            arg0: capacity as u64,
            arg1: 0,
        });
        self.note_queue_full(t_ns);
    }

    fn on_dequeue(&self, id: u64, t_ns: u64, submit_ns: u64, depth: usize) {
        self.registry.gauge_set(G_QUEUE_DEPTH, depth as u64);
        self.flight.record(FlightEvent {
            seq: 0,
            t_ns,
            request_id: id,
            kind: FlightEventKind::Dequeue,
            arg0: submit_ns,
            arg1: depth as u64,
        });
    }

    fn on_reject_deadline(&self, id: u64, t_ns: u64, deadline_ns: u64) {
        self.registry.counter_add(C_REJECTED_DEADLINE, 1);
        self.flight.record(FlightEvent {
            seq: 0,
            t_ns,
            request_id: id,
            kind: FlightEventKind::RejectDeadline,
            arg0: deadline_ns,
            arg1: t_ns.saturating_sub(deadline_ns),
        });
        if !self.dumped_deadline.swap(true, Ordering::Relaxed) {
            self.write_dump(AnomalyTrigger::DeadlineMiss);
        }
    }

    fn on_start(&self, id: u64, t_ns: u64, share: usize, inflight: usize) {
        self.registry.gauge_set(G_INFLIGHT, inflight as u64);
        self.registry.gauge_max(G_INFLIGHT_PEAK, inflight as u64);
        self.flight.record(FlightEvent {
            seq: 0,
            t_ns,
            request_id: id,
            kind: FlightEventKind::Start,
            arg0: share as u64,
            arg1: inflight as u64,
        });
    }

    fn on_complete(&self, id: u64, t_ns: u64, inflight: usize, waterfall: &Waterfall) {
        self.registry.counter_add(C_COMPLETED, 1);
        self.registry.gauge_set(G_INFLIGHT, inflight as u64);
        // One lock round-trip for all five series (shard-major layout).
        self.registry.histogram_record_many(&[
            (H_QUEUE, waterfall.queue_ns),
            (H_DISPATCH, waterfall.dispatch_ns),
            (H_COMPUTE, waterfall.compute_ns),
            (H_EMIT, waterfall.emit_ns),
            (H_LATENCY, waterfall.total_ns()),
        ]);
        self.flight.record(FlightEvent {
            seq: 0,
            t_ns,
            request_id: id,
            kind: FlightEventKind::Complete,
            arg0: waterfall.total_ns(),
            arg1: waterfall.compute_ns,
        });
    }

    fn on_fail(&self, id: u64, t_ns: u64, inflight: usize) {
        self.registry.counter_add(C_FAILED, 1);
        self.registry.gauge_set(G_INFLIGHT, inflight as u64);
        self.flight.record(FlightEvent {
            seq: 0,
            t_ns,
            request_id: id,
            kind: FlightEventKind::Fail,
            arg0: 0,
            arg1: 0,
        });
        if !self.dumped_panic.swap(true, Ordering::Relaxed) {
            self.write_dump(AnomalyTrigger::Panic);
        }
    }
}

/// A [`Recorder`] adapter that forwards everything to `inner` and
/// additionally feeds the executor's **round-level** callbacks into the
/// observer's pool metrics: `round_begin`/`round_end` into the
/// `pool_rounds_total` counter and `pool_rounds_active` gauge (so the
/// live snapshot shows whether the daemon is currently data-parallel or
/// request-parallel), `round_wait_ns` into the `round_queue_wait_ns`
/// histogram, and the executor's per-round steal report
/// (`CounterKind::PoolSteals` / `PoolStolenShares`) into the
/// `pool_steals_total` / `pool_stolen_shares_total` counters — the live
/// witness that round overlap is actually happening.
pub struct RoundGaugeRecorder<R> {
    inner: R,
    observer: Arc<ServeObserver>,
}

impl<R: Recorder + Send + Sync> RoundGaugeRecorder<R> {
    /// Wraps `inner`, teeing round events into `observer`'s gauges.
    pub fn new(inner: R, observer: Arc<ServeObserver>) -> Self {
        RoundGaugeRecorder { inner, observer }
    }

    /// Unwraps the inner recorder (to `finish()` a timeline afterwards).
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Recorder + Send + Sync> Recorder for RoundGaugeRecorder<R> {
    // Round hooks must fire even when the inner recorder is inactive;
    // kernel-span call sites still reach the inner `R` through delegation
    // (a `NoRecorder` inner simply ignores them).
    const ACTIVE: bool = true;

    #[inline(always)]
    fn span_begin(&self, worker: usize, kind: mergepath_telemetry::SpanKind) {
        self.inner.span_begin(worker, kind);
    }
    #[inline(always)]
    fn span_end(&self, worker: usize, kind: mergepath_telemetry::SpanKind) {
        self.inner.span_end(worker, kind);
    }
    #[inline(always)]
    fn counter_add(&self, worker: usize, kind: mergepath_telemetry::CounterKind, delta: u64) {
        match kind {
            mergepath_telemetry::CounterKind::PoolSteals => {
                self.observer.on_pool_steals(delta, 0);
            }
            mergepath_telemetry::CounterKind::PoolStolenShares => {
                self.observer.on_pool_steals(0, delta);
            }
            _ => {}
        }
        self.inner.counter_add(worker, kind, delta);
    }
    #[inline(always)]
    fn worker_items(&self, worker: usize, items: u64) {
        self.inner.worker_items(worker, items);
    }
    #[inline(always)]
    fn round_begin(&self, shares: usize) {
        self.observer.round_started();
        self.inner.round_begin(shares);
    }
    #[inline(always)]
    fn round_end(&self) {
        self.inner.round_end();
        self.observer.round_finished();
    }
    #[inline(always)]
    fn round_wait_ns(&self, ns: u64) {
        self.observer.on_round_queue_wait(ns);
        self.inner.round_wait_ns(ns);
    }
    #[inline(always)]
    fn share_window(&self, tid: usize, share: usize, start_ns: u64, end_ns: u64) {
        self.inner.share_window(tid, share, start_ns, end_ns);
    }
}

/// Creates a uniquely named scratch directory for tests.
#[doc(hidden)]
pub fn test_scratch_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mp-observe-{tag}-{}-{n}-{}",
        std::process::id(),
        now_ns()
    ))
}

#[doc(hidden)]
pub fn remove_scratch_dir(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_probe_is_zero_sized_and_inactive() {
        assert_eq!(core::mem::size_of::<NoProbe>(), 0);
        const { assert!(!NoProbe::ACTIVE) }
        const { assert!(<Arc<ServeObserver> as ServeProbe>::ACTIVE) }
    }

    #[test]
    fn hooks_drive_counters_gauges_and_histograms() {
        let obs = ServeObserver::new(ObserverConfig::default());
        obs.on_submit(1, 100, 0);
        obs.on_enqueue(1, 3);
        obs.on_dequeue(1, 200, 100, 2);
        obs.on_start(1, 210, 4, 2);
        let wf = Waterfall {
            queue_ns: 100,
            dispatch_ns: 10,
            compute_ns: 500,
            emit_ns: 5,
        };
        obs.on_complete(1, 815, 1, &wf);
        obs.on_submit(2, 900, 0);
        obs.on_reject_queue_full(2, 900, 64);
        obs.on_fail(3, 1000, 0);

        let snap = obs.snapshot();
        assert_eq!(snap.counter("serve_submitted_total"), Some(2));
        assert_eq!(snap.counter("serve_completed_total"), Some(1));
        assert_eq!(snap.counter("serve_rejected_queue_full_total"), Some(1));
        assert_eq!(snap.counter("serve_failed_total"), Some(1));
        assert_eq!(snap.gauge("serve_queue_depth_peak"), Some(3));
        assert_eq!(snap.gauge("serve_inflight_peak"), Some(2));
        let lat = snap.histogram("serve_latency_ns").unwrap();
        assert_eq!(lat.count(), 1);
        assert_eq!(lat.sum(), wf.total_ns());
        assert_eq!(
            snap.histogram("serve_stage_compute_ns").map(|h| h.sum()),
            Some(500)
        );

        let table = obs.attribution_table();
        assert!(table.contains("compute"), "table: {table}");
        // Flight ring saw every lifecycle event.
        assert_eq!(obs.flight().recorded(), 7);
    }

    #[test]
    fn first_deadline_miss_dumps_exactly_once() {
        let dir = test_scratch_dir("deadline");
        let obs = ServeObserver::new(ObserverConfig {
            dump_dir: Some(dir.clone()),
            ..ObserverConfig::default()
        });
        obs.on_submit(7, 50, 40);
        obs.on_reject_deadline(7, 100, 40);
        obs.on_reject_deadline(8, 200, 40);
        let dumps = obs.dump_paths();
        assert_eq!(dumps.len(), 1, "first miss dumps, second does not");
        let name = dumps[0].file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.starts_with("flight-000-deadline_miss"),
            "dump name: {name}"
        );
        let text = std::fs::read_to_string(&dumps[0]).expect("dump readable");
        let mut lines = text.lines();
        let header =
            mergepath_telemetry::json::parse(lines.next().unwrap()).expect("header parses");
        assert_eq!(
            header.get("type").and_then(|v| v.as_str()),
            Some("flight_dump")
        );
        assert_eq!(
            header.get("trigger").and_then(|v| v.as_str()),
            Some("deadline_miss")
        );
        // Body holds the submit and the offending rejection.
        let kinds: Vec<String> = lines
            .map(|l| {
                mergepath_telemetry::json::parse(l)
                    .unwrap()
                    .get("kind")
                    .and_then(|v| v.as_str())
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert!(kinds.contains(&"submit".to_string()));
        assert!(kinds.contains(&"reject_deadline".to_string()));
        assert_eq!(obs.snapshot().counter("serve_flight_dumps_total"), Some(1));
        remove_scratch_dir(&dir);
    }

    #[test]
    fn queue_full_burst_dump_respects_threshold_and_cooldown() {
        let dir = test_scratch_dir("burst");
        let obs = ServeObserver::new(ObserverConfig {
            dump_dir: Some(dir.clone()),
            queue_full_burst: 4,
            queue_full_window_ns: 1_000,
            dump_cooldown_ns: u64::MAX,
            ..ObserverConfig::default()
        });
        // Three rejections inside the window: below threshold, no dump.
        for (id, t) in [(1u64, 10u64), (2, 20), (3, 30)] {
            obs.on_reject_queue_full(id, t, 8);
        }
        assert!(obs.dump_paths().is_empty());
        // Fourth inside the same window crosses the threshold.
        obs.on_reject_queue_full(4, 40, 8);
        assert_eq!(obs.dump_paths().len(), 1);
        assert!(obs.dump_paths()[0]
            .to_string_lossy()
            .contains("queue_full_burst"));
        // Another burst during the (infinite) cooldown stays silent.
        for (id, t) in [(5u64, 50u64), (6, 60), (7, 70), (8, 80)] {
            obs.on_reject_queue_full(id, t, 8);
        }
        assert_eq!(obs.dump_paths().len(), 1, "cooldown suppressed the dump");
        remove_scratch_dir(&dir);
    }

    #[test]
    fn panic_and_on_demand_dumps() {
        let dir = test_scratch_dir("panic");
        let obs = ServeObserver::new(ObserverConfig {
            dump_dir: Some(dir.clone()),
            ..ObserverConfig::default()
        });
        obs.on_fail(1, 10, 0);
        obs.on_fail(2, 20, 0);
        let on_demand = obs.dump_on_demand().expect("dump dir configured");
        let dumps = obs.dump_paths();
        assert_eq!(dumps.len(), 2, "one panic dump + one on-demand dump");
        assert!(dumps[0].to_string_lossy().contains("panic"));
        assert!(on_demand.to_string_lossy().contains("on_demand"));
        remove_scratch_dir(&dir);
    }

    #[test]
    fn no_dump_dir_means_no_io_but_counters_advance() {
        let obs = ServeObserver::new(ObserverConfig::default());
        obs.on_reject_deadline(1, 100, 50);
        assert!(obs.dump_paths().is_empty());
        assert_eq!(
            obs.snapshot().counter("serve_rejected_deadline_total"),
            Some(1)
        );
        assert_eq!(obs.snapshot().counter("serve_flight_dumps_total"), Some(0));
    }

    #[test]
    fn round_gauge_recorder_tees_rounds_and_delegates() {
        use mergepath_telemetry::TimelineRecorder;
        let obs = Arc::new(ServeObserver::new(ObserverConfig::default()));
        let rec = RoundGaugeRecorder::new(TimelineRecorder::new(), Arc::clone(&obs));
        rec.round_wait_ns(750);
        rec.round_begin(4);
        assert_eq!(obs.snapshot().gauge("pool_rounds_active"), Some(1));
        rec.span_begin(0, mergepath_telemetry::SpanKind::SegmentMerge);
        rec.span_end(0, mergepath_telemetry::SpanKind::SegmentMerge);
        rec.round_end();
        // The executor's per-round steal report routes through
        // counter_add with the dedicated kinds.
        rec.counter_add(0, mergepath_telemetry::CounterKind::PoolSteals, 2);
        rec.counter_add(0, mergepath_telemetry::CounterKind::PoolStolenShares, 5);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("pool_rounds_total"), Some(1));
        assert_eq!(snap.gauge("pool_rounds_active"), Some(0));
        assert_eq!(snap.counter("pool_steals_total"), Some(2));
        assert_eq!(snap.counter("pool_stolen_shares_total"), Some(5));
        let wait = snap.histogram("round_queue_wait_ns").unwrap();
        assert_eq!(wait.count(), 1, "round_wait_ns teed into the histogram");
        assert_eq!(wait.sum(), 750);
        let t = rec.into_inner().finish();
        assert_eq!(t.spans.len(), 1, "inner recorder still saw the span");
        assert_eq!(t.rounds.len(), 1);
        assert_eq!(
            t.counters
                .iter()
                .filter(|c| matches!(
                    c.kind,
                    mergepath_telemetry::CounterKind::PoolSteals
                        | mergepath_telemetry::CounterKind::PoolStolenShares
                ))
                .count(),
            2,
            "steal counters still delegate to the inner recorder"
        );
    }
}
