//! # mergepath-serve — an in-process merge/sort serving daemon
//!
//! The ROADMAP's north star is a production-scale system serving heavy
//! concurrent traffic, not a one-shot kernel benchmark. This crate adds
//! the admission and scheduling layer that turns the merge-path kernel
//! library into that system:
//!
//! - [`Server`]: a long-lived daemon accepting many concurrent merge /
//!   sort [`Request`]s through a **bounded queue dequeued in
//!   [`QueuePolicy`] order** — earliest-deadline-first by default,
//!   degenerating to exact FIFO when no deadlines are set (or under
//!   [`QueuePolicy::Fifo`]). Overload is answered with explicit
//!   backpressure — a synchronous [`RejectReason::QueueFull`] at
//!   submission, or a [`RejectReason::DeadlineExpired`] at dequeue when
//!   a request's deadline was reached while it waited (inclusive
//!   boundary: `dequeue >= deadline` misses) — never a panic, never a
//!   partially written output buffer.
//! - **Request batching**: compatible queued small merges (same key
//!   type and comparator class, combined output within
//!   [`ServeConfig::batch_max_items`]) coalesce into one
//!   `merge::batch` pool round instead of N `share = 1` inline runs,
//!   counted by the `serve_batched` / `batch_width` telemetry counters.
//! - [`net`]: the TCP front-end — length-prefixed binary framing with a
//!   hand-rolled codec ([`net::NetServer`] / [`net::NetClient`]), taking
//!   the daemon out-of-process (`mp serve --listen` / `mp client`).
//! - **Global worker budgeting**: all requests share the one persistent
//!   [`executor::Pool`](mergepath::executor); each executing request gets
//!   [`worker_share`]`(budget, inflight)` logical shares, the same
//!   equal-split discipline `merge::batch` applies across pairs. At high
//!   concurrency every request runs inline on its serving thread
//!   (share = 1, no pool round), so throughput scales with serving
//!   threads; at low concurrency a lone request fans out across the pool.
//! - **Telemetry threading**: the generic [`Recorder`] flows through the
//!   request path into the kernels (`parallel_merge_into_recorded`,
//!   `parallel_merge_sort_recorded`), and the daemon counts completions
//!   and rejections via the `serve_*` [`CounterKind`]s. Latency
//!   percentiles come from the mergeable
//!   [`LatencyHistogram`](mergepath_telemetry::LatencyHistogram).
//! - [`replay`]: a deterministic discrete-event simulation of the exact
//!   admission policy, so the outcome log of a planned run
//!   ([`arrival_plan`](mergepath_workloads::arrival_plan)) is a pure
//!   function of `(seed, config)` — the reproducibility contract
//!   `tests/serve_determinism.rs` pins and `BENCH_serve.json` relies on.
//!
//! Correctness under concurrency follows the Träff stable-merge line
//! (arXiv 1202.6575): every completed response is byte-identical to the
//! sequential oracle's answer regardless of interleaving, proven by
//! `tests/serve_invariants.rs` across all nine adversarial input
//! families.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;
pub mod observe;
pub mod replay;
mod server;

pub use net::{NetClient, NetOp, NetRequest, NetResponse, NetServer, NetStatus, ProtocolError};
pub use observe::{
    AnomalyTrigger, NoProbe, ObserverConfig, RoundGaugeRecorder, ServeObserver, ServeProbe,
};
pub use replay::{replay, ReplayConfig, ReplayEntry, ReplayOutcome, ServiceModel};
pub use server::{
    worker_share, Outcome, QueuePolicy, RejectReason, Request, RequestKind, ResponseHandle,
    ServeConfig, ServeStats, Server,
};

// Re-exported so callers of the serving API need not name the telemetry
// crate for the common cases.
pub use mergepath_telemetry::{
    CounterKind, FlightEvent, FlightEventKind, FlightRecorder, LatencyHistogram, MetricsRegistry,
    MetricsSnapshot, NoRecorder, Recorder, TimelineRecorder, Waterfall,
};
