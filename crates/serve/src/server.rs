//! The daemon: bounded admission queue, serving threads, deadline checks,
//! and worker-budget sharing over the persistent pool.

use std::cmp::Ordering;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mergepath::merge::parallel::parallel_merge_into_recorded;
use mergepath::sort::parallel::parallel_merge_sort_recorded;
use mergepath_telemetry::{
    now_ns, CounterKind, LatencyHistogram, OffsetRecorder, Recorder, Waterfall,
};

use crate::observe::{NoProbe, ServeProbe};

/// The logical worker shares one executing request receives when
/// `inflight` requests share a pool budget of `budget` threads: the equal
/// split `⌊budget / inflight⌋`, floored at 1.
///
/// This is the same global-budget discipline `merge::batch` applies
/// across pairs, lifted to concurrent requests: one lone request fans out
/// across the whole pool; at or beyond `budget` concurrent requests each
/// runs inline on its serving thread (share = 1 executes without
/// entering a pool round), so the daemon's parallelism degrades
/// gracefully from data-parallel to request-parallel.
pub fn worker_share(budget: usize, inflight: usize) -> usize {
    (budget / inflight.max(1)).max(1)
}

/// What a request asks the daemon to compute.
#[derive(Debug, Clone)]
pub enum RequestKind<T> {
    /// Merge two sorted arrays (stable: ties take from `a` first).
    Merge {
        /// Left sorted input.
        a: Vec<T>,
        /// Right sorted input.
        b: Vec<T>,
    },
    /// Sort an unsorted array (stable).
    Sort {
        /// The keys to sort.
        keys: Vec<T>,
    },
}

/// One unit of work submitted to the [`Server`].
#[derive(Debug, Clone)]
pub struct Request<T> {
    /// Caller-assigned identifier, echoed in logs and summaries.
    pub id: u64,
    /// The computation.
    pub kind: RequestKind<T>,
    /// Absolute deadline on the [`now_ns`] process clock; `0` = none.
    /// Checked when the request is *dequeued*: a request whose deadline
    /// passed while queued is rejected without touching any output
    /// buffer.
    pub deadline_ns: u64,
}

impl<T> Request<T> {
    /// A merge request with no deadline.
    pub fn merge(id: u64, a: Vec<T>, b: Vec<T>) -> Self {
        Request {
            id,
            kind: RequestKind::Merge { a, b },
            deadline_ns: 0,
        }
    }

    /// A sort request with no deadline.
    pub fn sort(id: u64, keys: Vec<T>) -> Self {
        Request {
            id,
            kind: RequestKind::Sort { keys },
            deadline_ns: 0,
        }
    }

    /// Sets an absolute deadline `rel_ns` nanoseconds from now.
    pub fn with_deadline_in(mut self, rel_ns: u64) -> Self {
        self.deadline_ns = now_ns().saturating_add(rel_ns);
        self
    }
}

/// Why the daemon refused a request. Backpressure is always explicit —
/// the daemon never panics on overload and never drops silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was at capacity (or the server was shutting
    /// down) at submission time. Reported synchronously by
    /// [`Server::submit`].
    QueueFull,
    /// The request's deadline expired while it waited in the queue.
    /// Reported through the [`ResponseHandle`] at dequeue time.
    DeadlineExpired,
}

impl RejectReason {
    /// Stable name for logs and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineExpired => "deadline_expired",
        }
    }
}

/// The terminal state of an admitted request.
#[derive(Debug)]
pub enum Outcome<T> {
    /// The kernel ran; `output` is byte-identical to the sequential
    /// oracle's answer and `latency_ns` measures submit → completion.
    Completed {
        /// The merged / sorted result.
        output: Vec<T>,
        /// Submit-to-completion latency, nanoseconds.
        latency_ns: u64,
        /// Per-stage latency attribution, measured on the same clock as
        /// `latency_ns` when the server's [`ServeProbe`] is active
        /// (all-zero under [`NoProbe`] — stage timestamps are never read
        /// on the disabled path). When active, the stages partition the
        /// wall time exactly: their sum equals `latency_ns`.
        waterfall: Waterfall,
    },
    /// Rejected after admission (deadline expiry at dequeue). No output
    /// buffer was ever allocated or written.
    Rejected(RejectReason),
    /// The comparator (or kernel) panicked; the panic was contained and
    /// the partially-built output dropped cleanly.
    Failed,
}

/// Daemon sizing. All fields are explicit so a configuration is a value
/// (the deterministic [`replay`](crate::replay) takes the same numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded queue capacity; submissions beyond it get
    /// [`RejectReason::QueueFull`].
    pub queue_capacity: usize,
    /// Serving threads = maximum concurrently executing requests.
    pub max_inflight: usize,
    /// Total pool-thread budget divided among in-flight requests via
    /// [`worker_share`].
    pub worker_budget: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let budget = mergepath::executor::default_threads();
        ServeConfig {
            queue_capacity: 256,
            max_inflight: budget.max(1),
            worker_budget: budget,
        }
    }
}

/// A monotonic snapshot of the daemon's counters and latency histogram.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests offered to [`Server::submit`] (admitted or not).
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Synchronous queue-full rejections.
    pub rejected_queue_full: u64,
    /// Deadline expiries at dequeue.
    pub rejected_deadline: u64,
    /// Contained kernel panics.
    pub failed: u64,
    /// Deepest queue observed at any submission.
    pub queue_depth_peak: usize,
    /// Most requests ever executing simultaneously.
    pub inflight_peak: usize,
    /// Submit-to-completion latencies of completed requests.
    pub latency: LatencyHistogram,
}

impl ServeStats {
    /// Requests unaccounted for: submitted minus (completed + rejected +
    /// failed). Zero after [`Server::shutdown`] — the no-silent-drops
    /// invariant (`cargo xtask verify-serve` asserts it on every run).
    pub fn lost(&self) -> i64 {
        self.submitted as i64
            - (self.completed + self.rejected_queue_full + self.rejected_deadline + self.failed)
                as i64
    }
}

/// A single-use completion cell: the serving thread puts the outcome, the
/// submitter blocks on [`ResponseHandle::wait`].
struct OneShot<V> {
    slot: Mutex<Option<V>>,
    cv: Condvar,
}

impl<V> OneShot<V> {
    fn new() -> Self {
        OneShot {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn put(&self, v: V) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(v);
        self.cv.notify_all();
    }

    fn take(&self) -> V {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The submitter's side of an admitted request.
pub struct ResponseHandle<T> {
    /// The request id this handle resolves.
    pub id: u64,
    cell: Arc<OneShot<Outcome<T>>>,
}

impl<T> ResponseHandle<T> {
    /// Blocks until the daemon resolves the request.
    pub fn wait(self) -> Outcome<T> {
        self.cell.take()
    }
}

/// An admitted request waiting in the queue.
struct Ticket<T> {
    id: u64,
    kind: RequestKind<T>,
    deadline_ns: u64,
    submit_ns: u64,
    cell: Arc<OneShot<Outcome<T>>>,
}

struct QueueState<T> {
    deque: VecDeque<Ticket<T>>,
    open: bool,
}

struct Inner<T, R, P> {
    queue: Mutex<QueueState<T>>,
    cv: Condvar,
    cfg: ServeConfig,
    rec: R,
    probe: P,
    inflight: AtomicUsize,
    inflight_peak: AtomicUsize,
    queue_depth_peak: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_deadline: AtomicU64,
    failed: AtomicU64,
    latency: Mutex<LatencyHistogram>,
}

fn bump_peak(peak: &AtomicUsize, observed: usize) {
    peak.fetch_max(observed, AtomicOrdering::Relaxed);
}

/// The serving daemon. See the [crate docs](crate) for the model.
///
/// `T` is the element type (`u32` for the CLI; tests use drop-tracked
/// keys); `R` the telemetry recorder threaded into every kernel
/// invocation; `P` the [`ServeProbe`] observing the request lifecycle
/// (queue wait, dispatch, compute, emit). Both default to their zero-cost
/// ZSTs, so `Server<T>` is the uninstrumented daemon.
///
/// # Examples
/// ```
/// use mergepath_serve::{Outcome, Request, ServeConfig, Server};
/// use mergepath_telemetry::NoRecorder;
/// let server = Server::start(ServeConfig::default(), NoRecorder);
/// let handle = server
///     .submit(Request::merge(0, vec![1u32, 3, 5], vec![2, 4, 6]))
///     .expect("queue has room");
/// match handle.wait() {
///     Outcome::Completed { output, .. } => assert_eq!(output, vec![1, 2, 3, 4, 5, 6]),
///     other => panic!("unexpected outcome: {other:?}"),
/// }
/// let stats = server.shutdown();
/// assert_eq!(stats.completed, 1);
/// assert_eq!(stats.lost(), 0);
/// ```
pub struct Server<T, R = mergepath_telemetry::NoRecorder, P = NoProbe>
where
    T: Ord + Clone + Default + Send + Sync + 'static,
    R: Recorder + Send + Sync + 'static,
    P: ServeProbe + Send + Sync + 'static,
{
    inner: Arc<Inner<T, R, P>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T, R> Server<T, R, NoProbe>
where
    T: Ord + Clone + Default + Send + Sync + 'static,
    R: Recorder + Send + Sync + 'static,
{
    /// Spawns the serving threads and returns the running daemon with
    /// live observability disabled (the zero-cost [`NoProbe`] path).
    pub fn start(cfg: ServeConfig, rec: R) -> Self {
        Self::start_with_probe(cfg, rec, NoProbe)
    }
}

impl<T, R, P> Server<T, R, P>
where
    T: Ord + Clone + Default + Send + Sync + 'static,
    R: Recorder + Send + Sync + 'static,
    P: ServeProbe + Send + Sync + 'static,
{
    /// Spawns the serving threads with `probe` observing every request's
    /// lifecycle (typically an `Arc<ServeObserver>`, so the caller keeps
    /// a handle to snapshot and dump while the daemon runs).
    pub fn start_with_probe(cfg: ServeConfig, rec: R, probe: P) -> Self {
        assert!(cfg.queue_capacity > 0, "queue capacity must be at least 1");
        assert!(cfg.max_inflight > 0, "max_inflight must be at least 1");
        assert!(cfg.worker_budget > 0, "worker budget must be at least 1");
        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState {
                deque: VecDeque::with_capacity(cfg.queue_capacity),
                open: true,
            }),
            cv: Condvar::new(),
            cfg,
            rec,
            probe,
            inflight: AtomicUsize::new(0),
            inflight_peak: AtomicUsize::new(0),
            queue_depth_peak: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            latency: Mutex::new(LatencyHistogram::new()),
        });
        let workers = (0..cfg.max_inflight)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mp-serve-{w}"))
                    .spawn(move || serve_loop(w, &inner))
                    .expect("spawn serving thread")
            })
            .collect();
        Server { inner, workers }
    }

    /// Offers `req` to the daemon.
    ///
    /// Admission is synchronous: `Ok` hands back a [`ResponseHandle`] the
    /// caller can block on; `Err(QueueFull)` means the bounded queue was
    /// at capacity (or the server is shutting down) and the request —
    /// input buffers included — is dropped cleanly right here, nothing
    /// queued, nothing written.
    pub fn submit(&self, req: Request<T>) -> Result<ResponseHandle<T>, RejectReason> {
        let inner = &self.inner;
        inner.submitted.fetch_add(1, AtomicOrdering::Relaxed);
        let submit_ns = now_ns();
        if P::ACTIVE {
            inner.probe.on_submit(req.id, submit_ns, req.deadline_ns);
        }
        let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        if !q.open || q.deque.len() >= inner.cfg.queue_capacity {
            drop(q);
            inner
                .rejected_queue_full
                .fetch_add(1, AtomicOrdering::Relaxed);
            if R::ACTIVE {
                inner
                    .rec
                    .counter_add(0, CounterKind::ServeRejectedQueueFull, 1);
            }
            if P::ACTIVE {
                inner
                    .probe
                    .on_reject_queue_full(req.id, now_ns(), inner.cfg.queue_capacity);
            }
            return Err(RejectReason::QueueFull);
        }
        let cell = Arc::new(OneShot::new());
        let id = req.id;
        q.deque.push_back(Ticket {
            id,
            kind: req.kind,
            deadline_ns: req.deadline_ns,
            submit_ns,
            cell: Arc::clone(&cell),
        });
        let depth = q.deque.len();
        bump_peak(&inner.queue_depth_peak, depth);
        drop(q);
        if P::ACTIVE {
            inner.probe.on_enqueue(id, depth);
        }
        inner.cv.notify_one();
        Ok(ResponseHandle { id, cell })
    }

    /// Current counters (live; the histogram is a snapshot copy).
    pub fn stats(&self) -> ServeStats {
        let inner = &self.inner;
        ServeStats {
            submitted: inner.submitted.load(AtomicOrdering::Relaxed),
            completed: inner.completed.load(AtomicOrdering::Relaxed),
            rejected_queue_full: inner.rejected_queue_full.load(AtomicOrdering::Relaxed),
            rejected_deadline: inner.rejected_deadline.load(AtomicOrdering::Relaxed),
            failed: inner.failed.load(AtomicOrdering::Relaxed),
            queue_depth_peak: inner.queue_depth_peak.load(AtomicOrdering::Relaxed),
            inflight_peak: inner.inflight_peak.load(AtomicOrdering::Relaxed),
            latency: inner
                .latency
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
        }
    }

    /// Graceful shutdown: stops admitting, drains the queue (every
    /// admitted request still resolves — completed, deadline-rejected,
    /// or failed), joins the serving threads, and returns the final
    /// stats. `stats().lost() == 0` afterwards.
    pub fn shutdown(mut self) -> ServeStats {
        {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.open = false;
        }
        self.inner.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

impl<T, R, P> Drop for Server<T, R, P>
where
    T: Ord + Clone + Default + Send + Sync + 'static,
    R: Recorder + Send + Sync + 'static,
    P: ServeProbe + Send + Sync + 'static,
{
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // shutdown() already ran
        }
        {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.open = false;
        }
        self.inner.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One serving thread: dequeue, deadline-check, execute under the shared
/// worker budget, resolve. Returns when the queue is closed and drained.
///
/// `w` is this serving thread's index. Kernel telemetry is reported
/// through an [`OffsetRecorder`] based at `1 + w * worker_budget`: serving
/// threads execute requests concurrently, and the per-worker span stack
/// discipline requires each thread's kernel events to land on a disjoint
/// logical-worker range (a request's share never exceeds the budget, so
/// the ranges cannot overlap). Worker 0 is reserved for the daemon's own
/// `serve_*` counters.
fn serve_loop<T, R, P>(w: usize, inner: &Inner<T, R, P>)
where
    T: Ord + Clone + Default + Send + Sync + 'static,
    R: Recorder + Send + Sync + 'static,
    P: ServeProbe + Send + Sync + 'static,
{
    let rec = OffsetRecorder::new(1 + w * inner.cfg.worker_budget, &inner.rec);
    loop {
        let (ticket, depth) = {
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(t) = q.deque.pop_front() {
                    break (Some(t), q.deque.len());
                }
                if !q.open {
                    break (None, 0);
                }
                q = inner.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(ticket) = ticket else { return };

        // One clock read serves both the waterfall's queue stage and the
        // deadline verdict, so the two can never disagree. The disabled
        // (`NoProbe`, no deadline) path reads no clock at all here.
        let dequeue_ns = if P::ACTIVE || ticket.deadline_ns != 0 {
            now_ns()
        } else {
            0
        };
        if P::ACTIVE {
            inner
                .probe
                .on_dequeue(ticket.id, dequeue_ns, ticket.submit_ns, depth);
        }

        // Deadline is judged when execution could begin, not at
        // submission: a request that waited past its deadline is rejected
        // here, before any output buffer exists.
        if ticket.deadline_ns != 0 && dequeue_ns > ticket.deadline_ns {
            inner
                .rejected_deadline
                .fetch_add(1, AtomicOrdering::Relaxed);
            if R::ACTIVE {
                inner
                    .rec
                    .counter_add(0, CounterKind::ServeRejectedDeadline, 1);
            }
            if P::ACTIVE {
                inner
                    .probe
                    .on_reject_deadline(ticket.id, dequeue_ns, ticket.deadline_ns);
            }
            // Resolving drops `ticket.kind` — the input buffers — cleanly.
            ticket
                .cell
                .put(Outcome::Rejected(RejectReason::DeadlineExpired));
            continue;
        }

        let inflight = inner.inflight.fetch_add(1, AtomicOrdering::SeqCst) + 1;
        bump_peak(&inner.inflight_peak, inflight);
        let share = worker_share(inner.cfg.worker_budget, inflight);
        let start_ns = if P::ACTIVE { now_ns() } else { 0 };
        if P::ACTIVE {
            inner.probe.on_start(ticket.id, start_ns, share, inflight);
        }
        let result = catch_unwind(AssertUnwindSafe(|| execute(ticket.kind, share, &rec)));
        let compute_end_ns = if P::ACTIVE { now_ns() } else { 0 };
        let inflight_after = inner.inflight.fetch_sub(1, AtomicOrdering::SeqCst) - 1;

        match result {
            Ok(output) => {
                let done_ns = now_ns();
                let latency_ns = done_ns.saturating_sub(ticket.submit_ns);
                inner
                    .latency
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(latency_ns);
                inner.completed.fetch_add(1, AtomicOrdering::Relaxed);
                if R::ACTIVE {
                    inner.rec.counter_add(0, CounterKind::ServeCompleted, 1);
                }
                // The four stages partition submit→done exactly: each
                // boundary timestamp is used as the end of one stage and
                // the start of the next, so sum(stages) == latency_ns.
                let waterfall = if P::ACTIVE {
                    Waterfall {
                        queue_ns: dequeue_ns.saturating_sub(ticket.submit_ns),
                        dispatch_ns: start_ns.saturating_sub(dequeue_ns),
                        compute_ns: compute_end_ns.saturating_sub(start_ns),
                        emit_ns: done_ns.saturating_sub(compute_end_ns),
                    }
                } else {
                    Waterfall::default()
                };
                if P::ACTIVE {
                    inner
                        .probe
                        .on_complete(ticket.id, done_ns, inflight_after, &waterfall);
                }
                ticket.cell.put(Outcome::Completed {
                    output,
                    latency_ns,
                    waterfall,
                });
            }
            Err(_panic) => {
                // The kernel (comparator) panicked; the unwind already
                // dropped the partial output. Contain it — the daemon
                // itself never panics on a bad request.
                inner.failed.fetch_add(1, AtomicOrdering::Relaxed);
                if P::ACTIVE {
                    inner
                        .probe
                        .on_fail(ticket.id, compute_end_ns, inflight_after);
                }
                ticket.cell.put(Outcome::Failed);
            }
        }
    }
}

/// Runs one request's kernel with `share` logical workers, threading the
/// recorder through to the merge-path spans and counters.
fn execute<T, R>(kind: RequestKind<T>, share: usize, rec: &R) -> Vec<T>
where
    T: Ord + Clone + Default + Send + Sync,
    R: Recorder,
{
    let cmp = |x: &T, y: &T| -> Ordering { x.cmp(y) };
    match kind {
        RequestKind::Merge { a, b } => {
            let mut out = vec![T::default(); a.len() + b.len()];
            parallel_merge_into_recorded(&a, &b, &mut out, share, &cmp, rec);
            out
        }
        RequestKind::Sort { mut keys } => {
            parallel_merge_sort_recorded(&mut keys, share, &cmp, rec);
            keys
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergepath_telemetry::NoRecorder;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            queue_capacity: 4,
            max_inflight: 2,
            worker_budget: 4,
        }
    }

    #[test]
    fn worker_share_splits_the_budget() {
        assert_eq!(worker_share(8, 1), 8);
        assert_eq!(worker_share(8, 2), 4);
        assert_eq!(worker_share(8, 3), 2);
        assert_eq!(worker_share(8, 8), 1);
        assert_eq!(worker_share(8, 100), 1);
        assert_eq!(worker_share(1, 1), 1);
        assert_eq!(worker_share(4, 0), 4, "defensive: zero inflight");
    }

    #[test]
    fn merge_and_sort_round_trip() {
        let server: Server<u32> = Server::start(small_cfg(), NoRecorder);
        let m = server
            .submit(Request::merge(1, vec![1, 4, 7], vec![2, 3, 9]))
            .expect("admitted");
        let s = server
            .submit(Request::sort(2, vec![5u32, 1, 4, 2, 3]))
            .expect("admitted");
        match m.wait() {
            Outcome::Completed { output, .. } => assert_eq!(output, vec![1, 2, 3, 4, 7, 9]),
            other => panic!("merge: {other:?}"),
        }
        match s.wait() {
            Outcome::Completed { output, .. } => assert_eq!(output, vec![1, 2, 3, 4, 5]),
            other => panic!("sort: {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.lost(), 0);
        assert_eq!(stats.latency.count(), 2);
    }

    #[test]
    fn queue_full_rejects_synchronously() {
        // No serving threads can drain faster than we submit if we keep
        // the workers busy with huge sorts first.
        let server: Server<u32> = Server::start(
            ServeConfig {
                queue_capacity: 1,
                max_inflight: 1,
                worker_budget: 1,
            },
            NoRecorder,
        );
        // One long request occupies the single worker…
        let busy: Vec<u32> = (0..200_000u32).rev().collect();
        let h0 = server.submit(Request::sort(0, busy)).expect("admitted");
        // …one more fills the queue; eventually a submit must bounce.
        let mut bounced = false;
        let mut handles = vec![h0];
        for id in 1..50u64 {
            match server.submit(Request::merge(id, vec![1u32, 3], vec![2, 4])) {
                Ok(h) => handles.push(h),
                Err(RejectReason::QueueFull) => {
                    bounced = true;
                    break;
                }
                Err(other) => panic!("unexpected sync rejection {other:?}"),
            }
        }
        assert!(bounced, "bounded queue never pushed back");
        for h in handles {
            match h.wait() {
                Outcome::Completed { .. } => {}
                other => panic!("admitted request must complete: {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert!(stats.rejected_queue_full >= 1);
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn expired_deadline_is_rejected_at_dequeue() {
        let server: Server<u32> = Server::start(
            ServeConfig {
                queue_capacity: 8,
                max_inflight: 1,
                worker_budget: 1,
            },
            NoRecorder,
        );
        // Occupy the worker so the deadline request has to wait…
        let busy: Vec<u32> = (0..300_000u32).rev().collect();
        let h0 = server.submit(Request::sort(0, busy)).expect("admitted");
        // …with a deadline that will certainly have passed by then.
        let doomed = Request::merge(1, vec![1u32, 3], vec![2, 4]).with_deadline_in(1);
        let h1 = server.submit(doomed).expect("admitted");
        assert!(matches!(h0.wait(), Outcome::Completed { .. }));
        match h1.wait() {
            Outcome::Rejected(RejectReason::DeadlineExpired) => {}
            other => panic!("expected deadline rejection, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let server: Server<u32> = Server::start(small_cfg(), NoRecorder);
        let handles: Vec<_> = (0..4u64)
            .map(|id| {
                server
                    .submit(Request::merge(id, vec![1, 3, 5], vec![2, 4, 6]))
                    .expect("admitted")
            })
            .collect();
        let stats = server.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.lost(), 0);
        for h in handles {
            assert!(matches!(h.wait(), Outcome::Completed { .. }));
        }
    }

    #[test]
    fn concurrent_telemetry_is_well_formed() {
        use mergepath_telemetry::TimelineRecorder;
        use std::sync::Arc;
        let rec = Arc::new(TimelineRecorder::new());
        let server: Server<u32, _> = Server::start(
            ServeConfig {
                queue_capacity: 64,
                max_inflight: 4,
                worker_budget: 4,
            },
            Arc::clone(&rec),
        );
        let a: Vec<u32> = (0..4096).map(|x| 2 * x).collect();
        let b: Vec<u32> = (0..4096).map(|x| 2 * x + 1).collect();
        let handles: Vec<_> = (0..32u64)
            .map(|id| {
                server
                    .submit(Request::merge(id, a.clone(), b.clone()))
                    .expect("admitted")
            })
            .collect();
        for h in handles {
            assert!(matches!(h.wait(), Outcome::Completed { .. }));
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 32);
        let t = Arc::try_unwrap(rec)
            .ok()
            .expect("server released its recorder handle at shutdown")
            .finish();
        let completed: u64 = t
            .counters
            .iter()
            .filter(|c| c.kind == CounterKind::ServeCompleted)
            .map(|c| c.total)
            .sum();
        assert_eq!(completed, 32, "serve_completed counter observable");
        // Every kernel span landed in a serving thread's offset range
        // (worker 0 is reserved for daemon counters), and pairing held —
        // each span closed with a positive-length window.
        assert!(!t.spans.is_empty(), "kernel spans were recorded");
        for s in &t.spans {
            assert!(s.worker >= 1, "kernel span on reserved worker 0");
            assert!(s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn reject_names_are_stable() {
        assert_eq!(RejectReason::QueueFull.name(), "queue_full");
        assert_eq!(RejectReason::DeadlineExpired.name(), "deadline_expired");
    }

    #[test]
    fn probe_counters_reconcile_and_waterfall_partitions_latency() {
        use crate::observe::{ObserverConfig, ServeObserver};
        let obs = Arc::new(ServeObserver::new(ObserverConfig::default()));
        let server: Server<u32, NoRecorder, Arc<ServeObserver>> = Server::start_with_probe(
            ServeConfig {
                queue_capacity: 16,
                max_inflight: 2,
                worker_budget: 4,
            },
            NoRecorder,
            Arc::clone(&obs),
        );
        let handles: Vec<_> = (0..8u64)
            .map(|id| {
                server
                    .submit(Request::merge(id, vec![1, 4, 7, 9], vec![2, 3, 5, 8]))
                    .expect("admitted")
            })
            .collect();
        for h in handles {
            match h.wait() {
                Outcome::Completed {
                    latency_ns,
                    waterfall,
                    ..
                } => {
                    // The stages partition submit→done on one clock, so
                    // their sum can never exceed (in fact equals) the
                    // measured wall time.
                    assert!(
                        waterfall.total_ns() <= latency_ns,
                        "stage sum {} exceeds wall {latency_ns}",
                        waterfall.total_ns()
                    );
                    assert!(waterfall.compute_ns > 0, "compute stage observed");
                }
                other => panic!("expected completion: {other:?}"),
            }
        }
        let stats = server.shutdown();
        let snap = obs.snapshot();
        // Live counters reconcile exactly with ServeStats.
        assert_eq!(snap.counter("serve_submitted_total"), Some(stats.submitted));
        assert_eq!(snap.counter("serve_completed_total"), Some(stats.completed));
        assert_eq!(
            snap.counter("serve_rejected_queue_full_total"),
            Some(stats.rejected_queue_full)
        );
        assert_eq!(
            snap.counter("serve_rejected_deadline_total"),
            Some(stats.rejected_deadline)
        );
        assert_eq!(snap.counter("serve_failed_total"), Some(stats.failed));
        assert_eq!(
            snap.gauge("serve_inflight_peak"),
            Some(stats.inflight_peak as u64)
        );
        assert_eq!(
            snap.histogram("serve_latency_ns").map(|h| h.count()),
            Some(stats.completed)
        );
        // Every request left a full lifecycle in the flight ring.
        assert_eq!(
            obs.flight().recorded(),
            4 * 8,
            "submit/dequeue/start/complete"
        );
    }

    #[test]
    fn no_probe_outcome_has_zero_waterfall() {
        let server: Server<u32> = Server::start(small_cfg(), NoRecorder);
        let h = server
            .submit(Request::merge(0, vec![1u32, 3], vec![2, 4]))
            .expect("admitted");
        match h.wait() {
            Outcome::Completed { waterfall, .. } => {
                assert_eq!(
                    waterfall,
                    Waterfall::default(),
                    "disabled path reads no stages"
                );
            }
            other => panic!("expected completion: {other:?}"),
        }
        server.shutdown();
    }
}
