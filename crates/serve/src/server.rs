//! The daemon: bounded admission queue, serving threads, deadline checks,
//! and worker-budget sharing over the persistent pool.

use std::cmp::Ordering;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mergepath::merge::batch::batch_merge_into_recorded;
use mergepath::merge::parallel::parallel_merge_into_recorded;
use mergepath::sort::parallel::parallel_merge_sort_recorded;
use mergepath_telemetry::{
    now_ns, CounterKind, LatencyHistogram, OffsetRecorder, Recorder, Waterfall,
};

use crate::observe::{NoProbe, ServeProbe};

/// The logical worker shares one executing request receives when
/// `inflight` requests share a pool budget of `budget` threads: the
/// ceiling split `⌈budget / inflight⌉`, floored at 1.
///
/// This is the same global-budget discipline `merge::batch` applies
/// across pairs, lifted to concurrent requests: one lone request fans out
/// across the whole pool; at or beyond `budget` concurrent requests each
/// runs inline on its serving thread (share = 1 executes without
/// entering a pool round), so the daemon's parallelism degrades
/// gracefully from data-parallel to request-parallel.
///
/// The split rounds **up**: under the old serialize-the-pool executor a
/// floor split was the safe choice (rounds ran one at a time, so handing
/// out more shares than the strict division only lengthened the queue),
/// but it systematically under-shared — 8 threads at 3 inflight gave each
/// request 2 shares and idled two threads. With the work-stealing
/// scheduler concurrent rounds overlap and idle workers steal whatever is
/// left, so a generous share count costs nothing when the pool is busy
/// and buys parallelism when it is not.
pub fn worker_share(budget: usize, inflight: usize) -> usize {
    budget.div_ceil(inflight.max(1)).max(1)
}

/// What a request asks the daemon to compute.
#[derive(Debug, Clone)]
pub enum RequestKind<T> {
    /// Merge two sorted arrays (stable: ties take from `a` first).
    Merge {
        /// Left sorted input.
        a: Vec<T>,
        /// Right sorted input.
        b: Vec<T>,
    },
    /// Sort an unsorted array (stable).
    Sort {
        /// The keys to sort.
        keys: Vec<T>,
    },
}

/// One unit of work submitted to the [`Server`].
#[derive(Debug, Clone)]
pub struct Request<T> {
    /// Caller-assigned identifier, echoed in logs and summaries.
    pub id: u64,
    /// The computation.
    pub kind: RequestKind<T>,
    /// Absolute deadline on the [`now_ns`] process clock; `0` = none.
    /// Checked when the request is *dequeued*, with an inclusive
    /// boundary (`dequeue_ns >= deadline_ns` rejects — at the deadline
    /// is already too late): a request whose deadline was reached while
    /// queued is rejected without touching any output buffer.
    pub deadline_ns: u64,
}

impl<T> Request<T> {
    /// A merge request with no deadline.
    pub fn merge(id: u64, a: Vec<T>, b: Vec<T>) -> Self {
        Request {
            id,
            kind: RequestKind::Merge { a, b },
            deadline_ns: 0,
        }
    }

    /// A sort request with no deadline.
    pub fn sort(id: u64, keys: Vec<T>) -> Self {
        Request {
            id,
            kind: RequestKind::Sort { keys },
            deadline_ns: 0,
        }
    }

    /// Sets an absolute deadline `rel_ns` nanoseconds from now. The
    /// boundary is inclusive, so `with_deadline_in(0)` is deterministically
    /// rejected at dequeue — the clock cannot run backwards to beat it.
    pub fn with_deadline_in(mut self, rel_ns: u64) -> Self {
        self.deadline_ns = now_ns().saturating_add(rel_ns);
        self
    }
}

/// Why the daemon refused a request. Backpressure is always explicit —
/// the daemon never panics on overload and never drops silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was at capacity (or the server was shutting
    /// down) at submission time. Reported synchronously by
    /// [`Server::submit`].
    QueueFull,
    /// The request's deadline expired while it waited in the queue.
    /// Reported through the [`ResponseHandle`] at dequeue time.
    DeadlineExpired,
}

impl RejectReason {
    /// Stable name for logs and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineExpired => "deadline_expired",
        }
    }
}

/// The terminal state of an admitted request.
#[derive(Debug)]
pub enum Outcome<T> {
    /// The kernel ran; `output` is byte-identical to the sequential
    /// oracle's answer and `latency_ns` measures submit → completion.
    Completed {
        /// The merged / sorted result.
        output: Vec<T>,
        /// Submit-to-completion latency, nanoseconds.
        latency_ns: u64,
        /// Per-stage latency attribution, measured on the same clock as
        /// `latency_ns` when the server's [`ServeProbe`] is active
        /// (all-zero under [`NoProbe`] — stage timestamps are never read
        /// on the disabled path). When active, the stages partition the
        /// wall time exactly: their sum equals `latency_ns`.
        waterfall: Waterfall,
    },
    /// Rejected after admission (deadline expiry at dequeue). No output
    /// buffer was ever allocated or written.
    Rejected(RejectReason),
    /// The comparator (or kernel) panicked; the panic was contained and
    /// the partially-built output dropped cleanly.
    Failed,
}

/// The order in which the daemon (and its deterministic
/// [`replay`](crate::replay) twin) picks the next queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// First-in first-out: strict arrival order.
    Fifo,
    /// Earliest-deadline-first: the queued request with the smallest
    /// absolute deadline runs next; deadline-free requests
    /// (`deadline_ns == 0`) rank after every deadlined one. Ties — and
    /// the all-deadline-free queue — fall back to arrival order, so EDF
    /// degenerates to exact FIFO when no deadlines are in play.
    #[default]
    Edf,
}

impl QueuePolicy {
    /// Every policy, for sweeps and CLI listings.
    pub const ALL: [QueuePolicy; 2] = [QueuePolicy::Fifo, QueuePolicy::Edf];

    /// Stable name for logs, artifacts, and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            QueuePolicy::Fifo => "fifo",
            QueuePolicy::Edf => "edf",
        }
    }

    /// Parses a [`name`](Self::name) back into a policy.
    pub fn parse(s: &str) -> Option<Self> {
        QueuePolicy::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// Daemon sizing. All fields are explicit so a configuration is a value
/// (the deterministic [`replay`](crate::replay) takes the same numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded queue capacity; submissions beyond it get
    /// [`RejectReason::QueueFull`].
    pub queue_capacity: usize,
    /// Serving threads = maximum concurrently executing requests.
    pub max_inflight: usize,
    /// Total pool-thread budget divided among in-flight requests via
    /// [`worker_share`].
    pub worker_budget: usize,
    /// Dequeue ordering for the admission queue.
    pub policy: QueuePolicy,
    /// Batching threshold: a dequeued merge whose output is at most this
    /// many items pulls further compatible queued merges (in policy
    /// order, while the combined output still fits) into one
    /// `merge::batch` pool round instead of running each as a `share = 1`
    /// inline merge. `0` disables coalescing entirely.
    pub batch_max_items: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let budget = mergepath::executor::default_threads();
        ServeConfig {
            queue_capacity: 256,
            max_inflight: budget.max(1),
            worker_budget: budget,
            policy: QueuePolicy::Edf,
            batch_max_items: 4096,
        }
    }
}

/// A monotonic snapshot of the daemon's counters and latency histogram.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests offered to [`Server::submit`] (admitted or not).
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Synchronous queue-full rejections.
    pub rejected_queue_full: u64,
    /// Deadline expiries at dequeue.
    pub rejected_deadline: u64,
    /// Contained kernel panics.
    pub failed: u64,
    /// Deepest queue observed at any submission.
    pub queue_depth_peak: usize,
    /// Most requests ever executing simultaneously.
    pub inflight_peak: usize,
    /// Coalesced `merge::batch` rounds executed (rounds that merged two
    /// or more queued requests together).
    pub batched_rounds: u64,
    /// Requests folded into those coalesced rounds
    /// (`batched_requests / batched_rounds` = mean coalescing width).
    pub batched_requests: u64,
    /// Submit-to-completion latencies of completed requests.
    pub latency: LatencyHistogram,
}

impl ServeStats {
    /// Requests unaccounted for: submitted minus (completed + rejected +
    /// failed). Zero after [`Server::shutdown`] — the no-silent-drops
    /// invariant (`cargo xtask verify-serve` asserts it on every run).
    ///
    /// The counters are independently-loaded relaxed atomics, so a
    /// snapshot taken while requests are in flight can observe a
    /// resolution that raced ahead of the `submitted` load; the
    /// subtraction saturates at zero instead of going negative for such
    /// transient mid-flight reads.
    pub fn lost(&self) -> i64 {
        let resolved =
            self.completed + self.rejected_queue_full + self.rejected_deadline + self.failed;
        self.submitted.saturating_sub(resolved) as i64
    }
}

/// A single-use completion cell: the serving thread puts the outcome, the
/// submitter blocks on [`ResponseHandle::wait`].
struct OneShot<V> {
    slot: Mutex<Option<V>>,
    cv: Condvar,
}

impl<V> OneShot<V> {
    fn new() -> Self {
        OneShot {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn put(&self, v: V) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(v);
        self.cv.notify_all();
    }

    fn take(&self) -> V {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The submitter's side of an admitted request.
pub struct ResponseHandle<T> {
    /// The request id this handle resolves.
    pub id: u64,
    cell: Arc<OneShot<Outcome<T>>>,
}

impl<T> ResponseHandle<T> {
    /// Blocks until the daemon resolves the request.
    pub fn wait(self) -> Outcome<T> {
        self.cell.take()
    }
}

/// An admitted request waiting in the queue.
struct Ticket<T> {
    id: u64,
    kind: RequestKind<T>,
    deadline_ns: u64,
    submit_ns: u64,
    cell: Arc<OneShot<Outcome<T>>>,
}

struct QueueState<T> {
    deque: VecDeque<Ticket<T>>,
    open: bool,
}

struct Inner<T, R, P> {
    queue: Mutex<QueueState<T>>,
    cv: Condvar,
    cfg: ServeConfig,
    rec: R,
    probe: P,
    inflight: AtomicUsize,
    inflight_peak: AtomicUsize,
    queue_depth_peak: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_deadline: AtomicU64,
    failed: AtomicU64,
    batched_rounds: AtomicU64,
    batched_requests: AtomicU64,
    latency: Mutex<LatencyHistogram>,
}

fn bump_peak(peak: &AtomicUsize, observed: usize) {
    peak.fetch_max(observed, AtomicOrdering::Relaxed);
}

/// The serving daemon. See the [crate docs](crate) for the model.
///
/// `T` is the element type (`u32` for the CLI; tests use drop-tracked
/// keys); `R` the telemetry recorder threaded into every kernel
/// invocation; `P` the [`ServeProbe`] observing the request lifecycle
/// (queue wait, dispatch, compute, emit). Both default to their zero-cost
/// ZSTs, so `Server<T>` is the uninstrumented daemon.
///
/// # Examples
/// ```
/// use mergepath_serve::{Outcome, Request, ServeConfig, Server};
/// use mergepath_telemetry::NoRecorder;
/// let server = Server::start(ServeConfig::default(), NoRecorder);
/// let handle = server
///     .submit(Request::merge(0, vec![1u32, 3, 5], vec![2, 4, 6]))
///     .expect("queue has room");
/// match handle.wait() {
///     Outcome::Completed { output, .. } => assert_eq!(output, vec![1, 2, 3, 4, 5, 6]),
///     other => panic!("unexpected outcome: {other:?}"),
/// }
/// let stats = server.shutdown();
/// assert_eq!(stats.completed, 1);
/// assert_eq!(stats.lost(), 0);
/// ```
pub struct Server<T, R = mergepath_telemetry::NoRecorder, P = NoProbe>
where
    T: Ord + Clone + Default + Send + Sync + 'static,
    R: Recorder + Send + Sync + 'static,
    P: ServeProbe + Send + Sync + 'static,
{
    inner: Arc<Inner<T, R, P>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T, R> Server<T, R, NoProbe>
where
    T: Ord + Clone + Default + Send + Sync + 'static,
    R: Recorder + Send + Sync + 'static,
{
    /// Spawns the serving threads and returns the running daemon with
    /// live observability disabled (the zero-cost [`NoProbe`] path).
    pub fn start(cfg: ServeConfig, rec: R) -> Self {
        Self::start_with_probe(cfg, rec, NoProbe)
    }
}

impl<T, R, P> Server<T, R, P>
where
    T: Ord + Clone + Default + Send + Sync + 'static,
    R: Recorder + Send + Sync + 'static,
    P: ServeProbe + Send + Sync + 'static,
{
    /// Spawns the serving threads with `probe` observing every request's
    /// lifecycle (typically an `Arc<ServeObserver>`, so the caller keeps
    /// a handle to snapshot and dump while the daemon runs).
    pub fn start_with_probe(cfg: ServeConfig, rec: R, probe: P) -> Self {
        assert!(cfg.queue_capacity > 0, "queue capacity must be at least 1");
        assert!(cfg.max_inflight > 0, "max_inflight must be at least 1");
        assert!(cfg.worker_budget > 0, "worker budget must be at least 1");
        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState {
                deque: VecDeque::with_capacity(cfg.queue_capacity),
                open: true,
            }),
            cv: Condvar::new(),
            cfg,
            rec,
            probe,
            inflight: AtomicUsize::new(0),
            inflight_peak: AtomicUsize::new(0),
            queue_depth_peak: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batched_rounds: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            latency: Mutex::new(LatencyHistogram::new()),
        });
        let workers = (0..cfg.max_inflight)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mp-serve-{w}"))
                    .spawn(move || serve_loop(w, &inner))
                    .expect("spawn serving thread")
            })
            .collect();
        Server { inner, workers }
    }

    /// Offers `req` to the daemon.
    ///
    /// Admission is synchronous: `Ok` hands back a [`ResponseHandle`] the
    /// caller can block on; `Err(QueueFull)` means the bounded queue was
    /// at capacity (or the server is shutting down) and the request —
    /// input buffers included — is dropped cleanly right here, nothing
    /// queued, nothing written.
    pub fn submit(&self, req: Request<T>) -> Result<ResponseHandle<T>, RejectReason> {
        let inner = &self.inner;
        inner.submitted.fetch_add(1, AtomicOrdering::Relaxed);
        let submit_ns = now_ns();
        if P::ACTIVE {
            inner.probe.on_submit(req.id, submit_ns, req.deadline_ns);
        }
        let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        if !q.open || q.deque.len() >= inner.cfg.queue_capacity {
            drop(q);
            inner
                .rejected_queue_full
                .fetch_add(1, AtomicOrdering::Relaxed);
            if R::ACTIVE {
                inner
                    .rec
                    .counter_add(0, CounterKind::ServeRejectedQueueFull, 1);
            }
            if P::ACTIVE {
                inner
                    .probe
                    .on_reject_queue_full(req.id, now_ns(), inner.cfg.queue_capacity);
            }
            return Err(RejectReason::QueueFull);
        }
        let cell = Arc::new(OneShot::new());
        let id = req.id;
        q.deque.push_back(Ticket {
            id,
            kind: req.kind,
            deadline_ns: req.deadline_ns,
            submit_ns,
            cell: Arc::clone(&cell),
        });
        let depth = q.deque.len();
        bump_peak(&inner.queue_depth_peak, depth);
        drop(q);
        if P::ACTIVE {
            inner.probe.on_enqueue(id, depth);
        }
        inner.cv.notify_one();
        Ok(ResponseHandle { id, cell })
    }

    /// Current counters (live; the histogram is a snapshot copy).
    pub fn stats(&self) -> ServeStats {
        let inner = &self.inner;
        ServeStats {
            submitted: inner.submitted.load(AtomicOrdering::Relaxed),
            completed: inner.completed.load(AtomicOrdering::Relaxed),
            rejected_queue_full: inner.rejected_queue_full.load(AtomicOrdering::Relaxed),
            rejected_deadline: inner.rejected_deadline.load(AtomicOrdering::Relaxed),
            failed: inner.failed.load(AtomicOrdering::Relaxed),
            queue_depth_peak: inner.queue_depth_peak.load(AtomicOrdering::Relaxed),
            inflight_peak: inner.inflight_peak.load(AtomicOrdering::Relaxed),
            batched_rounds: inner.batched_rounds.load(AtomicOrdering::Relaxed),
            batched_requests: inner.batched_requests.load(AtomicOrdering::Relaxed),
            latency: inner
                .latency
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
        }
    }

    /// Graceful shutdown: stops admitting, drains the queue (every
    /// admitted request still resolves — completed, deadline-rejected,
    /// or failed), joins the serving threads, and returns the final
    /// stats. `stats().lost() == 0` afterwards.
    pub fn shutdown(mut self) -> ServeStats {
        {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.open = false;
        }
        self.inner.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

impl<T, R, P> Drop for Server<T, R, P>
where
    T: Ord + Clone + Default + Send + Sync + 'static,
    R: Recorder + Send + Sync + 'static,
    P: ServeProbe + Send + Sync + 'static,
{
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // shutdown() already ran
        }
        {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.open = false;
        }
        self.inner.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Index of the ticket the policy serves next, or `None` on an empty
/// queue. FIFO takes the front; EDF scans for the smallest absolute
/// deadline (`deadline_ns == 0` ranks after every deadlined ticket),
/// keeping the earliest-queued ticket on ties — so an all-deadline-free
/// queue degenerates to exact FIFO. The scan is O(queue depth), bounded
/// by `queue_capacity`, and runs under the queue lock, so the choice is
/// a pure function of queue contents.
fn next_index<T>(deque: &VecDeque<Ticket<T>>, policy: QueuePolicy) -> Option<usize> {
    if deque.is_empty() {
        return None;
    }
    match policy {
        QueuePolicy::Fifo => Some(0),
        QueuePolicy::Edf => {
            let mut best = 0usize;
            let mut best_key = u64::MAX;
            for (i, t) in deque.iter().enumerate() {
                let key = if t.deadline_ns == 0 {
                    u64::MAX
                } else {
                    t.deadline_ns
                };
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            Some(best)
        }
    }
}

/// Pulls additional compatible merges out of the queue to run alongside
/// `first` in one `merge::batch` pool round. Called under the queue lock.
///
/// Eligibility: merge requests only (one element type and the derived
/// `Ord` comparator per server instantiation, so key type and comparator
/// class match by construction), each small enough that the round's
/// combined output stays within `cfg.batch_max_items`. Companions are
/// taken in policy order among the eligible tickets, so EDF urgency is
/// preserved inside the round. Sorts and oversized merges never batch.
fn coalesce<T>(
    first: Ticket<T>,
    deque: &mut VecDeque<Ticket<T>>,
    cfg: &ServeConfig,
) -> Vec<Ticket<T>> {
    let mut batch = vec![first];
    let limit = cfg.batch_max_items;
    let mut total = match &batch[0].kind {
        RequestKind::Merge { a, b } if limit > 0 => a.len() + b.len(),
        _ => return batch,
    };
    if total > limit {
        return batch;
    }
    loop {
        let mut pick: Option<(u64, usize)> = None;
        for (i, t) in deque.iter().enumerate() {
            let RequestKind::Merge { a, b } = &t.kind else {
                continue;
            };
            if total + a.len() + b.len() > limit {
                continue;
            }
            let key = match cfg.policy {
                QueuePolicy::Fifo => i as u64,
                QueuePolicy::Edf => {
                    if t.deadline_ns == 0 {
                        u64::MAX
                    } else {
                        t.deadline_ns
                    }
                }
            };
            match pick {
                Some((k, _)) if k <= key => {}
                _ => pick = Some((key, i)),
            }
        }
        let Some((_, idx)) = pick else { break };
        let t = deque.remove(idx).expect("picked index is in range");
        if let RequestKind::Merge { a, b } = &t.kind {
            total += a.len() + b.len();
        }
        batch.push(t);
    }
    batch
}

/// One serving thread: dequeue in policy order, coalesce compatible
/// merges, deadline-check, execute under the shared worker budget,
/// resolve every ticket. Returns when the queue is closed and drained.
///
/// `w` is this serving thread's index. Kernel telemetry is reported
/// through an [`OffsetRecorder`] based at `1 + w * worker_budget`: serving
/// threads execute requests concurrently, and the per-worker span stack
/// discipline requires each thread's kernel events to land on a disjoint
/// logical-worker range (a request's share never exceeds the budget, so
/// the ranges cannot overlap). Worker 0 is reserved for the daemon's own
/// `serve_*` counters.
fn serve_loop<T, R, P>(w: usize, inner: &Inner<T, R, P>)
where
    T: Ord + Clone + Default + Send + Sync + 'static,
    R: Recorder + Send + Sync + 'static,
    P: ServeProbe + Send + Sync + 'static,
{
    let rec = OffsetRecorder::new(1 + w * inner.cfg.worker_budget, &inner.rec);
    loop {
        let (batch, depth) = {
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(idx) = next_index(&q.deque, inner.cfg.policy) {
                    let t = q.deque.remove(idx).expect("policy index is in range");
                    let batch = coalesce(t, &mut q.deque, &inner.cfg);
                    break (Some(batch), q.deque.len());
                }
                if !q.open {
                    break (None, 0);
                }
                q = inner.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(mut batch) = batch else { return };

        // One clock read serves the whole round: the waterfall's queue
        // stage and every ticket's deadline verdict come off the same
        // timestamp, so the two can never disagree. The disabled
        // (`NoProbe`, no deadline) path reads no clock at all here.
        let any_deadline = batch.iter().any(|t| t.deadline_ns != 0);
        let dequeue_ns = if P::ACTIVE || any_deadline {
            now_ns()
        } else {
            0
        };

        // Deadline is judged when execution could begin, not at
        // submission: a request that waited to (or past) its deadline is
        // rejected here, before any output buffer exists. The boundary is
        // inclusive — `dequeue_ns == deadline_ns` already misses — so a
        // zero-relative deadline (`with_deadline_in(0)`) deterministically
        // rejects. `replay` applies the identical rule.
        let mut live: Vec<Ticket<T>> = Vec::with_capacity(batch.len());
        for ticket in batch.drain(..) {
            if P::ACTIVE {
                inner
                    .probe
                    .on_dequeue(ticket.id, dequeue_ns, ticket.submit_ns, depth);
            }
            if ticket.deadline_ns != 0 && dequeue_ns >= ticket.deadline_ns {
                inner
                    .rejected_deadline
                    .fetch_add(1, AtomicOrdering::Relaxed);
                if R::ACTIVE {
                    inner
                        .rec
                        .counter_add(0, CounterKind::ServeRejectedDeadline, 1);
                }
                if P::ACTIVE {
                    inner
                        .probe
                        .on_reject_deadline(ticket.id, dequeue_ns, ticket.deadline_ns);
                }
                // Resolving drops `ticket.kind` — the input buffers — cleanly.
                ticket
                    .cell
                    .put(Outcome::Rejected(RejectReason::DeadlineExpired));
                continue;
            }
            live.push(ticket);
        }
        if live.is_empty() {
            continue;
        }

        let inflight = inner.inflight.fetch_add(1, AtomicOrdering::SeqCst) + 1;
        bump_peak(&inner.inflight_peak, inflight);
        let share = worker_share(inner.cfg.worker_budget, inflight);
        let start_ns = if P::ACTIVE { now_ns() } else { 0 };
        if P::ACTIVE {
            for t in &live {
                inner.probe.on_start(t.id, start_ns, share, inflight);
            }
        }

        if live.len() == 1 {
            let ticket = live.pop().expect("one live ticket");
            let result = catch_unwind(AssertUnwindSafe(|| execute(ticket.kind, share, &rec)));
            let compute_end_ns = if P::ACTIVE { now_ns() } else { 0 };
            let inflight_after = inner.inflight.fetch_sub(1, AtomicOrdering::SeqCst) - 1;
            match result {
                Ok(output) => resolve_completed(
                    inner,
                    ticket.id,
                    ticket.submit_ns,
                    &ticket.cell,
                    output,
                    dequeue_ns,
                    start_ns,
                    compute_end_ns,
                    inflight_after,
                ),
                Err(_panic) => {
                    // The kernel (comparator) panicked; the unwind already
                    // dropped the partial output. Contain it — the daemon
                    // itself never panics on a bad request.
                    inner.failed.fetch_add(1, AtomicOrdering::Relaxed);
                    if P::ACTIVE {
                        inner
                            .probe
                            .on_fail(ticket.id, compute_end_ns, inflight_after);
                    }
                    ticket.cell.put(Outcome::Failed);
                }
            }
            continue;
        }

        // Coalesced round: every live ticket is a merge (coalesce only
        // pairs merges), so the whole round is one `merge::batch` call —
        // Corollary 7's equispaced cuts balance the concatenated output
        // across the round's `share` workers regardless of how unevenly
        // the individual requests are sized.
        let width = live.len() as u64;
        let result = {
            let pairs: Vec<(&[T], &[T])> = live
                .iter()
                .map(|t| match &t.kind {
                    RequestKind::Merge { a, b } => (a.as_slice(), b.as_slice()),
                    RequestKind::Sort { .. } => unreachable!("only merges are coalesced"),
                })
                .collect();
            let total: usize = pairs.iter().map(|(a, b)| a.len() + b.len()).sum();
            catch_unwind(AssertUnwindSafe(|| {
                let cmp = |x: &T, y: &T| -> Ordering { x.cmp(y) };
                let mut out = vec![T::default(); total];
                batch_merge_into_recorded(&pairs, &mut out, share, &cmp, &rec);
                // Split the concatenated output back into per-request
                // buffers, tail-first so each split is O(its own length).
                let mut outputs: Vec<Vec<T>> = Vec::with_capacity(pairs.len());
                for (a, b) in pairs.iter().rev() {
                    let tail = out.split_off(out.len() - (a.len() + b.len()));
                    outputs.push(tail);
                }
                outputs.reverse();
                outputs
            }))
        };
        let compute_end_ns = if P::ACTIVE { now_ns() } else { 0 };
        let inflight_after = inner.inflight.fetch_sub(1, AtomicOrdering::SeqCst) - 1;

        match result {
            Ok(outputs) => {
                inner.batched_rounds.fetch_add(1, AtomicOrdering::Relaxed);
                inner
                    .batched_requests
                    .fetch_add(width, AtomicOrdering::Relaxed);
                if R::ACTIVE {
                    inner.rec.counter_add(0, CounterKind::ServeBatched, 1);
                    inner.rec.counter_add(0, CounterKind::BatchWidth, width);
                }
                for (ticket, output) in live.into_iter().zip(outputs) {
                    resolve_completed(
                        inner,
                        ticket.id,
                        ticket.submit_ns,
                        &ticket.cell,
                        output,
                        dequeue_ns,
                        start_ns,
                        compute_end_ns,
                        inflight_after,
                    );
                }
            }
            Err(_panic) => {
                // One poisoned comparator fails the whole round: the
                // unwind dropped the shared output buffer, and each
                // ticket resolves `Failed` — contained, nothing lost.
                for ticket in live {
                    inner.failed.fetch_add(1, AtomicOrdering::Relaxed);
                    if P::ACTIVE {
                        inner
                            .probe
                            .on_fail(ticket.id, compute_end_ns, inflight_after);
                    }
                    ticket.cell.put(Outcome::Failed);
                }
            }
        }
    }
}

/// Records one completed request: latency histogram, counters, probe
/// hooks, waterfall, and the submitter's completion cell.
#[allow(clippy::too_many_arguments)]
fn resolve_completed<T, R, P>(
    inner: &Inner<T, R, P>,
    id: u64,
    submit_ns: u64,
    cell: &OneShot<Outcome<T>>,
    output: Vec<T>,
    dequeue_ns: u64,
    start_ns: u64,
    compute_end_ns: u64,
    inflight_after: usize,
) where
    T: Ord + Clone + Default + Send + Sync + 'static,
    R: Recorder + Send + Sync + 'static,
    P: ServeProbe + Send + Sync + 'static,
{
    let done_ns = now_ns();
    let latency_ns = done_ns.saturating_sub(submit_ns);
    inner
        .latency
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .record(latency_ns);
    inner.completed.fetch_add(1, AtomicOrdering::Relaxed);
    if R::ACTIVE {
        inner.rec.counter_add(0, CounterKind::ServeCompleted, 1);
    }
    // The four stages partition submit→done exactly: each boundary
    // timestamp is used as the end of one stage and the start of the
    // next, so sum(stages) == latency_ns.
    let waterfall = if P::ACTIVE {
        Waterfall {
            queue_ns: dequeue_ns.saturating_sub(submit_ns),
            dispatch_ns: start_ns.saturating_sub(dequeue_ns),
            compute_ns: compute_end_ns.saturating_sub(start_ns),
            emit_ns: done_ns.saturating_sub(compute_end_ns),
        }
    } else {
        Waterfall::default()
    };
    if P::ACTIVE {
        inner
            .probe
            .on_complete(id, done_ns, inflight_after, &waterfall);
    }
    cell.put(Outcome::Completed {
        output,
        latency_ns,
        waterfall,
    });
}

/// Runs one request's kernel with `share` logical workers, threading the
/// recorder through to the merge-path spans and counters.
fn execute<T, R>(kind: RequestKind<T>, share: usize, rec: &R) -> Vec<T>
where
    T: Ord + Clone + Default + Send + Sync,
    R: Recorder,
{
    let cmp = |x: &T, y: &T| -> Ordering { x.cmp(y) };
    match kind {
        RequestKind::Merge { a, b } => {
            let mut out = vec![T::default(); a.len() + b.len()];
            parallel_merge_into_recorded(&a, &b, &mut out, share, &cmp, rec);
            out
        }
        RequestKind::Sort { mut keys } => {
            parallel_merge_sort_recorded(&mut keys, share, &cmp, rec);
            keys
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergepath_telemetry::NoRecorder;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            queue_capacity: 4,
            max_inflight: 2,
            worker_budget: 4,
            policy: QueuePolicy::Edf,
            batch_max_items: 4096,
        }
    }

    #[test]
    fn worker_share_splits_the_budget() {
        assert_eq!(worker_share(8, 1), 8);
        assert_eq!(worker_share(8, 2), 4);
        assert_eq!(worker_share(8, 3), 3, "ceiling split: no idle remainder");
        assert_eq!(worker_share(8, 8), 1);
        assert_eq!(worker_share(8, 100), 1);
        assert_eq!(worker_share(1, 1), 1);
        assert_eq!(worker_share(4, 0), 4, "defensive: zero inflight");
    }

    #[test]
    fn merge_and_sort_round_trip() {
        let server: Server<u32> = Server::start(small_cfg(), NoRecorder);
        let m = server
            .submit(Request::merge(1, vec![1, 4, 7], vec![2, 3, 9]))
            .expect("admitted");
        let s = server
            .submit(Request::sort(2, vec![5u32, 1, 4, 2, 3]))
            .expect("admitted");
        match m.wait() {
            Outcome::Completed { output, .. } => assert_eq!(output, vec![1, 2, 3, 4, 7, 9]),
            other => panic!("merge: {other:?}"),
        }
        match s.wait() {
            Outcome::Completed { output, .. } => assert_eq!(output, vec![1, 2, 3, 4, 5]),
            other => panic!("sort: {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.lost(), 0);
        assert_eq!(stats.latency.count(), 2);
    }

    #[test]
    fn queue_full_rejects_synchronously() {
        // No serving threads can drain faster than we submit if we keep
        // the workers busy with huge sorts first.
        let server: Server<u32> = Server::start(
            ServeConfig {
                queue_capacity: 1,
                max_inflight: 1,
                worker_budget: 1,
                policy: QueuePolicy::Edf,
                batch_max_items: 4096,
            },
            NoRecorder,
        );
        // One long request occupies the single worker…
        let busy: Vec<u32> = (0..200_000u32).rev().collect();
        let h0 = server.submit(Request::sort(0, busy)).expect("admitted");
        // …one more fills the queue; eventually a submit must bounce.
        let mut bounced = false;
        let mut handles = vec![h0];
        for id in 1..50u64 {
            match server.submit(Request::merge(id, vec![1u32, 3], vec![2, 4])) {
                Ok(h) => handles.push(h),
                Err(RejectReason::QueueFull) => {
                    bounced = true;
                    break;
                }
                Err(other) => panic!("unexpected sync rejection {other:?}"),
            }
        }
        assert!(bounced, "bounded queue never pushed back");
        for h in handles {
            match h.wait() {
                Outcome::Completed { .. } => {}
                other => panic!("admitted request must complete: {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert!(stats.rejected_queue_full >= 1);
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn expired_deadline_is_rejected_at_dequeue() {
        let server: Server<u32> = Server::start(
            ServeConfig {
                queue_capacity: 8,
                max_inflight: 1,
                worker_budget: 1,
                policy: QueuePolicy::Edf,
                batch_max_items: 4096,
            },
            NoRecorder,
        );
        // Occupy the worker so the deadline request has to wait…
        let busy: Vec<u32> = (0..300_000u32).rev().collect();
        let h0 = server.submit(Request::sort(0, busy)).expect("admitted");
        // …with a deadline that will certainly have passed by then.
        let doomed = Request::merge(1, vec![1u32, 3], vec![2, 4]).with_deadline_in(1);
        let h1 = server.submit(doomed).expect("admitted");
        assert!(matches!(h0.wait(), Outcome::Completed { .. }));
        match h1.wait() {
            Outcome::Rejected(RejectReason::DeadlineExpired) => {}
            other => panic!("expected deadline rejection, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let server: Server<u32> = Server::start(small_cfg(), NoRecorder);
        let handles: Vec<_> = (0..4u64)
            .map(|id| {
                server
                    .submit(Request::merge(id, vec![1, 3, 5], vec![2, 4, 6]))
                    .expect("admitted")
            })
            .collect();
        let stats = server.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.lost(), 0);
        for h in handles {
            assert!(matches!(h.wait(), Outcome::Completed { .. }));
        }
    }

    #[test]
    fn concurrent_telemetry_is_well_formed() {
        use mergepath_telemetry::TimelineRecorder;
        use std::sync::Arc;
        let rec = Arc::new(TimelineRecorder::new());
        let server: Server<u32, _> = Server::start(
            ServeConfig {
                queue_capacity: 64,
                max_inflight: 4,
                worker_budget: 4,
                policy: QueuePolicy::Edf,
                batch_max_items: 4096,
            },
            Arc::clone(&rec),
        );
        let a: Vec<u32> = (0..4096).map(|x| 2 * x).collect();
        let b: Vec<u32> = (0..4096).map(|x| 2 * x + 1).collect();
        let handles: Vec<_> = (0..32u64)
            .map(|id| {
                server
                    .submit(Request::merge(id, a.clone(), b.clone()))
                    .expect("admitted")
            })
            .collect();
        for h in handles {
            assert!(matches!(h.wait(), Outcome::Completed { .. }));
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 32);
        let t = Arc::try_unwrap(rec)
            .ok()
            .expect("server released its recorder handle at shutdown")
            .finish();
        let completed: u64 = t
            .counters
            .iter()
            .filter(|c| c.kind == CounterKind::ServeCompleted)
            .map(|c| c.total)
            .sum();
        assert_eq!(completed, 32, "serve_completed counter observable");
        // Every kernel span landed in a serving thread's offset range
        // (worker 0 is reserved for daemon counters), and pairing held —
        // each span closed with a positive-length window.
        assert!(!t.spans.is_empty(), "kernel spans were recorded");
        for s in &t.spans {
            assert!(s.worker >= 1, "kernel span on reserved worker 0");
            assert!(s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn reject_names_are_stable() {
        assert_eq!(RejectReason::QueueFull.name(), "queue_full");
        assert_eq!(RejectReason::DeadlineExpired.name(), "deadline_expired");
    }

    #[test]
    fn probe_counters_reconcile_and_waterfall_partitions_latency() {
        use crate::observe::{ObserverConfig, ServeObserver};
        let obs = Arc::new(ServeObserver::new(ObserverConfig::default()));
        let server: Server<u32, NoRecorder, Arc<ServeObserver>> = Server::start_with_probe(
            ServeConfig {
                queue_capacity: 16,
                max_inflight: 2,
                worker_budget: 4,
                policy: QueuePolicy::Edf,
                batch_max_items: 4096,
            },
            NoRecorder,
            Arc::clone(&obs),
        );
        let handles: Vec<_> = (0..8u64)
            .map(|id| {
                server
                    .submit(Request::merge(id, vec![1, 4, 7, 9], vec![2, 3, 5, 8]))
                    .expect("admitted")
            })
            .collect();
        for h in handles {
            match h.wait() {
                Outcome::Completed {
                    latency_ns,
                    waterfall,
                    ..
                } => {
                    // The stages partition submit→done on one clock, so
                    // their sum can never exceed (in fact equals) the
                    // measured wall time.
                    assert!(
                        waterfall.total_ns() <= latency_ns,
                        "stage sum {} exceeds wall {latency_ns}",
                        waterfall.total_ns()
                    );
                    assert!(waterfall.compute_ns > 0, "compute stage observed");
                }
                other => panic!("expected completion: {other:?}"),
            }
        }
        let stats = server.shutdown();
        let snap = obs.snapshot();
        // Live counters reconcile exactly with ServeStats.
        assert_eq!(snap.counter("serve_submitted_total"), Some(stats.submitted));
        assert_eq!(snap.counter("serve_completed_total"), Some(stats.completed));
        assert_eq!(
            snap.counter("serve_rejected_queue_full_total"),
            Some(stats.rejected_queue_full)
        );
        assert_eq!(
            snap.counter("serve_rejected_deadline_total"),
            Some(stats.rejected_deadline)
        );
        assert_eq!(snap.counter("serve_failed_total"), Some(stats.failed));
        assert_eq!(
            snap.gauge("serve_inflight_peak"),
            Some(stats.inflight_peak as u64)
        );
        assert_eq!(
            snap.histogram("serve_latency_ns").map(|h| h.count()),
            Some(stats.completed)
        );
        // Every request left a full lifecycle in the flight ring.
        assert_eq!(
            obs.flight().recorded(),
            4 * 8,
            "submit/dequeue/start/complete"
        );
    }

    #[test]
    fn policy_names_round_trip() {
        for p in QueuePolicy::ALL {
            assert_eq!(QueuePolicy::parse(p.name()), Some(p));
        }
        assert_eq!(QueuePolicy::parse("lifo"), None);
        assert_eq!(QueuePolicy::default(), QueuePolicy::Edf);
    }

    #[test]
    fn lost_saturates_instead_of_underflowing() {
        // A mid-flight snapshot can load `submitted` before a racing
        // resolution lands, so the resolved sum may momentarily exceed
        // it; lost() must clamp to zero, not go negative.
        let stats = ServeStats {
            submitted: 3,
            completed: 2,
            rejected_queue_full: 1,
            rejected_deadline: 1,
            failed: 0,
            queue_depth_peak: 0,
            inflight_peak: 0,
            batched_rounds: 0,
            batched_requests: 0,
            latency: LatencyHistogram::new(),
        };
        assert_eq!(stats.lost(), 0, "saturates on transient over-resolution");
    }

    #[test]
    fn lost_never_goes_negative_under_concurrent_snapshots() {
        let server: Server<u32> = Server::start(
            ServeConfig {
                queue_capacity: 64,
                max_inflight: 4,
                worker_budget: 4,
                policy: QueuePolicy::Edf,
                batch_max_items: 0,
            },
            NoRecorder,
        );
        std::thread::scope(|s| {
            let reader = s.spawn(|| {
                // Hammer stats() while requests resolve; every snapshot
                // must stay non-negative (the regression for the
                // independently-loaded-atomics underflow).
                for _ in 0..2_000 {
                    assert!(
                        server.stats().lost() >= 0,
                        "mid-flight snapshot underflowed"
                    );
                }
            });
            for id in 0..256u64 {
                let h = server
                    .submit(Request::merge(id, vec![1u32, 3, 5], vec![2, 4, 6]))
                    .expect("admitted");
                assert!(matches!(h.wait(), Outcome::Completed { .. }));
            }
            reader.join().expect("reader clean");
        });
        let stats = server.shutdown();
        assert_eq!(stats.lost(), 0, "post-shutdown accounting exact");
    }

    #[test]
    fn zero_relative_deadline_is_rejected_on_the_boundary() {
        // `with_deadline_in(0)` sets deadline = now; the monotone clock
        // guarantees dequeue_ns >= deadline_ns, and the inclusive
        // boundary makes the rejection deterministic.
        let server: Server<u32> = Server::start(small_cfg(), NoRecorder);
        let h = server
            .submit(Request::merge(0, vec![1u32, 3], vec![2, 4]).with_deadline_in(0))
            .expect("admitted");
        match h.wait() {
            Outcome::Rejected(RejectReason::DeadlineExpired) => {}
            other => panic!("zero-relative deadline must expire, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn queued_small_merges_coalesce_into_batch_rounds() {
        use mergepath_telemetry::TimelineRecorder;
        let rec = Arc::new(TimelineRecorder::new());
        let server: Server<u32, _> = Server::start(
            ServeConfig {
                queue_capacity: 32,
                max_inflight: 1,
                worker_budget: 2,
                policy: QueuePolicy::Edf,
                batch_max_items: 4096,
            },
            Arc::clone(&rec),
        );
        // Occupy the single worker so the small merges pile up in the
        // queue, then get coalesced into one round when it frees.
        let busy: Vec<u32> = (0..300_000u32).rev().collect();
        let h0 = server.submit(Request::sort(0, busy)).expect("admitted");
        let handles: Vec<_> = (1..=8u64)
            .map(|id| {
                let base = id as u32 * 10;
                server
                    .submit(Request::merge(
                        id,
                        vec![base, base + 2, base + 4],
                        vec![base + 1, base + 3, base + 5],
                    ))
                    .expect("admitted")
            })
            .collect();
        assert!(matches!(h0.wait(), Outcome::Completed { .. }));
        for (i, h) in handles.into_iter().enumerate() {
            let base = (i as u32 + 1) * 10;
            match h.wait() {
                Outcome::Completed { output, .. } => {
                    assert_eq!(
                        output,
                        (base..base + 6).collect::<Vec<u32>>(),
                        "batched merge output is the oracle answer"
                    );
                }
                other => panic!("expected completion: {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 9);
        assert_eq!(stats.lost(), 0);
        assert!(stats.batched_rounds >= 1, "queued merges never coalesced");
        assert!(
            stats.batched_requests >= 2,
            "a round must fold at least two requests"
        );
        let t = Arc::try_unwrap(rec)
            .ok()
            .expect("recorder released")
            .finish();
        let total = |k: CounterKind| -> u64 {
            t.counters
                .iter()
                .filter(|c| c.kind == k)
                .map(|c| c.total)
                .sum()
        };
        assert_eq!(
            total(CounterKind::ServeBatched),
            stats.batched_rounds,
            "serve_batched counter mirrors stats"
        );
        assert_eq!(
            total(CounterKind::BatchWidth),
            stats.batched_requests,
            "batch_width counter mirrors stats"
        );
    }

    /// Records the order serving threads dequeue requests in.
    struct OrderProbe(Mutex<Vec<u64>>);

    impl ServeProbe for OrderProbe {
        fn on_dequeue(&self, id: u64, _t_ns: u64, _submit_ns: u64, _depth: usize) {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).push(id);
        }
    }

    fn dequeue_order(policy: QueuePolicy) -> Vec<u64> {
        let probe = Arc::new(OrderProbe(Mutex::new(Vec::new())));
        let server: Server<u32, NoRecorder, Arc<OrderProbe>> = Server::start_with_probe(
            ServeConfig {
                queue_capacity: 8,
                max_inflight: 1,
                worker_budget: 1,
                policy,
                batch_max_items: 0,
            },
            NoRecorder,
            Arc::clone(&probe),
        );
        // Hold the single worker so ids 1 and 2 are both queued before
        // the next dequeue decision is made.
        let busy: Vec<u32> = (0..300_000u32).rev().collect();
        let h0 = server.submit(Request::sort(0, busy)).expect("admitted");
        // Wait until the worker has actually picked up the busy sort, so
        // ids 1 and 2 queue behind it rather than racing it to the front.
        while probe.0.lock().unwrap_or_else(|e| e.into_inner()).is_empty() {
            std::thread::yield_now();
        }
        let h1 = server
            .submit(Request::merge(1, vec![1u32, 3], vec![2, 4]).with_deadline_in(60_000_000_000))
            .expect("admitted");
        let h2 = server
            .submit(Request::merge(2, vec![5u32, 7], vec![6, 8]).with_deadline_in(30_000_000_000))
            .expect("admitted");
        for h in [h0, h1, h2] {
            assert!(matches!(h.wait(), Outcome::Completed { .. }));
        }
        server.shutdown();
        Arc::try_unwrap(probe)
            .ok()
            .expect("probe released")
            .0
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn edf_dequeues_the_earliest_deadline_first() {
        assert_eq!(
            dequeue_order(QueuePolicy::Edf),
            vec![0, 2, 1],
            "the later-submitted, earlier-deadline request jumps ahead"
        );
    }

    #[test]
    fn fifo_policy_preserves_arrival_order() {
        assert_eq!(dequeue_order(QueuePolicy::Fifo), vec![0, 1, 2]);
    }

    #[test]
    fn no_probe_outcome_has_zero_waterfall() {
        let server: Server<u32> = Server::start(small_cfg(), NoRecorder);
        let h = server
            .submit(Request::merge(0, vec![1u32, 3], vec![2, 4]))
            .expect("admitted");
        match h.wait() {
            Outcome::Completed { waterfall, .. } => {
                assert_eq!(
                    waterfall,
                    Waterfall::default(),
                    "disabled path reads no stages"
                );
            }
            other => panic!("expected completion: {other:?}"),
        }
        server.shutdown();
    }
}
