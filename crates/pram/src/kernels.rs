//! The paper's algorithms executed on the simulated CREW PRAM.
//!
//! [`parallel_merge`] is Algorithm 1 verbatim: because the algorithm needs
//! no inter-processor communication, the whole merge — diagonal search plus
//! segment merge — is a **single superstep**. Its reported `time` is the
//! PRAM parallel time `O(N/p + log N)` the paper derives in §III, measured
//! rather than asserted, and running it with CREW checking enabled *proves*
//! on every input that the algorithm is write-conflict- and race-free.
//!
//! [`parallel_merge_sort`] drives the §III sort: one superstep of
//! concurrent chunk sorts, then `⌈log2 p⌉` merge-round supersteps.

use crate::machine::{PramError, PramMachine, ProcCtx, StepReport};
use mergepath::partition::segment_boundary;

/// A contiguous array in PRAM shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayHandle {
    /// Base address of the first element.
    pub base: usize,
    /// Length in elements.
    pub len: usize,
}

impl ArrayHandle {
    /// Address of element `i`.
    pub fn at(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "index {i} out of bounds {}", self.len);
        self.base + i
    }
}

/// Loads `data` into fresh PRAM memory.
pub fn load_array(machine: &mut PramMachine, data: &[u64]) -> ArrayHandle {
    ArrayHandle {
        base: machine.load(data),
        len: data.len(),
    }
}

/// Allocates an uninitialized (zeroed) array.
pub fn alloc_array(machine: &mut PramMachine, len: usize) -> ArrayHandle {
    ArrayHandle {
        base: machine.alloc(len),
        len,
    }
}

/// The diagonal binary search of Theorem 14, executed by one PRAM
/// processor: every element inspection is a charged shared-memory read,
/// every comparison a compute tick.
///
/// Returns `i` such that the first `k` merged outputs take `i` elements
/// from `a` (ties to `a`, as in the host implementation).
fn co_rank_on_pram(ctx: &mut ProcCtx<'_>, k: usize, a: ArrayHandle, b: ArrayHandle) -> usize {
    let (na, nb) = (a.len, b.len);
    debug_assert!(k <= na + nb);
    let mut lo = k.saturating_sub(nb);
    let mut hi = k.min(na);
    while lo < hi {
        let i = lo + (hi - lo) / 2;
        let j = k - i;
        let bv = ctx.read(b.at(j - 1));
        let av = ctx.read(a.at(i));
        ctx.tick(1); // the comparison
        if bv >= av {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    lo
}

/// **Algorithm 1** on the PRAM: merges `a` and `b` into `out` with `p`
/// processors in one superstep.
///
/// # Panics
/// Panics if `out.len != a.len + b.len` or `p == 0`.
///
/// # Examples
/// ```
/// use mergepath_pram::kernels::{alloc_array, load_array, parallel_merge};
/// use mergepath_pram::PramMachine;
/// let mut m = PramMachine::new(); // CREW checking on
/// let a = load_array(&mut m, &[1, 3, 5]);
/// let b = load_array(&mut m, &[2, 4, 6]);
/// let out = alloc_array(&mut m, 6);
/// let report = parallel_merge(&mut m, a, b, out, 3).expect("conflict-free");
/// assert_eq!(m.read_slice(out.base, 6), [1, 2, 3, 4, 5, 6]);
/// assert!(report.time < 6 * 5); // parallel time beats sequential
/// ```
pub fn parallel_merge(
    machine: &mut PramMachine,
    a: ArrayHandle,
    b: ArrayHandle,
    out: ArrayHandle,
    p: usize,
) -> Result<StepReport, PramError> {
    let n = a.len + b.len;
    assert!(out.len == n, "output length mismatch: {} != {n}", out.len);
    assert!(p > 0, "processor count must be at least 1");
    machine.step(p, |pid, ctx| {
        // Step 1–2: private diagonal, private binary searches.
        let d_lo = segment_boundary(n, p, pid);
        let d_hi = segment_boundary(n, p, pid + 1);
        let i_lo = co_rank_on_pram(ctx, d_lo, a, b);
        let i_hi = co_rank_on_pram(ctx, d_hi, a, b);
        let (mut i, mut j) = (i_lo, d_lo - i_lo);
        let (a_end, b_end) = (i_hi, d_hi - i_hi);
        // Step 3: (|A|+|B|)/p steps of sequential merge. Each step reads
        // the candidate heads, compares, and writes one output.
        for k in d_lo..d_hi {
            let take_a = if i >= a_end {
                false
            } else if j >= b_end {
                true
            } else {
                let av = ctx.read(a.at(i));
                let bv = ctx.read(b.at(j));
                ctx.tick(1);
                av <= bv
            };
            let v = if take_a {
                let v = ctx.read(a.at(i));
                i += 1;
                v
            } else {
                let v = ctx.read(b.at(j));
                j += 1;
                v
            };
            ctx.write(out.at(k), v);
        }
    })
}

/// Aggregate cost of a multi-superstep PRAM computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCost {
    /// Total PRAM time (sum of superstep maxima).
    pub time: u64,
    /// Total work.
    pub work: u64,
    /// Superstep count.
    pub supersteps: u64,
}

impl RunCost {
    fn absorb(&mut self, r: &StepReport) {
        self.time += r.time;
        self.work += r.work;
        self.supersteps += 1;
    }
}

/// The §III parallel merge sort on the PRAM.
///
/// Phase 1 is one superstep in which each processor sorts its `N/p` chunk:
/// the kernel performs the real permutation (so correctness is checked end
/// to end) and charges the textbook `⌈N/p⌉·⌈log2(N/p)⌉` comparison cost
/// plus the reads and writes it actually issues.
///
/// Phase 2 runs `⌈log2 p⌉` supersteps of pairwise Algorithm-1 merges, all
/// `p` processors participating in every round (processors are divided
/// among the pairs).
pub fn parallel_merge_sort(
    machine: &mut PramMachine,
    data: ArrayHandle,
    p: usize,
) -> Result<RunCost, PramError> {
    assert!(p > 0, "processor count must be at least 1");
    let n = data.len;
    let mut cost = RunCost::default();
    if n <= 1 {
        return Ok(cost);
    }
    let scratch = alloc_array(machine, n);

    // Phase 1: concurrent chunk sorts (one superstep).
    let bounds: Vec<usize> = (0..=p).map(|k| segment_boundary(n, p, k)).collect();
    let phase1 = machine.step(p, |pid, ctx| {
        let lo = bounds[pid];
        let hi = bounds[pid + 1];
        let m = hi - lo;
        if m == 0 {
            return;
        }
        let mut chunk: Vec<u64> = (lo..hi).map(|i| ctx.read(data.at(i))).collect();
        chunk.sort_unstable();
        // Comparison cost of an m-element merge sort.
        let lg = (m.max(2) as f64).log2().ceil() as u64;
        ctx.tick(m as u64 * lg);
        for (k, v) in chunk.into_iter().enumerate() {
            ctx.write(data.at(lo + k), v);
        }
    })?;
    cost.absorb(&phase1);

    // Phase 2: merge rounds. Runs ping-pong between `data` and `scratch`.
    let mut runs = bounds;
    let mut in_data = true;
    while runs.len() > 2 {
        let pairs = (runs.len() - 1) / 2;
        let (src, dst) = if in_data {
            (data, scratch)
        } else {
            (scratch, data)
        };
        let runs_now = runs.clone();
        let report = machine.step(p, |pid, ctx| {
            // Processors are dealt round-robin to pairs; within a pair each
            // holds a contiguous share of the output (Algorithm 1).
            let pair = pid % pairs;
            let team = (p / pairs) + usize::from(pair < p % pairs);
            let rank = pid / pairs;
            let (lo, mid, hi) = (
                runs_now[2 * pair],
                runs_now[2 * pair + 1],
                runs_now[2 * pair + 2],
            );
            let a = ArrayHandle {
                base: src.base + lo,
                len: mid - lo,
            };
            let b = ArrayHandle {
                base: src.base + mid,
                len: hi - mid,
            };
            let m = hi - lo;
            let d_lo = segment_boundary(m, team, rank);
            let d_hi = segment_boundary(m, team, rank + 1);
            let i_lo = co_rank_on_pram(ctx, d_lo, a, b);
            let i_hi = co_rank_on_pram(ctx, d_hi, a, b);
            let (mut i, mut j) = (i_lo, d_lo - i_lo);
            let (a_end, b_end) = (i_hi, d_hi - i_hi);
            for k in d_lo..d_hi {
                let take_a = if i >= a_end {
                    false
                } else if j >= b_end {
                    true
                } else {
                    let av = ctx.read(a.at(i));
                    let bv = ctx.read(b.at(j));
                    ctx.tick(1);
                    av <= bv
                };
                let v = if take_a {
                    let v = ctx.read(a.at(i));
                    i += 1;
                    v
                } else {
                    let v = ctx.read(b.at(j));
                    j += 1;
                    v
                };
                ctx.write(dst.base + lo + k, v);
            }
            // A lone trailing run (odd count) is copied by its pair-0 team
            // member with rank 0 … handled below outside the pair logic.
            let _ = pid;
        })?;
        cost.absorb(&report);
        // Copy a lone trailing run (if any) — one extra superstep only when
        // the round has an odd run count.
        if (runs.len() - 1) % 2 == 1 {
            let lo = runs[runs.len() - 2];
            let hi = runs[runs.len() - 1];
            let copy = machine.step(p, |pid, ctx| {
                let c_lo = lo + segment_boundary(hi - lo, p, pid);
                let c_hi = lo + segment_boundary(hi - lo, p, pid + 1);
                for k in c_lo..c_hi {
                    let v = ctx.read(src.base + k);
                    ctx.write(dst.base + k, v);
                }
            })?;
            cost.absorb(&copy);
        }
        // Collapse runs.
        let mut next = Vec::with_capacity(runs.len() / 2 + 1);
        for (idx, &r) in runs.iter().enumerate() {
            if idx % 2 == 0 || idx == runs.len() - 1 {
                next.push(r);
            }
        }
        runs = next;
        in_data = !in_data;
    }
    // Ensure the result ends in `data`.
    if !in_data {
        let copy = machine.step(p, |pid, ctx| {
            let lo = segment_boundary(n, p, pid);
            let hi = segment_boundary(n, p, pid + 1);
            for k in lo..hi {
                let v = ctx.read(scratch.at(k));
                ctx.write(data.at(k), v);
            }
        })?;
        cost.absorb(&copy);
    }
    Ok(cost)
}

/// **Algorithm 1 split into two supersteps**, separating its memory
/// disciplines:
///
/// * Superstep 1 (partition): every processor runs its two diagonal
///   searches and stores the split indices in private scratch slots. The
///   searches of different processors may probe the *same* elements —
///   this phase is CREW, not EREW (the paper's Remark: "with the
///   exception of reading in the process of finding the intersections …
///   read from disjoint addresses").
/// * Superstep 2 (merge): every processor re-reads only its own scratch
///   slots and merges its segment. Segments are element-wise disjoint
///   (Lemma 3), so this phase is **EREW-clean** — a fact the test suite
///   proves by running it on an EREW-mode machine
///   ([`crate::machine::MemoryMode::Erew`]).
///
/// Returns the two step reports `(partition, merge)`.
pub fn parallel_merge_two_phase(
    machine: &mut PramMachine,
    a: ArrayHandle,
    b: ArrayHandle,
    out: ArrayHandle,
    p: usize,
) -> Result<(StepReport, StepReport), PramError> {
    let n = a.len + b.len;
    assert!(out.len == n, "output length mismatch: {} != {n}", out.len);
    assert!(p > 0, "processor count must be at least 1");
    // Scratch: two slots per processor (its i_lo and i_hi).
    let scratch = alloc_array(machine, 2 * p);
    let partition = machine.step(p, |pid, ctx| {
        let d_lo = segment_boundary(n, p, pid);
        let d_hi = segment_boundary(n, p, pid + 1);
        let i_lo = co_rank_on_pram(ctx, d_lo, a, b);
        let i_hi = co_rank_on_pram(ctx, d_hi, a, b);
        ctx.write(scratch.at(2 * pid), i_lo as u64);
        ctx.write(scratch.at(2 * pid + 1), i_hi as u64);
    })?;
    let merge = machine.step(p, |pid, ctx| {
        let d_lo = segment_boundary(n, p, pid);
        let d_hi = segment_boundary(n, p, pid + 1);
        let i_lo = ctx.read(scratch.at(2 * pid)) as usize;
        let i_hi = ctx.read(scratch.at(2 * pid + 1)) as usize;
        let (mut i, mut j) = (i_lo, d_lo - i_lo);
        let (a_end, b_end) = (i_hi, d_hi - i_hi);
        for k in d_lo..d_hi {
            let take_a = if i >= a_end {
                false
            } else if j >= b_end {
                true
            } else {
                let av = ctx.read(a.at(i));
                let bv = ctx.read(b.at(j));
                ctx.tick(1);
                av <= bv
            };
            let v = if take_a {
                let v = ctx.read(a.at(i));
                i += 1;
                v
            } else {
                let v = ctx.read(b.at(j));
                j += 1;
                v
            };
            ctx.write(out.at(k), v);
        }
    })?;
    Ok((partition, merge))
}

/// **Algorithm 2 (SPM)** on the PRAM: the segmented merge with window
/// length `l` (the paper's `L = C/3`), one superstep per block.
///
/// Each processor searches its lane diagonals *within the current window*
/// (cost `O(log L)`) and merges `L/p` steps; processor `p − 1` writes the
/// block's consumed-from-A count to a scratch slot, which the host-side
/// outer loop (the paper's sequential "repeat 3N/C times") reads to
/// advance the windows. Total simulated time validates the §IV.B formula
/// `O(N/C · (log C + C/p))`.
pub fn segmented_parallel_merge(
    machine: &mut PramMachine,
    a: ArrayHandle,
    b: ArrayHandle,
    out: ArrayHandle,
    p: usize,
    l: usize,
) -> Result<RunCost, PramError> {
    let n = a.len + b.len;
    assert!(out.len == n, "output length mismatch: {} != {n}", out.len);
    assert!(p > 0, "processor count must be at least 1");
    let l = l.max(p).max(1);
    let mut cost = RunCost::default();
    let scratch = alloc_array(machine, 1);
    let (mut ai, mut bi, mut oi) = (0usize, 0usize, 0usize);
    while oi < n {
        let wa = ArrayHandle {
            base: a.base + ai,
            len: (a.len - ai).min(l),
        };
        let wb = ArrayHandle {
            base: b.base + bi,
            len: (b.len - bi).min(l),
        };
        let step = l.min(n - oi);
        let out_off = oi;
        let report = machine.step(p, |pid, ctx| {
            let d_lo = segment_boundary(step, p, pid);
            let d_hi = segment_boundary(step, p, pid + 1);
            let i_lo = co_rank_on_pram(ctx, d_lo, wa, wb);
            let i_hi = co_rank_on_pram(ctx, d_hi, wa, wb);
            if pid + 1 == p {
                ctx.write(scratch.base, i_hi as u64);
            }
            let (mut i, mut j) = (i_lo, d_lo - i_lo);
            let (a_end, b_end) = (i_hi, d_hi - i_hi);
            for k in d_lo..d_hi {
                let take_a = if i >= a_end {
                    false
                } else if j >= b_end {
                    true
                } else {
                    let av = ctx.read(wa.at(i));
                    let bv = ctx.read(wb.at(j));
                    ctx.tick(1);
                    av <= bv
                };
                let v = if take_a {
                    let v = ctx.read(wa.at(i));
                    i += 1;
                    v
                } else {
                    let v = ctx.read(wb.at(j));
                    j += 1;
                    v
                };
                ctx.write(out.base + out_off + k, v);
            }
        })?;
        cost.absorb(&report);
        let ta = machine.read_slice(scratch.base, 1)[0] as usize;
        ai += ta;
        bi += step - ta;
        oi += step;
    }
    Ok(cost)
}

/// Measures Algorithm 1's PRAM time for one `(n, p)` configuration and
/// returns `(report, merged_output)` — the primitive behind the Figure 5
/// model reproduction.
pub fn measure_merge(
    a_host: &[u64],
    b_host: &[u64],
    p: usize,
    crew_checking: bool,
) -> Result<(StepReport, Vec<u64>), PramError> {
    measure_merge_bw(a_host, b_host, p, crew_checking, None)
}

/// [`measure_merge`] on a machine with an optional finite shared-memory
/// bandwidth (in aggregate accesses per time unit).
///
/// The ideal PRAM (`bandwidth = None`) yields perfectly linear speedup for
/// `p ≪ N/log N`; a finite bandwidth caps the speedup at roughly
/// `bandwidth / (mem ops per element)` — the mechanism behind Figure 5's
/// slight sub-linearity at 12 threads on DRAM-resident inputs.
pub fn measure_merge_bw(
    a_host: &[u64],
    b_host: &[u64],
    p: usize,
    crew_checking: bool,
    bandwidth: Option<f64>,
) -> Result<(StepReport, Vec<u64>), PramError> {
    let mut machine = PramMachine::new().with_crew_checking(crew_checking);
    if let Some(bw) = bandwidth {
        machine = machine.with_memory_bandwidth(bw);
    }
    let a = load_array(&mut machine, a_host);
    let b = load_array(&mut machine, b_host);
    let out = alloc_array(&mut machine, a_host.len() + b_host.len());
    let report = parallel_merge(&mut machine, a, b, out, p)?;
    Ok((report, machine.read_slice(out.base, out.len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn host_merge(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; a.len() + b.len()];
        mergepath::merge::sequential::merge_into(a, b, &mut out);
        out
    }

    fn sorted(mut v: Vec<u64>) -> Vec<u64> {
        v.sort();
        v
    }

    #[test]
    fn pram_merge_matches_host_merge() {
        let a: Vec<u64> = (0..500).map(|x| x * 2).collect();
        let b: Vec<u64> = (0..400).map(|x| x * 3 + 1).collect();
        for p in [1, 2, 3, 4, 8, 12] {
            let (_, out) = measure_merge(&a, &b, p, true).unwrap();
            assert_eq!(out, host_merge(&a, &b), "p={p}");
        }
    }

    #[test]
    fn merge_is_one_superstep_and_conflict_free() {
        let a: Vec<u64> = (0..1000).collect();
        let b: Vec<u64> = (0..1000).map(|x| x + 500).collect();
        let mut machine = PramMachine::new(); // checking ON
        let ah = load_array(&mut machine, &a);
        let bh = load_array(&mut machine, &b);
        let out = alloc_array(&mut machine, 2000);
        parallel_merge(&mut machine, ah, bh, out, 8).expect("Algorithm 1 must be CREW-clean");
        assert_eq!(machine.supersteps(), 1);
    }

    #[test]
    fn pram_time_scales_as_n_over_p() {
        let a: Vec<u64> = (0..4096).map(|x| x * 2).collect();
        let b: Vec<u64> = (0..4096).map(|x| x * 2 + 1).collect();
        let (t1, _) = measure_merge(&a, &b, 1, false).unwrap();
        let (t8, _) = measure_merge(&a, &b, 8, false).unwrap();
        let speedup = t1.time as f64 / t8.time as f64;
        // Perfect balance + log-overhead: expect close to 8.
        assert!(speedup > 7.0, "speedup {speedup} too low");
        assert!(speedup <= 8.0 + 1e-9, "speedup {speedup} super-linear?");
    }

    #[test]
    fn pram_speedup_is_monotone_in_p() {
        let a: Vec<u64> = (0..2048).map(|x| x * 7 % 9973).collect::<Vec<_>>();
        let a = sorted(a);
        let b: Vec<u64> = sorted((0..2048).map(|x| x * 13 % 9973).collect());
        let mut last = u64::MAX;
        for p in [1, 2, 4, 8, 16] {
            let (r, _) = measure_merge(&a, &b, p, false).unwrap();
            assert!(r.time <= last, "time must not increase with p");
            last = r.time;
        }
    }

    #[test]
    fn work_overhead_is_logarithmic() {
        // Work(p) − Work(1) should be O(p · log N), far below N.
        let a: Vec<u64> = (0..8192).map(|x| x * 2).collect();
        let b: Vec<u64> = (0..8192).map(|x| x * 2 + 1).collect();
        let (r1, _) = measure_merge(&a, &b, 1, false).unwrap();
        let (r12, _) = measure_merge(&a, &b, 12, false).unwrap();
        let overhead = r12.work as i64 - r1.work as i64;
        let n = (a.len() + b.len()) as i64;
        let logn = (n as f64).log2().ceil() as i64;
        // Each of the 12 processors does two binary searches of ≤ (log+1)
        // steps, each step costing 2 reads + 1 tick.
        assert!(
            overhead <= 2 * 12 * 3 * (logn + 1),
            "work overhead {overhead} exceeds O(p log N)"
        );
        assert!(overhead >= 0);
        assert!(overhead < n / 10, "overhead should be ≪ N");
    }

    #[test]
    fn pram_sort_sorts_and_is_race_free() {
        let data: Vec<u64> = (0..777).map(|x| (x * 7919 + 11) % 2003).collect();
        for p in [1, 2, 3, 4, 8] {
            let mut machine = PramMachine::new(); // checking ON
            let h = load_array(&mut machine, &data);
            parallel_merge_sort(&mut machine, h, p).expect("sort must be CREW-clean");
            let out = machine.read_slice(h.base, h.len);
            let mut expect = data.clone();
            expect.sort();
            assert_eq!(out, expect, "p={p}");
        }
    }

    #[test]
    fn pram_sort_time_improves_with_p() {
        let data: Vec<u64> = (0..4096).map(|x| (x * 31) % 65_521).collect();
        let mut machine1 = PramMachine::new().with_crew_checking(false);
        let h1 = load_array(&mut machine1, &data);
        let c1 = parallel_merge_sort(&mut machine1, h1, 1).unwrap();
        let mut machine8 = PramMachine::new().with_crew_checking(false);
        let h8 = load_array(&mut machine8, &data);
        let c8 = parallel_merge_sort(&mut machine8, h8, 8).unwrap();
        let speedup = c1.time as f64 / c8.time as f64;
        assert!(speedup > 3.0, "sort speedup {speedup} too low for p=8");
    }

    #[test]
    fn spm_on_pram_matches_and_respects_time_formula() {
        let a: Vec<u64> = (0..4096).map(|x| x * 2).collect();
        let b: Vec<u64> = (0..4096).map(|x| x * 2 + 1).collect();
        let n = 8192u64;
        let (p, l) = (8usize, 512usize);
        let mut machine = PramMachine::new(); // full CREW checking
        let ah = load_array(&mut machine, &a);
        let bh = load_array(&mut machine, &b);
        let out = alloc_array(&mut machine, 8192);
        let cost = segmented_parallel_merge(&mut machine, ah, bh, out, p, l)
            .expect("SPM must be CREW-clean");
        assert_eq!(machine.read_slice(out.base, out.len), host_merge(&a, &b));
        // §IV.B: time O(N/L · (log L + L/p)); with 5 ops/element and
        // 3-cost search steps the constant-factor bound below is generous
        // but shape-tight.
        let blocks = n / l as u64;
        let logl = (l as f64).log2().ceil() as u64;
        let bound = blocks * (2 * 3 * (logl + 1) + 2) + 5 * n / p as u64 + n % p as u64 * 5;
        assert!(
            cost.time <= bound,
            "SPM time {} exceeds §IV.B bound {bound}",
            cost.time
        );
        assert_eq!(cost.supersteps, blocks);
        // And it costs more than the single-superstep Algorithm 1 (the
        // partition-per-block overhead the paper accepts for cache wins).
        let (basic, _) = measure_merge(&a, &b, p, false).unwrap();
        assert!(cost.time >= basic.time);
    }

    #[test]
    fn spm_on_pram_various_window_sizes() {
        let a: Vec<u64> = (0..1000).map(|x| x * 3).collect();
        let b: Vec<u64> = (0..700).map(|x| x * 5 + 1).collect();
        let expect = host_merge(&a, &b);
        for l in [4usize, 64, 333, 5000] {
            let mut machine = PramMachine::new().with_crew_checking(false);
            let ah = load_array(&mut machine, &a);
            let bh = load_array(&mut machine, &b);
            let out = alloc_array(&mut machine, 1700);
            segmented_parallel_merge(&mut machine, ah, bh, out, 4, l).unwrap();
            assert_eq!(machine.read_slice(out.base, out.len), expect, "l={l}");
        }
    }

    #[test]
    fn two_phase_merge_matches_and_merge_phase_is_erew_clean() {
        use crate::machine::MemoryMode;
        let a: Vec<u64> = (0..2000).map(|x| x * 2).collect();
        let b: Vec<u64> = (0..1500).map(|x| x * 3 + 1).collect();
        // Run phase-by-phase so the merge superstep executes under the
        // stricter EREW discipline.
        let mut machine = PramMachine::new(); // CREW for the partition
        let ah = load_array(&mut machine, &a);
        let bh = load_array(&mut machine, &b);
        let out = alloc_array(&mut machine, 3500);
        // parallel_merge_two_phase runs both steps on the current mode; we
        // emulate the mode switch by running it fully on CREW first …
        parallel_merge_two_phase(&mut machine, ah, bh, out, 8)
            .expect("two-phase merge must be CREW-clean end to end");
        assert_eq!(machine.read_slice(out.base, out.len), host_merge(&a, &b));
        // … and then proving the merge phase alone is EREW-clean: replay
        // the merge superstep on an EREW machine whose scratch was filled
        // by a (sequential, conflict-free) partition pass.
        let mut erew = PramMachine::new().with_memory_mode(MemoryMode::Erew);
        let ah = load_array(&mut erew, &a);
        let bh = load_array(&mut erew, &b);
        let out = alloc_array(&mut erew, 3500);
        let p = 8usize;
        let n = 3500usize;
        let scratch = alloc_array(&mut erew, 2 * p);
        // Partition sequentially (single processor: trivially exclusive).
        erew.set_memory_mode(MemoryMode::Crew);
        erew.step(1, |_, ctx| {
            for pid in 0..p {
                let d_lo = segment_boundary(n, p, pid);
                let d_hi = segment_boundary(n, p, pid + 1);
                let i_lo = co_rank_on_pram(ctx, d_lo, ah, bh);
                let i_hi = co_rank_on_pram(ctx, d_hi, ah, bh);
                ctx.write(scratch.at(2 * pid), i_lo as u64);
                ctx.write(scratch.at(2 * pid + 1), i_hi as u64);
            }
        })
        .unwrap();
        erew.set_memory_mode(MemoryMode::Erew);
        erew.step(p, |pid, ctx| {
            let d_lo = segment_boundary(n, p, pid);
            let d_hi = segment_boundary(n, p, pid + 1);
            let i_lo = ctx.read(scratch.at(2 * pid)) as usize;
            let i_hi = ctx.read(scratch.at(2 * pid + 1)) as usize;
            let (mut i, mut j) = (i_lo, d_lo - i_lo);
            let (a_end, b_end) = (i_hi, d_hi - i_hi);
            for k in d_lo..d_hi {
                let take_a = if i >= a_end {
                    false
                } else if j >= b_end {
                    true
                } else {
                    let av = ctx.read(ah.at(i));
                    let bv = ctx.read(bh.at(j));
                    ctx.tick(1);
                    av <= bv
                };
                let v = if take_a {
                    let v = ctx.read(ah.at(i));
                    i += 1;
                    v
                } else {
                    let v = ctx.read(bh.at(j));
                    j += 1;
                    v
                };
                ctx.write(out.at(k), v);
            }
        })
        .expect("Lemma 3: segments are disjoint, so the merge phase is EREW-clean");
        assert_eq!(erew.read_slice(out.base, out.len), host_merge(&a, &b));
    }

    #[test]
    fn partition_phase_violates_erew() {
        use crate::machine::MemoryMode;
        // Two processors both search the shared interior diagonal: their
        // binary searches probe identical addresses — fine under CREW,
        // a detected violation under EREW.
        let a: Vec<u64> = (0..512).map(|x| x * 2).collect();
        let b: Vec<u64> = (0..512).map(|x| x * 2 + 1).collect();
        let mut machine = PramMachine::new().with_memory_mode(MemoryMode::Erew);
        let ah = load_array(&mut machine, &a);
        let bh = load_array(&mut machine, &b);
        let out = alloc_array(&mut machine, 1024);
        let err = parallel_merge_two_phase(&mut machine, ah, bh, out, 2)
            .expect_err("shared diagonal searches must trip EREW detection");
        assert!(matches!(err, PramError::ConcurrentRead { .. }));
    }

    #[test]
    fn empty_and_tiny_merges() {
        let (r, out) = measure_merge(&[], &[], 3, true).unwrap();
        assert!(out.is_empty());
        assert_eq!(r.time, 0);
        let (_, out) = measure_merge(&[5], &[], 3, true).unwrap();
        assert_eq!(out, [5]);
        let (_, out) = measure_merge(&[], &[1, 2], 2, true).unwrap();
        assert_eq!(out, [1, 2]);
    }

    proptest! {
        #[test]
        fn pram_merge_equals_host(
            a in proptest::collection::vec(0u64..1000, 0..120).prop_map(sorted),
            b in proptest::collection::vec(0u64..1000, 0..120).prop_map(sorted),
            p in 1usize..10,
        ) {
            let (_, out) = measure_merge(&a, &b, p, true).unwrap();
            prop_assert_eq!(out, host_merge(&a, &b));
        }

        #[test]
        fn pram_sort_equals_std(
            data in proptest::collection::vec(0u64..5000, 0..300),
            p in 1usize..8,
        ) {
            let mut machine = PramMachine::new();
            let h = load_array(&mut machine, &data);
            parallel_merge_sort(&mut machine, h, p).unwrap();
            let out = machine.read_slice(h.base, h.len);
            let mut expect = data.clone();
            expect.sort();
            prop_assert_eq!(out, expect);
        }
    }
}
