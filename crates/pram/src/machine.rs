//! The CREW PRAM machine: shared memory, lockstep supersteps, conflict
//! detection, and the unit-cost time model.

use std::collections::HashMap;

/// A CREW (concurrent-read, exclusive-write) violation detected during a
/// superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PramError {
    /// Two processors wrote the same address in one superstep.
    ExclusiveWriteConflict {
        /// The contended address.
        addr: usize,
        /// The first writer observed.
        first_pid: usize,
        /// The conflicting writer.
        second_pid: usize,
    },
    /// One processor read an address another wrote in the same superstep
    /// (the value such a read observes is machine-dependent; the simulator
    /// treats it as an error).
    ReadWriteRace {
        /// The contended address.
        addr: usize,
        /// The reading processor.
        reader: usize,
        /// The writing processor.
        writer: usize,
    },
    /// Two processors read the same address in one superstep while the
    /// machine was in EREW mode (exclusive-read, exclusive-write).
    ConcurrentRead {
        /// The contended address.
        addr: usize,
        /// The first reader observed.
        first_pid: usize,
        /// The conflicting reader.
        second_pid: usize,
    },
}

/// The memory access discipline the machine enforces (paper, §I: "PRAM
/// systems are further categorized as CRCW, CREW, ERCW or EREW").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryMode {
    /// Concurrent reads allowed, writes exclusive — the paper's model.
    #[default]
    Crew,
    /// Both reads and writes exclusive — the model of the Akl–Santoro
    /// baseline (paper, ref [5]).
    Erew,
}

impl core::fmt::Display for PramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            PramError::ExclusiveWriteConflict {
                addr,
                first_pid,
                second_pid,
            } => write!(
                f,
                "exclusive-write violation at address {addr}: processors {first_pid} and {second_pid}"
            ),
            PramError::ReadWriteRace {
                addr,
                reader,
                writer,
            } => write!(
                f,
                "read/write race at address {addr}: processor {reader} read while {writer} wrote"
            ),
            PramError::ConcurrentRead {
                addr,
                first_pid,
                second_pid,
            } => write!(
                f,
                "EREW violation at address {addr}: processors {first_pid} and {second_pid} both read"
            ),
        }
    }
}

impl std::error::Error for PramError {}

/// Result of one superstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport {
    /// Superstep elapsed time: the maximum per-processor cost — or, under
    /// a finite memory bandwidth, the memory-service time if that is
    /// larger.
    pub time: u64,
    /// Total operations across processors (the work model).
    pub work: u64,
    /// Total shared-memory accesses (reads + writes) across processors.
    pub mem_ops: u64,
    /// Per-processor costs, indexed by pid.
    pub per_proc: Vec<u64>,
}

/// Per-processor execution context handed to a superstep kernel.
///
/// All reads observe the memory state from *before* the superstep; writes
/// are buffered and applied at the superstep boundary. Every read and write
/// costs one time unit; local computation is charged via [`ProcCtx::tick`].
pub struct ProcCtx<'m> {
    pid: usize,
    mem: &'m mut [u64],
    pending: Vec<(usize, u64)>,
    reads: Vec<usize>,
    buffered: bool,
    cost: u64,
    mem_ops: u64,
}

impl ProcCtx<'_> {
    /// This processor's id (`0..p`).
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Reads shared memory (1 time unit).
    ///
    /// # Panics
    /// Panics if `addr` is out of bounds.
    pub fn read(&mut self, addr: usize) -> u64 {
        self.cost += 1;
        self.mem_ops += 1;
        if self.buffered {
            self.reads.push(addr);
        }
        self.mem[addr]
    }

    /// Writes shared memory (1 time unit). With CREW checking on, the write
    /// becomes visible to other processors only after the superstep
    /// completes; in cost-model mode it applies immediately.
    ///
    /// # Panics
    /// Panics if `addr` is out of bounds.
    pub fn write(&mut self, addr: usize, value: u64) {
        assert!(addr < self.mem.len(), "PRAM write out of bounds: {addr}");
        self.cost += 1;
        self.mem_ops += 1;
        if self.buffered {
            self.pending.push((addr, value));
        } else {
            self.mem[addr] = value;
        }
    }

    /// Charges `n` time units of local computation (e.g. a comparison).
    pub fn tick(&mut self, n: u64) {
        self.cost += n;
    }

    /// Cost accumulated so far in this superstep.
    pub fn cost(&self) -> u64 {
        self.cost
    }
}

/// A simulated CREW PRAM.
///
/// # Examples
/// ```
/// use mergepath_pram::PramMachine;
///
/// let mut m = PramMachine::new();
/// let a = m.load(&[10, 20, 30, 40]);
/// let out = m.alloc(4);
/// // 4 processors each double one element — conflict-free.
/// let report = m.step(4, |pid, ctx| {
///     let v = ctx.read(a + pid);
///     ctx.write(out + pid, v * 2);
/// }).unwrap();
/// assert_eq!(report.time, 2); // one read + one write, in parallel
/// assert_eq!(m.read_slice(out, 4), [20, 40, 60, 80]);
/// ```
#[derive(Debug, Default)]
pub struct PramMachine {
    mem: Vec<u64>,
    time: u64,
    work: u64,
    supersteps: u64,
    crew_checking: bool,
    bandwidth: Option<f64>,
    mode: MemoryMode,
}

impl PramMachine {
    /// An empty machine with CREW checking enabled.
    pub fn new() -> Self {
        PramMachine {
            mem: Vec::new(),
            time: 0,
            work: 0,
            supersteps: 0,
            crew_checking: true,
            bandwidth: None,
            mode: MemoryMode::Crew,
        }
    }

    /// Selects the access discipline ([`MemoryMode::Crew`] by default).
    /// EREW violations are only detected while checking is enabled.
    pub fn with_memory_mode(mut self, mode: MemoryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Changes the access discipline mid-run — used to verify that
    /// individual supersteps of an algorithm satisfy a stricter discipline
    /// than the algorithm as a whole.
    pub fn set_memory_mode(&mut self, mode: MemoryMode) {
        self.mode = mode;
    }

    /// Limits aggregate shared-memory throughput to `words_per_unit`
    /// accesses per time unit: a superstep then takes
    /// `max(max per-processor cost, ceil(total accesses / bandwidth))`.
    ///
    /// The ideal PRAM has unlimited bandwidth; a real shared-memory machine
    /// does not, and it is exactly this limit that bends the paper's
    /// Figure 5 below perfectly-linear speedup at high thread counts and
    /// DRAM-resident sizes.
    pub fn with_memory_bandwidth(mut self, words_per_unit: f64) -> Self {
        assert!(words_per_unit > 0.0, "bandwidth must be positive");
        self.bandwidth = Some(words_per_unit);
        self
    }

    /// Enables or disables CREW conflict detection.
    ///
    /// With checking **on** (the default), every read is logged, writes are
    /// buffered until the superstep boundary, and both exclusive-write
    /// conflicts and read/write races abort the step. With checking
    /// **off**, the machine becomes a pure cost model: accesses are only
    /// counted and writes apply immediately — use it for large
    /// measurement runs of kernels already proven conflict-free under
    /// checking (every kernel in [`crate::kernels`] is, by its tests).
    pub fn with_crew_checking(mut self, on: bool) -> Self {
        self.crew_checking = on;
        self
    }

    /// Allocates `n` zeroed words and returns the base address.
    pub fn alloc(&mut self, n: usize) -> usize {
        let base = self.mem.len();
        self.mem.resize(base + n, 0);
        base
    }

    /// Allocates and initializes memory from `data`; returns the base.
    pub fn load(&mut self, data: &[u64]) -> usize {
        let base = self.mem.len();
        self.mem.extend_from_slice(data);
        base
    }

    /// Copies `len` words starting at `base` out of shared memory.
    pub fn read_slice(&self, base: usize, len: usize) -> Vec<u64> {
        self.mem[base..base + len].to_vec()
    }

    /// Total simulated time (sum of superstep maxima).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Total simulated work (sum over all processors and supersteps).
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Number of supersteps executed.
    pub fn supersteps(&self) -> u64 {
        self.supersteps
    }

    /// Resets the time/work/superstep counters (memory is preserved).
    pub fn reset_counters(&mut self) {
        self.time = 0;
        self.work = 0;
        self.supersteps = 0;
    }

    /// Executes one superstep: `kernel(pid, ctx)` runs once for each
    /// `pid in 0..p` against a snapshot of memory; buffered writes are
    /// applied afterwards. Returns the step costs, or the first CREW
    /// violation found.
    ///
    /// On a violation the superstep is *not* applied and the machine's
    /// counters are left unchanged.
    pub fn step<K>(&mut self, p: usize, mut kernel: K) -> Result<StepReport, PramError>
    where
        K: FnMut(usize, &mut ProcCtx<'_>),
    {
        assert!(p > 0, "a superstep needs at least one processor");
        let buffered = self.crew_checking;
        let mut per_proc = Vec::with_capacity(p);
        let mut mem_total = 0u64;
        let mut all_writes: Vec<(usize, Vec<(usize, u64)>)> = Vec::new();
        let mut all_reads: Vec<(usize, Vec<usize>)> = Vec::new();
        for pid in 0..p {
            let mut ctx = ProcCtx {
                pid,
                mem: &mut self.mem,
                pending: Vec::new(),
                reads: Vec::new(),
                buffered,
                cost: 0,
                mem_ops: 0,
            };
            kernel(pid, &mut ctx);
            per_proc.push(ctx.cost);
            mem_total += ctx.mem_ops;
            if buffered {
                all_writes.push((pid, ctx.pending));
                all_reads.push((pid, ctx.reads));
            }
        }

        if buffered {
            // Exclusive-write check: at most one processor per address.
            let mut writer_of: HashMap<usize, usize> = HashMap::new();
            for (pid, writes) in &all_writes {
                for &(addr, _) in writes {
                    match writer_of.insert(addr, *pid) {
                        Some(prev) if prev != *pid => {
                            return Err(PramError::ExclusiveWriteConflict {
                                addr,
                                first_pid: prev,
                                second_pid: *pid,
                            });
                        }
                        _ => {}
                    }
                }
            }
            // Read/write race check.
            for (pid, reads) in &all_reads {
                for addr in reads {
                    if let Some(&writer) = writer_of.get(addr) {
                        if writer != *pid {
                            return Err(PramError::ReadWriteRace {
                                addr: *addr,
                                reader: *pid,
                                writer,
                            });
                        }
                    }
                }
            }
            // Exclusive-read check (EREW mode only).
            if self.mode == MemoryMode::Erew {
                let mut reader_of: HashMap<usize, usize> = HashMap::new();
                for (pid, reads) in &all_reads {
                    for &addr in reads {
                        match reader_of.insert(addr, *pid) {
                            Some(prev) if prev != *pid => {
                                return Err(PramError::ConcurrentRead {
                                    addr,
                                    first_pid: prev,
                                    second_pid: *pid,
                                });
                            }
                            _ => {}
                        }
                    }
                }
            }
            // Commit.
            for (_, writes) in all_writes {
                for (addr, value) in writes {
                    self.mem[addr] = value;
                }
            }
        }
        let compute_time = per_proc.iter().copied().max().unwrap_or(0);
        let time = match self.bandwidth {
            Some(bw) => compute_time.max((mem_total as f64 / bw).ceil() as u64),
            None => compute_time,
        };
        let work: u64 = per_proc.iter().sum();
        self.time += time;
        self.work += work;
        self.supersteps += 1;
        Ok(StepReport {
            time,
            work,
            mem_ops: mem_total,
            per_proc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_load_layout() {
        let mut m = PramMachine::new();
        let a = m.load(&[1, 2, 3]);
        let b = m.alloc(2);
        assert_eq!(a, 0);
        assert_eq!(b, 3);
        assert_eq!(m.read_slice(a, 3), [1, 2, 3]);
        assert_eq!(m.read_slice(b, 2), [0, 0]);
    }

    #[test]
    fn step_costs_are_max_and_sum() {
        let mut m = PramMachine::new();
        let base = m.alloc(8);
        let report = m
            .step(4, |pid, ctx| {
                // pid k performs k+1 writes to its private region.
                for i in 0..=pid {
                    ctx.write(base + pid * 2 + (i % 2), i as u64);
                }
            })
            .unwrap();
        assert_eq!(report.per_proc, vec![1, 2, 3, 4]);
        assert_eq!(report.time, 4);
        assert_eq!(report.work, 10);
        assert_eq!(m.time(), 4);
        assert_eq!(m.work(), 10);
        assert_eq!(m.supersteps(), 1);
    }

    #[test]
    fn writes_apply_at_superstep_boundary() {
        let mut m = PramMachine::new();
        let base = m.load(&[7, 7]);
        // Processor 0 writes addr 0; processor 1 reads addr 1 (no race) and
        // must observe the OLD value of addr 0 via its own read? — it may
        // not read addr 0 at all (that would race); it reads addr 1.
        m.step(2, |pid, ctx| {
            if pid == 0 {
                ctx.write(base, 42);
            } else {
                assert_eq!(ctx.read(base + 1), 7);
            }
        })
        .unwrap();
        assert_eq!(m.read_slice(base, 2), [42, 7]);
    }

    #[test]
    fn reads_within_step_see_snapshot() {
        let mut m = PramMachine::new();
        let base = m.load(&[1]);
        // A single processor writes then reads the same address: the read
        // sees the pre-step value (reads-before-writes superstep semantics).
        m.step(1, |_, ctx| {
            ctx.write(base, 99);
            assert_eq!(ctx.read(base), 1);
        })
        .unwrap();
        assert_eq!(m.read_slice(base, 1), [99]);
    }

    #[test]
    fn detects_exclusive_write_conflict() {
        let mut m = PramMachine::new();
        let base = m.alloc(1);
        let err = m.step(2, |_, ctx| ctx.write(base, 5)).unwrap_err();
        assert!(matches!(err, PramError::ExclusiveWriteConflict { addr, .. } if addr == base));
        // Counters unchanged, memory unchanged.
        assert_eq!(m.time(), 0);
        assert_eq!(m.read_slice(base, 1), [0]);
    }

    #[test]
    fn detects_read_write_race() {
        let mut m = PramMachine::new();
        let base = m.alloc(2);
        let err = m
            .step(2, |pid, ctx| {
                if pid == 0 {
                    ctx.write(base, 1);
                } else {
                    let _ = ctx.read(base);
                }
            })
            .unwrap_err();
        assert!(matches!(
            err,
            PramError::ReadWriteRace {
                reader: 1,
                writer: 0,
                ..
            }
        ));
    }

    #[test]
    fn own_write_then_read_is_not_a_race() {
        let mut m = PramMachine::new();
        let base = m.alloc(1);
        m.step(1, |_, ctx| {
            ctx.write(base, 3);
            let _ = ctx.read(base);
        })
        .unwrap();
    }

    #[test]
    fn concurrent_reads_are_allowed() {
        let mut m = PramMachine::new();
        let base = m.load(&[11]);
        let report = m
            .step(8, |_, ctx| {
                assert_eq!(ctx.read(base), 11);
            })
            .unwrap();
        assert_eq!(report.time, 1);
        assert_eq!(report.work, 8);
    }

    #[test]
    fn cost_model_mode_skips_checks_but_counts() {
        let mut m = PramMachine::new().with_crew_checking(false);
        let base = m.alloc(2);
        // Races and conflicts go undetected (documented cost-model mode) …
        let report = m
            .step(2, |pid, ctx| {
                if pid == 0 {
                    ctx.write(base, 1);
                } else {
                    let _ = ctx.read(base);
                }
                ctx.write(base + 1, pid as u64);
            })
            .unwrap();
        // … but costs are still charged (2 ops for pid 0, 2 for pid 1) and
        // writes land (last writer wins).
        assert_eq!(report.time, 2);
        assert_eq!(report.work, 4);
        assert_eq!(m.read_slice(base, 2), [1, 1]);
    }

    #[test]
    fn tick_charges_local_compute() {
        let mut m = PramMachine::new();
        let report = m
            .step(2, |pid, ctx| {
                ctx.tick(if pid == 0 { 10 } else { 3 });
            })
            .unwrap();
        assert_eq!(report.time, 10);
        assert_eq!(report.work, 13);
    }

    #[test]
    fn reset_counters_preserves_memory() {
        let mut m = PramMachine::new();
        let base = m.load(&[5]);
        m.step(1, |_, ctx| {
            let _ = ctx.read(base);
        })
        .unwrap();
        assert!(m.time() > 0);
        m.reset_counters();
        assert_eq!(m.time(), 0);
        assert_eq!(m.supersteps(), 0);
        assert_eq!(m.read_slice(base, 1), [5]);
    }

    #[test]
    fn erew_mode_rejects_concurrent_reads() {
        let mut m = PramMachine::new().with_memory_mode(MemoryMode::Erew);
        let base = m.load(&[5]);
        let err = m
            .step(2, |_, ctx| {
                let _ = ctx.read(base);
            })
            .unwrap_err();
        assert!(matches!(
            err,
            PramError::ConcurrentRead { addr, .. } if addr == base
        ));
        // Counters untouched by the failed step.
        assert_eq!(m.supersteps(), 0);
    }

    #[test]
    fn erew_mode_allows_disjoint_reads() {
        let mut m = PramMachine::new().with_memory_mode(MemoryMode::Erew);
        let base = m.load(&[1, 2, 3, 4]);
        let r = m
            .step(4, |pid, ctx| {
                assert_eq!(ctx.read(base + pid), pid as u64 + 1);
            })
            .unwrap();
        assert_eq!(r.time, 1);
    }

    #[test]
    fn mode_can_change_between_steps() {
        let mut m = PramMachine::new(); // CREW
        let base = m.load(&[7]);
        m.step(3, |_, ctx| {
            let _ = ctx.read(base);
        })
        .unwrap();
        m.set_memory_mode(MemoryMode::Erew);
        assert!(m
            .step(3, |_, ctx| {
                let _ = ctx.read(base);
            })
            .is_err());
    }

    #[test]
    fn bandwidth_limit_extends_superstep_time() {
        let mut m = PramMachine::new()
            .with_crew_checking(false)
            .with_memory_bandwidth(2.0);
        let base = m.alloc(64);
        // 4 processors × 8 writes = 32 mem ops; compute time 8; memory
        // service time ceil(32 / 2) = 16 dominates.
        let r = m
            .step(4, |pid, ctx| {
                for i in 0..8 {
                    ctx.write(base + pid * 8 + i, 1);
                }
            })
            .unwrap();
        assert_eq!(r.mem_ops, 32);
        assert_eq!(r.time, 16);
    }

    #[test]
    fn error_messages_render() {
        let e = PramError::ExclusiveWriteConflict {
            addr: 9,
            first_pid: 0,
            second_pid: 1,
        };
        assert!(e.to_string().contains("address 9"));
        let e = PramError::ReadWriteRace {
            addr: 3,
            reader: 2,
            writer: 1,
        };
        assert!(e.to_string().contains("race"));
        let e = PramError::ConcurrentRead {
            addr: 4,
            first_pid: 0,
            second_pid: 3,
        };
        assert!(e.to_string().contains("EREW"));
    }
}
