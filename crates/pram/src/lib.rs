//! # mergepath-pram — a CREW PRAM simulator
//!
//! The Merge Path paper states and analyses its algorithms on a **CREW
//! PRAM**: a shared-memory machine where any number of processors may
//! *read* an address concurrently, but at most one may *write* it, and all
//! processors advance in lockstep with unit-cost memory access.
//!
//! The paper's evaluation substitutes a 12-core x86 server for the ideal
//! machine. This crate substitutes the ideal machine for the 12-core x86
//! server: the host running this reproduction has a single CPU, so
//! wall-clock speedups cannot be observed directly — but the PRAM model
//! *defines* parallel time as the maximum per-processor operation count per
//! superstep, which a simulator measures exactly, for any `p`.
//!
//! The simulator is a BSP-style machine: each [`PramMachine::step`] runs a
//! kernel once per processor (sequentially on the host), records every
//! memory access, **detects CREW violations** (two writers to one address
//! in one superstep, or a read racing a write), applies the buffered writes
//! at the superstep boundary, and charges the superstep's elapsed time as
//! the *maximum* cost any processor incurred.
//!
//! [`kernels`] implements the paper's algorithms on this machine; the
//! Figure 5 reproduction drives them with `p = 1..12`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod machine;

pub use machine::{MemoryMode, PramError, PramMachine, ProcCtx, StepReport};
