//! Sequential reference points.
//!
//! [`textbook_merge_into`] is deliberately implemented independently of
//! `mergepath`'s kernels (no shared code) so that the §VI remark — "the
//! single-thread execution time of our algorithm was some 6% longer than a
//! truly sequential merge" — is measured against a genuinely separate
//! implementation.

use core::cmp::Ordering;

/// The classic two-pointer stable merge, straight out of CLRS (the paper's
/// reference [1]).
///
/// # Panics
/// Panics if `out.len() != a.len() + b.len()`.
pub fn textbook_merge_into<T: Ord + Clone>(a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(
        out.len(),
        a.len() + b.len(),
        "output length must equal |A| + |B|"
    );
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out[k] = a[i].clone();
            i += 1;
        } else {
            out[k] = b[j].clone();
            j += 1;
        }
        k += 1;
    }
    while i < a.len() {
        out[k] = a[i].clone();
        i += 1;
        k += 1;
    }
    while j < b.len() {
        out[k] = b[j].clone();
        j += 1;
        k += 1;
    }
}

/// [`textbook_merge_into`] with a comparator.
pub fn textbook_merge_into_by<T: Clone, F>(a: &[T], b: &[T], out: &mut [T], cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    assert_eq!(
        out.len(),
        a.len() + b.len(),
        "output length must equal |A| + |B|"
    );
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&a[i], &b[j]) != Ordering::Greater {
            out[k] = a[i].clone();
            i += 1;
        } else {
            out[k] = b[j].clone();
            j += 1;
        }
        k += 1;
    }
    while i < a.len() {
        out[k] = a[i].clone();
        i += 1;
        k += 1;
    }
    while j < b.len() {
        out[k] = b[j].clone();
        j += 1;
        k += 1;
    }
}

/// The strawman that ignores the inputs' sortedness: concatenate and run a
/// full `O(N log N)` sort. Useful as a sanity floor in the benches.
pub fn concat_sort_merge<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out: Vec<T> = a.iter().chain(b.iter()).cloned().collect();
    out.sort(); // std stable sort preserves A-before-B on ties
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<i64>) -> Vec<i64> {
        v.sort();
        v
    }

    #[test]
    fn textbook_merge_basic() {
        let mut out = [0; 6];
        textbook_merge_into(&[1, 3, 5], &[2, 4, 6], &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn textbook_merge_is_stable() {
        let a = [(1, 'a'), (2, 'a')];
        let b = [(1, 'b'), (2, 'b')];
        let mut out = [(0, '_'); 4];
        textbook_merge_into_by(&a, &b, &mut out, &|x, y| x.0.cmp(&y.0));
        assert_eq!(out, [(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn wrong_length_panics() {
        let mut out = [0; 1];
        textbook_merge_into(&[1], &[2], &mut out);
    }

    proptest! {
        #[test]
        fn agrees_with_mergepath_kernel(
            a in proptest::collection::vec(-100i64..100, 0..150).prop_map(sorted),
            b in proptest::collection::vec(-100i64..100, 0..150).prop_map(sorted),
        ) {
            let mut ours = vec![0; a.len() + b.len()];
            textbook_merge_into(&a, &b, &mut ours);
            let mut theirs = vec![0; a.len() + b.len()];
            mergepath::merge::sequential::merge_into(&a, &b, &mut theirs);
            prop_assert_eq!(&ours, &theirs);
            prop_assert_eq!(concat_sort_merge(&a, &b), theirs);
        }
    }
}
