//! Batcher's bitonic merge and sort (the paper's reference [4]).
//!
//! A data-oblivious sorting network: `O(N log² N)` comparisons arranged in
//! `O(log² N)` stages of `N/2` independent compare-exchanges. The paper
//! cites it as the representative of algorithms whose processor count
//! scales with the problem size; against Merge Path it trades an extra
//! `log N` factor of work for obliviousness (no data-dependent partition
//! step at all).
//!
//! Arbitrary lengths are handled by padding to the next power of two with a
//! virtual `+∞` sentinel (`None` under a reversed-`Option` order), which
//! never moves ahead of a real element in an ascending sort.

use core::cmp::Ordering;

/// Compares with `None` treated as `+∞` (greater than every `Some`).
#[inline]
fn cmp_pad<T: Ord>(x: &Option<T>, y: &Option<T>) -> Ordering {
    match (x, y) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Greater,
        (Some(_), None) => Ordering::Less,
        (Some(a), Some(b)) => a.cmp(b),
    }
}

/// One full bitonic sort pass over a power-of-two buffer.
fn bitonic_network<T: Ord>(v: &mut [Option<T>]) {
    let n = v.len();
    debug_assert!(n.is_power_of_two() || n == 0);
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    let ascending = i & k == 0;
                    let out_of_order = cmp_pad(&v[i], &v[l]) == Ordering::Greater;
                    if out_of_order == ascending {
                        v.swap(i, l);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// The final merge phase of the network only (input must be bitonic):
/// stages `j = n/2, n/4, …, 1`, all ascending.
fn bitonic_merge_network<T: Ord>(v: &mut [Option<T>]) {
    let n = v.len();
    debug_assert!(n.is_power_of_two() || n == 0);
    let mut j = n / 2;
    while j > 0 {
        for i in 0..n {
            let l = i ^ j;
            if l > i && cmp_pad(&v[i], &v[l]) == Ordering::Greater {
                v.swap(i, l);
            }
        }
        j /= 2;
    }
}

/// Sorts `v` ascending with the bitonic network (not stable).
///
/// # Examples
/// ```
/// use mergepath_baselines::bitonic::bitonic_sort;
/// let mut v = vec![5, 2, 9, 1, 7]; // arbitrary length: padded internally
/// bitonic_sort(&mut v);
/// assert_eq!(v, [1, 2, 5, 7, 9]);
/// ```
pub fn bitonic_sort<T: Ord + Clone>(v: &mut [T]) {
    let n = v.len();
    if n <= 1 {
        return;
    }
    let m = n.next_power_of_two();
    let mut buf: Vec<Option<T>> = v.iter().cloned().map(Some).collect();
    buf.resize_with(m, || None);
    bitonic_network(&mut buf);
    for (dst, src) in v.iter_mut().zip(buf) {
        *dst = src.expect("padding sorts to the back");
    }
}

/// Merges two sorted arrays with the bitonic merge network: `a ++ reverse(b)`
/// is bitonic, so `O(N log N)` oblivious compare-exchanges finish the job.
/// (Not stable.)
///
/// # Panics
/// Panics if `out.len() != a.len() + b.len()`.
pub fn bitonic_merge_into<T: Ord + Clone>(a: &[T], b: &[T], out: &mut [T]) {
    let n = a.len() + b.len();
    assert_eq!(out.len(), n, "output length must equal |A| + |B|");
    if n == 0 {
        return;
    }
    let m = n.next_power_of_two();
    // Bitonic layout: A ascending, then padding (+∞), then B descending —
    // the whole buffer first rises then falls, i.e. is bitonic.
    let mut buf: Vec<Option<T>> = Vec::with_capacity(m);
    buf.extend(a.iter().cloned().map(Some));
    buf.resize_with(m - b.len(), || None);
    buf.extend(b.iter().rev().cloned().map(Some));
    bitonic_merge_network(&mut buf);
    for (dst, src) in out.iter_mut().zip(buf) {
        *dst = src.expect("padding sorts to the back");
    }
}

/// Thread-parallel bitonic sort: within each `(k, j)` stage the
/// compare-exchange pairs are confined to aligned `2j`-blocks, so the
/// blocks are distributed over `threads` scoped workers with disjoint
/// `&mut` access.
pub fn parallel_bitonic_sort<T: Ord + Clone + Send>(v: &mut [T], threads: usize) {
    assert!(threads > 0, "thread count must be at least 1");
    let n = v.len();
    if n <= 1 {
        return;
    }
    let m = n.next_power_of_two();
    let mut buf: Vec<Option<T>> = v.iter().cloned().map(Some).collect();
    buf.resize_with(m, || None);

    let mut k = 2usize;
    while k <= m {
        let mut j = k / 2;
        while j > 0 {
            let block = 2 * j;
            if threads == 1 || m / block < 2 {
                stage(&mut buf, k, j, 0);
            } else {
                // Hand each worker a contiguous run of 2j-aligned blocks.
                let blocks = m / block;
                std::thread::scope(|scope| {
                    let mut rest = &mut buf[..];
                    let mut offset = 0usize;
                    for t in 0..threads {
                        let lo_blk = t * blocks / threads;
                        let hi_blk = (t + 1) * blocks / threads;
                        let len = (hi_blk - lo_blk) * block;
                        if len == 0 {
                            continue;
                        }
                        let (chunk, tail) = rest.split_at_mut(len);
                        rest = tail;
                        let base = offset;
                        offset += len;
                        scope.spawn(move || stage(chunk, k, j, base));
                    }
                });
            }
            j /= 2;
        }
        k *= 2;
    }
    for (dst, src) in v.iter_mut().zip(buf) {
        *dst = src.expect("padding sorts to the back");
    }
}

/// Runs one `(k, j)` stage over `chunk`, whose first element has global
/// index `base` (needed for the ascending/descending decision `i & k`).
fn stage<T: Ord>(chunk: &mut [Option<T>], k: usize, j: usize, base: usize) {
    for local in 0..chunk.len() {
        let i = base + local;
        let l = i ^ j;
        if l > i {
            let l_local = l - base;
            debug_assert!(l_local < chunk.len(), "pair crosses chunk boundary");
            let ascending = i & k == 0;
            let out_of_order = cmp_pad(&chunk[local], &chunk[l_local]) == Ordering::Greater;
            if out_of_order == ascending {
                chunk.swap(local, l_local);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<i64>) -> Vec<i64> {
        v.sort();
        v
    }

    #[test]
    fn sorts_power_of_two() {
        let mut v: Vec<i64> = (0..64).rev().collect();
        bitonic_sort(&mut v);
        assert_eq!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sorts_arbitrary_lengths() {
        for n in [0usize, 1, 2, 3, 5, 17, 100, 1000, 1023, 1025] {
            let mut v: Vec<i64> = (0..n as i64).map(|x| (x * 7919 + 1) % 997).collect();
            let mut expect = v.clone();
            expect.sort();
            bitonic_sort(&mut v);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn merge_network_merges() {
        let a: Vec<i64> = (0..100).map(|x| x * 2).collect();
        let b: Vec<i64> = (0..77).map(|x| x * 3 + 1).collect();
        let mut out = vec![0; 177];
        bitonic_merge_into(&a, &b, &mut out);
        let mut expect: Vec<i64> = a.iter().chain(&b).copied().collect();
        expect.sort();
        assert_eq!(out, expect);
    }

    #[test]
    fn merge_empty_sides() {
        let mut out = vec![0i64; 3];
        bitonic_merge_into(&[], &[1, 2, 3], &mut out);
        assert_eq!(out, [1, 2, 3]);
        bitonic_merge_into(&[1, 2, 3], &[], &mut out);
        assert_eq!(out, [1, 2, 3]);
        let mut empty: Vec<i64> = vec![];
        bitonic_merge_into::<i64>(&[], &[], &mut empty);
    }

    #[test]
    fn parallel_matches_sequential() {
        let base: Vec<i64> = (0..2000).map(|x| (x * 31 + 7) % 1231).collect();
        let mut expect = base.clone();
        expect.sort();
        for threads in [1, 2, 3, 4, 8] {
            let mut v = base.clone();
            parallel_bitonic_sort(&mut v, threads);
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn comparison_count_is_superlinear() {
        // Structural check of the O(N log² N) claim: count the
        // compare-exchange visits for two sizes and verify growth faster
        // than linear (ratio > size ratio).
        fn stages(n: usize) -> u64 {
            let m = n.next_power_of_two() as u64;
            let lg = m.trailing_zeros() as u64;
            m / 2 * lg * (lg + 1) / 2
        }
        assert!(stages(1 << 16) > 8 * stages(1 << 12));
    }

    /// The 0–1 principle: a comparison network sorts all inputs iff it
    /// sorts all 0/1 inputs. Exhaustively check every 0/1 sequence up to
    /// length 12 (padding paths included via odd lengths).
    #[test]
    fn zero_one_principle_exhaustive() {
        for n in 1usize..=12 {
            for mask in 0u32..(1 << n) {
                let mut v: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
                let ones = v.iter().filter(|&&x| x == 1).count();
                bitonic_sort(&mut v);
                let expect: Vec<u8> = std::iter::repeat_n(0u8, n - ones)
                    .chain(std::iter::repeat_n(1u8, ones))
                    .collect();
                assert_eq!(v, expect, "n={n} mask={mask:b}");
            }
        }
    }

    /// Same exhaustive 0/1 check for the merge network.
    #[test]
    fn zero_one_principle_merge_network() {
        for na in 0usize..=6 {
            for nb in 0usize..=6 {
                for ma in 0u32..(1 << na) {
                    for mb in 0u32..(1 << nb) {
                        let mut a: Vec<u8> = (0..na).map(|i| ((ma >> i) & 1) as u8).collect();
                        let mut b: Vec<u8> = (0..nb).map(|i| ((mb >> i) & 1) as u8).collect();
                        a.sort_unstable();
                        b.sort_unstable();
                        let mut out = vec![0u8; na + nb];
                        bitonic_merge_into(&a, &b, &mut out);
                        let ones = a.iter().chain(&b).filter(|&&x| x == 1).count();
                        let expect: Vec<u8> = std::iter::repeat_n(0u8, na + nb - ones)
                            .chain(std::iter::repeat_n(1u8, ones))
                            .collect();
                        assert_eq!(out, expect);
                    }
                }
            }
        }
    }

    proptest! {
        #[test]
        fn bitonic_sort_matches_std(mut v in proptest::collection::vec(-1000i64..1000, 0..400)) {
            let mut expect = v.clone();
            expect.sort();
            bitonic_sort(&mut v);
            prop_assert_eq!(v, expect);
        }

        #[test]
        fn bitonic_merge_matches_oracle(
            a in proptest::collection::vec(-100i64..100, 0..120).prop_map(sorted),
            b in proptest::collection::vec(-100i64..100, 0..120).prop_map(sorted),
        ) {
            let mut out = vec![0; a.len() + b.len()];
            bitonic_merge_into(&a, &b, &mut out);
            let mut expect: Vec<i64> = a.iter().chain(&b).copied().collect();
            expect.sort();
            prop_assert_eq!(out, expect);
        }

        #[test]
        fn parallel_bitonic_matches_std(
            mut v in proptest::collection::vec(-1000i64..1000, 0..300),
            threads in 1usize..6,
        ) {
            let mut expect = v.clone();
            expect.sort();
            parallel_bitonic_sort(&mut v, threads);
            prop_assert_eq!(v, expect);
        }
    }
}
