//! Merging by multiselection (the paper's reference [7]: Deo, Jain,
//! Medidi — "An optimal parallel algorithm for merging using
//! multiselection").
//!
//! Instead of `p − 1` *independent* diagonal searches (Merge Path) or
//! `log p` rounds of single median bisections (Akl–Santoro), the
//! multiselection algorithm finds all `p − 1` equispaced selection points
//! in one shared recursion: select the median *rank*, split both arrays
//! there, and recurse with the left ranks into the left halves and the
//! right ranks into the right halves. Each rank is found once, but ranks
//! deeper in the recursion search ever-smaller sub-arrays, so the total
//! search work is `O(p·log(N/p) + p·log p)` — asymptotically less than
//! Merge Path's `O(p·log N)` total, at the price of a `O(log p)`-deep
//! *dependent* recursion (the EREW-friendly structure ref [7] targets).
//!
//! The `c1_complexity` experiment compares the three partitioners'
//! measured comparison counts and round structure.

use core::cmp::Ordering;

use mergepath::diagonal::co_rank_counted;
use mergepath::merge::sequential::merge_into_by;
use mergepath::partition::{segment_boundary, Segment};

/// Result of a multiselection partition.
#[derive(Debug, Clone)]
pub struct MultiselectPartition {
    /// The `p` merge jobs, in output order.
    pub segments: Vec<Segment>,
    /// Total comparisons spent across all selections.
    pub search_comparisons: u64,
    /// Depth of the shared recursion (sequential rounds).
    pub rounds: u32,
}

/// Finds the split points for all `ranks` (ascending, within
/// `0..=|a|+|b|`) by shared recursion; returns one `(i, j)` per rank.
pub fn multiselect_by<T, F>(
    a: &[T],
    b: &[T],
    ranks: &[usize],
    cmp: &F,
) -> (Vec<(usize, usize)>, u64, u32)
where
    F: Fn(&T, &T) -> Ordering,
{
    debug_assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "ranks must ascend");
    let mut out = vec![(0usize, 0usize); ranks.len()];
    let mut comparisons = 0u64;
    let mut max_depth = 0u32;
    #[allow(clippy::too_many_arguments)]
    fn go<T, F>(
        a: &[T],
        b: &[T],
        a_off: usize,
        b_off: usize,
        ranks: &[usize],
        slots: &mut [(usize, usize)],
        cmp: &F,
        comparisons: &mut u64,
        depth: u32,
        max_depth: &mut u32,
    ) where
        F: Fn(&T, &T) -> Ordering,
    {
        if ranks.is_empty() {
            return;
        }
        *max_depth = (*max_depth).max(depth);
        let mid = ranks.len() / 2;
        // Select the middle rank within this sub-problem.
        let local_rank = ranks[mid] - (a_off + b_off);
        let (i, c) = co_rank_counted(local_rank, a, b, cmp);
        *comparisons += c as u64;
        let j = local_rank - i;
        slots[mid] = (a_off + i, b_off + j);
        // Left ranks live entirely in the prefixes, right ranks in the
        // suffixes — the multiselection sharing.
        let (left_ranks, rest) = ranks.split_at(mid);
        let right_ranks = &rest[1..];
        let (left_slots, rest_slots) = slots.split_at_mut(mid);
        let right_slots = &mut rest_slots[1..];
        go(
            &a[..i],
            &b[..j],
            a_off,
            b_off,
            left_ranks,
            left_slots,
            cmp,
            comparisons,
            depth + 1,
            max_depth,
        );
        go(
            &a[i..],
            &b[j..],
            a_off + i,
            b_off + j,
            right_ranks,
            right_slots,
            cmp,
            comparisons,
            depth + 1,
            max_depth,
        );
    }
    go(
        a,
        b,
        0,
        0,
        ranks,
        &mut out,
        cmp,
        &mut comparisons,
        0,
        &mut max_depth,
    );
    (out, comparisons, max_depth)
}

/// Partitions the merge into `p` equisized jobs via multiselection.
pub fn multiselect_partition<T: Ord>(a: &[T], b: &[T], p: usize) -> MultiselectPartition {
    assert!(p > 0, "at least one processor required");
    let cmp = |x: &T, y: &T| x.cmp(y);
    let n = a.len() + b.len();
    let ranks: Vec<usize> = (1..p).map(|k| segment_boundary(n, p, k)).collect();
    let (points, search_comparisons, rounds) = multiselect_by(a, b, &ranks, &cmp);
    let mut full = Vec::with_capacity(p + 1);
    full.push((0, 0));
    full.extend(points);
    full.push((a.len(), b.len()));
    let segments = full
        .windows(2)
        .map(|w| Segment {
            a_start: w[0].0,
            a_end: w[1].0,
            b_start: w[0].1,
            b_end: w[1].1,
            out_start: w[0].0 + w[0].1,
            out_end: w[1].0 + w[1].1,
        })
        .collect();
    MultiselectPartition {
        segments,
        search_comparisons,
        rounds,
    }
}

/// Parallel merge using the multiselection partition.
pub fn multiselect_merge_into<T>(a: &[T], b: &[T], out: &mut [T], p: usize)
where
    T: Ord + Clone + Send + Sync,
{
    assert_eq!(
        out.len(),
        a.len() + b.len(),
        "output length must equal |A| + |B|"
    );
    let partition = multiselect_partition(a, b, p);
    let cmp = |x: &T, y: &T| x.cmp(y);
    std::thread::scope(|scope| {
        let mut rest = out;
        for (idx, s) in partition.segments.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut(s.len());
            rest = tail;
            let (sa, sb) = (&a[s.a_start..s.a_end], &b[s.b_start..s.b_end]);
            let mut work = move || merge_into_by(sa, sb, chunk, &cmp);
            if idx + 1 == partition.segments.len() {
                work();
            } else {
                scope.spawn(work);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergepath::partition::partition_segments;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<i64>) -> Vec<i64> {
        v.sort();
        v
    }

    fn oracle(a: &[i64], b: &[i64]) -> Vec<i64> {
        let mut out = vec![0; a.len() + b.len()];
        mergepath::merge::sequential::merge_into(a, b, &mut out);
        out
    }

    #[test]
    fn same_segments_as_merge_path() {
        // Both partitioners cut at the same equispaced output ranks with
        // the same stable tie-break, so the segments must be identical.
        let a: Vec<i64> = (0..3000).map(|x| x * 2).collect();
        let b: Vec<i64> = (0..2500).map(|x| (x * 3) % 4001).collect::<Vec<_>>();
        let b = sorted(b);
        for p in [1usize, 2, 5, 12] {
            let ms = multiselect_partition(&a, &b, p);
            let mp = partition_segments(&a, &b, p);
            assert_eq!(ms.segments, mp, "p={p}");
        }
    }

    #[test]
    fn merge_is_correct() {
        let a: Vec<i64> = (0..2222).collect();
        let b: Vec<i64> = (0..3333).map(|x| x * 2 - 1000).collect();
        for p in [1usize, 3, 8] {
            let mut out = vec![0; 5555];
            multiselect_merge_into(&a, &b, &mut out, p);
            assert_eq!(out, oracle(&a, &b), "p={p}");
        }
    }

    #[test]
    fn recursion_depth_is_logarithmic() {
        let a: Vec<i64> = (0..8192).collect();
        let b: Vec<i64> = (0..8192).map(|x| x + 5).collect();
        for (p, max_rounds) in [(2usize, 1u32), (8, 3), (16, 4), (64, 6)] {
            let ms = multiselect_partition(&a, &b, p);
            assert!(
                ms.rounds <= max_rounds,
                "p={p}: rounds {} > {max_rounds}",
                ms.rounds
            );
        }
    }

    #[test]
    fn shared_recursion_saves_comparisons_at_high_p() {
        // The deeper selections search shrunken sub-arrays, so the total
        // comparison count should undercut p−1 independent full searches.
        let a: Vec<i64> = (0..1 << 16).collect();
        let b: Vec<i64> = (0..1 << 16).map(|x| x * 2).collect();
        let p = 256;
        let ms = multiselect_partition(&a, &b, p);
        let cmp = |x: &i64, y: &i64| x.cmp(y);
        let mp =
            mergepath::partition::partition_segments_counted(a.as_slice(), b.as_slice(), p, &cmp);
        let mp_total: u64 = mp.comparisons.iter().map(|&c| c as u64).sum();
        assert!(
            ms.search_comparisons < mp_total,
            "multiselect {} should undercut independent searches {}",
            ms.search_comparisons,
            mp_total
        );
    }

    proptest! {
        #[test]
        fn always_equals_stable_merge(
            a in proptest::collection::vec(-100i64..100, 0..150).prop_map(sorted),
            b in proptest::collection::vec(-100i64..100, 0..150).prop_map(sorted),
            p in 1usize..10,
        ) {
            let mut out = vec![0; a.len() + b.len()];
            multiselect_merge_into(&a, &b, &mut out, p);
            prop_assert_eq!(out, oracle(&a, &b));
        }

        #[test]
        fn arbitrary_rank_lists(
            a in proptest::collection::vec(-50i64..50, 0..100).prop_map(sorted),
            b in proptest::collection::vec(-50i64..50, 0..100).prop_map(sorted),
            mut ranks in proptest::collection::vec(0usize..200, 0..10),
        ) {
            let n = a.len() + b.len();
            for r in &mut ranks {
                *r %= n + 1;
            }
            ranks.sort();
            let cmp = |x: &i64, y: &i64| x.cmp(y);
            let (points, _, _) = multiselect_by(&a, &b, &ranks, &cmp);
            for (&r, &(i, j)) in ranks.iter().zip(&points) {
                prop_assert_eq!(i + j, r);
                prop_assert_eq!(
                    i,
                    mergepath::diagonal::co_rank(r, &a, &b),
                    "rank {}", r
                );
            }
        }
    }
}
