//! # mergepath-baselines — comparison algorithms from the paper's §V
//!
//! Every algorithm the paper positions itself against, implemented from
//! scratch so the comparisons in `EXPERIMENTS.md` run against real code
//! rather than citations:
//!
//! * [`sequential`] — the textbook two-pointer merge (the §VI speedup
//!   baseline and the subject of the "6% overhead" remark) and a
//!   sort-the-concatenation strawman.
//! * [`naive`] — the §I *incorrect* equal-split parallelization, kept as an
//!   executable counterexample.
//! * [`rank_partition`] — Shiloach–Vishkin-style workload partitioning
//!   (ref [6]): equal chunks of `A`, co-partitioned `B` by rank; correct
//!   but imbalanced (up to `2N/p` per processor on uniform data, worse on
//!   skew) — the imbalance the paper's Corollary 7 eliminates.
//! * [`akl_santoro`] — recursive median bisection (ref [5]): `log p`
//!   partition rounds, conflict-free reads, `O(N/p + log N · log p)` time.
//! * [`multiselect`] — Deo–Jain–Medidi multiselection (ref [7]): all
//!   `p − 1` selection points found in one shared `O(log p)`-deep
//!   recursion.
//! * [`bitonic`] — Batcher's bitonic merge and sort (ref [4]):
//!   `O(N log² N)` work, data-oblivious.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod akl_santoro;
pub mod bitonic;
pub mod multiselect;
pub mod naive;
pub mod rank_partition;
pub mod sequential;
