//! The naive equal-split parallel "merge" — the paper's §I counterexample.
//!
//! > "A naïve approach to parallel merge would entail partitioning each of
//! > the two arrays into equal-length contiguous sub-arrays and assigning a
//! > pair of same-numbered sub-arrays to each core. […] Unfortunately, this
//! > is incorrect. (To see this, consider the case wherein all the elements
//! > of A are greater than all those of B.)"
//!
//! The algorithm is implemented faithfully so the failure is demonstrable
//! and measurable: [`naive_equal_split_merge`] produces locally-sorted
//! chunks whose concatenation is *not* globally sorted in general;
//! [`count_order_violations`] quantifies how wrong it is.

use mergepath::merge::sequential::merge_into_by;

/// The incorrect equal-split parallel merge: chunk `i` of the output is the
/// merge of the `i`-th equal slice of `A` with the `i`-th equal slice of
/// `B`.
///
/// # Examples
/// ```
/// use mergepath_baselines::naive::{count_order_violations, naive_equal_split_merge};
/// // The paper's counterexample: all of A greater than all of B.
/// let a = [10, 11, 12, 13];
/// let b = [0, 1, 2, 3];
/// let wrong = naive_equal_split_merge(&a, &b, 2);
/// assert!(count_order_violations(&wrong) > 0); // provably incorrect
/// ```
///
/// **This function is intentionally wrong** (it is the paper's motivating
/// counterexample). It is correct only for inputs whose merge path happens
/// to pass through all the equal-split grid points — e.g. perfectly
/// interleaved arrays.
pub fn naive_equal_split_merge<T: Ord + Clone + Default + Send + Sync>(
    a: &[T],
    b: &[T],
    p: usize,
) -> Vec<T> {
    assert!(p > 0, "at least one chunk required");
    let mut out = vec![T::default(); a.len() + b.len()];
    let bounds_a: Vec<usize> = (0..=p).map(|k| k * a.len() / p).collect();
    let bounds_b: Vec<usize> = (0..=p).map(|k| k * b.len() / p).collect();
    std::thread::scope(|scope| {
        let mut rest = &mut out[..];
        for k in 0..p {
            let (alo, ahi) = (bounds_a[k], bounds_a[k + 1]);
            let (blo, bhi) = (bounds_b[k], bounds_b[k + 1]);
            let len = (ahi - alo) + (bhi - blo);
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            let (sa, sb) = (&a[alo..ahi], &b[blo..bhi]);
            let mut work = move || merge_into_by(sa, sb, chunk, &|x: &T, y: &T| x.cmp(y));
            if k + 1 == p {
                work();
            } else {
                scope.spawn(work);
            }
        }
    });
    out
}

/// Number of adjacent inversions (`out[i] > out[i+1]`) — zero iff sorted.
pub fn count_order_violations<T: Ord>(out: &[T]) -> usize {
    out.windows(2).filter(|w| w[0] > w[1]).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fails_on_the_papers_counterexample() {
        // All of A greater than all of B.
        let a: Vec<i64> = (100..200).collect();
        let b: Vec<i64> = (0..100).collect();
        let out = naive_equal_split_merge(&a, &b, 4);
        let violations = count_order_violations(&out);
        assert!(
            violations > 0,
            "the naive split must fail on the adversarial input"
        );
        // The multiset is still right — it is the ORDER that breaks.
        let mut sorted = out.clone();
        sorted.sort();
        assert_eq!(sorted, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn happens_to_work_on_perfect_interleave() {
        let a: Vec<i64> = (0..100).map(|x| 2 * x).collect();
        let b: Vec<i64> = (0..100).map(|x| 2 * x + 1).collect();
        let out = naive_equal_split_merge(&a, &b, 4);
        assert_eq!(count_order_violations(&out), 0);
    }

    #[test]
    fn single_chunk_degenerates_to_correct_merge() {
        let a: Vec<i64> = (50..80).collect();
        let b: Vec<i64> = (0..100).step_by(3).map(|x| x as i64).collect();
        let out = naive_equal_split_merge(&a, &b, 1);
        assert_eq!(count_order_violations(&out), 0);
    }

    proptest! {
        /// The defect quantified: whenever the true merge path deviates from
        /// the equal-split grid points, the naive result is unsorted.
        #[test]
        fn incorrect_iff_path_misses_grid_points(
            mut a in proptest::collection::vec(-100i64..100, 4..80),
            mut b in proptest::collection::vec(-100i64..100, 4..80),
            p in 2usize..6,
        ) {
            a.sort();
            b.sort();
            let out = naive_equal_split_merge(&a, &b, p);
            let naive_ok = count_order_violations(&out) == 0;
            // Oracle: naive is right iff for every k, the path point on the
            // combined diagonal equals the equal-split point. We check the
            // weaker, sufficient direction: if naive produced sorted output
            // it must equal the true merge (same multiset + sorted ⇒ equal
            // as multisets are equal by construction).
            if naive_ok {
                let mut expect = vec![0i64; a.len() + b.len()];
                mergepath::merge::sequential::merge_into(&a, &b, &mut expect);
                prop_assert_eq!(out, expect);
            }
        }
    }
}
