//! Shiloach–Vishkin-style rank partitioning (the paper's reference [6]).
//!
//! The workload is split by slicing `A` into `p` equal chunks and
//! co-partitioning `B` at the ranks of the chunk boundaries. This is
//! *correct* (unlike the naive split — the output ranges are genuine merge-
//! path segments) but **not load balanced**: processor `k` always receives
//! `|A|/p` elements of `A`, plus however many elements of `B` fall between
//! two consecutive `A` boundary values — on uniform data up to about
//! `2N/p`, and up to `|A|/p + |B|` on adversarial data. The paper (§V)
//! points out that with tight constants such imbalance translates directly
//! into a 2× latency hit, which Merge Path's equisized segments avoid
//! (Corollary 7).

use core::cmp::Ordering;

use mergepath::merge::kway::lower_bound_by;
use mergepath::merge::sequential::merge_into_by;
use mergepath::partition::Segment;

/// Computes the rank-partitioned segments: equal `A`-chunks, `B` split at
/// the ranks of the `A` chunk boundaries.
pub fn rank_partition_segments<T: Ord>(a: &[T], b: &[T], p: usize) -> Vec<Segment> {
    rank_partition_segments_by(a, b, p, &|x: &T, y: &T| x.cmp(y))
}

/// [`rank_partition_segments`] with a comparator.
pub fn rank_partition_segments_by<T, F>(a: &[T], b: &[T], p: usize, cmp: &F) -> Vec<Segment>
where
    F: Fn(&T, &T) -> Ordering,
{
    assert!(p > 0, "at least one processor required");
    let mut segments = Vec::with_capacity(p);
    let mut prev = (0usize, 0usize);
    for k in 1..=p {
        let a_end = k * a.len() / p;
        // Stability: B elements equal to the boundary value stay to the
        // right (they come after equal A elements).
        let b_end = if k == p {
            b.len()
        } else if a_end == 0 {
            0
        } else {
            lower_bound_by(b, &a[a_end - 1], cmp).max(prev.1)
        };
        segments.push(Segment {
            a_start: prev.0,
            a_end,
            b_start: prev.1,
            b_end,
            out_start: prev.0 + prev.1,
            out_end: a_end + b_end,
        });
        prev = (a_end, b_end);
    }
    segments
}

/// Correct (but imbalanced) parallel merge using the rank partition.
pub fn rank_partition_merge_into<T>(a: &[T], b: &[T], out: &mut [T], p: usize)
where
    T: Ord + Clone + Send + Sync,
{
    assert_eq!(
        out.len(),
        a.len() + b.len(),
        "output length must equal |A| + |B|"
    );
    let cmp = |x: &T, y: &T| x.cmp(y);
    let segments = rank_partition_segments_by(a, b, p, &cmp);
    std::thread::scope(|scope| {
        let mut rest = out;
        for (idx, s) in segments.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut(s.len());
            rest = tail;
            let (sa, sb) = (&a[s.a_start..s.a_end], &b[s.b_start..s.b_end]);
            let mut work = move || merge_into_by(sa, sb, chunk, &cmp);
            if idx + 1 == segments.len() {
                work();
            } else {
                scope.spawn(work);
            }
        }
    });
}

/// Load-imbalance ratio `max segment / mean segment` of the rank partition
/// (1.0 = perfect). Merge Path guarantees ≤ `1 + p/N`; this scheme does not.
pub fn rank_partition_imbalance<T: Ord>(a: &[T], b: &[T], p: usize) -> f64 {
    let segments = rank_partition_segments(a, b, p);
    let total: usize = segments.iter().map(Segment::len).sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / p as f64;
    let max = segments.iter().map(Segment::len).max().unwrap_or(0);
    max as f64 / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<i64>) -> Vec<i64> {
        v.sort();
        v
    }

    fn oracle(a: &[i64], b: &[i64]) -> Vec<i64> {
        let mut out = vec![0; a.len() + b.len()];
        mergepath::merge::sequential::merge_into(a, b, &mut out);
        out
    }

    #[test]
    fn produces_correct_merge() {
        let a: Vec<i64> = (0..1000).map(|x| x * 3).collect();
        let b: Vec<i64> = (0..800).map(|x| x * 4 + 1).collect();
        let mut out = vec![0; 1800];
        rank_partition_merge_into(&a, &b, &mut out, 6);
        assert_eq!(out, oracle(&a, &b));
    }

    #[test]
    fn segments_tile_inputs() {
        let a: Vec<i64> = (0..97).collect();
        let b: Vec<i64> = (0..53).map(|x| x * 2).collect();
        let segs = rank_partition_segments(&a, &b, 5);
        assert_eq!(segs.len(), 5);
        assert_eq!(segs[0].a_start, 0);
        assert_eq!(segs.last().unwrap().a_end, 97);
        assert_eq!(segs.last().unwrap().b_end, 53);
        for w in segs.windows(2) {
            assert_eq!(w[0].a_end, w[1].a_start);
            assert_eq!(w[0].b_end, w[1].b_start);
        }
    }

    #[test]
    fn imbalance_on_adversarial_input() {
        // All of B falls inside the last A-chunk's value range: the last
        // processor gets |A|/p + |B| elements.
        let a: Vec<i64> = (0..1000).collect();
        let b: Vec<i64> = vec![999; 500]; // all equal to A's max
        let p = 4;
        let imb = rank_partition_imbalance(&a, &b, p);
        // Last segment: 250 + 500 = 750 of 1500 total; mean 375 → ratio 2.0.
        assert!(imb > 1.9, "expected heavy imbalance, got {imb}");
        // Merge Path on the same input is perfectly balanced.
        let segs = mergepath::partition::partition_segments(&a, &b, p);
        let max = segs.iter().map(|s| s.len()).max().unwrap();
        let min = segs.iter().map(|s| s.len()).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn near_balance_on_uniform_like_input() {
        let a: Vec<i64> = (0..10_000).map(|x| x * 7 % 65_536).collect::<Vec<_>>();
        let a = sorted(a);
        let b: Vec<i64> = sorted((0..10_000).map(|x| x * 13 % 65_536).collect());
        let imb = rank_partition_imbalance(&a, &b, 8);
        assert!(imb < 1.5, "uniform data should be mildly imbalanced: {imb}");
    }

    proptest! {
        #[test]
        fn always_correct_despite_imbalance(
            a in proptest::collection::vec(-100i64..100, 0..150).prop_map(sorted),
            b in proptest::collection::vec(-100i64..100, 0..150).prop_map(sorted),
            p in 1usize..8,
        ) {
            let mut out = vec![0; a.len() + b.len()];
            rank_partition_merge_into(&a, &b, &mut out, p);
            prop_assert_eq!(out, oracle(&a, &b));
        }

        #[test]
        fn segments_cover_exactly(
            a in proptest::collection::vec(-50i64..50, 0..100).prop_map(sorted),
            b in proptest::collection::vec(-50i64..50, 0..100).prop_map(sorted),
            p in 1usize..8,
        ) {
            let segs = rank_partition_segments(&a, &b, p);
            let ta: usize = segs.iter().map(|s| s.a_len()).sum();
            let tb: usize = segs.iter().map(|s| s.b_len()).sum();
            prop_assert_eq!(ta, a.len());
            prop_assert_eq!(tb, b.len());
        }
    }
}
