//! Akl–Santoro recursive median bisection (the paper's reference [5]).
//!
//! The original EREW algorithm finds the pair of positions `(i, j)` that
//! split the merged output at its median, then recurses on the two halves
//! with half the processors each — `O(log p)` sequential rounds of
//! `O(log N)` median searches, after which the `p` sub-array pairs are
//! merged independently and concatenated. Total time
//! `O(N/p + log N · log p)`: slightly worse than Merge Path's
//! `O(N/p + log N)` because the partition rounds are *dependent* (each
//! level needs the previous level's split), whereas Merge Path computes all
//! `p − 1` cut points independently. That asymptotic gap is the paper's §V
//! comparison, reproduced by the `c1_complexity` experiment.

use core::cmp::Ordering;

use mergepath::diagonal::co_rank_counted;
use mergepath::merge::sequential::merge_into_by;
use mergepath::partition::Segment;

/// The partition produced by the recursive bisection, plus the number of
/// *sequential rounds* of searches it needed (the `log p` factor).
#[derive(Debug, Clone)]
pub struct BisectionPartition {
    /// The `p` merge jobs, in output order.
    pub segments: Vec<Segment>,
    /// Depth of the recursion (sequential search rounds).
    pub rounds: u32,
    /// Total comparisons spent in median searches.
    pub search_comparisons: u64,
}

/// Recursively bisects the merge of `a` and `b` into `p` jobs.
///
/// Processor counts are split as evenly as possible at each level
/// (`⌈p/2⌉ / ⌊p/2⌋`), and the cut rank is proportional so job sizes stay
/// within one element of `(|A|+|B|)/p`.
pub fn bisect_partition<T: Ord>(a: &[T], b: &[T], p: usize) -> BisectionPartition {
    assert!(p > 0, "at least one processor required");
    let cmp = |x: &T, y: &T| x.cmp(y);
    let mut segments = Vec::with_capacity(p);
    let mut comparisons = 0u64;
    let mut max_depth = 0u32;
    // Recursive worker over (a-range, b-range, processors, depth).
    #[allow(clippy::too_many_arguments)]
    fn go<T, F>(
        a: &[T],
        b: &[T],
        a_off: usize,
        b_off: usize,
        p: usize,
        depth: u32,
        cmp: &F,
        segments: &mut Vec<Segment>,
        comparisons: &mut u64,
        max_depth: &mut u32,
    ) where
        F: Fn(&T, &T) -> Ordering,
    {
        *max_depth = (*max_depth).max(depth);
        if p == 1 {
            segments.push(Segment {
                a_start: a_off,
                a_end: a_off + a.len(),
                b_start: b_off,
                b_end: b_off + b.len(),
                out_start: a_off + b_off,
                out_end: a_off + b_off + a.len() + b.len(),
            });
            return;
        }
        let n = a.len() + b.len();
        let left_p = p.div_ceil(2);
        // Proportional cut keeps leaf jobs equisized even for odd p.
        let k = (n as u128 * left_p as u128 / p as u128) as usize;
        let (i, c) = co_rank_counted(k, a, b, cmp);
        *comparisons += c as u64;
        let j = k - i;
        go(
            &a[..i],
            &b[..j],
            a_off,
            b_off,
            left_p,
            depth + 1,
            cmp,
            segments,
            comparisons,
            max_depth,
        );
        go(
            &a[i..],
            &b[j..],
            a_off + i,
            b_off + j,
            p - left_p,
            depth + 1,
            cmp,
            segments,
            comparisons,
            max_depth,
        );
    }
    go(
        a,
        b,
        0,
        0,
        p,
        0,
        &cmp,
        &mut segments,
        &mut comparisons,
        &mut max_depth,
    );
    BisectionPartition {
        segments,
        rounds: max_depth,
        search_comparisons: comparisons,
    }
}

/// Parallel merge via the bisection partition (correct and balanced, but
/// with `log p` dependent partition rounds).
pub fn akl_santoro_merge_into<T>(a: &[T], b: &[T], out: &mut [T], p: usize)
where
    T: Ord + Clone + Send + Sync,
{
    assert_eq!(
        out.len(),
        a.len() + b.len(),
        "output length must equal |A| + |B|"
    );
    let partition = bisect_partition(a, b, p);
    let cmp = |x: &T, y: &T| x.cmp(y);
    std::thread::scope(|scope| {
        let mut rest = out;
        for (idx, s) in partition.segments.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut(s.len());
            rest = tail;
            let (sa, sb) = (&a[s.a_start..s.a_end], &b[s.b_start..s.b_end]);
            let mut work = move || merge_into_by(sa, sb, chunk, &cmp);
            if idx + 1 == partition.segments.len() {
                work();
            } else {
                scope.spawn(work);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<i64>) -> Vec<i64> {
        v.sort();
        v
    }

    fn oracle(a: &[i64], b: &[i64]) -> Vec<i64> {
        let mut out = vec![0; a.len() + b.len()];
        mergepath::merge::sequential::merge_into(a, b, &mut out);
        out
    }

    #[test]
    fn merge_is_correct() {
        let a: Vec<i64> = (0..1111).map(|x| x * 2).collect();
        let b: Vec<i64> = (0..999).map(|x| x * 3 + 1).collect();
        for p in [1, 2, 3, 5, 8, 12] {
            let mut out = vec![0; 2110];
            akl_santoro_merge_into(&a, &b, &mut out, p);
            assert_eq!(out, oracle(&a, &b), "p={p}");
        }
    }

    #[test]
    fn partition_is_balanced() {
        let a: Vec<i64> = (0..4000).collect();
        let b: Vec<i64> = (0..4000).map(|x| x + 7).collect();
        for p in [2, 3, 7, 8] {
            let part = bisect_partition(&a, &b, p);
            assert_eq!(part.segments.len(), p);
            let max = part.segments.iter().map(|s| s.len()).max().unwrap();
            let min = part.segments.iter().map(|s| s.len()).min().unwrap();
            assert!(max - min <= 1, "p={p}: max={max} min={min}");
        }
    }

    #[test]
    fn rounds_are_logarithmic_in_p() {
        let a: Vec<i64> = (0..1024).collect();
        let b: Vec<i64> = (0..1024).map(|x| x + 3).collect();
        for (p, expect) in [(1, 0), (2, 1), (4, 2), (8, 3), (12, 4)] {
            let part = bisect_partition(&a, &b, p);
            assert_eq!(part.rounds, expect, "p={p}");
        }
    }

    #[test]
    fn dependent_rounds_vs_mergepath_independence() {
        // The structural difference the paper emphasizes: Akl–Santoro needs
        // `rounds` SEQUENTIAL search phases; Merge Path needs exactly one
        // (all its searches are independent). We witness it through the
        // partition metadata.
        let a: Vec<i64> = (0..10_000).collect();
        let b: Vec<i64> = (0..10_000).map(|x| x * 2).collect();
        let part = bisect_partition(&a, &b, 8);
        assert_eq!(part.rounds, 3); // log2(8) dependent rounds
        assert!(part.search_comparisons > 0);
    }

    #[test]
    fn segments_are_in_output_order() {
        let a: Vec<i64> = (0..500).collect();
        let b: Vec<i64> = (250..750).collect();
        let part = bisect_partition(&a, &b, 6);
        let mut expected_start = 0;
        for s in &part.segments {
            assert_eq!(s.out_start, expected_start);
            expected_start = s.out_end;
        }
        assert_eq!(expected_start, 1000);
    }

    proptest! {
        #[test]
        fn always_equals_stable_merge(
            a in proptest::collection::vec(-100i64..100, 0..150).prop_map(sorted),
            b in proptest::collection::vec(-100i64..100, 0..150).prop_map(sorted),
            p in 1usize..10,
        ) {
            let mut out = vec![0; a.len() + b.len()];
            akl_santoro_merge_into(&a, &b, &mut out, p);
            prop_assert_eq!(out, oracle(&a, &b));
        }
    }
}
