//! The [`Recorder`] trait, its zero-cost [`NoRecorder`] default, and the
//! small helpers instrumented call sites share (span guards, counted
//! comparators, the process-epoch clock).

use core::cmp::Ordering;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the first call to this function in the process.
///
/// This is the **single monotonic clock** for the whole workspace: kernel
/// spans, pool round windows, serve request deadlines
/// (`Request::with_deadline_in`, the dequeue-time expiry verdict), and the
/// per-request waterfall stages all read it. Because every producer and
/// every judge share one epoch and one monotonic source, timestamps from
/// different threads land on one comparable timeline, a waterfall's summed
/// stages can never exceed the wall time measured for the same request,
/// and a deadline verdict is always consistent with the queue-wait the
/// flight recorder logged (`tests/metrics_invariants.rs` pins the
/// stage-sum property as a regression test).
///
/// The epoch is process-wide (a `OnceLock<Instant>`), so traces from
/// consecutive kernel runs in one process are naturally ordered.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// A small dense per-thread index (0, 1, 2, …) assigned on first use.
///
/// `std::thread::ThreadId` has no stable numeric form; the telemetry layer
/// needs one to pair round begin/end events emitted by the same thread and
/// to name physical pool threads in the Chrome trace.
pub fn thread_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    }
    INDEX.with(|slot| match slot.get() {
        Some(i) => i,
        None => {
            let i = NEXT.fetch_add(1, AtomicOrdering::Relaxed);
            slot.set(Some(i));
            i
        }
    })
}

/// The span taxonomy. One variant per structurally distinct phase of the
/// merge-path kernels (see DESIGN.md §Observability for the mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Computing a share's segment boundaries (the cross-diagonal partition
    /// phase of Algorithm 1 / the grid partition of the hierarchical merge).
    Partition,
    /// One binary search along a cross diagonal (`co_rank`).
    DiagonalSearch,
    /// Merging one contiguous output segment (the per-worker linear phase).
    SegmentMerge,
    /// One cache-sized window of the segmented (SPM) merge, §IV.
    SpmWindow,
    /// One round of a parallel sort (chunk sort or pairwise/k-way merge
    /// round).
    SortRound,
}

impl SpanKind {
    /// Stable lowercase name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Partition => "partition",
            SpanKind::DiagonalSearch => "diagonal_search",
            SpanKind::SegmentMerge => "segment_merge",
            SpanKind::SpmWindow => "spm_window",
            SpanKind::SortRound => "sort_round",
        }
    }
}

/// Monotonic counters accumulated per worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CounterKind {
    /// Comparator invocations (all phases).
    Comparisons,
    /// Comparisons spent inside diagonal binary searches only.
    DiagonalProbeSteps,
    /// Staging-buffer refills (SPM ring buffers, hierarchical tiles).
    StagingFills,
    /// Segments the adaptive dispatcher routed to the classic two-pointer
    /// kernel.
    SegmentsClassic,
    /// Segments routed to the branch-lean kernel.
    SegmentsBranchLean,
    /// Segments routed to the galloping kernel.
    SegmentsGalloping,
    /// Segments routed to the vectorized (SIMD) kernel. The vector path
    /// performs zero comparator calls, so these segments contribute
    /// nothing to [`CounterKind::Comparisons`] by design.
    SegmentsSimd,
    /// Segments routed to the co-rank stable block kernel (exact-balance
    /// block splits, ties broken A-before-B by construction).
    SegmentsCoRank,
    /// Requests the serving daemon completed successfully (response handed
    /// back byte-identical to the sequential oracle's answer).
    ServeCompleted,
    /// Requests the serving daemon rejected synchronously at submission
    /// because the bounded queue was full (backpressure, never a panic).
    ServeRejectedQueueFull,
    /// Requests the serving daemon rejected at dequeue because their
    /// deadline had already expired before execution could begin.
    ServeRejectedDeadline,
    /// Coalesced batch rounds the serving daemon executed: one increment
    /// per pool round that merged two or more compatible queued requests
    /// through `merge::batch` instead of running them as separate
    /// `share = 1` inline merges.
    ServeBatched,
    /// Total requests folded into coalesced batch rounds (the sum of the
    /// widths of every [`CounterKind::ServeBatched`] round, so
    /// `batch_width / serve_batched` is the mean coalescing width).
    BatchWidth,
    /// Tickets taken from another worker's deque (or the injector scan)
    /// by an idle participant during this round — the work-stealing
    /// executor's overlap witness. Reported once per round by the
    /// submitting caller after the round latch fires.
    PoolSteals,
    /// Logical shares executed through stolen tickets during this round
    /// (each steal's claim loop may run several chunks).
    PoolStolenShares,
}

impl CounterKind {
    /// Stable lowercase name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::Comparisons => "comparisons",
            CounterKind::DiagonalProbeSteps => "diagonal_probe_steps",
            CounterKind::StagingFills => "staging_fills",
            CounterKind::SegmentsClassic => "segments_classic",
            CounterKind::SegmentsBranchLean => "segments_branch_lean",
            CounterKind::SegmentsGalloping => "segments_galloping",
            CounterKind::SegmentsSimd => "segments_simd",
            CounterKind::SegmentsCoRank => "segments_co_rank",
            CounterKind::ServeCompleted => "serve_completed",
            CounterKind::ServeRejectedQueueFull => "serve_rejected_queue_full",
            CounterKind::ServeRejectedDeadline => "serve_rejected_deadline",
            CounterKind::ServeBatched => "serve_batched",
            CounterKind::BatchWidth => "batch_width",
            CounterKind::PoolSteals => "pool_steals",
            CounterKind::PoolStolenShares => "pool_stolen_shares",
        }
    }
}

/// A sink for kernel and executor telemetry.
///
/// `worker` arguments are *logical* share indices (the algorithm's `p`
/// workers); physical pool threads appear only in
/// [`Recorder::share_window`]'s `tid`. All methods take `&self` and must be
/// callable concurrently from the pool team.
///
/// Implementations other than [`NoRecorder`] keep the default
/// `ACTIVE = true`; kernels guard every timestamp capture behind
/// `R::ACTIVE`, so the `NoRecorder` instantiation compiles to the exact
/// untraced code (the zero-cost contract is asserted by the oracle
/// differential suite and `tests/telemetry_invariants.rs`).
pub trait Recorder: Sync {
    /// Compile-time activity flag; `false` only for [`NoRecorder`].
    const ACTIVE: bool = true;

    /// A span of `kind` opened on logical worker `worker` at [`now_ns`].
    /// Spans on one worker follow stack discipline (strict nesting).
    fn span_begin(&self, worker: usize, kind: SpanKind) {
        let _ = (worker, kind);
    }

    /// Closes the most recently opened span of `kind` on `worker`.
    fn span_end(&self, worker: usize, kind: SpanKind) {
        let _ = (worker, kind);
    }

    /// Adds `delta` to the per-worker counter `kind`.
    fn counter_add(&self, worker: usize, kind: CounterKind, delta: u64) {
        let _ = (worker, kind, delta);
    }

    /// Reports that logical worker `worker` produced `items` output
    /// elements (the Thm 14 per-worker element count).
    fn worker_items(&self, worker: usize, items: u64) {
        let _ = (worker, items);
    }

    /// A pool round with `shares` logical shares is starting on the calling
    /// thread. Rounds nest per thread (nested kernel calls run inline).
    fn round_begin(&self, shares: usize) {
        let _ = shares;
    }

    /// The round most recently begun on the calling thread finished.
    fn round_end(&self) {}

    /// The calling thread spent `ns` nanoseconds between submitting the
    /// round and beginning to execute its shares (scheduler queueing
    /// overhead: ticket distribution, and — in the serialized
    /// compatibility mode — the legacy round-mutex wait).
    fn round_wait_ns(&self, ns: u64) {
        let _ = ns;
    }

    /// Physical pool thread `tid` executed logical share `share` over the
    /// window `start_ns..end_ns` (per-share busy time).
    fn share_window(&self, tid: usize, share: usize, start_ns: u64, end_ns: u64) {
        let _ = (tid, share, start_ns, end_ns);
    }
}

/// The zero-cost default recorder: a ZST with `ACTIVE = false`.
///
/// Every public kernel entry point delegates to its `*_recorded` variant
/// with `&NoRecorder`; because call sites are guarded by `R::ACTIVE`, the
/// instantiation is the original untraced code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoRecorder;

impl Recorder for NoRecorder {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn span_begin(&self, _worker: usize, _kind: SpanKind) {}
    #[inline(always)]
    fn span_end(&self, _worker: usize, _kind: SpanKind) {}
    #[inline(always)]
    fn counter_add(&self, _worker: usize, _kind: CounterKind, _delta: u64) {}
    #[inline(always)]
    fn worker_items(&self, _worker: usize, _items: u64) {}
    #[inline(always)]
    fn round_begin(&self, _shares: usize) {}
    #[inline(always)]
    fn round_end(&self) {}
    #[inline(always)]
    fn round_wait_ns(&self, _ns: u64) {}
    #[inline(always)]
    fn share_window(&self, _tid: usize, _share: usize, _start_ns: u64, _end_ns: u64) {}
}

/// Shared ownership delegates: an `Arc<R>` records into the inner `R`.
///
/// Lets a caller hand a recorder to a long-lived consumer (the serving
/// daemon owns its recorder for its whole lifetime) while keeping a handle
/// to `finish()` it afterwards.
impl<R: Recorder + Send + Sync> Recorder for std::sync::Arc<R> {
    const ACTIVE: bool = R::ACTIVE;

    #[inline(always)]
    fn span_begin(&self, worker: usize, kind: SpanKind) {
        R::span_begin(self, worker, kind);
    }
    #[inline(always)]
    fn span_end(&self, worker: usize, kind: SpanKind) {
        R::span_end(self, worker, kind);
    }
    #[inline(always)]
    fn counter_add(&self, worker: usize, kind: CounterKind, delta: u64) {
        R::counter_add(self, worker, kind, delta);
    }
    #[inline(always)]
    fn worker_items(&self, worker: usize, items: u64) {
        R::worker_items(self, worker, items);
    }
    #[inline(always)]
    fn round_begin(&self, shares: usize) {
        R::round_begin(self, shares);
    }
    #[inline(always)]
    fn round_end(&self) {
        R::round_end(self);
    }
    #[inline(always)]
    fn round_wait_ns(&self, ns: u64) {
        R::round_wait_ns(self, ns);
    }
    #[inline(always)]
    fn share_window(&self, tid: usize, share: usize, start_ns: u64, end_ns: u64) {
        R::share_window(self, tid, share, start_ns, end_ns);
    }
}

/// A [`Recorder`] adapter that shifts every logical worker index by a
/// fixed `base` before delegating.
///
/// The per-worker span stack discipline (see [`Recorder::span_begin`])
/// assumes each logical worker index is driven by one thread at a time.
/// When several independent kernel invocations run *concurrently* against
/// one shared recorder — the serving daemon's request-parallel regime,
/// where every in-flight request executes with share 1 and would
/// otherwise report as worker 0 — their events must land on disjoint
/// index ranges. Each concurrent caller wraps the shared recorder with a
/// distinct `base` (spaced at least its maximum share apart) and the
/// combined timeline stays well-formed.
///
/// Thread-keyed callbacks (`round_*`, `share_window`) pass through
/// unchanged: they are already keyed by physical thread, not worker.
#[derive(Debug, Clone, Copy)]
pub struct OffsetRecorder<'r, R> {
    base: usize,
    inner: &'r R,
}

impl<'r, R: Recorder> OffsetRecorder<'r, R> {
    /// Wraps `inner`, adding `base` to every worker index.
    pub fn new(base: usize, inner: &'r R) -> Self {
        OffsetRecorder { base, inner }
    }
}

impl<R: Recorder> Recorder for OffsetRecorder<'_, R> {
    const ACTIVE: bool = R::ACTIVE;

    #[inline(always)]
    fn span_begin(&self, worker: usize, kind: SpanKind) {
        self.inner.span_begin(self.base + worker, kind);
    }
    #[inline(always)]
    fn span_end(&self, worker: usize, kind: SpanKind) {
        self.inner.span_end(self.base + worker, kind);
    }
    #[inline(always)]
    fn counter_add(&self, worker: usize, kind: CounterKind, delta: u64) {
        self.inner.counter_add(self.base + worker, kind, delta);
    }
    #[inline(always)]
    fn worker_items(&self, worker: usize, items: u64) {
        self.inner.worker_items(self.base + worker, items);
    }
    #[inline(always)]
    fn round_begin(&self, shares: usize) {
        self.inner.round_begin(shares);
    }
    #[inline(always)]
    fn round_end(&self) {
        self.inner.round_end();
    }
    #[inline(always)]
    fn round_wait_ns(&self, ns: u64) {
        self.inner.round_wait_ns(ns);
    }
    #[inline(always)]
    fn share_window(&self, tid: usize, share: usize, start_ns: u64, end_ns: u64) {
        self.inner.share_window(tid, share, start_ns, end_ns);
    }
}

/// Opens a span on `rec`, closed when the returned guard drops (including
/// during unwinding, so a panicking share leaves a well-formed timeline).
///
/// With `R = NoRecorder` this is a no-op that compiles away.
#[inline(always)]
pub fn span<R: Recorder>(rec: &R, worker: usize, kind: SpanKind) -> SpanGuard<'_, R> {
    if R::ACTIVE {
        rec.span_begin(worker, kind);
    }
    SpanGuard { rec, worker, kind }
}

/// Guard returned by [`span`]; ends the span on drop.
pub struct SpanGuard<'r, R: Recorder> {
    rec: &'r R,
    worker: usize,
    kind: SpanKind,
}

impl<R: Recorder> Drop for SpanGuard<'_, R> {
    #[inline(always)]
    fn drop(&mut self) {
        if R::ACTIVE {
            self.rec.span_end(self.worker, self.kind);
        }
    }
}

/// Wraps a comparator so every invocation bumps a share-local [`Cell`]
/// counter (flushed once per share via [`Recorder::counter_add`], avoiding
/// any shared atomic on the hot path).
#[inline(always)]
pub fn counted_cmp<'a, T, F>(cmp: &'a F, counter: &'a Cell<u64>) -> impl Fn(&T, &T) -> Ordering + 'a
where
    F: Fn(&T, &T) -> Ordering,
{
    move |x: &T, y: &T| {
        counter.set(counter.get() + 1);
        cmp(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_recorder_is_zero_sized_and_inactive() {
        assert_eq!(core::mem::size_of::<NoRecorder>(), 0);
        const { assert!(!NoRecorder::ACTIVE) }
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn thread_index_is_stable_per_thread() {
        let a = thread_index();
        let b = thread_index();
        assert_eq!(a, b);
        let other = std::thread::spawn(thread_index).join().expect("join");
        assert_ne!(a, other);
    }

    #[test]
    fn counted_cmp_counts_and_preserves_order() {
        let hits = Cell::new(0u64);
        let base = |x: &i32, y: &i32| x.cmp(y);
        let cmp = counted_cmp(&base, &hits);
        assert_eq!(cmp(&1, &2), Ordering::Less);
        assert_eq!(cmp(&2, &1), Ordering::Greater);
        assert_eq!(hits.get(), 2);
    }

    #[test]
    fn offset_recorder_shifts_workers_and_passes_rounds_through() {
        use crate::timeline::TimelineRecorder;
        let rec = TimelineRecorder::new();
        {
            let shifted = OffsetRecorder::new(5, &rec);
            let _g = span(&shifted, 0, SpanKind::SegmentMerge);
            shifted.counter_add(1, CounterKind::Comparisons, 3);
            shifted.worker_items(0, 7);
            shifted.round_begin(2);
            shifted.round_end();
        }
        let t = rec.finish();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].worker, 5, "span index shifted by base");
        assert_eq!(t.counters.len(), 1);
        assert_eq!(t.counters[0].worker, 6, "counter index shifted by base");
        assert_eq!(t.counters[0].total, 3);
        assert_eq!(t.worker_items.len(), 1);
        assert_eq!(t.worker_items[0].worker, 5);
        assert_eq!(t.rounds.len(), 1, "rounds are thread-keyed, unshifted");
    }

    #[test]
    fn offset_recorder_inherits_activity() {
        use crate::timeline::TimelineRecorder;
        const { assert!(!<OffsetRecorder<'static, NoRecorder> as Recorder>::ACTIVE) }
        const { assert!(<OffsetRecorder<'static, TimelineRecorder> as Recorder>::ACTIVE) }
    }

    #[test]
    fn span_names_are_stable() {
        assert_eq!(SpanKind::Partition.name(), "partition");
        assert_eq!(SpanKind::DiagonalSearch.name(), "diagonal_search");
        assert_eq!(SpanKind::SegmentMerge.name(), "segment_merge");
        assert_eq!(SpanKind::SpmWindow.name(), "spm_window");
        assert_eq!(SpanKind::SortRound.name(), "sort_round");
        assert_eq!(CounterKind::Comparisons.name(), "comparisons");
        assert_eq!(
            CounterKind::DiagonalProbeSteps.name(),
            "diagonal_probe_steps"
        );
        assert_eq!(CounterKind::StagingFills.name(), "staging_fills");
        assert_eq!(CounterKind::SegmentsClassic.name(), "segments_classic");
        assert_eq!(
            CounterKind::SegmentsBranchLean.name(),
            "segments_branch_lean"
        );
        assert_eq!(CounterKind::SegmentsGalloping.name(), "segments_galloping");
        assert_eq!(CounterKind::SegmentsSimd.name(), "segments_simd");
        assert_eq!(CounterKind::SegmentsCoRank.name(), "segments_co_rank");
        assert_eq!(CounterKind::ServeCompleted.name(), "serve_completed");
        assert_eq!(
            CounterKind::ServeRejectedQueueFull.name(),
            "serve_rejected_queue_full"
        );
        assert_eq!(
            CounterKind::ServeRejectedDeadline.name(),
            "serve_rejected_deadline"
        );
        assert_eq!(CounterKind::ServeBatched.name(), "serve_batched");
        assert_eq!(CounterKind::BatchWidth.name(), "batch_width");
        assert_eq!(CounterKind::PoolSteals.name(), "pool_steals");
        assert_eq!(CounterKind::PoolStolenShares.name(), "pool_stolen_shares");
    }
}
