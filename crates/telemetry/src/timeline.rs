//! The collecting recorder, the processed [`Telemetry`] form, derived
//! load-balance statistics, and the two exporters.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::json::{write_f64, write_str};
use crate::record::{now_ns, thread_index, CounterKind, Recorder, SpanKind};

/// Number of cache-padded event shards. Workers hash onto shards by index,
/// so any contention is between workers `w` and `w + 64`, which real
/// configurations never run concurrently.
const SHARDS: usize = 64;

/// One raw event as reported by a kernel or the executor.
#[derive(Debug, Clone, Copy)]
enum Event {
    SpanBegin {
        worker: usize,
        kind: SpanKind,
        at: u64,
    },
    SpanEnd {
        worker: usize,
        kind: SpanKind,
        at: u64,
    },
    Counter {
        worker: usize,
        kind: CounterKind,
        delta: u64,
    },
    Items {
        worker: usize,
        items: u64,
    },
    Share {
        tid: usize,
        share: usize,
        start: u64,
        end: u64,
    },
    RoundWait {
        thread: usize,
        ns: u64,
    },
    RoundBegin {
        thread: usize,
        shares: usize,
        at: u64,
    },
    RoundEnd {
        thread: usize,
        at: u64,
    },
}

/// A cache-line-padded event shard so concurrent workers do not contend on
/// one mutex line (mirrors the sharding fix in `mergepath::stats`).
#[repr(align(128))]
#[derive(Default)]
struct Shard {
    events: Mutex<Vec<Event>>,
}

/// A [`Recorder`] that collects everything into per-worker shards.
///
/// Collection is append-only under a sharded mutex; all interpretation
/// (span pairing, busy-time accounting, statistics) happens in
/// [`TimelineRecorder::finish`] after the kernel has returned.
pub struct TimelineRecorder {
    shards: Box<[Shard]>,
}

impl Default for TimelineRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TimelineRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        let shards = (0..SHARDS).map(|_| Shard::default()).collect();
        TimelineRecorder { shards }
    }

    fn push(&self, shard: usize, event: Event) {
        self.shards[shard % SHARDS]
            .events
            .lock()
            .expect("telemetry shard poisoned")
            .push(event);
    }

    /// Consumes the recorder and pairs raw events into a processed
    /// [`Telemetry`].
    pub fn finish(self) -> Telemetry {
        // Per-worker (and per-thread) event order is preserved: a worker
        // always lands in the same shard and pushes sequentially, so
        // draining shard by shard keeps every per-worker subsequence in
        // program order.
        let mut events = Vec::new();
        for shard in self.shards.iter() {
            events.extend(
                shard
                    .events
                    .lock()
                    .expect("telemetry shard poisoned")
                    .iter()
                    .copied(),
            );
        }

        let mut spans = Vec::new();
        let mut span_stacks: BTreeMap<usize, Vec<(SpanKind, u64)>> = BTreeMap::new();
        let mut counters: BTreeMap<(usize, CounterKind), u64> = BTreeMap::new();
        let mut items: BTreeMap<usize, u64> = BTreeMap::new();
        let mut shares = Vec::new();
        let mut rounds = Vec::new();
        let mut round_stacks: BTreeMap<usize, Vec<(usize, u64, u64)>> = BTreeMap::new();
        let mut round_waits: BTreeMap<usize, u64> = BTreeMap::new();

        for event in events {
            match event {
                Event::SpanBegin { worker, kind, at } => {
                    span_stacks.entry(worker).or_default().push((kind, at));
                }
                Event::SpanEnd { worker, kind, at } => {
                    let stack = span_stacks.entry(worker).or_default();
                    // Guards close spans in LIFO order; a mismatch means a
                    // kernel bug, surfaced by the invariants test suite.
                    if let Some((open_kind, start)) = stack.pop() {
                        debug_assert_eq!(open_kind, kind, "span stack discipline violated");
                        spans.push(SpanRecord {
                            worker,
                            kind,
                            start_ns: start,
                            end_ns: at,
                            depth: stack.len(),
                        });
                    }
                }
                Event::Counter {
                    worker,
                    kind,
                    delta,
                } => {
                    *counters.entry((worker, kind)).or_default() += delta;
                }
                Event::Items { worker, items: n } => {
                    *items.entry(worker).or_default() += n;
                }
                Event::Share {
                    tid,
                    share,
                    start,
                    end,
                } => {
                    shares.push(ShareRecord {
                        tid,
                        share,
                        start_ns: start,
                        end_ns: end,
                    });
                }
                Event::RoundWait { thread, ns } => {
                    *round_waits.entry(thread).or_default() = ns;
                }
                Event::RoundBegin { thread, shares, at } => {
                    let wait = round_waits.remove(&thread).unwrap_or(0);
                    round_stacks
                        .entry(thread)
                        .or_default()
                        .push((shares, at, wait));
                }
                Event::RoundEnd { thread, at } => {
                    if let Some((share_count, start, wait)) =
                        round_stacks.entry(thread).or_default().pop()
                    {
                        rounds.push(RoundRecord {
                            shares: share_count,
                            start_ns: start,
                            end_ns: at,
                            wait_ns: wait,
                        });
                    }
                }
            }
        }

        spans.sort_by_key(|s| (s.worker, s.start_ns, core::cmp::Reverse(s.end_ns)));
        shares.sort_by_key(|s| (s.tid, s.start_ns));
        rounds.sort_by_key(|r| r.start_ns);
        Telemetry {
            spans,
            counters: counters
                .into_iter()
                .map(|((worker, kind), total)| CounterTotal {
                    worker,
                    kind,
                    total,
                })
                .collect(),
            worker_items: items
                .into_iter()
                .map(|(worker, items)| WorkerItems { worker, items })
                .collect(),
            shares,
            rounds,
        }
    }
}

impl Recorder for TimelineRecorder {
    fn span_begin(&self, worker: usize, kind: SpanKind) {
        self.push(
            worker,
            Event::SpanBegin {
                worker,
                kind,
                at: now_ns(),
            },
        );
    }

    fn span_end(&self, worker: usize, kind: SpanKind) {
        self.push(
            worker,
            Event::SpanEnd {
                worker,
                kind,
                at: now_ns(),
            },
        );
    }

    fn counter_add(&self, worker: usize, kind: CounterKind, delta: u64) {
        self.push(
            worker,
            Event::Counter {
                worker,
                kind,
                delta,
            },
        );
    }

    fn worker_items(&self, worker: usize, items: u64) {
        self.push(worker, Event::Items { worker, items });
    }

    fn round_begin(&self, shares: usize) {
        let thread = thread_index();
        self.push(
            thread,
            Event::RoundBegin {
                thread,
                shares,
                at: now_ns(),
            },
        );
    }

    fn round_end(&self) {
        let thread = thread_index();
        self.push(
            thread,
            Event::RoundEnd {
                thread,
                at: now_ns(),
            },
        );
    }

    fn round_wait_ns(&self, ns: u64) {
        let thread = thread_index();
        self.push(thread, Event::RoundWait { thread, ns });
    }

    fn share_window(&self, tid: usize, share: usize, start_ns: u64, end_ns: u64) {
        self.push(
            tid,
            Event::Share {
                tid,
                share,
                start: start_ns,
                end: end_ns,
            },
        );
    }
}

/// One closed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Logical worker (share index) the span ran on.
    pub worker: usize,
    /// The span taxonomy entry.
    pub kind: SpanKind,
    /// Start, nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the process telemetry epoch.
    pub end_ns: u64,
    /// Nesting depth at open time (0 = top level for that worker).
    pub depth: usize,
}

/// One per-worker counter total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterTotal {
    /// Logical worker the counts were attributed to.
    pub worker: usize,
    /// Which counter.
    pub kind: CounterKind,
    /// Accumulated value.
    pub total: u64,
}

/// Output elements produced by one logical worker (Thm 14's quantity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerItems {
    /// Logical worker (share index).
    pub worker: usize,
    /// Total output elements across all rounds.
    pub items: u64,
}

/// One executed share: physical pool thread `tid` ran logical share
/// `share` for `start_ns..end_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareRecord {
    /// Physical pool thread (0 = the calling thread).
    pub tid: usize,
    /// Logical share index.
    pub share: usize,
    /// Window start (process telemetry epoch).
    pub start_ns: u64,
    /// Window end.
    pub end_ns: u64,
}

/// One pool fork-join round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRecord {
    /// Logical shares submitted to the round.
    pub shares: usize,
    /// Round start (after the round mutex was acquired).
    pub start_ns: u64,
    /// Round end (all participants past the end barrier).
    pub end_ns: u64,
    /// Time the caller waited on the round mutex (queueing overhead).
    pub wait_ns: u64,
}

/// Busy-time spread statistics across workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusyStats {
    /// Heaviest worker's busy nanoseconds (the makespan contributor).
    pub max_ns: u64,
    /// Lightest worker's busy nanoseconds.
    pub min_ns: u64,
    /// Mean busy nanoseconds.
    pub mean_ns: f64,
    /// `max / mean`; `1.0` is perfect balance.
    pub imbalance: f64,
}

impl BusyStats {
    fn from_values(values: &[u64]) -> BusyStats {
        if values.is_empty() {
            return BusyStats {
                max_ns: 0,
                min_ns: 0,
                mean_ns: 0.0,
                imbalance: 1.0,
            };
        }
        let max = values.iter().copied().max().unwrap_or(0);
        let min = values.iter().copied().min().unwrap_or(0);
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
        BusyStats {
            max_ns: max,
            min_ns: min,
            mean_ns: mean,
            imbalance,
        }
    }
}

/// The load-balance verdict derived from one traced kernel run: the paper's
/// Thm 14 prediction against observation, plus busy-time spread.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalanceReport {
    /// Total output size `N`.
    pub n: u64,
    /// Logical worker count `p`.
    pub p: usize,
    /// Observed output elements per worker, indexed by worker.
    pub per_worker_items: Vec<WorkerItems>,
    /// Thm 14's bound: `⌈N/p⌉`.
    pub predicted_max: u64,
    /// Heaviest observed per-worker element count.
    pub max_items: u64,
    /// Lightest observed per-worker element count.
    pub min_items: u64,
    /// Whether every worker's count is `≤ ⌈N/p⌉` **and** the counts sum to
    /// `N` — i.e. whether the run matches Thm 14 exactly. Single-round
    /// kernels (the plain parallel merge) satisfy this; multi-round kernels
    /// (sorts) accumulate several rounds and report spread only.
    pub thm14_exact: bool,
    /// Busy-time spread over logical workers (summed share windows).
    pub busy: BusyStats,
    /// Total round-mutex wait across rounds (serialization overhead).
    pub total_wait_ns: u64,
}

impl Telemetry {
    /// Summed share-window busy time per logical worker (share index).
    pub fn worker_busy_ns(&self) -> BTreeMap<usize, u64> {
        let mut busy: BTreeMap<usize, u64> = BTreeMap::new();
        for s in &self.shares {
            *busy.entry(s.share).or_default() += s.end_ns.saturating_sub(s.start_ns);
        }
        busy
    }

    /// Summed share-window busy time per physical pool thread.
    pub fn thread_busy_ns(&self) -> BTreeMap<usize, u64> {
        let mut busy: BTreeMap<usize, u64> = BTreeMap::new();
        for s in &self.shares {
            *busy.entry(s.tid).or_default() += s.end_ns.saturating_sub(s.start_ns);
        }
        busy
    }

    /// Derives the load-balance report for a run that produced `n` output
    /// elements across `p` logical workers.
    pub fn load_balance(&self, n: u64, p: usize) -> LoadBalanceReport {
        let predicted_max = if p == 0 { n } else { n.div_ceil(p as u64) };
        let sum: u64 = self.worker_items.iter().map(|w| w.items).sum();
        let max_items = self.worker_items.iter().map(|w| w.items).max().unwrap_or(0);
        let min_items = self.worker_items.iter().map(|w| w.items).min().unwrap_or(0);
        let thm14_exact = sum == n && self.worker_items.iter().all(|w| w.items <= predicted_max);
        let busy_values: Vec<u64> = self.worker_busy_ns().into_values().collect();
        LoadBalanceReport {
            n,
            p,
            per_worker_items: self.worker_items.clone(),
            predicted_max,
            max_items,
            min_items,
            thm14_exact,
            busy: BusyStats::from_values(&busy_values),
            total_wait_ns: self.rounds.iter().map(|r| r.wait_ns).sum(),
        }
    }

    /// Exports the timeline as Chrome `trace_event` JSON (the "JSON Array
    /// Format" with a `traceEvents` envelope), loadable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Logical workers render as threads of process 1, physical pool
    /// threads (share windows) as process 2, and pool rounds as process 3.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !core::mem::take(&mut first) {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&line);
        };

        for (pid, name) in [
            (1, "logical workers"),
            (2, "pool threads"),
            (3, "pool rounds"),
        ] {
            emit(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
                &mut out,
            );
        }
        for span in &self.spans {
            let mut line = String::new();
            line.push_str("{\"name\":");
            write_str(&mut line, span.kind.name());
            line.push_str(",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":");
            write_f64(&mut line, span.start_ns as f64 / 1000.0);
            line.push_str(",\"dur\":");
            write_f64(&mut line, (span.end_ns - span.start_ns) as f64 / 1000.0);
            let _ = write!(
                line,
                ",\"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}}}}}",
                span.worker, span.depth
            );
            emit(line, &mut out);
        }
        for share in &self.shares {
            let mut line = String::new();
            let _ = write!(line, "{{\"name\":\"share {}\"", share.share);
            line.push_str(",\"cat\":\"pool\",\"ph\":\"X\",\"ts\":");
            write_f64(&mut line, share.start_ns as f64 / 1000.0);
            line.push_str(",\"dur\":");
            write_f64(&mut line, (share.end_ns - share.start_ns) as f64 / 1000.0);
            let _ = write!(
                line,
                ",\"pid\":2,\"tid\":{},\"args\":{{\"share\":{}}}}}",
                share.tid, share.share
            );
            emit(line, &mut out);
        }
        for round in &self.rounds {
            let mut line = String::new();
            let _ = write!(line, "{{\"name\":\"round p={}\"", round.shares);
            line.push_str(",\"cat\":\"pool\",\"ph\":\"X\",\"ts\":");
            write_f64(&mut line, round.start_ns as f64 / 1000.0);
            write!(line, ",\"dur\":").expect("infallible");
            write_f64(&mut line, (round.end_ns - round.start_ns) as f64 / 1000.0);
            let _ = write!(
                line,
                ",\"pid\":3,\"tid\":0,\"args\":{{\"shares\":{},\"wait_ns\":{}}}}}",
                round.shares, round.wait_ns
            );
            emit(line, &mut out);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Exports the timeline as a flat JSONL metrics stream: one JSON object
    /// per line, each tagged with a `"type"` field (`span`, `counter`,
    /// `worker_items`, `share`, `round`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"worker\":{},\"kind\":\"{}\",\"start_ns\":{},\
                 \"end_ns\":{},\"depth\":{}}}",
                span.worker,
                span.kind.name(),
                span.start_ns,
                span.end_ns,
                span.depth
            );
        }
        for c in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"worker\":{},\"kind\":\"{}\",\"total\":{}}}",
                c.worker,
                c.kind.name(),
                c.total
            );
        }
        for w in &self.worker_items {
            let _ = writeln!(
                out,
                "{{\"type\":\"worker_items\",\"worker\":{},\"items\":{}}}",
                w.worker, w.items
            );
        }
        for s in &self.shares {
            let _ = writeln!(
                out,
                "{{\"type\":\"share\",\"tid\":{},\"share\":{},\"start_ns\":{},\"end_ns\":{}}}",
                s.tid, s.share, s.start_ns, s.end_ns
            );
        }
        for r in &self.rounds {
            let _ = writeln!(
                out,
                "{{\"type\":\"round\",\"shares\":{},\"start_ns\":{},\"end_ns\":{},\
                 \"wait_ns\":{}}}",
                r.shares, r.start_ns, r.end_ns, r.wait_ns
            );
        }
        out
    }
}

impl LoadBalanceReport {
    /// Renders the report as one JSON object (used as the JSONL summary
    /// line and inside `BENCH_telemetry.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"type\":\"load_balance\",\"n\":{},\"p\":{},\"predicted_max\":{},\
             \"max_items\":{},\"min_items\":{},\"thm14_exact\":{},",
            self.n, self.p, self.predicted_max, self.max_items, self.min_items, self.thm14_exact
        );
        out.push_str("\"per_worker_items\":[");
        for (i, w) in self.per_worker_items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"worker\":{},\"items\":{}}}", w.worker, w.items);
        }
        out.push_str("],");
        let _ = write!(
            out,
            "\"busy_max_ns\":{},\"busy_min_ns\":{},\"busy_mean_ns\":",
            self.busy.max_ns, self.busy.min_ns
        );
        write_f64(&mut out, self.busy.mean_ns);
        out.push_str(",\"imbalance\":");
        write_f64(&mut out, self.busy.imbalance);
        let _ = write!(out, ",\"total_wait_ns\":{}}}", self.total_wait_ns);
        out
    }
}

/// Processed telemetry: paired spans, counter totals, per-worker element
/// counts, share windows, and pool rounds — everything the exporters and
/// [`LoadBalanceReport`] derive from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Closed spans, sorted by `(worker, start)`.
    pub spans: Vec<SpanRecord>,
    /// Counter totals per `(worker, kind)`.
    pub counters: Vec<CounterTotal>,
    /// Output elements per logical worker.
    pub worker_items: Vec<WorkerItems>,
    /// Share windows, sorted by `(tid, start)`.
    pub shares: Vec<ShareRecord>,
    /// Pool rounds, sorted by start.
    pub rounds: Vec<RoundRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Telemetry {
        let rec = TimelineRecorder::new();
        rec.round_wait_ns(5);
        rec.round_begin(2);
        rec.span_begin(0, SpanKind::Partition);
        rec.span_begin(0, SpanKind::DiagonalSearch);
        rec.span_end(0, SpanKind::DiagonalSearch);
        rec.span_end(0, SpanKind::Partition);
        rec.span_begin(1, SpanKind::SegmentMerge);
        rec.span_end(1, SpanKind::SegmentMerge);
        rec.counter_add(0, CounterKind::Comparisons, 10);
        rec.counter_add(0, CounterKind::Comparisons, 7);
        rec.worker_items(0, 50);
        rec.worker_items(1, 50);
        rec.share_window(0, 0, 100, 200);
        rec.share_window(0, 1, 200, 280);
        rec.round_end();
        rec.finish()
    }

    #[test]
    fn spans_pair_with_depth() {
        let t = sample();
        assert_eq!(t.spans.len(), 3);
        let partition = t
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Partition)
            .expect("partition span");
        let search = t
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::DiagonalSearch)
            .expect("search span");
        assert_eq!(partition.depth, 0);
        assert_eq!(search.depth, 1);
        assert!(partition.start_ns <= search.start_ns && search.end_ns <= partition.end_ns);
    }

    #[test]
    fn counters_and_items_accumulate() {
        let t = sample();
        assert_eq!(
            t.counters,
            vec![CounterTotal {
                worker: 0,
                kind: CounterKind::Comparisons,
                total: 17
            }]
        );
        assert_eq!(t.worker_items.iter().map(|w| w.items).sum::<u64>(), 100);
    }

    #[test]
    fn rounds_capture_wait() {
        let t = sample();
        assert_eq!(t.rounds.len(), 1);
        assert_eq!(t.rounds[0].shares, 2);
        assert_eq!(t.rounds[0].wait_ns, 5);
    }

    #[test]
    fn load_balance_report_matches_thm14() {
        let t = sample();
        let report = t.load_balance(100, 2);
        assert_eq!(report.predicted_max, 50);
        assert!(report.thm14_exact);
        assert_eq!(report.busy.max_ns, 100);
        assert_eq!(report.busy.min_ns, 80);
        assert!((report.busy.imbalance - 100.0 / 90.0).abs() < 1e-12);
        let parsed = json::parse(&report.to_json()).expect("report JSON parses");
        assert_eq!(
            parsed.get("type").and_then(json::Value::as_str),
            Some("load_balance")
        );
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let t = sample();
        let doc = json::parse(&t.to_chrome_trace()).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .expect("traceEvents array");
        // 3 process_name metadata events + spans + shares + rounds.
        assert!(events.len() > 3 + 3 + 2);
        for e in events {
            let ph = e.get("ph").and_then(json::Value::as_str).expect("ph");
            assert!(matches!(ph, "X" | "M"), "unexpected phase {ph}");
            assert!(e.get("pid").is_some() && e.get("tid").is_some());
            if ph == "X" {
                assert!(e.get("ts").is_some() && e.get("dur").is_some());
            }
        }
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let t = sample();
        let jsonl = t.to_jsonl();
        let mut types = std::collections::BTreeSet::new();
        for line in jsonl.lines() {
            let v = json::parse(line).expect("line parses");
            types.insert(
                v.get("type")
                    .and_then(json::Value::as_str)
                    .expect("type tag")
                    .to_string(),
            );
        }
        for expected in ["span", "counter", "worker_items", "share", "round"] {
            assert!(types.contains(expected), "missing {expected} lines");
        }
    }

    #[test]
    fn empty_telemetry_exports_cleanly() {
        let t = TimelineRecorder::new().finish();
        assert!(json::parse(&t.to_chrome_trace()).is_ok());
        assert!(t.to_jsonl().is_empty());
        let report = t.load_balance(0, 4);
        assert!(report.thm14_exact);
        assert!((report.busy.imbalance - 1.0).abs() < 1e-12);
    }
}
