//! Live, snapshot-at-any-instant metrics: sharded counters, gauges, and
//! mergeable latency histograms.
//!
//! [`MetricsRegistry`] is the always-on complement to the post-hoc
//! [`TimelineRecorder`](crate::TimelineRecorder): where the timeline only
//! yields data at `finish()`, the registry can be read while the serving
//! daemon is under load, without pausing a single serving thread.
//!
//! Design constraints (DESIGN.md §12):
//!
//! - **Counters are lock-free and contention-free.** Each counter is a
//!   row of [`COUNTER_SHARDS`] cache-line-aligned `AtomicU64` cells;
//!   writers pick a shard by [`thread_index`], so two serving threads
//!   almost never touch the same cache line. Reads sum the row.
//! - **Gauges are single relaxed atomics** (set / add / saturating-sub /
//!   max). They describe "now", so sharding would only blur them.
//! - **Histograms reuse [`LatencyHistogram`]** behind a small set of
//!   shard mutexes, laid out shard-major: one mutex per shard guards a
//!   cell for *every* histogram name, so a batch of related records
//!   (e.g. the four waterfall stages plus the total on one completion)
//!   costs a single lock round-trip via
//!   [`MetricsRegistry::histogram_record_many`]. A snapshot clones each
//!   shard in turn and merges with [`LatencyHistogram::merge_from`], so
//!   recording threads are never blocked behind a full-registry pause.
//! - **Zero allocation after construction.** Every `record`/`add`/`set`
//!   touches only preallocated cells, so the registry is safe to call
//!   from the flight-recorder hot path.
//!
//! Metric names are supplied by the owner (the serving layer) as static
//! tables; the registry itself is domain-agnostic.

use crate::histogram::LatencyHistogram;
use crate::json;
use crate::record::thread_index;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shards per counter row. A power of two so the shard pick is a mask.
pub const COUNTER_SHARDS: usize = 8;

/// Shards per histogram row. Histogram recording takes a short lock, so a
/// few shards suffice to keep serving threads from ever queueing.
pub const HISTOGRAM_SHARDS: usize = 4;

/// One cache line worth of counter cell: padding keeps two shards of the
/// same (or a neighbouring) counter from false-sharing.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A fixed set of counters, gauges, and latency histograms, addressable
/// by index, snapshotable at any instant.
///
/// Indices are positions in the name slices handed to [`MetricsRegistry::new`];
/// owners define `const` indices next to their name tables so call sites
/// stay readable (see `mergepath-serve::observe`).
pub struct MetricsRegistry {
    counter_names: &'static [&'static str],
    gauge_names: &'static [&'static str],
    histogram_names: &'static [&'static str],
    /// `counter_names.len() * COUNTER_SHARDS` cells, row-major.
    counters: Box<[PaddedU64]>,
    gauges: Box<[PaddedU64]>,
    /// [`HISTOGRAM_SHARDS`] shards, each holding one cell per histogram
    /// name (shard-major, so one lock covers a batch of records).
    histograms: Box<[Mutex<Box<[LatencyHistogram]>>]>,
}

impl MetricsRegistry {
    /// Builds a registry over the given static name tables. All storage
    /// is allocated here; no later operation allocates.
    pub fn new(
        counter_names: &'static [&'static str],
        gauge_names: &'static [&'static str],
        histogram_names: &'static [&'static str],
    ) -> Self {
        let counters = (0..counter_names.len() * COUNTER_SHARDS)
            .map(|_| PaddedU64::default())
            .collect();
        let gauges = (0..gauge_names.len())
            .map(|_| PaddedU64::default())
            .collect();
        let histograms = (0..HISTOGRAM_SHARDS)
            .map(|_| {
                Mutex::new(
                    (0..histogram_names.len())
                        .map(|_| LatencyHistogram::new())
                        .collect(),
                )
            })
            .collect();
        MetricsRegistry {
            counter_names,
            gauge_names,
            histogram_names,
            counters,
            gauges,
            histograms,
        }
    }

    /// Adds `delta` to counter `idx`. Lock-free; the calling thread's
    /// shard is chosen by [`thread_index`].
    #[inline]
    pub fn counter_add(&self, idx: usize, delta: u64) {
        debug_assert!(idx < self.counter_names.len());
        let shard = thread_index() & (COUNTER_SHARDS - 1);
        self.counters[idx * COUNTER_SHARDS + shard]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of counter `idx` (sum over shards).
    pub fn counter_value(&self, idx: usize) -> u64 {
        self.counters[idx * COUNTER_SHARDS..(idx + 1) * COUNTER_SHARDS]
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Sets gauge `idx` to `value`.
    #[inline]
    pub fn gauge_set(&self, idx: usize, value: u64) {
        self.gauges[idx].0.store(value, Ordering::Relaxed);
    }

    /// Raises gauge `idx` to `value` if `value` is larger (peak tracking).
    #[inline]
    pub fn gauge_max(&self, idx: usize, value: u64) {
        self.gauges[idx].0.fetch_max(value, Ordering::Relaxed);
    }

    /// Adds `delta` to gauge `idx`.
    #[inline]
    pub fn gauge_add(&self, idx: usize, delta: u64) {
        self.gauges[idx].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta` from gauge `idx`, saturating at zero (a racy
    /// decrement below zero would otherwise wrap to 2^64-1 and poison
    /// every later read).
    #[inline]
    pub fn gauge_sub(&self, idx: usize, delta: u64) {
        let _ = self.gauges[idx]
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(delta))
            });
    }

    /// Current value of gauge `idx`.
    pub fn gauge_value(&self, idx: usize) -> u64 {
        self.gauges[idx].0.load(Ordering::Relaxed)
    }

    /// Records `value_ns` into histogram `idx`, locking only the calling
    /// thread's shard.
    #[inline]
    pub fn histogram_record(&self, idx: usize, value_ns: u64) {
        self.histogram_record_many(&[(idx, value_ns)]);
    }

    /// Records a batch of `(histogram idx, value_ns)` samples under a
    /// single lock of the calling thread's shard — the hot-path form for
    /// call sites that record several histograms per event.
    #[inline]
    pub fn histogram_record_many(&self, samples: &[(usize, u64)]) {
        let shard = thread_index() % HISTOGRAM_SHARDS;
        if let Ok(mut cells) = self.histograms[shard].lock() {
            for &(idx, value_ns) in samples {
                debug_assert!(idx < self.histogram_names.len());
                cells[idx].record(value_ns);
            }
        }
    }

    /// Merged view of histogram `idx` across its shards.
    pub fn histogram_value(&self, idx: usize) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in &self.histograms[..] {
            if let Ok(cells) = shard.lock() {
                merged.merge_from(&cells[idx]);
            }
        }
        merged
    }

    /// Captures every metric at (approximately) one instant.
    ///
    /// Never blocks recording threads for longer than one histogram-shard
    /// clone; counters and gauges are read without any lock at all. The
    /// snapshot is internally consistent per metric, not across metrics —
    /// a counter incremented while the snapshot walks the table may or
    /// may not be included, which is the standard live-metrics contract.
    pub fn snapshot(&self, t_ns: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            t_ns,
            counters: self
                .counter_names
                .iter()
                .enumerate()
                .map(|(i, name)| (*name, self.counter_value(i)))
                .collect(),
            gauges: self
                .gauge_names
                .iter()
                .enumerate()
                .map(|(i, name)| (*name, self.gauge_value(i)))
                .collect(),
            histograms: self
                .histogram_names
                .iter()
                .enumerate()
                .map(|(i, name)| (*name, self.histogram_value(i)))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.counter_names)
            .field("gauges", &self.gauge_names)
            .field("histograms", &self.histogram_names)
            .finish()
    }
}

/// A point-in-time copy of every metric in a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// When the snapshot was taken ([`now_ns`](crate::now_ns) timeline).
    pub t_ns: u64,
    /// `(name, value)` per counter, in registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` per gauge, in registration order.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(name, merged histogram)` per histogram, in registration order.
    pub histograms: Vec<(&'static str, LatencyHistogram)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (counters as `counter`, gauges as `gauge`, histograms as
    /// `summary` with p50/p90/p99/p999 quantile series plus `_sum` and
    /// `_count`).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, label) in [
                (0.50, "0.5"),
                (0.90, "0.9"),
                (0.99, "0.99"),
                (0.999, "0.999"),
            ] {
                let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.percentile(q));
            }
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum(), h.count());
        }
        out
    }

    /// Renders the snapshot as one deterministic JSON object:
    /// `{"type":"metrics_snapshot","t_ns":…,"counters":{…},"gauges":{…},
    /// "histograms":{name: summary}}`. One such object per line is the
    /// `metrics.jsonl` format `mp serve --metrics-out` appends to.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"type\":\"metrics_snapshot\",\"t_ns\":");
        json::write_f64(&mut out, self.t_ns as f64);
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push(':');
            json::write_f64(&mut out, *v as f64);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push(':');
            json::write_f64(&mut out, *v as f64);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push(':');
            out.push_str(&h.to_json());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTERS: &[&str] = &["req_total", "err_total"];
    const GAUGES: &[&str] = &["depth", "depth_peak"];
    const HISTS: &[&str] = &["latency_ns"];

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new(COUNTERS, GAUGES, HISTS)
    }

    #[test]
    fn counters_sum_across_shards_and_threads() {
        let reg = registry();
        reg.counter_add(0, 2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        reg.counter_add(0, 1);
                    }
                    reg.counter_add(1, 5);
                });
            }
        });
        assert_eq!(reg.counter_value(0), 402);
        assert_eq!(reg.counter_value(1), 20);
    }

    #[test]
    fn gauges_set_max_add_sub() {
        let reg = registry();
        reg.gauge_set(0, 7);
        assert_eq!(reg.gauge_value(0), 7);
        reg.gauge_add(0, 3);
        reg.gauge_sub(0, 4);
        assert_eq!(reg.gauge_value(0), 6);
        reg.gauge_sub(0, 100);
        assert_eq!(reg.gauge_value(0), 0, "gauge_sub saturates at zero");
        reg.gauge_max(1, 5);
        reg.gauge_max(1, 3);
        assert_eq!(reg.gauge_value(1), 5);
    }

    #[test]
    fn histogram_merges_shards() {
        let reg = registry();
        // Record from several threads so distinct shards are populated,
        // then check the merged view sees every sample exactly once.
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let reg = &reg;
                s.spawn(move || reg.histogram_record(0, (t + 1) * 100));
            }
        });
        let h = reg.histogram_value(0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1000);
    }

    #[test]
    fn snapshot_reads_everything_and_renders() {
        let reg = registry();
        reg.counter_add(0, 3);
        reg.gauge_set(1, 9);
        reg.histogram_record(0, 1_000);
        let snap = reg.snapshot(42);
        assert_eq!(snap.counter("req_total"), Some(3));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("depth_peak"), Some(9));
        assert_eq!(snap.histogram("latency_ns").map(|h| h.count()), Some(1));

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE req_total counter"));
        assert!(prom.contains("req_total 3"));
        assert!(prom.contains("# TYPE depth gauge"));
        assert!(prom.contains("# TYPE latency_ns summary"));
        assert!(prom.contains("latency_ns_count 1"));

        let doc = json::parse(&snap.to_json()).expect("snapshot json parses");
        assert_eq!(
            doc.get("type").and_then(|v| v.as_str()),
            Some("metrics_snapshot")
        );
        let counters = doc.get("counters").and_then(|v| v.as_object()).unwrap();
        assert_eq!(
            counters.get("req_total").and_then(|v| v.as_f64()),
            Some(3.0)
        );
    }

    #[test]
    fn snapshot_does_not_disturb_recording() {
        let reg = registry();
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 0..10_000u64 {
                    reg.counter_add(0, 1);
                    reg.histogram_record(0, i + 1);
                }
            });
            for _ in 0..50 {
                let snap = reg.snapshot(0);
                let c = snap.counter("req_total").unwrap();
                let h = snap.histogram("latency_ns").unwrap().count();
                assert!(c <= 10_000 && h <= 10_000);
            }
            writer.join().unwrap();
        });
        assert_eq!(reg.counter_value(0), 10_000);
        assert_eq!(reg.histogram_value(0).count(), 10_000);
    }
}
