//! Shared writer for the committed `BENCH_*.json` artifacts.
//!
//! Every benchmark artifact the repo commits (`BENCH_merge.json`,
//! `BENCH_sort.json`, `BENCH_telemetry.json`) goes through this module so
//! the three files can never disagree on envelope schema or environment
//! fingerprint. The envelope is:
//!
//! ```json
//! {
//!   "type": "<artifact kind>",
//!   "schema_version": 1,
//!   "env": { "os": ..., "arch": ..., ... },
//!   "payload": { ...artifact-specific fields... }
//! }
//! ```
//!
//! [`render_artifact`] self-checks the document with the in-repo
//! [`crate::json`] parser before returning it, and [`check_artifact`] is
//! the validation the `cargo xtask verify-bench` gate runs against both
//! freshly produced and committed artifacts.

use std::fmt::Write as _;

use crate::json::{self, Value};

/// Version of the artifact envelope. Bump when envelope keys change.
pub const SCHEMA_VERSION: u64 = 1;

/// The machine/build facts stamped into every artifact, so a regression
/// comparison between two artifacts can first prove they came from
/// comparable environments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvFingerprint {
    /// `std::env::consts::OS` (e.g. `linux`).
    pub os: String,
    /// `std::env::consts::ARCH` (e.g. `x86_64`).
    pub arch: String,
    /// `std::env::consts::FAMILY` (e.g. `unix`).
    pub family: String,
    /// Pointer width in bits.
    pub pointer_width: u32,
    /// `std::thread::available_parallelism()` at capture time (0 if
    /// unavailable).
    pub parallelism: u32,
    /// Whether the producing binary was compiled with debug assertions —
    /// numbers from such a build are not comparable to release numbers.
    pub debug_assertions: bool,
}

impl EnvFingerprint {
    /// Captures the fingerprint of the running process.
    pub fn capture() -> Self {
        EnvFingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            family: std::env::consts::FAMILY.to_string(),
            pointer_width: usize::BITS,
            parallelism: std::thread::available_parallelism()
                .map(|p| p.get() as u32)
                .unwrap_or(0),
            debug_assertions: cfg!(debug_assertions),
        }
    }

    /// Renders the fingerprint as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"os\":");
        json::write_str(&mut out, &self.os);
        out.push_str(",\"arch\":");
        json::write_str(&mut out, &self.arch);
        out.push_str(",\"family\":");
        json::write_str(&mut out, &self.family);
        let _ = write!(
            out,
            ",\"pointer_width\":{},\"parallelism\":{},\"debug_assertions\":{}}}",
            self.pointer_width, self.parallelism, self.debug_assertions
        );
        out
    }
}

/// Builds the full artifact document for `payload` (which must be a JSON
/// object) and self-checks it with the in-repo parser.
///
/// # Errors
/// Returns a message if `payload` is not a parseable JSON object or the
/// assembled envelope fails the self-check.
pub fn render_artifact(
    doc_type: &str,
    env: &EnvFingerprint,
    payload: &str,
) -> Result<String, String> {
    let mut out = String::from("{\"type\":");
    json::write_str(&mut out, doc_type);
    let _ = write!(out, ",\"schema_version\":{SCHEMA_VERSION},\"env\":");
    out.push_str(&env.to_json());
    out.push_str(",\"payload\":");
    out.push_str(payload);
    out.push('}');
    check_artifact(&out, doc_type)?;
    Ok(out)
}

/// Renders and writes an artifact to `path`.
///
/// # Errors
/// Propagates [`render_artifact`] failures and I/O errors as messages.
pub fn write_artifact(
    path: &std::path::Path,
    doc_type: &str,
    env: &EnvFingerprint,
    payload: &str,
) -> Result<(), String> {
    let doc = render_artifact(doc_type, env, payload)?;
    std::fs::write(path, doc).map_err(|e| format!("{}: {e}", path.display()))
}

/// Parses `doc` and validates the artifact envelope: the `type` matches,
/// `schema_version` equals [`SCHEMA_VERSION`], `env` carries every
/// fingerprint key, and `payload` is an object. Returns the parsed
/// document for artifact-specific checks.
///
/// # Errors
/// Returns a message naming the first envelope violation.
pub fn check_artifact(doc: &str, expected_type: &str) -> Result<Value, String> {
    let v = json::parse(doc)?;
    let t = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or("artifact without string `type`")?;
    if t != expected_type {
        return Err(format!("artifact type `{t}`, expected `{expected_type}`"));
    }
    let version = v
        .get("schema_version")
        .and_then(Value::as_f64)
        .ok_or("artifact without numeric `schema_version`")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version}, expected {SCHEMA_VERSION}"
        ));
    }
    let env = v.get("env").ok_or("artifact without `env`")?;
    for key in ["os", "arch", "family"] {
        if env.get(key).and_then(Value::as_str).is_none() {
            return Err(format!("env without string `{key}`"));
        }
    }
    for key in ["pointer_width", "parallelism"] {
        if env.get(key).and_then(Value::as_f64).is_none() {
            return Err(format!("env without numeric `{key}`"));
        }
    }
    if !matches!(env.get("debug_assertions"), Some(Value::Bool(_))) {
        return Err("env without boolean `debug_assertions`".to_string());
    }
    if v.get("payload").and_then(Value::as_object).is_none() {
        return Err("artifact without object `payload`".to_string());
    }
    Ok(v)
}

/// Whether two parsed artifacts carry the same environment fingerprint
/// (the precondition for comparing their numbers).
pub fn same_env(a: &Value, b: &Value) -> bool {
    a.get("env") == b.get("env")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrips_and_validates() {
        let env = EnvFingerprint::capture();
        let doc =
            render_artifact("bench_merge", &env, r#"{"n":1024,"families":[]}"#).expect("render");
        let parsed = check_artifact(&doc, "bench_merge").expect("check");
        assert_eq!(
            parsed
                .get("payload")
                .and_then(|p| p.get("n"))
                .and_then(Value::as_f64),
            Some(1024.0)
        );
        assert_eq!(
            parsed
                .get("env")
                .and_then(|e| e.get("os"))
                .and_then(Value::as_str),
            Some(std::env::consts::OS)
        );
    }

    #[test]
    fn wrong_type_and_bad_payload_are_rejected() {
        let env = EnvFingerprint::capture();
        let doc = render_artifact("bench_sort", &env, "{}").expect("render");
        assert!(check_artifact(&doc, "bench_merge").is_err());
        assert!(render_artifact("bench_sort", &env, "[1,2]").is_err());
        assert!(render_artifact("bench_sort", &env, "{not json").is_err());
    }

    #[test]
    fn same_env_detects_fingerprint_drift() {
        let env = EnvFingerprint::capture();
        let a = render_artifact("x", &env, "{}").expect("render");
        let b = render_artifact("y", &env, r#"{"k":1}"#).expect("render");
        let mut other = env.clone();
        other.parallelism += 1;
        let c = render_artifact("x", &other, "{}").expect("render");
        let (a, b, c) = (
            json::parse(&a).unwrap(),
            json::parse(&b).unwrap(),
            json::parse(&c).unwrap(),
        );
        assert!(same_env(&a, &b));
        assert!(!same_env(&a, &c));
    }
}
