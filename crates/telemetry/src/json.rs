//! A minimal hand-rolled JSON writer and parser.
//!
//! The workspace is hermetic (no `serde`), and the exporters only need a
//! small well-defined subset: objects, arrays, strings, booleans, `null`,
//! and finite numbers. The parser exists so `cargo xtask verify-telemetry`
//! and the test suite can schema-check exported traces without a registry
//! dependency; it accepts standard JSON (with the usual `f64` number
//! semantics) and rejects anything malformed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys are kept sorted (`BTreeMap`), which is irrelevant
    /// for schema checks.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience: `self[key]` for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Appends `s` to `out` as a JSON string literal (with escaping).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` in a JSON-legal form (`NaN`/infinite become 0).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

/// Appends `v` to `out` as one compact JSON document (object keys emerge
/// in `BTreeMap` order, so rendering is deterministic).
pub fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Number(n) => write_f64(out, *n),
        Value::String(s) => write_str(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, value)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(out, key);
                out.push(':');
                write_value(out, value);
            }
            out.push('}');
        }
    }
}

/// Parses one JSON document from `input` (surrounding whitespace allowed).
///
/// # Errors
/// Returns a message describing the first syntax error, with a byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not needed by our exporters;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_escaped_strings() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}");
        let parsed = parse(&s).expect("parse");
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x"}"#).expect("parse");
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nulll").is_err());
    }

    #[test]
    fn write_f64_stays_json_legal() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        s.push(' ');
        write_f64(&mut s, 1.25);
        assert_eq!(s, "0 1.25");
    }

    #[test]
    fn write_value_roundtrips_through_the_parser() {
        let doc = r#"{"a":[1,true,null,"x\n"],"b":{"c":-2.5},"d":"y"}"#;
        let parsed = parse(doc).unwrap();
        let mut rendered = String::new();
        write_value(&mut rendered, &parsed);
        assert_eq!(parse(&rendered).unwrap(), parsed);
        // Deterministic: a second render is byte-identical.
        let mut again = String::new();
        write_value(&mut again, &parsed);
        assert_eq!(rendered, again);
    }
}
