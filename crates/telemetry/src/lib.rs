//! # mergepath-telemetry — in-repo observability for the merge-path kernels
//!
//! The paper's central claim (§III, Thm 14) is *perfect load balance*: each
//! of the `p` workers merges exactly `⌈N/p⌉` elements, so wall-clock time is
//! bounded by the slowest worker with near-zero spread. Validating that claim
//! (and every future performance change) needs per-worker timelines, pool
//! round overhead, and diagonal-search cost — quantities the aggregate
//! counters in `mergepath::stats` cannot observe.
//!
//! This crate provides that instrumentation without any external dependency
//! (the workspace is hermetic — no `tracing`, no `metrics`; this follows the
//! same vendored-shim philosophy as the in-repo `proptest`/`criterion`):
//!
//! - [`Recorder`]: the sink trait the kernels and the executor report into.
//!   Mirrors `mergepath::probe::Probe`: the default implementation
//!   [`NoRecorder`] is a zero-sized type whose calls are empty
//!   `#[inline(always)]` bodies **and** whose associated const
//!   [`Recorder::ACTIVE`] is `false`, so every instrumented call site
//!   (including the `Instant::now` reads around it) monomorphizes away and
//!   the untraced hot path is byte-for-byte the pre-telemetry code.
//! - [`TimelineRecorder`]: the collecting implementation — cache-padded
//!   per-worker event shards, finished into a processed [`Telemetry`].
//! - [`Telemetry`]: processed spans / counters / share windows / rounds,
//!   with derived [`LoadBalanceReport`] statistics (max/min/mean worker busy
//!   time, imbalance ratio, Thm 14 predicted `⌈N/p⌉` vs. observed counts).
//! - Exporters: Chrome `trace_event` JSON ([`Telemetry::to_chrome_trace`],
//!   loadable in Perfetto / `chrome://tracing`) and a flat JSONL metrics
//!   stream ([`Telemetry::to_jsonl`]).
//! - [`LatencyHistogram`]: a fixed-size HDR-style log-linear histogram used
//!   by the serving layer (`mergepath-serve`) for per-request p50/p99
//!   latency summaries, mergeable across worker shards.
//! - [`json`]: a minimal hand-rolled JSON writer/parser used by the
//!   exporters and by `cargo xtask verify-telemetry`'s schema check.
//! - [`artifact`]: the shared envelope writer (environment fingerprint +
//!   schema self-check) every committed `BENCH_*.json` goes through, so
//!   the artifacts can never disagree on schema or fingerprint.
//!
//! The **live** observability layer (ISSUE 7) sits beside the post-hoc
//! timeline and shares its zero-cost philosophy:
//!
//! - [`metrics`]: [`MetricsRegistry`] — cache-line-sharded lock-free
//!   counters, gauges, and mergeable [`LatencyHistogram`]s, snapshotable
//!   at any instant without pausing writers.
//! - [`waterfall`]: the per-request `{queue, dispatch, compute, emit}`
//!   latency breakdown and the p99 attribution table renderer.
//! - [`flight`]: [`FlightRecorder`] — a bounded overwrite-oldest ring of
//!   recent request events, dumped as JSONL on anomaly (deadline miss,
//!   queue-full burst, contained panic) for post-mortem inspection via
//!   `mp inspect`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod metrics;
mod record;
mod timeline;
pub mod waterfall;

pub use flight::{FlightEvent, FlightEventKind, FlightRecorder};
pub use histogram::LatencyHistogram;
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use record::{
    counted_cmp, now_ns, span, thread_index, CounterKind, NoRecorder, OffsetRecorder, Recorder,
    SpanGuard, SpanKind,
};
pub use timeline::{
    BusyStats, CounterTotal, LoadBalanceReport, RoundRecord, ShareRecord, SpanRecord, Telemetry,
    TimelineRecorder, WorkerItems,
};
pub use waterfall::Waterfall;
