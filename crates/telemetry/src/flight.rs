//! The flight recorder: a bounded, overwrite-oldest ring of recent
//! request events, dumped as JSONL when something goes wrong.
//!
//! A deadline miss or queue-full burst in a live daemon is useless to
//! debug from totals alone — by the time an operator looks, the evidence
//! is gone. The [`FlightRecorder`] keeps the last `capacity` request
//! events continuously, at fixed memory cost, so an anomaly trigger (see
//! `mergepath-serve::observe`) can dump the seconds *leading up to* the
//! event, aviation-style.
//!
//! Hot-path contract: [`FlightRecorder::record`] performs **zero
//! allocation and takes no lock** — one relaxed `fetch_add` to claim a
//! sequence number, then plain atomic stores into a cache-line-aligned
//! preallocated slot guarded seqlock-style by a tag word
//! (`tests/metrics_invariants.rs` asserts the no-alloc property with a
//! counting allocator). Two writers only touch the same slot when they
//! claim sequence numbers `capacity` apart at the same instant, i.e.
//! essentially never; the tag protocol makes a reader discard such a
//! torn slot instead of observing it.
//!
//! A snapshot taken while writers are active is best-effort at the ring's
//! wrap edge (a slot being overwritten between the tag reads is skipped),
//! which is exactly the fidelity a post-mortem needs: events are
//! self-describing (`seq`, `t_ns`) and the dump is sorted by `seq`.

use crate::json;
use std::sync::atomic::{AtomicU64, Ordering};

/// What happened to a request at one point of its lifecycle.
///
/// The `arg0`/`arg1` payload of a [`FlightEvent`] is kind-specific and
/// documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlightEventKind {
    /// Request offered to the daemon. `arg0` = absolute deadline
    /// (`now_ns` timeline, 0 = none).
    Submit,
    /// Request rejected synchronously: the bounded queue was full.
    /// `arg0` = queue capacity.
    RejectQueueFull,
    /// A serving thread popped the request. `arg0` = its submit
    /// timestamp, `arg1` = queue depth after the pop.
    Dequeue,
    /// Rejected at dequeue: the deadline had already expired.
    /// `arg0` = absolute deadline, `arg1` = how late the dequeue was (ns).
    RejectDeadline,
    /// Kernel execution began. `arg0` = worker share granted,
    /// `arg1` = requests in flight (including this one).
    Start,
    /// Response resolved successfully. `arg0` = total latency (ns),
    /// `arg1` = compute-stage time (ns).
    Complete,
    /// The request's kernel panicked; the panic was contained and the
    /// waiter observed a failed outcome.
    Fail,
}

impl FlightEventKind {
    /// All variants, for exhaustive rendering.
    pub const ALL: [FlightEventKind; 7] = [
        FlightEventKind::Submit,
        FlightEventKind::RejectQueueFull,
        FlightEventKind::Dequeue,
        FlightEventKind::RejectDeadline,
        FlightEventKind::Start,
        FlightEventKind::Complete,
        FlightEventKind::Fail,
    ];

    /// Stable lowercase name used in dumps and by `mp inspect`.
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::Submit => "submit",
            FlightEventKind::RejectQueueFull => "reject_queue_full",
            FlightEventKind::Dequeue => "dequeue",
            FlightEventKind::RejectDeadline => "reject_deadline",
            FlightEventKind::Start => "start",
            FlightEventKind::Complete => "complete",
            FlightEventKind::Fail => "fail",
        }
    }

    /// Parses a [`Self::name`] string (the `mp inspect` direction).
    pub fn parse(s: &str) -> Option<FlightEventKind> {
        FlightEventKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// Dense numeric code (index into [`Self::ALL`]) for lock-free slot
    /// storage.
    fn code(self) -> u64 {
        FlightEventKind::ALL
            .iter()
            .position(|&k| k == self)
            .unwrap() as u64
    }

    /// Inverse of [`Self::code`].
    fn from_code(code: u64) -> Option<FlightEventKind> {
        FlightEventKind::ALL.get(code as usize).copied()
    }
}

/// One ring entry: fixed-size, `Copy`, self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (total order of recording).
    pub seq: u64,
    /// When it happened ([`now_ns`](crate::now_ns) timeline).
    pub t_ns: u64,
    /// The request this event belongs to.
    pub request_id: u64,
    /// Lifecycle stage.
    pub kind: FlightEventKind,
    /// Kind-specific payload (see [`FlightEventKind`]).
    pub arg0: u64,
    /// Kind-specific payload (see [`FlightEventKind`]).
    pub arg1: u64,
}

/// Sentinel tag marking a slot mid-write. A stable slot's tag is
/// `seq + 1` (so 0 means "never written"); sequence numbers never get
/// within 2 of `u64::MAX`, so the sentinel is unambiguous.
const WRITING: u64 = u64::MAX;

/// One lock-free ring slot: the event fields as plain atomics plus a
/// seqlock tag. Cache-line-aligned so two serving threads writing
/// neighboring slots never false-share.
#[derive(Default)]
#[repr(align(64))]
struct Slot {
    /// 0 = empty, [`WRITING`] = mid-write, else stored event's `seq + 1`.
    tag: AtomicU64,
    t_ns: AtomicU64,
    request_id: AtomicU64,
    kind: AtomicU64,
    arg0: AtomicU64,
    arg1: AtomicU64,
}

impl Slot {
    /// Reads the slot if it holds a stable event: tag before, fields,
    /// tag after — a mismatch means a writer raced and the slot is
    /// skipped (acquire/release pairs make the happy path well-ordered).
    fn read(&self) -> Option<FlightEvent> {
        let t1 = self.tag.load(Ordering::Acquire);
        if t1 == 0 || t1 == WRITING {
            return None;
        }
        let event = FlightEvent {
            seq: t1 - 1,
            t_ns: self.t_ns.load(Ordering::Acquire),
            request_id: self.request_id.load(Ordering::Acquire),
            kind: FlightEventKind::from_code(self.kind.load(Ordering::Acquire))?,
            arg0: self.arg0.load(Ordering::Acquire),
            arg1: self.arg1.load(Ordering::Acquire),
        };
        (self.tag.load(Ordering::Acquire) == t1).then_some(event)
    }
}

/// Fixed-capacity, overwrite-oldest event ring. See the module docs for
/// the concurrency contract.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl FlightRecorder {
    /// Builds a ring holding the most recent `capacity` events
    /// (`capacity` is clamped to at least 1). All memory is allocated
    /// here.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (≥ the number currently retained).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event, overwriting the oldest entry once the ring is
    /// full. Allocation-free; assigns and returns the event's global
    /// sequence number (the `seq` field of the stored event is set here,
    /// whatever the caller passed in).
    #[inline]
    pub fn record(&self, event: FlightEvent) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // Seqlock write: raise the in-progress sentinel, store the
        // fields, then publish the new tag. Release stores keep the
        // sequence observable in this order; a reader that catches the
        // window discards the slot.
        slot.tag.store(WRITING, Ordering::Release);
        slot.t_ns.store(event.t_ns, Ordering::Release);
        slot.request_id.store(event.request_id, Ordering::Release);
        slot.kind.store(event.kind.code(), Ordering::Release);
        slot.arg0.store(event.arg0, Ordering::Release);
        slot.arg1.store(event.arg1, Ordering::Release);
        slot.tag.store(seq + 1, Ordering::Release);
        seq
    }

    /// Copies out the currently retained events, oldest first.
    ///
    /// Safe to call while writers are active; see the module docs for
    /// the wrap-edge caveat.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = self.slots.iter().filter_map(Slot::read).collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Renders events as JSONL, one `{"type":"flight_event",…}` object
    /// per line — the body format of a flight dump.
    pub fn to_jsonl(events: &[FlightEvent]) -> String {
        let mut out = String::new();
        for e in events {
            out.push_str("{\"type\":\"flight_event\",\"seq\":");
            json::write_f64(&mut out, e.seq as f64);
            out.push_str(",\"t_ns\":");
            json::write_f64(&mut out, e.t_ns as f64);
            out.push_str(",\"request_id\":");
            json::write_f64(&mut out, e.request_id as f64);
            out.push_str(",\"kind\":");
            json::write_str(&mut out, e.kind.name());
            out.push_str(",\"arg0\":");
            json::write_f64(&mut out, e.arg0 as f64);
            out.push_str(",\"arg1\":");
            json::write_f64(&mut out, e.arg1 as f64);
            out.push_str("}\n");
        }
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(request_id: u64, kind: FlightEventKind) -> FlightEvent {
        FlightEvent {
            seq: 0,
            t_ns: request_id * 10,
            request_id,
            kind,
            arg0: 1,
            arg1: 2,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let ring = FlightRecorder::new(8);
        for i in 0..20 {
            ring.record(ev(i, FlightEventKind::Submit));
        }
        assert_eq!(ring.recorded(), 20);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8, "ring retains exactly its capacity");
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>(), "oldest overwritten");
        assert_eq!(snap[0].request_id, 12);
    }

    #[test]
    fn partially_filled_ring_snapshots_cleanly() {
        let ring = FlightRecorder::new(16);
        assert!(ring.snapshot().is_empty());
        ring.record(ev(7, FlightEventKind::Complete));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].request_id, 7);
        assert_eq!(snap[0].kind, FlightEventKind::Complete);
    }

    #[test]
    fn concurrent_recording_loses_only_overwritten_events() {
        let ring = FlightRecorder::new(1024);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..100 {
                        ring.record(ev(t * 1000 + i, FlightEventKind::Dequeue));
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 400);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 400, "capacity never exceeded, nothing lost");
        // Sequence numbers are unique and dense.
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn kind_names_round_trip_and_jsonl_parses() {
        for k in FlightEventKind::ALL {
            assert_eq!(FlightEventKind::parse(k.name()), Some(k));
        }
        assert_eq!(FlightEventKind::parse("unknown"), None);

        let ring = FlightRecorder::new(4);
        ring.record(ev(3, FlightEventKind::RejectDeadline));
        ring.record(ev(4, FlightEventKind::Complete));
        let text = FlightRecorder::to_jsonl(&ring.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let doc = json::parse(line).expect("event line parses");
            assert_eq!(
                doc.get("type").and_then(|v| v.as_str()),
                Some("flight_event")
            );
            let kind = doc.get("kind").and_then(|v| v.as_str()).unwrap();
            assert!(FlightEventKind::parse(kind).is_some());
        }
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = FlightRecorder::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(ev(1, FlightEventKind::Submit));
        ring.record(ev(2, FlightEventKind::Submit));
        assert_eq!(ring.snapshot().len(), 1);
    }
}
