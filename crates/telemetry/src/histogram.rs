//! A hand-rolled HDR-style latency histogram.
//!
//! The serving layer (`mergepath-serve`, `mp serve`, `mp bench --serve`)
//! needs per-request latency distributions — p50/p99 summaries over many
//! thousands of requests — without any external dependency and without
//! keeping every sample. This is the classic high-dynamic-range bucket
//! scheme (log-linear: each power-of-two magnitude is split into
//! `2^SUB_BITS` linear sub-buckets), which bounds the relative
//! quantization error of every recorded value by `2^-SUB_BITS` (~3% at
//! the 5 sub-bit precision used here) across the full `u64` nanosecond
//! range, in a fixed ~15 KiB table.
//!
//! Two properties the serve artifact depends on are tested here against
//! brute-force oracles:
//!
//! * **Percentile extraction**: [`LatencyHistogram::percentile`] returns
//!   exactly the upper bound of the bucket holding the rank-`⌈q·count⌉`
//!   smallest sample — the same bucket a sorted-vector oracle's sample
//!   lands in.
//! * **Merge associativity**: [`LatencyHistogram::merge_from`] is a plain
//!   per-bucket sum, so merging per-worker histograms is associative and
//!   commutative and loses nothing — the daemon can aggregate shards in
//!   any order.

use std::fmt::Write as _;

/// Linear sub-buckets per power-of-two magnitude: `2^SUB_BITS` buckets,
/// giving a worst-case relative quantization error of `2^-SUB_BITS`
/// (~3.1%).
pub const SUB_BITS: u32 = 5;

const SUB_COUNT: usize = 1 << SUB_BITS;
const SUB_MASK: u64 = (SUB_COUNT - 1) as u64;

/// Bucket count covering every `u64` value: the linear region
/// `0..2^SUB_BITS` contributes `SUB_COUNT` buckets, and each magnitude
/// `SUB_BITS..=63` contributes `SUB_COUNT` more — `60 × 32 = 1920` total
/// at the default precision (a fixed ~15 KiB table).
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// Index of the bucket containing `v`.
///
/// Values below `2^SUB_BITS` map linearly (bucket = value); above, the
/// top `SUB_BITS` bits after the leading one select the sub-bucket within
/// the value's power-of-two magnitude. The mapping is monotone and
/// continuous across the linear/logarithmic boundary.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        v as usize
    } else {
        let magnitude = 63 - v.leading_zeros();
        let sub = ((v >> (magnitude - SUB_BITS)) & SUB_MASK) as usize;
        ((magnitude - SUB_BITS + 1) as usize) * SUB_COUNT + sub
    }
}

/// Largest value mapping to bucket `index` (the bucket's inclusive upper
/// bound — the value percentiles report).
fn bucket_bound(index: usize) -> u64 {
    if index < SUB_COUNT {
        index as u64
    } else {
        let magnitude = (index / SUB_COUNT) as u32 + SUB_BITS - 1;
        let sub = (index % SUB_COUNT) as u64;
        let base = 1u64 << magnitude;
        let width = 1u64 << (magnitude - SUB_BITS);
        // `(base - 1) + (sub + 1) * width` peaks at exactly `u64::MAX`
        // for the top bucket; the naive `base + (…) - 1` would overflow.
        (base - 1) + (sub + 1) * width
    }
}

/// A fixed-size log-linear histogram of `u64` samples (nanoseconds, by
/// convention).
///
/// # Examples
/// ```
/// use mergepath_telemetry::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 10);
/// assert_eq!(h.percentile(0.50), 50); // small values are exact
/// assert_eq!(h.max(), 100);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0u64; BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("BUCKETS-sized box"),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`): the upper bound of the bucket
    /// containing the rank-`⌈q·count⌉` smallest sample (rank 1 for
    /// `q = 0`). Returns 0 for an empty histogram. The reported value is
    /// ≥ the exact sample and overshoots it by at most a factor
    /// `2^-SUB_BITS` (~3%).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self` (per-bucket sum — exact,
    /// associative, commutative).
    pub fn merge_from(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Renders the summary quantiles as one JSON object (count, sum, min,
    /// mean, p50/p90/p99/p999, max) — the shape embedded in
    /// `BENCH_serve.json` and printed by `mp serve`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"mean_ns\":{},\
             \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}",
            self.count,
            self.sum,
            self.min(),
            self.mean(),
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.percentile(0.999),
            self.max,
        );
        out.push('}');
        out
    }
}

impl PartialEq for LatencyHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count && self.sum == other.sum && self.counts[..] == other.counts[..]
    }
}

impl Eq for LatencyHistogram {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// Brute-force quantile oracle: the rank-`⌈q·n⌉` smallest sample of a
    /// sorted vector.
    fn oracle_sample(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn bucket_mapping_is_monotone_and_continuous() {
        // The linear region maps identically.
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
        // Monotone across the linear/log boundary and beyond; every value
        // is ≤ its bucket's upper bound, and the previous bucket's bound
        // is < the value.
        let probes: Vec<u64> = (0..2048)
            .chain((0..54).flat_map(|m| {
                let base = 1u64 << (m + 10);
                [base - 1, base, base + 1, base + base / 3, base + base / 2]
            }))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        let mut prev = None;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(v <= bucket_bound(i), "{v} above its bucket bound");
            if i > 0 {
                assert!(bucket_bound(i - 1) < v, "{v} below previous bucket bound");
            }
            if let Some((pv, pi)) = prev {
                if v >= pv {
                    assert!(i >= pi, "index not monotone at {v}");
                }
            }
            prev = Some((v, i));
        }
        // Bucket bounds themselves round-trip: bound(i) is the largest
        // value in bucket i.
        for i in 0..BUCKETS {
            let b = bucket_bound(i);
            assert_eq!(bucket_index(b), i, "bound of bucket {i} maps elsewhere");
            if b < u64::MAX {
                assert_eq!(bucket_index(b + 1), i + 1, "bucket {i} not tight");
            }
        }
    }

    #[test]
    fn percentiles_match_sorted_vector_oracle() {
        // Deterministic multi-scale sample set: exact small values, spread
        // large ones.
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..5000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = match i % 4 {
                0 => x % 100,                    // sub-microsecond latencies
                1 => 1_000 + x % 100_000,        // microseconds
                2 => 1_000_000 + x % 50_000_000, // milliseconds
                _ => x % (1 << 40),              // heavy tail
            };
            samples.push(v);
        }
        let mut h = LatencyHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let exact = oracle_sample(&sorted, q);
            let got = h.percentile(q);
            // The histogram reports the upper bound of the oracle
            // sample's bucket — never below the sample, never more than
            // one sub-bucket width above it.
            assert_eq!(
                got,
                bucket_bound(bucket_index(exact)),
                "q={q}: got {got}, oracle sample {exact}"
            );
            assert!(got >= exact, "q={q}: reported below the exact sample");
            let error = (got - exact) as f64 / exact.max(1) as f64;
            assert!(
                error <= 1.0 / (1 << SUB_BITS) as f64 + 1e-9 || exact < SUB_COUNT as u64,
                "q={q}: quantization error {error} above 2^-{SUB_BITS}"
            );
        }
        assert_eq!(h.count(), 5000);
        assert_eq!(h.max(), *sorted.last().unwrap());
        assert_eq!(h.min(), sorted[0]);
    }

    #[test]
    fn merge_is_associative_and_exact() {
        let mut parts: Vec<LatencyHistogram> = Vec::new();
        for k in 0..3u64 {
            let mut h = LatencyHistogram::new();
            for i in 0..500u64 {
                h.record((i * 7919 + k * 104729) % (1 << (10 + 4 * k)));
            }
            parts.push(h);
        }
        // (a ⊕ b) ⊕ c
        let mut left = parts[0].clone();
        left.merge_from(&parts[1]);
        left.merge_from(&parts[2]);
        // a ⊕ (b ⊕ c)
        let mut bc = parts[1].clone();
        bc.merge_from(&parts[2]);
        let mut right = parts[0].clone();
        right.merge_from(&bc);
        assert_eq!(left, right, "merge must be associative");
        // And identical to recording everything into one histogram.
        let mut direct = LatencyHistogram::new();
        for k in 0..3u64 {
            for i in 0..500u64 {
                direct.record((i * 7919 + k * 104729) % (1 << (10 + 4 * k)));
            }
        }
        assert_eq!(left, direct, "merge must lose nothing");
        for q in [0.5, 0.99] {
            assert_eq!(left.percentile(q), direct.percentile(q));
        }
        // Commutative too: b ⊕ a == a ⊕ b.
        let mut ab = parts[0].clone();
        ab.merge_from(&parts[1]);
        let mut ba = parts[1].clone();
        ba.merge_from(&parts[0]);
        assert_eq!(ab, ba);
    }

    #[test]
    fn empty_and_degenerate_histograms() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        let mut one = LatencyHistogram::new();
        one.record(12345);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(one.percentile(q), bucket_bound(bucket_index(12345)));
        }
        let mut zeros = LatencyHistogram::new();
        for _ in 0..10 {
            zeros.record(0);
        }
        assert_eq!(zeros.percentile(0.99), 0);
        assert_eq!(zeros.mean(), 0.0);
    }

    #[test]
    fn summary_json_parses_and_orders_quantiles() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000);
        }
        let doc = json::parse(&h.to_json()).expect("summary must be valid JSON");
        let field = |k: &str| doc.get(k).and_then(json::Value::as_f64).unwrap();
        assert_eq!(field("count"), 1000.0);
        assert!(field("p50_ns") <= field("p90_ns"));
        assert!(field("p90_ns") <= field("p99_ns"));
        assert!(field("p99_ns") <= field("p999_ns"));
        assert!(field("p999_ns") <= field("max_ns"));
        assert!(field("min_ns") <= field("p50_ns"));
    }
}
