//! Per-request waterfall attribution: where each nanosecond of a served
//! request's latency went.
//!
//! A p99 alone says *that* tail latency moved; the waterfall says *why*.
//! Every request's wall time is partitioned into four contiguous,
//! non-overlapping stages measured on the shared [`now_ns`](crate::now_ns)
//! clock (the same clock that judges deadlines, so the stages and the
//! verdicts are mutually consistent):
//!
//! ```text
//! submit ──queue──▶ dequeue ──dispatch──▶ start ──compute──▶ done ──emit──▶ resolved
//! ```
//!
//! - **queue**: waiting in the bounded FIFO for a serving thread;
//! - **dispatch**: dequeue bookkeeping — deadline verdict, in-flight
//!   accounting, `worker_share` computation;
//! - **compute**: the merge/sort kernel itself (per-segment spans inside
//!   this window land in the [`TimelineRecorder`](crate::TimelineRecorder));
//! - **emit**: latency recording, counters, and response hand-off.
//!
//! The stages sum *exactly* to the request's measured wall time
//! (`tests/metrics_invariants.rs` pins `sum(stages) ≤ wall` as a
//! regression test), so an attribution table over stage histograms
//! explains a latency histogram instead of merely decorating it.

use crate::histogram::LatencyHistogram;
use crate::json;

/// Stage names in waterfall order, as used by the attribution table,
/// the per-stage metric names, and `mp inspect`.
pub const STAGES: [&str; 4] = ["queue", "dispatch", "compute", "emit"];

/// One request's latency breakdown, in nanoseconds per stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Waterfall {
    /// Time from submission to a serving thread popping the request.
    pub queue_ns: u64,
    /// Dequeue-to-kernel-start bookkeeping.
    pub dispatch_ns: u64,
    /// Kernel execution.
    pub compute_ns: u64,
    /// Kernel-end to response resolution.
    pub emit_ns: u64,
}

impl Waterfall {
    /// Total attributed time; equals the request's wall time when the
    /// probe that measured it was active.
    pub fn total_ns(&self) -> u64 {
        self.queue_ns + self.dispatch_ns + self.compute_ns + self.emit_ns
    }

    /// Stage values in [`STAGES`] order.
    pub fn stages(&self) -> [u64; 4] {
        [
            self.queue_ns,
            self.dispatch_ns,
            self.compute_ns,
            self.emit_ns,
        ]
    }

    /// Renders as `{"queue_ns":…,"dispatch_ns":…,"compute_ns":…,"emit_ns":…}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in STAGES.iter().zip(self.stages()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, &format!("{name}_ns"));
            out.push(':');
            json::write_f64(&mut out, v as f64);
        }
        out.push('}');
        out
    }
}

/// Formats a nanosecond quantity for humans (`ns`, `µs`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the p99 attribution table from per-stage histograms.
///
/// `stages` pairs each [`STAGES`] name with the histogram of that stage
/// across requests; `total` is the end-to-end latency histogram. The
/// `share` column is the stage's fraction of total *accumulated* time
/// (`stage.sum / total.sum`) — the honest attribution, since per-request
/// stage sums are exact but quantiles of independent stages need not add
/// up to the total's quantile.
pub fn render_attribution(
    stages: &[(&str, &LatencyHistogram)],
    total: &LatencyHistogram,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "stage", "p50", "p90", "p99", "max", "share"
    );
    let denom = total.sum().max(1) as f64;
    for (name, h) in stages {
        let _ = writeln!(
            out,
            "  {:<10} {:>10} {:>10} {:>10} {:>10} {:>7.1}%",
            name,
            fmt_ns(h.percentile(0.50)),
            fmt_ns(h.percentile(0.90)),
            fmt_ns(h.percentile(0.99)),
            fmt_ns(h.max()),
            100.0 * h.sum() as f64 / denom,
        );
    }
    let _ = writeln!(
        out,
        "  {:<10} {:>10} {:>10} {:>10} {:>10} {:>7.1}%",
        "total",
        fmt_ns(total.percentile(0.50)),
        fmt_ns(total.percentile(0.90)),
        fmt_ns(total.percentile(0.99)),
        fmt_ns(total.max()),
        100.0,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_sum_to_total() {
        let wf = Waterfall {
            queue_ns: 10,
            dispatch_ns: 20,
            compute_ns: 300,
            emit_ns: 4,
        };
        assert_eq!(wf.total_ns(), 334);
        assert_eq!(wf.stages(), [10, 20, 300, 4]);
    }

    #[test]
    fn waterfall_json_has_all_stages() {
        let wf = Waterfall {
            queue_ns: 1,
            dispatch_ns: 2,
            compute_ns: 3,
            emit_ns: 4,
        };
        let doc = json::parse(&wf.to_json()).expect("waterfall json parses");
        for (name, v) in STAGES.iter().zip([1.0, 2.0, 3.0, 4.0]) {
            assert_eq!(
                doc.get(&format!("{name}_ns")).and_then(|x| x.as_f64()),
                Some(v),
                "stage {name}"
            );
        }
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn attribution_table_lists_every_stage_and_shares_sum() {
        let mut queue = LatencyHistogram::new();
        let mut compute = LatencyHistogram::new();
        let mut total = LatencyHistogram::new();
        for i in 1..=100u64 {
            queue.record(i * 100);
            compute.record(i * 900);
            total.record(i * 1000);
        }
        let zero = LatencyHistogram::new();
        let table = render_attribution(
            &[
                ("queue", &queue),
                ("dispatch", &zero),
                ("compute", &compute),
                ("emit", &zero),
            ],
            &total,
        );
        for name in STAGES {
            assert!(table.contains(name), "table lists stage {name}");
        }
        assert!(table.contains("total"));
        assert!(table.contains("p99"));
        // queue ≈ 10% and compute ≈ 90% of accumulated time.
        assert!(table.contains("10.0%"), "table: {table}");
        assert!(table.contains("90.0%"), "table: {table}");
    }
}
