//! Steal-order schedule proofs: the virtual executor replays every kernel
//! under execution orders drawn from the simulated work-stealing deque
//! protocol — shares executed by workers other than the one whose deque
//! received them, with a fresh order drawn per round — instead of uniform
//! shuffles.
//!
//! This is the checker-side witness for the live executor's defining
//! reorderings (DESIGN.md §15): LIFO owner pops vs FIFO steals, hoarded
//! push shapes (every ticket on one deque, maximally steal-inducing), and
//! the overlap of rounds from independent in-flight requests. Co-rank
//! partitioning gives every share a closed-form, coordination-free
//! footprint, so any of these orders must produce byte-identical output —
//! `check_kernel_on` verifies exactly that, plus CREW disjointness and
//! the Thm 14 access bound, for all nine kernels.

use mergepath::merge::parallel::parallel_merge_into_by;
use mergepath_check::{
    check_kernel_on, default_input, record_stealing, steal_order, AccessSpan, CheckConfig, Kernel,
    Kv, Recording,
};
use mergepath_workloads::prng::Prng;
use proptest::prelude::*;

fn tagged(keys: Vec<i32>, tag0: u32) -> Vec<Kv> {
    let mut keys = keys;
    keys.sort_unstable();
    keys.into_iter()
        .enumerate()
        .map(|(i, k)| (k, tag0 + i as u32))
        .collect()
}

fn run_all_stealing(a: &[Kv], b: &[Kv], threads: usize, seed: u64) {
    let cfg = CheckConfig {
        threads,
        schedules: 4,
        seed,
        pram_limit: 2048,
        steal_orders: true,
    };
    for &kernel in &Kernel::ALL {
        if let Err(e) = check_kernel_on(kernel, a, b, &cfg) {
            panic!("{kernel:?} failed under steal orders with threads={threads} seed={seed}: {e}");
        }
    }
}

proptest! {
    /// All nine kernels, random shapes and thread counts, every round
    /// order drawn from the simulated deque protocol: output must stay
    /// byte-identical to the sequential oracle and the access sets must
    /// stay CREW-disjoint within Thm 14 bounds.
    #[test]
    fn random_shapes_survive_steal_order_exploration(
        ka in proptest::collection::vec(-40i32..40, 0..260),
        kb in proptest::collection::vec(-40i32..40, 0..260),
        threads in 2usize..6,
        seed in 0u64..1_000,
    ) {
        let a = tagged(ka, 0);
        let b = tagged(kb, 1_000_000);
        run_all_stealing(&a, &b, threads, seed);
    }
}

/// The deque simulation's attribution is trustworthy: orders are exact
/// permutations, hoarded rounds push everything through worker 0 and
/// *must* contain stolen steps (executor ≠ pusher), and balanced rounds
/// mix owner pops with steals. Without this, the schedule family above
/// would be vacuously "passing" orders that never model a steal.
#[test]
fn steal_attribution_covers_hoarded_and_balanced_shapes() {
    let mut prng = Prng::seed_from_u64(0xDEC0DE);
    let workers = 4;
    let shares = 32;

    let hoarded = steal_order(&mut prng, shares, workers, true);
    assert_eq!(hoarded.len(), shares);
    let mut seen = vec![false; shares];
    for step in &hoarded {
        assert!(!seen[step.share], "share {} executed twice", step.share);
        seen[step.share] = true;
        assert_eq!(step.pusher, 0, "hoarded shape pushes everything on deque 0");
        assert!(step.executor < workers);
    }
    assert!(
        hoarded.iter().any(|s| s.stolen()),
        "a hoarded round over {workers} workers produced no stolen step"
    );
    // Stolen tickets come off the FIFO end while the owner pops LIFO, so
    // the executed order must diverge from push order.
    let executed: Vec<usize> = hoarded.iter().map(|s| s.share).collect();
    let pushed: Vec<usize> = (0..shares).collect();
    assert_ne!(executed, pushed, "steals left the push order untouched");

    let balanced = steal_order(&mut prng, shares, workers, false);
    assert_eq!(balanced.len(), shares);
    for step in &balanced {
        assert_eq!(
            step.pusher,
            step.share % workers,
            "balanced deal is round-robin"
        );
    }
    assert!(
        balanced.iter().any(|s| !s.stolen()),
        "balanced rounds must include owner-executed shares"
    );
}

/// Multi-round kernels draw a *fresh* steal order for every round — the
/// cross-round half of the schedule family. A sort pushes many rounds
/// through the pool; each recorded order must be a permutation of that
/// round's shares, at least one round must be visibly reordered, and the
/// whole stream must be deterministic in the seed (replayability is what
/// makes a failing schedule reportable).
#[test]
fn multi_round_kernels_draw_fresh_steal_orders_per_round() {
    let run = || {
        let (a, b) = default_input(600, 3);
        let mut v: Vec<Kv> = a.iter().chain(b.iter()).copied().collect();
        let ((), rec) = record_stealing(21, 4, || {
            mergepath::sort::parallel::parallel_merge_sort_by(&mut v, 4, &|x: &Kv, y: &Kv| {
                x.0.cmp(&y.0)
            });
        });
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0), "sort diverged");
        rec
    };
    let rec = run();
    let pool_rounds: Vec<_> = rec.rounds.iter().filter(|r| !r.orchestrator).collect();
    assert!(
        pool_rounds.len() >= 2,
        "parallel merge sort should push multiple rounds, got {}",
        pool_rounds.len()
    );
    let mut reordered = 0;
    for round in &pool_rounds {
        let mut sorted = round.order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..round.shares.len()).collect::<Vec<_>>(),
            "round order is not a permutation of its shares"
        );
        if round.order.windows(2).any(|w| w[0] > w[1]) {
            reordered += 1;
        }
    }
    assert!(
        reordered > 0,
        "no round was reordered across {} rounds — the steal simulation is inert",
        pool_rounds.len()
    );
    // Same seed, same input → identical order stream.
    let again = run();
    let orders = |r: &Recording| {
        r.rounds
            .iter()
            .filter(|r| !r.orchestrator)
            .map(|r| r.order.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        orders(&rec),
        orders(&again),
        "steal orders must replay deterministically"
    );
}

/// Why overlapping rounds from *different* requests is safe: with both
/// requests' buffers live simultaneously, every write span recorded for
/// request 1 is disjoint from every write and read span of request 2 (and
/// vice versa). Two rounds with no W∩W and no W∩R conflicts produce the
/// same result under ANY cross-round interleaving of their shares — the
/// property the work-stealing executor relies on when a worker picks up
/// request 2's shares between two shares of request 1.
#[test]
fn concurrent_request_rounds_stay_disjoint_under_any_interleaving() {
    let by_key = |x: &Kv, y: &Kv| x.0.cmp(&y.0);
    // Allocate everything up front and keep it all alive until the end,
    // so the recorded address spans of the two requests can only be
    // disjoint if the footprints genuinely are (no allocator reuse).
    let (a1, b1) = default_input(400, 11);
    let (a2, b2) = default_input(520, 12);
    let mut out1: Vec<Kv> = vec![(0, 0); a1.len() + b1.len()];
    let mut out2: Vec<Kv> = vec![(0, 0); a2.len() + b2.len()];

    let ((), rec1) = record_stealing(31, 4, || {
        parallel_merge_into_by(&a1, &b1, &mut out1, 4, &by_key);
    });
    let ((), rec2) = record_stealing(32, 4, || {
        parallel_merge_into_by(&a2, &b2, &mut out2, 4, &by_key);
    });

    let spans = |rec: &Recording, writes: bool| -> Vec<AccessSpan> {
        rec.rounds
            .iter()
            .flat_map(|r| r.shares.iter())
            .flat_map(|s| {
                if writes {
                    s.writes.iter()
                } else {
                    s.reads.iter()
                }
            })
            .copied()
            .collect()
    };
    let overlap =
        |x: &AccessSpan, y: &AccessSpan| x.addr < y.addr + y.bytes && y.addr < x.addr + x.bytes;
    let (w1, r1) = (spans(&rec1, true), spans(&rec1, false));
    let (w2, r2) = (spans(&rec2, true), spans(&rec2, false));
    assert!(
        !w1.is_empty() && !w2.is_empty(),
        "both requests must record writes"
    );
    for x in &w1 {
        assert!(
            w2.iter().all(|y| !overlap(x, y)) && r2.iter().all(|y| !overlap(x, y)),
            "request 1 write {x:?} conflicts with request 2's footprint"
        );
    }
    for x in &w2 {
        assert!(
            r1.iter().all(|y| !overlap(x, y)),
            "request 2 write {x:?} conflicts with request 1's reads"
        );
    }
    // Keep the buffers alive past the span checks.
    drop((out1, out2, a1, b1, a2, b2));
}
