//! Property layer for the co-rank stable kernel: the three facts its
//! stability proof rests on, checked over arbitrary shapes instead of the
//! hand-picked inputs in the unit suites.
//!
//! 1. **Split uniqueness** — for every rank `k` there is *exactly one*
//!    feasible `(i, j)` with `i + j = k` satisfying the stable split
//!    predicate (`a[i-1] <= b[j]` and `b[j-1] < a[i]`, ties toward `A`),
//!    and the binary co-rank search finds it. Uniqueness is the whole
//!    argument: independently computed block boundaries cannot disagree,
//!    so stability composes across workers without coordination.
//! 2. **Exact balance** — `exact_boundary` hands every non-tail worker
//!    exactly `⌈(m + n) / p⌉` output ranks for arbitrary `(m, n, p)`; the
//!    tail takes the remainder. This is the Siebert–Träff refinement over
//!    the ⌊k·n/p⌋ schedule, and the invariant `mp bench` gates on.
//! 3. **Tie runs straddling block cuts** — inputs whose tie-run length
//!    sits exactly at, one short of, and one past the kernel's 256-rank
//!    block granularity merge byte-identically to the sequential stable
//!    oracle, with provenance tags proving no equal element crossed a cut
//!    out of order.

use std::cmp::Ordering;

use mergepath::diagonal::{co_rank_by, split_is_valid};
use mergepath::merge::sequential::merge_into_by;
use mergepath::merge::stable::{
    co_rank_merge_into_by, exact_boundary, stable_parallel_merge_into_by, CO_RANK_BLOCK,
};

use proptest::prelude::*;

type Kv = (i32, u32);

fn by_key(x: &Kv, y: &Kv) -> Ordering {
    x.0.cmp(&y.0)
}

/// Tag sorted key vectors with provenance the comparator never sees.
fn tag(a: &[i32], b: &[i32]) -> (Vec<Kv>, Vec<Kv>) {
    let ta = a.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
    let tb = b
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, 1_000_000 + i as u32))
        .collect();
    (ta, tb)
}

fn assert_stable_output(a: &[Kv], b: &[Kv], out: &[Kv]) {
    let mut oracle = vec![(0, 0); out.len()];
    merge_into_by(a, b, &mut oracle, &by_key);
    assert_eq!(out, oracle.as_slice());
    for w in out.windows(2) {
        if w[0].0 == w[1].0 {
            assert!(w[0].1 < w[1].1, "{:?} before {:?}", w[0], w[1]);
        }
    }
}

/// Keys drawn from a tiny space so nearly every rank lands inside a mixed
/// tie class — the regime where split uniqueness actually bites.
fn sorted_dup_heavy(len: usize) -> impl Strategy<Value = Vec<i32>> {
    proptest::collection::vec(-6i32..6, 0..len).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    #[test]
    fn the_stable_split_is_unique_and_the_search_finds_it(
        a in sorted_dup_heavy(140),
        b in sorted_dup_heavy(140),
    ) {
        let (ta, tb) = tag(&a, &b);
        let n = ta.len() + tb.len();
        for k in 0..=n {
            let valid: Vec<usize> = (0..=ta.len().min(k))
                .filter(|&i| split_is_valid(k, ta.as_slice(), tb.as_slice(), &by_key, i))
                .collect();
            prop_assert_eq!(
                valid.len(), 1,
                "rank {} admits {:?} stable splits", k, &valid
            );
            let i = co_rank_by(k, ta.as_slice(), tb.as_slice(), &by_key);
            prop_assert_eq!(i, valid[0], "search must return the unique split at rank {}", k);
        }
    }

    #[test]
    fn exact_boundaries_give_every_non_tail_worker_exactly_the_ceiling(
        m in 0usize..5000,
        n in 0usize..5000,
        p in 1usize..64,
    ) {
        let total = m + n;
        let share = total.div_ceil(p);
        prop_assert_eq!(exact_boundary(total, p, 0), 0);
        prop_assert_eq!(exact_boundary(total, p, p), total);
        let mut covered = 0usize;
        for k in 0..p {
            let lo = exact_boundary(total, p, k);
            let hi = exact_boundary(total, p, k + 1);
            prop_assert!(lo <= hi, "monotone at k={}", k);
            let size = hi - lo;
            prop_assert!(size <= share, "no worker exceeds ⌈(m+n)/p⌉ at k={}", k);
            if hi < total {
                // Every worker before the capped tail gets exactly the
                // ceiling — this is what makes imbalance ≤ 1 + p/n.
                prop_assert_eq!(size, share, "non-tail worker {} must be exact", k);
            }
            covered += size;
        }
        prop_assert_eq!(covered, total);
    }

    #[test]
    fn tie_runs_at_the_block_granularity_merge_stably(
        // Runs one short of, exactly at, and one past CO_RANK_BLOCK, plus a
        // random jitter, so interior block cuts land inside, on the edge
        // of, and across tie classes.
        run_delta in -1isize..=1,
        jitter in 0usize..40,
        b_offset in 0usize..64,
        threads in 1usize..9,
    ) {
        let run = (CO_RANK_BLOCK as isize + run_delta) as usize + jitter % 3;
        let len = 4 * CO_RANK_BLOCK + jitter;
        let a: Vec<i32> = (0..len).map(|i| (i / run) as i32).collect();
        let b: Vec<i32> = (0..len).map(|i| ((i + b_offset) / run) as i32).collect();
        let (ta, tb) = tag(&a, &b);
        let mut out = vec![(0, 0); ta.len() + tb.len()];
        co_rank_merge_into_by(&ta, &tb, &mut out, &by_key);
        assert_stable_output(&ta, &tb, &out);
        // The parallel entry layers exact-balance worker cuts on top of the
        // same block machinery; the composition must stay stable too.
        let mut par = vec![(0, 0); out.len()];
        stable_parallel_merge_into_by(&ta, &tb, &mut par, threads, &by_key);
        prop_assert_eq!(par, out);
    }
}
