//! Property-based schedule exploration: random input shapes × random thread
//! counts × permuted virtual schedules, for every kernel.
//!
//! Each case drives [`mergepath_check::check_kernel_on`], which runs the
//! kernel under several seed-permuted single-threaded schedules, verifies
//! CREW disjointness / coverage / the Thm 14 bound on the recorded access
//! sets, and demands byte-identical agreement with a sequential oracle.

use mergepath_check::{check_kernel_on, default_input, CheckConfig, Kernel, Kv};
use proptest::prelude::*;

fn tagged(keys: Vec<i32>, tag0: u32) -> Vec<Kv> {
    let mut keys = keys;
    keys.sort_unstable();
    keys.into_iter()
        .enumerate()
        .map(|(i, k)| (k, tag0 + i as u32))
        .collect()
}

fn run_all(a: &[Kv], b: &[Kv], threads: usize, seed: u64) {
    let cfg = CheckConfig {
        threads,
        schedules: 4,
        seed,
        pram_limit: 2048,
        steal_orders: false,
    };
    for &kernel in &Kernel::ALL {
        if let Err(e) = check_kernel_on(kernel, a, b, &cfg) {
            panic!("{kernel:?} failed with threads={threads} seed={seed}: {e}");
        }
    }
}

proptest! {
    #[test]
    fn random_shapes_survive_schedule_exploration(
        ka in proptest::collection::vec(-40i32..40, 0..260),
        kb in proptest::collection::vec(-40i32..40, 0..260),
        threads in 2usize..6,
        seed in 0u64..1_000,
    ) {
        let a = tagged(ka, 0);
        let b = tagged(kb, 1_000_000);
        run_all(&a, &b, threads, seed);
    }

    #[test]
    fn lopsided_shapes_survive_schedule_exploration(
        na in 0usize..40,
        nb in 200usize..500,
        threads in 2usize..6,
        seed in 0u64..1_000,
    ) {
        // Heavily skewed sizes stress the co-ranking boundary cases.
        let a = tagged((0..na).map(|i| (i as i32) % 7).collect(), 0);
        let b = tagged((0..nb).map(|i| (i as i32) % 11 - 5).collect(), 1_000_000);
        run_all(&a, &b, threads, seed);
    }
}

#[test]
fn synthesized_inputs_scale_with_thread_count() {
    for threads in [2, 3, 5, 8] {
        let (a, b) = default_input(64 * threads + 37, threads as u64);
        run_all(&a, &b, threads, 0xC0FFEE + threads as u64);
    }
}
