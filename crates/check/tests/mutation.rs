//! Mutation self-test: prove the checker can actually *detect* a broken
//! partition, not just bless correct ones.
//!
//! Built with `RUSTFLAGS="--cfg mergepath_mutate"`, the Algorithm 1 merge
//! deliberately extends share 0's diagonal by one element before co-ranking,
//! so share 0 and share 1 both write the boundary slot. The written *value*
//! is identical either way (both shares compute the same merged element), so
//! output-diffing tests cannot see the fault — only the access-set
//! disjointness check can. This test asserts exactly that: under mutation
//! the checker must report `WriteOverlap`; in a clean build it must pass.
//!
//! A second fault lives in the SIMD segment kernel: under the same cfg the
//! in-register bitonic network swaps two output lanes after cleaning, which
//! corrupts merged *values*. Forcing the Simd kernel over primitive keys
//! must therefore surface as an `OutputMismatch` (the checker compares
//! against the oracle before it audits the recording).
//!
//! `cargo xtask verify-schedules` runs the mutated configuration with these
//! tests.

use mergepath_check::{check_kernel, CheckConfig, CheckError, Kernel};

#[test]
fn mutation_overlap_is_detected() {
    let cfg = CheckConfig::default();
    let result = check_kernel(Kernel::Parallel, 800, &cfg);
    if cfg!(mergepath_mutate) {
        match result {
            Err(CheckError::WriteOverlap { kernel, .. }) => assert_eq!(kernel, "parallel"),
            other => {
                panic!("mutated parallel merge must be caught as a write overlap, got {other:?}")
            }
        }
    } else {
        let report = result.expect("clean build must pass the schedule check");
        assert!(report.multi_rounds > 0, "{report}");
    }
}

/// The lane-swap fault only executes when the vector loop actually runs, so
/// this test is gated on the `simd` feature: it forces every segment through
/// the Simd kernel on primitive keys and demands the checker convict the
/// mutated network by *output*, deterministically on the very first
/// schedule, before any access-set auditing happens.
#[cfg(feature = "simd")]
#[test]
fn simd_lane_swap_mutation_is_detected_as_an_output_mismatch() {
    use mergepath::merge::adaptive::{with_dispatch_policy, DispatchPolicy, SegmentKernel};
    use mergepath_check::check_kernel_keys;

    let cfg = CheckConfig::default();
    let result = with_dispatch_policy(DispatchPolicy::Fixed(SegmentKernel::Simd), || {
        check_kernel_keys(Kernel::Parallel, 1024, &cfg)
    });
    if cfg!(mergepath_mutate) {
        match result {
            Err(CheckError::OutputMismatch {
                kernel, schedule, ..
            }) => {
                assert_eq!(kernel, "parallel");
                assert_eq!(schedule, 0, "the fault is schedule-independent");
            }
            other => {
                panic!("mutated simd lanes must be caught as an output mismatch, got {other:?}")
            }
        }
    } else {
        let report = result.expect("clean build must pass the forced-simd schedule check");
        assert!(report.multi_rounds > 0, "{report}");
    }
}
