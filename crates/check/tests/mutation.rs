//! Mutation self-test: prove the checker can actually *detect* a broken
//! partition, not just bless correct ones.
//!
//! Built with `RUSTFLAGS="--cfg mergepath_mutate"`, the Algorithm 1 merge
//! deliberately extends share 0's diagonal by one element before co-ranking,
//! so share 0 and share 1 both write the boundary slot. The written *value*
//! is identical either way (both shares compute the same merged element), so
//! output-diffing tests cannot see the fault — only the access-set
//! disjointness check can. This test asserts exactly that: under mutation
//! the checker must report `WriteOverlap`; in a clean build it must pass.
//!
//! `cargo xtask verify-schedules` runs the mutated configuration with this
//! test as the filter.

use mergepath_check::{check_kernel, CheckConfig, CheckError, Kernel};

#[test]
fn mutation_overlap_is_detected() {
    let cfg = CheckConfig::default();
    let result = check_kernel(Kernel::Parallel, 800, &cfg);
    if cfg!(mergepath_mutate) {
        match result {
            Err(CheckError::WriteOverlap { kernel, .. }) => assert_eq!(kernel, "parallel"),
            other => {
                panic!("mutated parallel merge must be caught as a write overlap, got {other:?}")
            }
        }
    } else {
        let report = result.expect("clean build must pass the schedule check");
        assert!(report.multi_rounds > 0, "{report}");
    }
}
