//! Mutation self-test: prove the checker can actually *detect* a broken
//! partition, not just bless correct ones.
//!
//! Built with `RUSTFLAGS="--cfg mergepath_mutate"`, the Algorithm 1 merge
//! deliberately extends share 0's diagonal by one element before co-ranking,
//! so share 0 and share 1 both write the boundary slot. The written *value*
//! is identical either way (both shares compute the same merged element), so
//! output-diffing tests cannot see the fault — only the access-set
//! disjointness check can. This test asserts exactly that: under mutation
//! the checker must report `WriteOverlap`; in a clean build it must pass.
//!
//! A second fault lives in the SIMD segment kernel: under the same cfg the
//! in-register bitonic network swaps two output lanes after cleaning, which
//! corrupts merged *values*. Forcing the Simd kernel over primitive keys
//! must therefore surface as an `OutputMismatch` (the checker compares
//! against the oracle before it audits the recording).
//!
//! A third fault inverts the tie break of the co-rank stable block kernel:
//! under the same cfg its block-split binary search advances only on
//! *strictly greater* instead of greater-or-equal, so equal B elements
//! overtake equal A elements across interior block boundaries. The mutated
//! merge is still a sorted permutation — only the provenance-tagged stable
//! oracle can see the difference, which the checker must report as an
//! `OutputMismatch` on the first schedule.
//!
//! `cargo xtask verify-schedules` runs the mutated configuration with these
//! tests.

use mergepath_check::{check_kernel, CheckConfig, CheckError, Kernel};

#[test]
fn mutation_overlap_is_detected() {
    let cfg = CheckConfig::default();
    let result = check_kernel(Kernel::Parallel, 800, &cfg);
    if cfg!(mergepath_mutate) {
        match result {
            Err(CheckError::WriteOverlap { kernel, .. }) => assert_eq!(kernel, "parallel"),
            other => {
                panic!("mutated parallel merge must be caught as a write overlap, got {other:?}")
            }
        }
    } else {
        let report = result.expect("clean build must pass the schedule check");
        assert!(report.multi_rounds > 0, "{report}");
    }
}

/// The lane-swap fault only executes when the vector loop actually runs, so
/// this test is gated on the `simd` feature: it forces every segment through
/// the Simd kernel on primitive keys and demands the checker convict the
/// mutated network by *output*, deterministically on the very first
/// schedule, before any access-set auditing happens.
#[cfg(feature = "simd")]
#[test]
fn simd_lane_swap_mutation_is_detected_as_an_output_mismatch() {
    use mergepath::merge::adaptive::{with_dispatch_policy, DispatchPolicy, SegmentKernel};
    use mergepath_check::check_kernel_keys;

    let cfg = CheckConfig::default();
    let result = with_dispatch_policy(DispatchPolicy::Fixed(SegmentKernel::Simd), || {
        check_kernel_keys(Kernel::Parallel, 1024, &cfg)
    });
    if cfg!(mergepath_mutate) {
        match result {
            Err(CheckError::OutputMismatch {
                kernel, schedule, ..
            }) => {
                assert_eq!(kernel, "parallel");
                assert_eq!(schedule, 0, "the fault is schedule-independent");
            }
            other => {
                panic!("mutated simd lanes must be caught as an output mismatch, got {other:?}")
            }
        }
    } else {
        let report = result.expect("clean build must pass the forced-simd schedule check");
        assert!(report.multi_rounds > 0, "{report}");
    }
}

/// The co-rank tie-break fault only fires when a mixed tie class straddles
/// one of the kernel's interior 256-rank block cuts, so this test builds its
/// own input instead of using the default (whose per-worker segments are too
/// short to contain an interior cut): 2048 + 2048 elements with 24-element
/// tie runs per side give every worker segment (1024 outputs at the default
/// 4 threads) mixed ~48-wide tie classes across the cuts at ranks
/// 256/512/768. Unlike the lane-swap fault this one needs no feature gate —
/// the co-rank kernel is pure scalar code, compiled in every configuration.
#[test]
fn co_rank_tie_break_inversion_is_detected_as_an_output_mismatch() {
    use mergepath::merge::adaptive::{with_dispatch_policy, DispatchPolicy, SegmentKernel};
    use mergepath_check::{check_kernel_on, Kv};

    let tagged =
        |tag0: u32| -> Vec<Kv> { (0..2048u32).map(|i| ((i / 24) as i32, tag0 + i)).collect() };
    let (a, b) = (tagged(0), tagged(1_000_000));
    let cfg = CheckConfig::default();
    let result = with_dispatch_policy(DispatchPolicy::Fixed(SegmentKernel::CoRank), || {
        check_kernel_on(Kernel::Parallel, &a, &b, &cfg)
    });
    if cfg!(mergepath_mutate) {
        match result {
            Err(CheckError::OutputMismatch {
                kernel, schedule, ..
            }) => {
                assert_eq!(kernel, "parallel");
                assert_eq!(schedule, 0, "the fault is schedule-independent");
            }
            other => panic!(
                "mutated co-rank tie break must be caught as an output mismatch, got {other:?}"
            ),
        }
    } else {
        let report = result.expect("clean build must pass the forced-co-rank schedule check");
        assert!(report.multi_rounds > 0, "{report}");
    }
}
