//! # mergepath-check — deterministic schedule-exploration checker
//!
//! The paper's central claims are *scheduling* claims: Theorem 9 says the
//! equisized merge-path partition hands every worker a **disjoint** slice of
//! the output (so the merge is lock- and synchronization-free within a
//! round), and Theorem 14 bounds every worker's share at `⌈N/p⌉` elements.
//! The ordinary test suite can only observe the *result* of a schedule the
//! OS happened to pick; this crate makes the schedule itself a test input.
//!
//! It works by installing a [`ShareObserver`] (see
//! `mergepath::executor`) that turns every pool round into a **virtual
//! round**: the shares run inline on the calling thread, one after another,
//! in a seed-controlled permutation chosen by the checker. While they run, a
//! shadow access-set recorder intercepts every output write (the `SendPtr`
//! recording accessors plus the orchestrator-level `note_write_range` sites)
//! and every declared input read range. From `K` such recordings the checker
//! proves, per kernel:
//!
//! 1. **CREW exclusivity** (Thm 9): within every multi-share round the
//!    write-sets of distinct shares are pairwise disjoint, and no share
//!    reads a range another share writes in the same round;
//! 2. **coverage**: across rounds the recorded writes tile the output span
//!    exactly (merges) or at least cover it (sorts, which also write their
//!    scratch buffers);
//! 3. **load balance** (Thm 14): in every multi-share round each share
//!    writes at most `⌈E/s⌉` of the round's `E` elements;
//! 4. **determinism**: the output is byte-identical across all `K` permuted
//!    schedules *and* equal to an independent sequential oracle — which,
//!    because elements carry provenance tags, also pins down stability;
//! 5. **machine cross-validation**: small rounds are replayed on the
//!    `mergepath-pram` CREW machine, which must accept them (its own
//!    exclusive-write detector is the second, independent referee).
//!
//! The checker is deliberately *deterministic*: same seed, same schedules,
//! same verdict — a failing seed is a reproducer, not a flake.

#![warn(missing_docs)]

use core::cmp::Ordering;
use std::cell::RefCell;
use std::rc::Rc;

use mergepath::executor::{self, ShareObserver};
use mergepath::merge::batch::batch_merge_into_by;
use mergepath::merge::hierarchical::{hierarchical_merge_into_by, HierarchicalConfig};
use mergepath::merge::inplace::parallel_inplace_merge_by;
use mergepath::merge::kway::parallel_kway_merge_by;
use mergepath::merge::parallel::parallel_merge_into_by;
use mergepath::merge::segmented::{segmented_parallel_merge_into_by, SpmConfig};
use mergepath::sort::cache_aware::{cache_aware_parallel_sort_by, CacheAwareConfig};
use mergepath::sort::kway::kway_merge_sort_by;
use mergepath::sort::parallel::parallel_merge_sort_by;
use mergepath_pram::PramMachine;
use mergepath_workloads::prng::Prng;

/// The checker's element type: `(key, provenance)` compared by key only, so
/// byte-identical agreement with the stable oracle also proves stability.
pub type Kv = (i32, u32);

fn by_key(x: &Kv, y: &Kv) -> Ordering {
    x.0.cmp(&y.0)
}

// ---------------------------------------------------------------------------
// Access-set recording
// ---------------------------------------------------------------------------

/// One recorded memory access: `elems` elements spanning `bytes` bytes at
/// `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSpan {
    /// Starting address of the access.
    pub addr: usize,
    /// Length of the access in bytes.
    pub bytes: usize,
    /// Length of the access in elements.
    pub elems: usize,
}

impl AccessSpan {
    /// One-past-the-end address.
    pub fn end(&self) -> usize {
        self.addr + self.bytes
    }

    fn overlaps(&self, other: &AccessSpan) -> bool {
        self.addr < other.end() && other.addr < self.end()
    }
}

/// Accesses performed by one share within one round.
#[derive(Debug, Clone, Default)]
pub struct ShareLog {
    /// Output ranges this share wrote.
    pub writes: Vec<AccessSpan>,
    /// Input ranges this share declared it reads.
    pub reads: Vec<AccessSpan>,
}

/// One fork-join round: the permutation the checker executed and the
/// access log of every share. Orchestrator-level writes (sequential
/// fallbacks, copy-backs between rounds) appear as singleton rounds with
/// `orchestrator == true`.
#[derive(Debug, Clone)]
pub struct RoundLog {
    /// The execution order chosen for this round (a permutation of share
    /// ids).
    pub order: Vec<usize>,
    /// Per-share access logs, indexed by share id.
    pub shares: Vec<ShareLog>,
    /// `true` for a synthetic singleton round recording a write made by the
    /// orchestrating kernel between pool rounds.
    pub orchestrator: bool,
}

/// Everything one virtual run recorded.
#[derive(Debug, Clone, Default)]
pub struct Recording {
    /// The rounds in execution order.
    pub rounds: Vec<RoundLog>,
}

/// One executed share in a simulated work-stealing schedule: which
/// simulated worker's deque the share was pushed onto, and which worker
/// actually executed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealStep {
    /// The logical share index.
    pub share: usize,
    /// The worker whose deque received the share's ticket.
    pub pusher: usize,
    /// The worker that executed it.
    pub executor: usize,
}

impl StealStep {
    /// Whether this share was executed through a steal (executor ≠
    /// pusher) — the work-stealing executor's defining reordering.
    pub fn stolen(&self) -> bool {
        self.pusher != self.executor
    }
}

/// Simulates the work-stealing executor's deque protocol to produce one
/// execution order of `shares` over `workers` simulated deques: owners
/// pop their own deque LIFO, an empty worker steals a random victim's
/// ticket FIFO — the same ends the live scheduler uses
/// (`mergepath::executor`, DESIGN.md §15). With `hoard` every ticket is
/// pushed onto worker 0's deque (the non-pool-submitter shape, maximally
/// steal-inducing); otherwise tickets are dealt round-robin, the
/// balanced shape. The result covers every share exactly once and
/// records which worker pushed and which executed it, so callers can
/// assert stolen (executor ≠ pusher) steps actually occur.
pub fn steal_order(prng: &mut Prng, shares: usize, workers: usize, hoard: bool) -> Vec<StealStep> {
    let workers = workers.max(1);
    let mut deques: Vec<std::collections::VecDeque<(usize, usize)>> =
        vec![std::collections::VecDeque::new(); workers];
    for share in 0..shares {
        let pusher = if hoard { 0 } else { share % workers };
        deques[pusher].push_back((share, pusher));
    }
    let mut steps = Vec::with_capacity(shares);
    while steps.len() < shares {
        let me = prng.below(workers as u64) as usize;
        if let Some((share, pusher)) = deques[me].pop_back() {
            steps.push(StealStep {
                share,
                pusher,
                executor: me,
            });
            continue;
        }
        let start = prng.below(workers as u64) as usize;
        for k in 0..workers {
            let victim = (start + k) % workers;
            if victim == me {
                continue;
            }
            if let Some((share, pusher)) = deques[victim].pop_front() {
                steps.push(StealStep {
                    share,
                    pusher,
                    executor: me,
                });
                break;
            }
        }
    }
    steps
}

struct RecorderState {
    prng: Prng,
    rounds: Vec<RoundLog>,
    /// Stack of open rounds (indices into `rounds`); nested pool entry from
    /// inside a virtual share pushes a second level.
    open: Vec<usize>,
    /// Stack of `(round index, share id)` for the currently executing
    /// share(s).
    share_stack: Vec<(usize, usize)>,
    /// `Some(workers)` puts the recorder in steal-order mode: round
    /// permutations come from [`steal_order`] over this many simulated
    /// deques instead of a uniform shuffle.
    steal_workers: Option<usize>,
}

/// A [`ShareObserver`] that picks a seeded execution order for every
/// round — a uniform random permutation by default, or a simulated
/// work-stealing order (see [`steal_order`]) in steal mode — and records
/// each share's access sets. Single-threaded by construction (virtual
/// rounds run inline), hence the `RefCell`.
pub struct ScheduleRecorder {
    state: RefCell<RecorderState>,
}

impl ScheduleRecorder {
    /// Creates a recorder whose round permutations are drawn from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_mode(seed, None)
    }

    /// Creates a recorder in steal-order mode: every round's execution
    /// order is produced by simulating the work-stealing deque protocol
    /// over `workers` deques (alternating seeded hoarded and balanced
    /// push shapes), so the recorded schedules model shares executed by
    /// workers other than their pusher.
    pub fn new_stealing(seed: u64, workers: usize) -> Self {
        Self::with_mode(seed, Some(workers.max(2)))
    }

    fn with_mode(seed: u64, steal_workers: Option<usize>) -> Self {
        ScheduleRecorder {
            state: RefCell::new(RecorderState {
                prng: Prng::seed_from_u64(seed),
                rounds: Vec::new(),
                open: Vec::new(),
                share_stack: Vec::new(),
                steal_workers,
            }),
        }
    }

    /// Extracts the recording accumulated so far, leaving the recorder
    /// empty.
    pub fn take(&self) -> Recording {
        let mut st = self.state.borrow_mut();
        Recording {
            rounds: std::mem::take(&mut st.rounds),
        }
    }
}

impl ShareObserver for ScheduleRecorder {
    fn round_begin(&self, shares: usize) -> Vec<usize> {
        let mut st = self.state.borrow_mut();
        let order: Vec<usize> = match st.steal_workers {
            Some(workers) => {
                // Alternate seeded push shapes: hoarded rounds force
                // steals, balanced rounds mix owner pops with steals.
                let hoard = st.prng.below(2) == 1;
                steal_order(&mut st.prng, shares, workers, hoard)
                    .into_iter()
                    .map(|s| s.share)
                    .collect()
            }
            None => {
                let mut order: Vec<usize> = (0..shares).collect();
                st.prng.shuffle(&mut order);
                order
            }
        };
        let idx = st.rounds.len();
        st.rounds.push(RoundLog {
            order: order.clone(),
            shares: vec![ShareLog::default(); shares],
            orchestrator: false,
        });
        st.open.push(idx);
        order
    }

    fn round_end(&self) {
        self.state.borrow_mut().open.pop();
    }

    fn share_begin(&self, share: usize) {
        let mut st = self.state.borrow_mut();
        let round = *st.open.last().expect("share outside any round");
        st.share_stack.push((round, share));
    }

    fn share_end(&self, _share: usize) {
        self.state.borrow_mut().share_stack.pop();
    }

    fn write_range(&self, addr: usize, bytes: usize, elems: usize) {
        let mut st = self.state.borrow_mut();
        let span = AccessSpan { addr, bytes, elems };
        match st.share_stack.last().copied() {
            Some((round, share)) => st.rounds[round].shares[share].writes.push(span),
            None => st.rounds.push(RoundLog {
                order: vec![0],
                shares: vec![ShareLog {
                    writes: vec![span],
                    reads: Vec::new(),
                }],
                orchestrator: true,
            }),
        }
    }

    fn read_range(&self, addr: usize, bytes: usize, elems: usize) {
        let mut st = self.state.borrow_mut();
        let span = AccessSpan { addr, bytes, elems };
        if let Some((round, share)) = st.share_stack.last().copied() {
            st.rounds[round].shares[share].reads.push(span);
        }
    }
}

/// Runs `f` under a fresh [`ScheduleRecorder`] seeded with `seed`: every
/// pool round inside `f` executes virtually (inline, single-threaded, in a
/// seeded permutation order) and is recorded. Returns `f`'s value and the
/// recording. The observer is uninstalled even if `f` panics.
pub fn record<T>(seed: u64, f: impl FnOnce() -> T) -> (T, Recording) {
    record_with(ScheduleRecorder::new(seed), f)
}

/// [`record`] in steal-order mode: round orders come from the simulated
/// work-stealing deque protocol over `workers` deques (see
/// [`steal_order`]) instead of a uniform shuffle.
pub fn record_stealing<T>(seed: u64, workers: usize, f: impl FnOnce() -> T) -> (T, Recording) {
    record_with(ScheduleRecorder::new_stealing(seed, workers), f)
}

fn record_with<T>(rec: ScheduleRecorder, f: impl FnOnce() -> T) -> (T, Recording) {
    let rec = Rc::new(rec);
    let guard = executor::install_observer(rec.clone());
    let value = f();
    drop(guard);
    let recording = rec.take();
    (value, recording)
}

// ---------------------------------------------------------------------------
// Kernels under check
// ---------------------------------------------------------------------------

/// Every parallel kernel the checker can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Algorithm 1 parallel merge.
    Parallel,
    /// Algorithm 2 segmented (SPM) merge.
    Segmented,
    /// Batched pairwise merges under one worker budget.
    Batch,
    /// Rotation-based parallel in-place merge.
    Inplace,
    /// Rank-partitioned parallel k-way merge.
    Kway,
    /// Two-level (GPU-shaped) hierarchical merge.
    Hierarchical,
    /// §III parallel merge sort.
    SortParallel,
    /// Single-round k-way merge sort.
    SortKway,
    /// §IV.C cache-aware sort.
    SortCacheAware,
}

impl Kernel {
    /// All nine kernels, in the order the CLI and xtask report them.
    pub const ALL: [Kernel; 9] = [
        Kernel::Parallel,
        Kernel::Segmented,
        Kernel::Batch,
        Kernel::Inplace,
        Kernel::Kway,
        Kernel::Hierarchical,
        Kernel::SortParallel,
        Kernel::SortKway,
        Kernel::SortCacheAware,
    ];

    /// Parses a kernel name (the same names `mp trace --kernel` uses).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "parallel" => Kernel::Parallel,
            "segmented" => Kernel::Segmented,
            "batch" => Kernel::Batch,
            "inplace" => Kernel::Inplace,
            "kway" => Kernel::Kway,
            "hierarchical" => Kernel::Hierarchical,
            "sort-parallel" => Kernel::SortParallel,
            "sort-kway" => Kernel::SortKway,
            "sort-cache-aware" => Kernel::SortCacheAware,
            _ => return None,
        })
    }

    /// The kernel's canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Parallel => "parallel",
            Kernel::Segmented => "segmented",
            Kernel::Batch => "batch",
            Kernel::Inplace => "inplace",
            Kernel::Kway => "kway",
            Kernel::Hierarchical => "hierarchical",
            Kernel::SortParallel => "sort-parallel",
            Kernel::SortKway => "sort-kway",
            Kernel::SortCacheAware => "sort-cache-aware",
        }
    }

    fn policy(&self) -> Policy {
        match self {
            // Merges into a dedicated output: every write must land inside
            // the output span and the union must tile it exactly.
            Kernel::Parallel
            | Kernel::Segmented
            | Kernel::Batch
            | Kernel::Kway
            | Kernel::Hierarchical => Policy {
                exact: true,
                cover: true,
                thm14: true,
            },
            // Sorts ping-pong through a scratch buffer, so out-of-span
            // writes are legitimate; the input span must still be covered.
            Kernel::SortParallel | Kernel::SortKway | Kernel::SortCacheAware => Policy {
                exact: false,
                cover: true,
                thm14: true,
            },
            // The in-place merge's split rounds carry finished or
            // cutoff-sized sub-problems across levels (so per-share counts
            // can exceed ⌈E/s⌉) and elements already in place are never
            // rewritten (so coverage has legitimate gaps). Disjointness is
            // the whole contract.
            Kernel::Inplace => Policy {
                exact: false,
                cover: false,
                thm14: false,
            },
        }
    }
}

/// What the checker demands of a kernel's recorded access sets.
#[derive(Debug, Clone, Copy)]
struct Policy {
    /// Every write must land within the declared output span.
    exact: bool,
    /// The union of in-span writes must cover the output span exactly.
    cover: bool,
    /// Multi-share rounds must satisfy the Thm 14 `⌈E/s⌉` bound.
    thm14: bool,
}

// ---------------------------------------------------------------------------
// Configuration, report, errors
// ---------------------------------------------------------------------------

/// Checker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Logical worker count `p` handed to the kernels.
    pub threads: usize,
    /// Number of distinct seeded schedules to explore (`K`).
    pub schedules: usize,
    /// Base seed; schedule `k` derives its permutation stream from
    /// `seed ⊕ mix(k)`.
    pub seed: u64,
    /// Replay rounds of at most this many elements on the PRAM CREW
    /// machine (0 disables the cross-validation).
    pub pram_limit: usize,
    /// Draw round execution orders from the simulated work-stealing
    /// deque protocol ([`steal_order`] over `threads` deques) instead of
    /// uniform shuffles — proving CREW safety holds specifically under
    /// the reorderings the live work-stealing executor produces (shares
    /// executed by workers other than their pusher).
    pub steal_orders: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            threads: 4,
            schedules: 8,
            seed: 0x5EED_CAFE,
            pram_limit: 4096,
            steal_orders: false,
        }
    }
}

/// Aggregated evidence from one kernel's check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckReport {
    /// Kernel name.
    pub kernel: &'static str,
    /// Total output elements `N`.
    pub n: usize,
    /// Schedules explored.
    pub schedules: usize,
    /// Rounds observed across all schedules (including orchestrator
    /// singletons).
    pub rounds: usize,
    /// Rounds with at least two shares — the ones CREW exclusivity and
    /// Thm 14 actually constrain.
    pub multi_rounds: usize,
    /// Largest share count of any round.
    pub max_shares: usize,
    /// Write spans recorded.
    pub writes: usize,
    /// Rounds replayed and accepted by the PRAM CREW machine.
    pub pram_rounds: usize,
}

impl core::fmt::Display for CheckReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: ok (n={}, schedules={}, rounds={}, multi_share_rounds={}, \
             max_shares={}, writes={}, pram_rounds={})",
            self.kernel,
            self.n,
            self.schedules,
            self.rounds,
            self.multi_rounds,
            self.max_shares,
            self.writes,
            self.pram_rounds
        )
    }
}

/// Everything the checker can prove wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Two distinct shares wrote overlapping ranges in one round — the
    /// exclusive-write (Thm 9) violation.
    WriteOverlap {
        /// Kernel under check.
        kernel: &'static str,
        /// Schedule index that exposed it.
        schedule: usize,
        /// Round index within the schedule.
        round: usize,
        /// First share involved.
        share_a: usize,
        /// Second share involved.
        share_b: usize,
        /// First overlapping address.
        addr: usize,
    },
    /// A share wrote outside the declared output span under the exact
    /// policy.
    WriteOutsideSpan {
        /// Kernel under check.
        kernel: &'static str,
        /// Schedule index.
        schedule: usize,
        /// Round index.
        round: usize,
        /// Offending share.
        share: usize,
        /// Offending address.
        addr: usize,
    },
    /// The recorded writes left a hole in the output span.
    CoverageGap {
        /// Kernel under check.
        kernel: &'static str,
        /// Schedule index.
        schedule: usize,
        /// First uncovered address.
        missing_addr: usize,
    },
    /// A share read a range another share wrote in the same round.
    ReadWriteRace {
        /// Kernel under check.
        kernel: &'static str,
        /// Schedule index.
        schedule: usize,
        /// Round index.
        round: usize,
        /// Reading share.
        reader: usize,
        /// Writing share.
        writer: usize,
        /// First racing address.
        addr: usize,
    },
    /// A share exceeded the Thm 14 bound `⌈E/s⌉` in a multi-share round.
    ShareOverload {
        /// Kernel under check.
        kernel: &'static str,
        /// Schedule index.
        schedule: usize,
        /// Round index.
        round: usize,
        /// Offending share.
        share: usize,
        /// Elements the share wrote.
        elems: usize,
        /// The `⌈E/s⌉` bound it had to respect.
        cap: usize,
    },
    /// The kernel's output differed from the sequential oracle (or, by
    /// transitivity, from another schedule's output).
    OutputMismatch {
        /// Kernel under check.
        kernel: &'static str,
        /// Schedule index.
        schedule: usize,
        /// First differing element index.
        index: usize,
    },
    /// The PRAM CREW machine rejected a replayed round.
    PramConflict {
        /// Kernel under check.
        kernel: &'static str,
        /// Schedule index.
        schedule: usize,
        /// Round index.
        round: usize,
        /// The machine's verdict.
        detail: String,
    },
    /// The run never produced a multi-share round even though the input
    /// was large enough — the check would be vacuous.
    NoParallelRounds {
        /// Kernel under check.
        kernel: &'static str,
    },
}

impl core::fmt::Display for CheckError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckError::WriteOverlap {
                kernel,
                schedule,
                round,
                share_a,
                share_b,
                addr,
            } => write!(
                f,
                "{kernel}: schedule {schedule} round {round}: shares {share_a} and \
                 {share_b} both wrote address {addr:#x} (CREW exclusivity violated)"
            ),
            CheckError::WriteOutsideSpan {
                kernel,
                schedule,
                round,
                share,
                addr,
            } => write!(
                f,
                "{kernel}: schedule {schedule} round {round}: share {share} wrote \
                 {addr:#x}, outside the output span"
            ),
            CheckError::CoverageGap {
                kernel,
                schedule,
                missing_addr,
            } => write!(
                f,
                "{kernel}: schedule {schedule}: output address {missing_addr:#x} was \
                 never written"
            ),
            CheckError::ReadWriteRace {
                kernel,
                schedule,
                round,
                reader,
                writer,
                addr,
            } => write!(
                f,
                "{kernel}: schedule {schedule} round {round}: share {reader} reads \
                 {addr:#x} which share {writer} writes in the same round"
            ),
            CheckError::ShareOverload {
                kernel,
                schedule,
                round,
                share,
                elems,
                cap,
            } => write!(
                f,
                "{kernel}: schedule {schedule} round {round}: share {share} wrote \
                 {elems} elements, above the Thm 14 bound ⌈E/s⌉ = {cap}"
            ),
            CheckError::OutputMismatch {
                kernel,
                schedule,
                index,
            } => write!(
                f,
                "{kernel}: schedule {schedule}: output differs from the sequential \
                 oracle at element {index}"
            ),
            CheckError::PramConflict {
                kernel,
                schedule,
                round,
                detail,
            } => write!(
                f,
                "{kernel}: schedule {schedule} round {round}: PRAM CREW machine \
                 rejected the replay: {detail}"
            ),
            CheckError::NoParallelRounds { kernel } => write!(
                f,
                "{kernel}: no multi-share round observed — the schedule check would \
                 be vacuous"
            ),
        }
    }
}

impl std::error::Error for CheckError {}

// ---------------------------------------------------------------------------
// Input synthesis and oracles
// ---------------------------------------------------------------------------

/// Builds a duplicate-heavy pair of sorted, provenance-tagged inputs of
/// combined length `n` (`a` tags count from 0, `b` tags from 1\_000\_000).
pub fn default_input(n: usize, seed: u64) -> (Vec<Kv>, Vec<Kv>) {
    let mut rng = Prng::seed_from_u64(seed);
    let na = n / 2;
    let key_space = (n as u64 / 3).max(4);
    let mut generate = |len: usize, tag0: u32| -> Vec<Kv> {
        let mut keys: Vec<i32> = (0..len).map(|_| rng.below(key_space) as i32).collect();
        keys.sort_unstable();
        keys.into_iter()
            .enumerate()
            .map(|(i, k)| (k, tag0 + i as u32))
            .collect()
    };
    (generate(na, 0), generate(n - na, 1_000_000))
}

/// Builds a fine-interleaved pair of sorted primitive `u32` keys of
/// combined length `n` — the input [`check_kernel_keys`] uses to drive the
/// *vectorized* segment kernel under schedule exploration. Keys are drawn
/// from a wide space so duplicate runs are rare and the adaptive probe's
/// SIMD arm actually fires; with bare keys stability is vacuous (equal keys
/// are bit-identical), which is exactly the property that licenses the SIMD
/// kernel — the [`Kv`] checks remain the stability referee.
pub fn default_key_input(n: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = Prng::seed_from_u64(seed ^ 0x51D0_5EED);
    let na = n / 2;
    let mut generate = |len: usize| -> Vec<u32> {
        let mut keys: Vec<u32> = (0..len)
            .map(|_| rng.below(u32::MAX as u64) as u32)
            .collect();
        keys.sort_unstable();
        keys
    };
    (generate(na), generate(n - na))
}

/// Independent two-pointer stable merge — the oracle deliberately shares no
/// code with the kernels under check.
fn oracle_merge<T, F>(a: &[T], b: &[T], cmp: &F) -> Vec<T>
where
    T: Copy,
    F: Fn(&T, &T) -> Ordering,
{
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&b[j], &a[i]) == Ordering::Less {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The batch harness splits each input in (deliberately ragged) halves and
/// merges `(a₀,b₀)` then `(a₁,b₁)` into consecutive output regions.
fn batch_split<T>(a: &[T], b: &[T]) -> (usize, usize) {
    (a.len() / 2, b.len() / 3)
}

/// The k-way harness merges four runs: `a` split in half, then `b` split in
/// half (run order matches ascending provenance, so a left fold of the
/// stable two-way oracle reproduces the k-way tie-break).
fn kway_split<T>(a: &[T], b: &[T]) -> (usize, usize) {
    (a.len() / 2, b.len() / 2)
}

/// The sorts' input: the concatenation `a ++ b`, deterministically
/// shuffled. The shuffle seed depends only on the base config seed, so
/// every schedule sorts the *same* array.
fn sort_input<T: Copy>(a: &[T], b: &[T], cfg: &CheckConfig) -> Vec<T> {
    let mut v: Vec<T> = a.iter().chain(b.iter()).copied().collect();
    Prng::seed_from_u64(cfg.seed ^ 0x5075_FF1E).shuffle(&mut v);
    v
}

fn expected<T, F>(kernel: Kernel, a: &[T], b: &[T], cfg: &CheckConfig, cmp: &F) -> Vec<T>
where
    T: Copy,
    F: Fn(&T, &T) -> Ordering,
{
    match kernel {
        Kernel::Parallel | Kernel::Segmented | Kernel::Inplace | Kernel::Hierarchical => {
            oracle_merge(a, b, cmp)
        }
        Kernel::Batch => {
            let (ha, hb) = batch_split(a, b);
            let mut out = oracle_merge(&a[..ha], &b[..hb], cmp);
            out.extend(oracle_merge(&a[ha..], &b[hb..], cmp));
            out
        }
        Kernel::Kway => {
            let (ha, hb) = kway_split(a, b);
            let mut acc: Vec<T> = Vec::new();
            for run in [&a[..ha], &a[ha..], &b[..hb], &b[hb..]] {
                acc = oracle_merge(&acc, run, cmp);
            }
            acc
        }
        Kernel::SortParallel | Kernel::SortKway | Kernel::SortCacheAware => {
            let mut v = sort_input(a, b, cfg);
            v.sort_by(|x, y| cmp(x, y)); // std's stable sort, same key order
            v
        }
    }
}

fn span_of<T>(v: &[T]) -> AccessSpan {
    AccessSpan {
        addr: v.as_ptr() as usize,
        bytes: std::mem::size_of_val(v),
        elems: v.len(),
    }
}

/// Runs `kernel` once (virtually, if an observer is installed) and returns
/// its output buffer plus the buffer's address span.
fn run_kernel<T, F>(
    kernel: Kernel,
    a: &[T],
    b: &[T],
    cfg: &CheckConfig,
    cmp: &F,
) -> (Vec<T>, AccessSpan)
where
    T: Copy + Default + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = a.len() + b.len();
    let threads = cfg.threads;
    match kernel {
        Kernel::Parallel => {
            let mut out = vec![T::default(); n];
            let span = span_of(&out);
            parallel_merge_into_by(a, b, &mut out, threads, cmp);
            (out, span)
        }
        Kernel::Segmented => {
            let mut out = vec![T::default(); n];
            let span = span_of(&out);
            // Small segments (~30 elements) force many segment rounds even
            // on checker-sized inputs.
            let spm = SpmConfig::new(91, threads);
            segmented_parallel_merge_into_by(a, b, &mut out, &spm, cmp);
            (out, span)
        }
        Kernel::Batch => {
            let (ha, hb) = batch_split(a, b);
            let pairs: Vec<(&[T], &[T])> = vec![(&a[..ha], &b[..hb]), (&a[ha..], &b[hb..])];
            let mut out = vec![T::default(); n];
            let span = span_of(&out);
            batch_merge_into_by(&pairs, &mut out, threads, cmp);
            (out, span)
        }
        Kernel::Inplace => {
            let mut v: Vec<T> = a.iter().chain(b.iter()).copied().collect();
            let span = span_of(&v);
            parallel_inplace_merge_by(&mut v, a.len(), threads, cmp);
            (v, span)
        }
        Kernel::Kway => {
            let (ha, hb) = kway_split(a, b);
            let runs: Vec<&[T]> = vec![&a[..ha], &a[ha..], &b[..hb], &b[hb..]];
            let mut out = vec![T::default(); n];
            let span = span_of(&out);
            parallel_kway_merge_by(&runs, &mut out, threads, cmp);
            (out, span)
        }
        Kernel::Hierarchical => {
            let mut out = vec![T::default(); n];
            let span = span_of(&out);
            let cfg_h = HierarchicalConfig {
                blocks: threads,
                threads_per_block: 4,
                tile: 64,
            };
            hierarchical_merge_into_by(a, b, &mut out, &cfg_h, cmp);
            (out, span)
        }
        Kernel::SortParallel => {
            let mut v = sort_input(a, b, cfg);
            let span = span_of(&v);
            parallel_merge_sort_by(&mut v, threads, cmp);
            (v, span)
        }
        Kernel::SortKway => {
            let mut v = sort_input(a, b, cfg);
            let span = span_of(&v);
            kway_merge_sort_by(&mut v, threads, cmp);
            (v, span)
        }
        Kernel::SortCacheAware => {
            let mut v = sort_input(a, b, cfg);
            let span = span_of(&v);
            // A ~100-element cache forces multiple phase-1 blocks and
            // several segmented merge rounds.
            let cfg_c = CacheAwareConfig::new(200, threads);
            cache_aware_parallel_sort_by(&mut v, &cfg_c, cmp);
            (v, span)
        }
    }
}

// ---------------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone, Copy)]
struct RoundStats {
    rounds: usize,
    multi_rounds: usize,
    max_shares: usize,
    writes: usize,
}

/// Checks one recording against the kernel's policy: per-round CREW
/// disjointness, read-vs-foreign-write exclusion, span containment,
/// coverage, and the Thm 14 bound.
fn verify_recording(
    kernel: Kernel,
    rec: &Recording,
    span: AccessSpan,
    schedule: usize,
) -> Result<RoundStats, CheckError> {
    let name = kernel.name();
    let pol = kernel.policy();
    let mut covered: Vec<(usize, usize)> = Vec::new();
    let mut stats = RoundStats::default();
    for (ri, round) in rec.rounds.iter().enumerate() {
        stats.rounds += 1;
        if round.shares.len() > 1 {
            stats.multi_rounds += 1;
        }
        stats.max_shares = stats.max_shares.max(round.shares.len());

        let mut writes: Vec<(usize, AccessSpan)> = Vec::new();
        for (s, log) in round.shares.iter().enumerate() {
            for w in &log.writes {
                stats.writes += 1;
                if pol.exact && !(w.addr >= span.addr && w.end() <= span.end()) {
                    return Err(CheckError::WriteOutsideSpan {
                        kernel: name,
                        schedule,
                        round: ri,
                        share: s,
                        addr: w.addr,
                    });
                }
                let (lo, hi) = (w.addr.max(span.addr), w.end().min(span.end()));
                if lo < hi {
                    covered.push((lo, hi));
                }
                if w.bytes > 0 {
                    writes.push((s, *w));
                }
            }
        }

        // CREW exclusivity: sweep the round's writes in address order,
        // merging same-share overlaps and flagging cross-share ones.
        writes.sort_by_key(|&(_, w)| (w.addr, w.end()));
        let mut active: Option<(usize, usize)> = None; // (end, share)
        for &(s, w) in &writes {
            match active {
                Some((end, owner)) if w.addr < end => {
                    if owner != s {
                        return Err(CheckError::WriteOverlap {
                            kernel: name,
                            schedule,
                            round: ri,
                            share_a: owner,
                            share_b: s,
                            addr: w.addr,
                        });
                    }
                    active = Some((end.max(w.end()), owner));
                }
                _ => active = Some((w.end(), s)),
            }
        }

        // No share may read what another share writes this round.
        for (s, log) in round.shares.iter().enumerate() {
            for r in &log.reads {
                if r.bytes == 0 {
                    continue;
                }
                for &(ws, w) in &writes {
                    if ws != s && r.overlaps(&w) {
                        return Err(CheckError::ReadWriteRace {
                            kernel: name,
                            schedule,
                            round: ri,
                            reader: s,
                            writer: ws,
                            addr: r.addr.max(w.addr),
                        });
                    }
                }
            }
        }

        // Thm 14: in a round of s ≥ 2 shares writing E elements total, no
        // share writes more than ⌈E/s⌉.
        if pol.thm14 && round.shares.len() >= 2 && !round.orchestrator {
            let total: usize = round
                .shares
                .iter()
                .flat_map(|l| l.writes.iter().map(|w| w.elems))
                .sum();
            let cap = total.div_ceil(round.shares.len());
            for (s, log) in round.shares.iter().enumerate() {
                let mine: usize = log.writes.iter().map(|w| w.elems).sum();
                if mine > cap {
                    return Err(CheckError::ShareOverload {
                        kernel: name,
                        schedule,
                        round: ri,
                        share: s,
                        elems: mine,
                        cap,
                    });
                }
            }
        }
    }

    if pol.cover {
        covered.sort_unstable();
        let mut pos = span.addr;
        for &(lo, hi) in &covered {
            if lo > pos {
                return Err(CheckError::CoverageGap {
                    kernel: name,
                    schedule,
                    missing_addr: pos,
                });
            }
            pos = pos.max(hi);
        }
        if pos < span.end() {
            return Err(CheckError::CoverageGap {
                kernel: name,
                schedule,
                missing_addr: pos,
            });
        }
    }
    Ok(stats)
}

/// Replays the recording's multi-share in-span rounds on the
/// `mergepath-pram` CREW machine, whose independent exclusive-write
/// detector must accept every one of them. Returns how many rounds it
/// validated.
fn pram_replay<T>(
    kernel: Kernel,
    rec: &Recording,
    span: AccessSpan,
    cfg: &CheckConfig,
    schedule: usize,
) -> Result<usize, CheckError> {
    if cfg.pram_limit == 0 || span.elems == 0 {
        return Ok(0);
    }
    let esize = std::mem::size_of::<T>();
    let mut validated = 0;
    for (ri, round) in rec.rounds.iter().enumerate() {
        if round.orchestrator || round.shares.len() < 2 {
            continue;
        }
        // Eligibility: every non-empty write lies within the output span on
        // element boundaries (sorts' scratch-buffer rounds are skipped).
        let mut per_share: Vec<Vec<(usize, usize)>> = Vec::with_capacity(round.shares.len());
        let mut total = 0usize;
        let mut eligible = true;
        'shares: for log in &round.shares {
            let mut spans = Vec::new();
            for w in &log.writes {
                if w.bytes == 0 {
                    continue;
                }
                if w.addr < span.addr || w.end() > span.end() || (w.addr - span.addr) % esize != 0 {
                    eligible = false;
                    break 'shares;
                }
                spans.push(((w.addr - span.addr) / esize, w.elems));
                total += w.elems;
            }
            per_share.push(spans);
        }
        if !eligible || total == 0 || total > cfg.pram_limit {
            continue;
        }
        let mut machine = PramMachine::new();
        let base = machine.alloc(span.elems);
        let result = machine.step(round.shares.len(), |pid, ctx| {
            for &(lo, count) in &per_share[pid] {
                for e in lo..lo + count {
                    ctx.write(base + e, pid as u64);
                }
            }
        });
        match result {
            Ok(_) => validated += 1,
            Err(e) => {
                return Err(CheckError::PramConflict {
                    kernel: kernel.name(),
                    schedule,
                    round: ri,
                    detail: format!("{e:?}"),
                })
            }
        }
    }
    Ok(validated)
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Checks `kernel` on the given sorted inputs under a caller-supplied
/// element type and comparator: runs it under `cfg.schedules` seed-permuted
/// virtual schedules, verifies CREW exclusivity, coverage, Thm 14 and
/// byte-identical agreement with the sequential oracle on each, and
/// cross-validates small rounds on the PRAM machine.
///
/// Pass [`mergepath::merge::simd::natural_cmp`] with primitive keys to let
/// the adaptive probe (or a forced [`DispatchPolicy::Fixed`] override) route
/// segments through the vectorized kernel while the recording layer watches.
///
/// [`DispatchPolicy::Fixed`]: mergepath::merge::adaptive::DispatchPolicy
pub fn check_kernel_on_by<T, F>(
    kernel: Kernel,
    a: &[T],
    b: &[T],
    cfg: &CheckConfig,
    cmp: &F,
) -> Result<CheckReport, CheckError>
where
    T: Copy + Default + PartialEq + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    assert!(cfg.threads > 0, "thread count must be at least 1");
    assert!(cfg.schedules > 0, "need at least one schedule");
    debug_assert!(
        a.windows(2).all(|w| cmp(&w[0], &w[1]) != Ordering::Greater),
        "input a not sorted"
    );
    debug_assert!(
        b.windows(2).all(|w| cmp(&w[0], &w[1]) != Ordering::Greater),
        "input b not sorted"
    );

    let oracle = expected(kernel, a, b, cfg, cmp);
    let mut report = CheckReport {
        kernel: kernel.name(),
        n: a.len() + b.len(),
        schedules: cfg.schedules,
        ..CheckReport::default()
    };
    for schedule in 0..cfg.schedules {
        let seed = cfg
            .seed
            .wrapping_add((schedule as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let ((out, span), recording) = if cfg.steal_orders {
            record_stealing(seed, cfg.threads.max(2), || {
                run_kernel(kernel, a, b, cfg, cmp)
            })
        } else {
            record(seed, || run_kernel(kernel, a, b, cfg, cmp))
        };
        if let Some(index) = (0..oracle.len().max(out.len())).find(|&i| out.get(i) != oracle.get(i))
        {
            return Err(CheckError::OutputMismatch {
                kernel: kernel.name(),
                schedule,
                index,
            });
        }
        let stats = verify_recording(kernel, &recording, span, schedule)?;
        report.rounds += stats.rounds;
        report.multi_rounds += stats.multi_rounds;
        report.max_shares = report.max_shares.max(stats.max_shares);
        report.writes += stats.writes;
        report.pram_rounds += pram_replay::<T>(kernel, &recording, span, cfg, schedule)?;
    }
    // Anti-vacuity: with p ≥ 2 workers and an input comfortably above every
    // kernel's sequential cutoff, at least one round must truly fan out.
    // (The in-place merge is a legitimate no-op when either run is empty.)
    let parallel_work = match kernel {
        Kernel::Inplace if a.is_empty() || b.is_empty() => 0,
        _ => report.n,
    };
    if cfg.threads >= 2 && parallel_work >= 64 * cfg.threads && report.multi_rounds == 0 {
        return Err(CheckError::NoParallelRounds {
            kernel: kernel.name(),
        });
    }
    Ok(report)
}

/// [`check_kernel_on_by`] specialized to the checker's canonical
/// `(key, tag)` element type and key-only comparator — the configuration
/// every stability assertion rides on.
pub fn check_kernel_on(
    kernel: Kernel,
    a: &[Kv],
    b: &[Kv],
    cfg: &CheckConfig,
) -> Result<CheckReport, CheckError> {
    check_kernel_on_by(kernel, a, b, cfg, &by_key)
}

/// [`check_kernel_on`] with a synthesized duplicate-heavy input of combined
/// length `n`.
pub fn check_kernel(
    kernel: Kernel,
    n: usize,
    cfg: &CheckConfig,
) -> Result<CheckReport, CheckError> {
    let (a, b) = default_input(n, cfg.seed);
    check_kernel_on(kernel, &a, &b, cfg)
}

/// [`check_kernel_on_by`] with synthesized wide-key-space primitive `u32`
/// inputs of combined length `n` and the canonical
/// [`natural_cmp`](mergepath::merge::simd::natural_cmp) comparator — the
/// only comparator the SIMD eligibility gate accepts, so this is the entry
/// point that puts the *vectorized* segment kernel under schedule
/// exploration (adaptively, or forced via
/// [`with_dispatch_policy`](mergepath::merge::adaptive::with_dispatch_policy)).
pub fn check_kernel_keys(
    kernel: Kernel,
    n: usize,
    cfg: &CheckConfig,
) -> Result<CheckReport, CheckError> {
    let (a, b) = default_key_input(n, cfg.seed);
    check_kernel_on_by(kernel, &a, &b, cfg, &mergepath::merge::simd::natural_cmp)
}

/// Runs [`check_kernel`] over all nine kernels, failing on the first
/// violation.
pub fn check_all(n: usize, cfg: &CheckConfig) -> Result<Vec<CheckReport>, CheckError> {
    Kernel::ALL
        .iter()
        .map(|&kernel| check_kernel(kernel, n, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(shares: Vec<ShareLog>) -> RoundLog {
        RoundLog {
            order: (0..shares.len()).collect(),
            shares,
            orchestrator: false,
        }
    }

    fn writes(spans: &[(usize, usize, usize)]) -> ShareLog {
        ShareLog {
            writes: spans
                .iter()
                .map(|&(addr, bytes, elems)| AccessSpan { addr, bytes, elems })
                .collect(),
            reads: Vec::new(),
        }
    }

    const SPAN: AccessSpan = AccessSpan {
        addr: 1000,
        bytes: 64,
        elems: 8,
    };

    #[test]
    fn verifier_accepts_a_disjoint_tiling() {
        let rec = Recording {
            rounds: vec![round(vec![
                writes(&[(1000, 32, 4)]),
                writes(&[(1032, 32, 4)]),
            ])],
        };
        let stats = verify_recording(Kernel::Parallel, &rec, SPAN, 0).unwrap();
        assert_eq!(stats.multi_rounds, 1);
        assert_eq!(stats.writes, 2);
    }

    #[test]
    fn verifier_flags_cross_share_overlap() {
        let rec = Recording {
            rounds: vec![round(vec![
                writes(&[(1000, 40, 5)]),
                writes(&[(1032, 32, 4)]),
            ])],
        };
        let err = verify_recording(Kernel::Parallel, &rec, SPAN, 3).unwrap_err();
        assert!(
            matches!(
                err,
                CheckError::WriteOverlap {
                    schedule: 3,
                    addr: 1032,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn verifier_allows_same_share_overlap_but_not_hidden_cross_share() {
        // Share 0 writes twice over the same region (fine); share 1 then
        // collides with the *merged* extent, which a naive adjacent-pair
        // check would miss.
        let rec = Recording {
            rounds: vec![round(vec![
                writes(&[(1000, 48, 6), (1008, 8, 1)]),
                writes(&[(1040, 24, 3)]),
            ])],
        };
        let err = verify_recording(Kernel::Parallel, &rec, SPAN, 0).unwrap_err();
        assert!(matches!(err, CheckError::WriteOverlap { .. }), "{err}");
    }

    #[test]
    fn verifier_flags_coverage_gap_and_out_of_span() {
        let gap = Recording {
            rounds: vec![round(vec![
                writes(&[(1000, 24, 3)]),
                writes(&[(1032, 32, 4)]), // bytes 1024..1032 never written
            ])],
        };
        let err = verify_recording(Kernel::Parallel, &gap, SPAN, 0).unwrap_err();
        assert!(
            matches!(
                err,
                CheckError::CoverageGap {
                    missing_addr: 1024,
                    ..
                }
            ),
            "{err}"
        );

        let outside = Recording {
            rounds: vec![round(vec![writes(&[(992, 72, 9)])])],
        };
        let err = verify_recording(Kernel::Parallel, &outside, SPAN, 0).unwrap_err();
        assert!(matches!(err, CheckError::WriteOutsideSpan { .. }), "{err}");
        // The sorts' policy tolerates the same out-of-span write (scratch).
        verify_recording(Kernel::SortParallel, &outside, SPAN, 0).unwrap();
    }

    #[test]
    fn verifier_flags_thm14_overload() {
        // 8 elements over 2 shares: cap is 4, share 0 wrote 6.
        let rec = Recording {
            rounds: vec![round(vec![
                writes(&[(1000, 48, 6)]),
                writes(&[(1048, 16, 2)]),
            ])],
        };
        let err = verify_recording(Kernel::Parallel, &rec, SPAN, 0).unwrap_err();
        assert!(
            matches!(
                err,
                CheckError::ShareOverload {
                    share: 0,
                    elems: 6,
                    cap: 4,
                    ..
                }
            ),
            "{err}"
        );
        // The in-place merge's policy waives the bound (carried
        // sub-problems) — and its coverage requirement.
        verify_recording(Kernel::Inplace, &rec, SPAN, 0).unwrap();
    }

    #[test]
    fn verifier_flags_read_of_foreign_write() {
        let mut reader = writes(&[(1000, 32, 4)]);
        reader.reads.push(AccessSpan {
            addr: 1040,
            bytes: 8,
            elems: 1,
        });
        let rec = Recording {
            rounds: vec![round(vec![reader, writes(&[(1032, 32, 4)])])],
        };
        let err = verify_recording(Kernel::Parallel, &rec, SPAN, 0).unwrap_err();
        assert!(
            matches!(
                err,
                CheckError::ReadWriteRace {
                    reader: 0,
                    writer: 1,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn pram_machine_rejects_an_overlapping_round() {
        let cfg = CheckConfig::default();
        let rec = Recording {
            rounds: vec![round(vec![
                writes(&[(1000, 40, 5)]),
                writes(&[(1032, 32, 4)]),
            ])],
        };
        let err = pram_replay::<Kv>(Kernel::Parallel, &rec, SPAN, &cfg, 0).unwrap_err();
        assert!(
            matches!(err, CheckError::PramConflict { ref detail, .. }
                if detail.contains("ExclusiveWriteConflict")),
            "{err}"
        );
        // And accepts the disjoint tiling.
        let ok = Recording {
            rounds: vec![round(vec![
                writes(&[(1000, 32, 4)]),
                writes(&[(1032, 32, 4)]),
            ])],
        };
        assert_eq!(
            pram_replay::<Kv>(Kernel::Parallel, &ok, SPAN, &cfg, 0).unwrap(),
            1
        );
    }

    #[test]
    fn same_seed_same_schedule_different_seed_usually_differs() {
        let (a, b) = default_input(400, 7);
        let cfg = CheckConfig::default();
        let run = |seed: u64| {
            let (_, rec) = record(seed, || run_kernel(Kernel::Parallel, &a, &b, &cfg, &by_key));
            rec.rounds
                .iter()
                .map(|r| r.order.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11), "same seed must reproduce the schedule");
        assert_ne!(run(11), run(12), "seeds must actually vary the order");
    }

    #[test]
    fn all_kernels_pass_the_default_check() {
        let cfg = CheckConfig::default();
        for report in check_all(700, &cfg).unwrap() {
            assert!(report.multi_rounds > 0, "{report}");
            assert!(report.writes > 0, "{report}");
        }
    }

    #[test]
    fn merge_kernels_cross_validate_on_the_pram_machine() {
        let cfg = CheckConfig::default();
        for kernel in [
            Kernel::Parallel,
            Kernel::Batch,
            Kernel::Kway,
            Kernel::Hierarchical,
        ] {
            let report = check_kernel(kernel, 600, &cfg).unwrap();
            assert!(report.pram_rounds > 0, "{report}");
        }
    }

    #[test]
    fn single_thread_runs_are_accepted_without_vacuity_complaints() {
        let cfg = CheckConfig {
            threads: 1,
            schedules: 2,
            ..CheckConfig::default()
        };
        for &kernel in &Kernel::ALL {
            check_kernel(kernel, 300, &cfg).unwrap();
        }
    }

    #[test]
    fn degenerate_inputs_pass() {
        let cfg = CheckConfig {
            schedules: 3,
            ..CheckConfig::default()
        };
        let (a, _) = default_input(200, 9);
        let empty: Vec<Kv> = Vec::new();
        for &kernel in &Kernel::ALL {
            check_kernel_on(kernel, &a, &empty, &cfg).unwrap();
            check_kernel_on(kernel, &empty, &a, &cfg).unwrap();
            check_kernel_on(kernel, &empty, &empty, &cfg).unwrap();
        }
    }

    #[test]
    fn primitive_key_checks_pass_for_every_kernel() {
        let cfg = CheckConfig {
            schedules: 3,
            ..CheckConfig::default()
        };
        for &kernel in &Kernel::ALL {
            let report = check_kernel_keys(kernel, 700, &cfg).unwrap();
            assert!(report.multi_rounds > 0, "{report}");
        }
    }

    #[test]
    fn primitive_key_checks_pass_with_the_simd_kernel_forced() {
        use mergepath::merge::adaptive::{with_dispatch_policy, DispatchPolicy, SegmentKernel};
        let cfg = CheckConfig {
            schedules: 3,
            ..CheckConfig::default()
        };
        // Forcing Simd is total even without the `simd` feature: ineligible
        // or sub-lane segments fall back to scalar inside the entry point,
        // so this test is meaningful in both build configurations.
        with_dispatch_policy(DispatchPolicy::Fixed(SegmentKernel::Simd), || {
            for kernel in [Kernel::Parallel, Kernel::Segmented, Kernel::Hierarchical] {
                check_kernel_keys(kernel, 700, &cfg).unwrap();
            }
        });
    }

    #[test]
    fn steal_order_is_a_permutation_with_actual_steals() {
        let mut prng = Prng::seed_from_u64(42);
        for &(shares, workers, hoard) in &[
            (16usize, 4usize, true),
            (16, 4, false),
            (7, 3, true),
            (1, 4, false),
        ] {
            let steps = steal_order(&mut prng, shares, workers, hoard);
            assert_eq!(steps.len(), shares);
            let mut seen = vec![false; shares];
            for s in &steps {
                assert!(!seen[s.share], "share {} executed twice", s.share);
                seen[s.share] = true;
                assert!(s.pusher < workers && s.executor < workers);
                if hoard {
                    assert_eq!(s.pusher, 0, "hoarded push shape");
                }
            }
        }
        // A hoarded round over several workers must produce stolen steps
        // (a worker other than 0 executing a worker-0 ticket) — the
        // schedule family would be vacuous otherwise.
        let steps = steal_order(&mut prng, 64, 4, true);
        assert!(
            steps.iter().any(|s| s.stolen()),
            "no stolen step in a hoarded 64-share round"
        );
    }

    #[test]
    fn steal_mode_recorder_differs_from_shuffle_and_verifies() {
        let (a, b) = default_input(400, 7);
        let cfg = CheckConfig::default();
        let orders = |stealing: bool| {
            // Several rounds: a single small round can collide with the
            // shuffle stream by chance (both identity), many cannot.
            let run = || {
                for _ in 0..6 {
                    run_kernel(Kernel::Parallel, &a, &b, &cfg, &by_key);
                }
            };
            let (_, rec) = if stealing {
                record_stealing(11, 4, run)
            } else {
                record(11, run)
            };
            rec.rounds
                .iter()
                .map(|r| r.order.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(orders(true), orders(true), "steal mode is deterministic");
        assert_ne!(
            orders(true),
            orders(false),
            "steal orders must differ from the uniform shuffle stream"
        );
    }

    #[test]
    fn all_kernels_pass_under_steal_order_schedules() {
        let cfg = CheckConfig {
            schedules: 3,
            steal_orders: true,
            ..CheckConfig::default()
        };
        for report in check_all(700, &cfg).unwrap() {
            assert!(report.multi_rounds > 0, "{report}");
        }
    }

    #[test]
    fn kernel_names_round_trip() {
        for &kernel in &Kernel::ALL {
            assert_eq!(Kernel::parse(kernel.name()), Some(kernel));
        }
        assert_eq!(Kernel::parse("bogus"), None);
    }

    #[test]
    fn check_errors_render_their_context() {
        let err = CheckError::WriteOverlap {
            kernel: "parallel",
            schedule: 2,
            round: 1,
            share_a: 0,
            share_b: 3,
            addr: 0x1000,
        };
        let msg = err.to_string();
        assert!(msg.contains("parallel") && msg.contains("0x1000"), "{msg}");
    }
}
