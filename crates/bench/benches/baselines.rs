//! Merge Path against the §V related-work algorithms on equal terms:
//! uniform and adversarial inputs, fixed p.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mergepath::merge::parallel::parallel_merge_into;
use mergepath_baselines::akl_santoro::akl_santoro_merge_into;
use mergepath_baselines::bitonic::bitonic_merge_into;
use mergepath_baselines::rank_partition::rank_partition_merge_into;
use mergepath_baselines::sequential::textbook_merge_into;
use mergepath_workloads::{merge_pair, MergeWorkload};

fn bench(c: &mut Criterion) {
    let n = 1 << 18;
    let p = 4;
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2 * n as u64));
    for wl in [MergeWorkload::Uniform, MergeWorkload::AllAGreater] {
        let (a, b) = merge_pair(wl, n, 7);
        let mut out = vec![0u32; 2 * n];
        group.bench_with_input(
            BenchmarkId::new("merge_path_p4", wl.name()),
            &(),
            |bch, _| {
                bch.iter(|| parallel_merge_into(&a, &b, &mut out, p));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("akl_santoro_p4", wl.name()),
            &(),
            |bch, _| {
                bch.iter(|| akl_santoro_merge_into(&a, &b, &mut out, p));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rank_partition_p4", wl.name()),
            &(),
            |bch, _| {
                bch.iter(|| rank_partition_merge_into(&a, &b, &mut out, p));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bitonic_merge", wl.name()),
            &(),
            |bch, _| {
                bch.iter(|| bitonic_merge_into(&a, &b, &mut out));
            },
        );
        group.bench_with_input(BenchmarkId::new("sequential", wl.name()), &(), |bch, _| {
            bch.iter(|| textbook_merge_into(&a, &b, &mut out));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
