//! Algorithm 1 across thread counts and execution backends (fresh
//! `thread::scope` per call vs the persistent OpenMP-style pool).
//!
//! The thread sweep is the wall-clock leg of Figure 5; on a multi-core
//! host throughput scales with the thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mergepath::executor::Pool;
use mergepath::merge::parallel::parallel_merge_into;
use mergepath_workloads::{merge_pair, MergeWorkload};

fn bench(c: &mut Criterion) {
    let n = 1 << 20;
    let (a, b) = merge_pair(MergeWorkload::Uniform, n, 2);
    let mut out = vec![0u32; 2 * n];
    let mut group = c.benchmark_group("merge_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2 * n as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("scoped", threads), &threads, |bch, &p| {
            bch.iter(|| parallel_merge_into(&a, &b, &mut out, p));
        });
        let pool = Pool::new(threads);
        group.bench_with_input(BenchmarkId::new("pooled", threads), &threads, |bch, _| {
            bch.iter(|| pool.merge_into(&a, &b, &mut out));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
