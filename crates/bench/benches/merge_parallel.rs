//! Algorithm 1 across thread counts and execution backends.
//!
//! `pooled` is the library kernel (`parallel_merge_into`), which executes
//! on the persistent process-wide pool. `scoped` is a local re-creation of
//! the fork-join-per-call backend (a fresh `thread::scope` every merge),
//! kept here so the per-call spawn overhead — the §VI "6% single-thread
//! overhead" experiment — stays measurable after the library moved all
//! kernels onto the pool.
//!
//! The thread sweep is the wall-clock leg of Figure 5; on a multi-core
//! host throughput scales with the thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mergepath::diagonal::co_rank;
use mergepath::merge::parallel::parallel_merge_into;
use mergepath::merge::sequential::merge_into;
use mergepath::partition::segment_boundary;
use mergepath_workloads::{merge_pair, MergeWorkload};

/// Algorithm 1 on a fresh `thread::scope` per call — the baseline backend
/// the library itself no longer uses.
fn scoped_merge_into(a: &[u32], b: &[u32], out: &mut [u32], threads: usize) {
    let n = a.len() + b.len();
    assert_eq!(out.len(), n);
    if threads <= 1 || n <= threads {
        merge_into(a, b, out);
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = out;
        for k in 0..threads {
            let d_lo = segment_boundary(n, threads, k);
            let d_hi = segment_boundary(n, threads, k + 1);
            let (chunk, tail) = rest.split_at_mut(d_hi - d_lo);
            rest = tail;
            let mut work = move || {
                let i_lo = co_rank(d_lo, a, b);
                let i_hi = co_rank(d_hi, a, b);
                merge_into(&a[i_lo..i_hi], &b[d_lo - i_lo..d_hi - i_hi], chunk);
            };
            if k + 1 == threads {
                work();
            } else {
                scope.spawn(work);
            }
        }
    });
}

fn bench(c: &mut Criterion) {
    let n = 1 << 20;
    let (a, b) = merge_pair(MergeWorkload::Uniform, n, 2);
    let mut out = vec![0u32; 2 * n];
    let mut group = c.benchmark_group("merge_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2 * n as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("scoped", threads), &threads, |bch, &p| {
            bch.iter(|| scoped_merge_into(&a, &b, &mut out, p));
        });
        group.bench_with_input(BenchmarkId::new("pooled", threads), &threads, |bch, &p| {
            bch.iter(|| parallel_merge_into(&a, &b, &mut out, p));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
