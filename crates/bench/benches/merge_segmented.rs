//! Algorithm 2 (SPM): staging strategies and segment-length sweep, against
//! basic Algorithm 1 — the wall-clock side of experiment C2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mergepath::merge::hierarchical::{hierarchical_merge_into, HierarchicalConfig};
use mergepath::merge::parallel::parallel_merge_into;
use mergepath::merge::segmented::{segmented_parallel_merge_into, SpmConfig, Staging};
use mergepath_workloads::{merge_pair, MergeWorkload};

fn bench(c: &mut Criterion) {
    let n = 1 << 19;
    let p = 4;
    let (a, b) = merge_pair(MergeWorkload::Uniform, n, 3);
    let mut out = vec![0u32; 2 * n];
    let mut group = c.benchmark_group("merge_segmented");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2 * n as u64));

    group.bench_function("basic_parallel", |bch| {
        bch.iter(|| parallel_merge_into(&a, &b, &mut out, p));
    });
    // L sweep at both stagings; cache_elems = 3·L so segment_len() == 1<<l_log.
    for l_log in [12usize, 14, 16] {
        let cfg_w = SpmConfig::new(3 << l_log, p);
        group.bench_with_input(
            BenchmarkId::new("windowed_L", 1usize << l_log),
            &(),
            |bch, _| {
                bch.iter(|| segmented_parallel_merge_into(&a, &b, &mut out, &cfg_w));
            },
        );
        let cfg_c = SpmConfig::new(3 << l_log, p).with_staging(Staging::Cyclic);
        group.bench_with_input(
            BenchmarkId::new("cyclic_L", 1usize << l_log),
            &(),
            |bch, _| {
                bch.iter(|| segmented_parallel_merge_into(&a, &b, &mut out, &cfg_c));
            },
        );
    }
    // The two-level GPU-style decomposition across tile sizes.
    for tile in [64usize, 256, 1024] {
        let cfg = HierarchicalConfig::new(p).with_tile(tile);
        group.bench_with_input(
            BenchmarkId::new("hierarchical_tile", tile),
            &(),
            |bch, _| {
                bch.iter(|| hierarchical_merge_into(&a, &b, &mut out, &cfg));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
