//! The derived sorts (§III, §IV.C) against `std` and each other, across
//! input distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mergepath::sort::cache_aware::cache_aware_parallel_sort;
use mergepath::sort::kway::kway_merge_sort;
use mergepath::sort::natural::natural_merge_sort;
use mergepath::sort::parallel::parallel_merge_sort;
use mergepath::sort::sequential::merge_sort;
use mergepath_workloads::{unsorted_keys, SortWorkload};

fn bench(c: &mut Criterion) {
    let n = 1 << 18;
    let mut group = c.benchmark_group("sort");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for wl in [
        SortWorkload::Uniform,
        SortWorkload::NearlySorted,
        SortWorkload::DuplicateHeavy,
    ] {
        let base = unsorted_keys(wl, n, 6);
        let mut v = base.clone();
        group.bench_with_input(
            BenchmarkId::new("merge_sort_seq", wl.name()),
            &(),
            |bch, _| {
                bch.iter(|| {
                    v.copy_from_slice(&base);
                    merge_sort(&mut v);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel_merge_sort_p4", wl.name()),
            &(),
            |bch, _| {
                bch.iter(|| {
                    v.copy_from_slice(&base);
                    parallel_merge_sort(&mut v, 4);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cache_aware_sort_p4", wl.name()),
            &(),
            |bch, _| {
                bch.iter(|| {
                    v.copy_from_slice(&base);
                    cache_aware_parallel_sort(&mut v, 4, 64 * 1024);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kway_merge_sort_p4", wl.name()),
            &(),
            |bch, _| {
                bch.iter(|| {
                    v.copy_from_slice(&base);
                    kway_merge_sort(&mut v, 4);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("natural_merge_sort_p4", wl.name()),
            &(),
            |bch, _| {
                bch.iter(|| {
                    v.copy_from_slice(&base);
                    natural_merge_sort(&mut v, 4);
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("std_stable", wl.name()), &(), |bch, _| {
            bch.iter(|| {
                v.copy_from_slice(&base);
                v.sort();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
