//! The diagonal binary search (Theorem 14) and full partitioning: the two
//! co-rank formulations against each other and the cost of a `p`-way
//! partition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mergepath::diagonal::{co_rank_by, co_rank_refine_by};
use mergepath::partition::partition_segments;
use mergepath::select::kth_of_union;
use mergepath_baselines::multiselect::multiselect_partition;
use mergepath_workloads::{merge_pair, MergeWorkload};

fn bench(c: &mut Criterion) {
    let n = 1 << 20;
    let (a, b) = merge_pair(MergeWorkload::Uniform, n, 4);
    let cmp = |x: &u32, y: &u32| x.cmp(y);
    let diags: Vec<usize> = (0..64).map(|k| k * (2 * n) / 64).collect();

    let mut group = c.benchmark_group("partition");
    group.sample_size(30);
    group.bench_function("co_rank_binary_64_diagonals", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &d in &diags {
                acc = acc.wrapping_add(co_rank_by(d, a.as_slice(), b.as_slice(), &cmp));
            }
            acc
        });
    });
    group.bench_function("co_rank_refine_64_diagonals", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &d in &diags {
                acc = acc.wrapping_add(co_rank_refine_by(d, a.as_slice(), b.as_slice(), &cmp));
            }
            acc
        });
    });
    for p in [4usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("partition_segments", p), &p, |bch, &p| {
            bch.iter(|| partition_segments(&a, &b, p));
        });
        group.bench_with_input(BenchmarkId::new("multiselect", p), &p, |bch, &p| {
            bch.iter(|| multiselect_partition(&a, &b, p));
        });
    }
    group.bench_function("median_selection", |bch| {
        bch.iter(|| *kth_of_union(&a, &b, n));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
