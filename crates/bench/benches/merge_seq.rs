//! Sequential merge kernels: the classic two-pointer merge, the
//! branch-lean variant, galloping, and the independent textbook baseline.
//!
//! Regenerates the per-element kernel costs behind T1 and shows where each
//! kernel wins (galloping on run-structured inputs, branch-lean on
//! unpredictable interleavings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mergepath::merge::inplace::inplace_merge;
use mergepath::merge::sequential::{branch_lean_merge_into, galloping_merge_into_by, merge_into};
use mergepath_baselines::sequential::textbook_merge_into;
use mergepath_workloads::{merge_pair, MergeWorkload};

fn bench(c: &mut Criterion) {
    let n = 1 << 16;
    let mut group = c.benchmark_group("merge_seq");
    group.sample_size(20);
    group.throughput(Throughput::Elements(2 * n as u64));
    for wl in [
        MergeWorkload::Uniform,
        MergeWorkload::Interleaved,
        MergeWorkload::Runs,
    ] {
        let (a, b) = merge_pair(wl, n, 1);
        let mut out = vec![0u32; 2 * n];
        group.bench_with_input(BenchmarkId::new("classic", wl.name()), &(), |bch, _| {
            bch.iter(|| merge_into(&a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("branch_lean", wl.name()), &(), |bch, _| {
            bch.iter(|| branch_lean_merge_into(&a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("galloping", wl.name()), &(), |bch, _| {
            bch.iter(|| galloping_merge_into_by(&a, &b, &mut out, &|x, y| x.cmp(y)));
        });
        group.bench_with_input(BenchmarkId::new("textbook", wl.name()), &(), |bch, _| {
            bch.iter(|| textbook_merge_into(&a, &b, &mut out));
        });
        // In-place rotation merge (no output buffer at all).
        let mut joined: Vec<u32> = a.iter().chain(&b).copied().collect();
        let joined_base = joined.clone();
        group.bench_with_input(BenchmarkId::new("inplace", wl.name()), &(), |bch, _| {
            bch.iter(|| {
                joined.copy_from_slice(&joined_base);
                inplace_merge(&mut joined, a.len());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
