//! k-way merging: loser-tree kernel across k, the multi-way rank split,
//! and the rank-partitioned parallel k-way merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mergepath::merge::kway::{kway_merge, kway_rank_split, parallel_kway_merge};
use mergepath_workloads::sorted_keys;

fn make_lists(k: usize, total: usize) -> Vec<Vec<u32>> {
    (0..k).map(|i| sorted_keys(total / k, i as u64)).collect()
}

fn bench(c: &mut Criterion) {
    let total = 1 << 18;
    let mut group = c.benchmark_group("merge_kway");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total as u64));
    for k in [2usize, 4, 8, 16, 64] {
        let data = make_lists(k, total);
        let lists: Vec<&[u32]> = data.iter().map(|l| l.as_slice()).collect();
        let n: usize = lists.iter().map(|l| l.len()).sum();
        let mut out = vec![0u32; n];
        group.bench_with_input(BenchmarkId::new("loser_tree", k), &(), |bch, _| {
            bch.iter(|| kway_merge(&lists, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("parallel_p4", k), &(), |bch, _| {
            bch.iter(|| parallel_kway_merge(&lists, &mut out, 4));
        });
        group.bench_with_input(BenchmarkId::new("rank_split_mid", k), &(), |bch, _| {
            bch.iter(|| kway_rank_split(&lists, n / 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
