//! Minimal SVG rendering of merge grids — Figures 1–3 as actual images.
//!
//! No drawing dependencies: the figures are simple enough (a grid, a
//! staircase, some markers) that hand-rolled SVG is clearer than a plotting
//! stack. Files land in `results/`.

use std::fmt::Write as _;

/// Builder for one SVG document.
#[derive(Debug)]
pub struct Svg {
    width: f64,
    height: f64,
    body: String,
}

impl Svg {
    /// A document of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        Svg {
            width,
            height,
            body: String::new(),
        }
    }

    /// Adds a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{stroke}" stroke-width="{width}"/>"#
        );
    }

    /// Adds a filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{r:.1}" fill="{fill}"/>"#
        );
    }

    /// Adds a filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{fill}"/>"#
        );
    }

    /// Adds a text label.
    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str) {
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" font-size="{size:.0}" font-family="monospace">{escaped}</text>"#
        );
    }

    /// Renders the complete document.
    pub fn render(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }

    /// Writes the document to `results/<name>.svg` (best effort).
    pub fn save(&self, name: &str) {
        let dir = std::path::Path::new("results");
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = dir.join(format!("{name}.svg"));
        if std::fs::write(&path, self.render()).is_ok() {
            eprintln!("(svg written to {})", path.display());
        }
    }
}

/// Renders a merge grid with the path and optional diagonal cut points —
/// the Figure 1/2 drawing. `path` is the list of `(i, j)` grid corners;
/// `cuts` the highlighted intersection points.
pub fn merge_grid_svg(
    na: usize,
    nb: usize,
    path: &[(usize, usize)],
    cuts: &[(usize, usize)],
    title: &str,
) -> Svg {
    let cell = 22.0;
    let margin = 40.0;
    let w = margin * 2.0 + nb as f64 * cell;
    let h = margin * 2.0 + na as f64 * cell + 20.0;
    let mut svg = Svg::new(w, h);
    svg.text(margin, 20.0, 13.0, title);
    let ox = margin;
    let oy = margin;
    // Grid lines.
    for r in 0..=na {
        let y = oy + r as f64 * cell;
        svg.line(ox, y, ox + nb as f64 * cell, y, "#cccccc", 1.0);
    }
    for c in 0..=nb {
        let x = ox + c as f64 * cell;
        svg.line(x, oy, x, oy + na as f64 * cell, "#cccccc", 1.0);
    }
    // Cross diagonals through the cut points.
    for &(i, j) in cuts {
        let d = i + j;
        // Diagonal i + j = d: draw between its grid extremes.
        let i0 = d.min(na);
        let j0 = d - i0;
        let j1 = d.min(nb);
        let i1 = d - j1;
        svg.line(
            ox + j0 as f64 * cell,
            oy + i0 as f64 * cell,
            ox + j1 as f64 * cell,
            oy + i1 as f64 * cell,
            "#e0a000",
            1.5,
        );
    }
    // The merge path.
    for wpair in path.windows(2) {
        let (i0, j0) = wpair[0];
        let (i1, j1) = wpair[1];
        svg.line(
            ox + j0 as f64 * cell,
            oy + i0 as f64 * cell,
            ox + j1 as f64 * cell,
            oy + i1 as f64 * cell,
            "#2060c0",
            2.5,
        );
    }
    // Cut markers on top.
    for &(i, j) in cuts {
        svg.circle(ox + j as f64 * cell, oy + i as f64 * cell, 4.0, "#d03020");
    }
    svg
}

/// Renders the SPM block staircase — the Figure 3 drawing. `corners` are
/// the block entry points plus the final `(|A|, |B|)`.
pub fn spm_blocks_svg(na: usize, nb: usize, corners: &[(usize, usize)], title: &str) -> Svg {
    let scale = 420.0 / na.max(nb).max(1) as f64;
    let margin = 40.0;
    let w = margin * 2.0 + nb as f64 * scale;
    let h = margin * 2.0 + na as f64 * scale + 20.0;
    let mut svg = Svg::new(w, h);
    svg.text(margin, 20.0, 13.0, title);
    let (ox, oy) = (margin, margin);
    // Outline.
    svg.rect(ox, oy, nb as f64 * scale, na as f64 * scale, "#f4f4f4");
    // Block rectangles between consecutive corners.
    for wpair in corners.windows(2) {
        let (i0, j0) = wpair[0];
        let (i1, j1) = wpair[1];
        svg.rect(
            ox + j0 as f64 * scale,
            oy + i0 as f64 * scale,
            (j1 - j0) as f64 * scale,
            (i1 - i0) as f64 * scale,
            "#cfe0f7",
        );
        svg.line(
            ox + j0 as f64 * scale,
            oy + i0 as f64 * scale,
            ox + j1 as f64 * scale,
            oy + i1 as f64 * scale,
            "#2060c0",
            1.5,
        );
    }
    for &(i, j) in corners {
        svg.circle(ox + j as f64 * scale, oy + i as f64 * scale, 3.5, "#e0a000");
    }
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_document_is_well_formed() {
        let mut s = Svg::new(100.0, 50.0);
        s.line(0.0, 0.0, 10.0, 10.0, "black", 1.0);
        s.circle(5.0, 5.0, 2.0, "red");
        s.rect(1.0, 1.0, 3.0, 3.0, "#eee");
        s.text(2.0, 2.0, 10.0, "a < b & c");
        let doc = s.render();
        assert!(doc.starts_with("<svg"));
        assert!(doc.trim_end().ends_with("</svg>"));
        assert_eq!(doc.matches("<line").count(), 1);
        assert!(doc.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn merge_grid_svg_contains_path_segments() {
        let path = [(0, 0), (1, 0), (1, 1), (2, 1)];
        let cuts = [(1, 1)];
        let svg = merge_grid_svg(2, 1, &path, &cuts, "test").render();
        // 3 path segments + grid lines + 1 diagonal.
        assert!(svg.matches("<line").count() >= 3 + 3 + 2);
        assert!(svg.matches("<circle").count() == 1);
    }

    #[test]
    fn spm_blocks_svg_draws_every_block() {
        let corners = [(0, 0), (3, 5), (8, 8), (10, 12)];
        let svg = spm_blocks_svg(10, 12, &corners, "blocks").render();
        assert_eq!(svg.matches("<rect").count(), 1 + 1 + 3); // bg + outline + blocks
        assert_eq!(svg.matches("<circle").count(), 4);
    }
}
