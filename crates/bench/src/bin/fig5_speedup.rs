//! **Figure 5** — Speedup of the regular Merge Path algorithm.
//!
//! Paper: input sizes 1M–256M elements per array (32-bit integers),
//! 1–12 threads on a dual-socket 2×6-core X5670; near-linear speedups,
//! ≈ 11.7× at 12 threads, slight degradation for the largest arrays.
//!
//! This host has a single CPU, so the figure is reproduced in two ways:
//!
//! 1. **PRAM model** (primary): Algorithm 1 runs on the CREW PRAM
//!    simulator; speedup = `T(1) / T(p)` with `T` the simulated parallel
//!    time (max per-processor ops). This reproduces the *shape* the paper
//!    measures — near-linear scaling throttled only by the `O(log N)`
//!    partition overhead.
//! 2. **Wall clock** (reported honestly): real `std::thread` execution.
//!    On a 1-core host speedups hover ≈ 1× or below; on a multi-core host
//!    this column reproduces the paper directly.
//!
//! Run: `cargo run --release -p mergepath-bench --bin fig5_speedup [--full|--smoke]`

use mergepath::merge::parallel::parallel_merge_into;
use mergepath_bench::{mega_label, time_best, Scale, Table};
use mergepath_pram::kernels::measure_merge;
use mergepath_workloads::{merge_pair, MergeWorkload};

fn main() {
    let scale = Scale::from_args();
    let sizes = scale.fig5_sizes();
    let threads = scale.fig5_threads();
    println!("=== Figure 5: speedup of Merge Path (sizes per input array) ===\n");

    // --- PRAM model ---------------------------------------------------
    println!("--- PRAM-model speedup (CREW simulator, T(1)/T(p)) ---");
    let mut table = Table::from_headers(
        std::iter::once("threads".to_string())
            .chain(sizes.iter().map(|&n| mega_label(n)))
            .collect(),
    );
    // The PRAM cost model is exactly size-linear, so simulate at a capped
    // size and note the cap; the model's speedups depend on (n, p) only
    // through n/p vs log n, which the cap preserves to within noise.
    let pram_cap: usize = match scale {
        Scale::Full => 16 << 20,
        Scale::Default => 4 << 20,
        Scale::Smoke => 1 << 16,
    };
    let mut model: Vec<Vec<f64>> = vec![vec![0.0; sizes.len()]; threads.len()];
    for (si, &n) in sizes.iter().enumerate() {
        let sim_n = n.min(pram_cap);
        let (a32, b32) = merge_pair(MergeWorkload::Uniform, sim_n, 0xF16_5EED);
        let a: Vec<u64> = a32.iter().map(|&x| x as u64).collect();
        let b: Vec<u64> = b32.iter().map(|&x| x as u64).collect();
        let (r1, _) = measure_merge(&a, &b, 1, false).expect("conflict-free");
        for (ti, &p) in threads.iter().enumerate() {
            let (rp, _) = measure_merge(&a, &b, p, false).expect("conflict-free");
            model[ti][si] = r1.time as f64 / rp.time as f64;
        }
        eprintln!(
            "  [pram] size {} simulated at {} (T1 = {} ops)",
            mega_label(n),
            mega_label(sim_n),
            r1.time
        );
    }
    for (ti, &p) in threads.iter().enumerate() {
        let mut row = vec![p.to_string()];
        row.extend(model[ti].iter().map(|s| format!("{s:.2}")));
        table.row(&row);
    }
    println!("{}", table.render());
    table.save_csv("fig5_pram_speedup");

    // --- PRAM + finite shared-memory bandwidth --------------------------
    // The ideal PRAM scales perfectly; the paper's machine does not quite
    // (≈ 11.7x at 12 threads, and less for the largest arrays). That bend
    // is memory-bandwidth saturation. One bandwidth parameter is
    // calibrated to the paper's headline number: the kernel issues 4 memory
    // accesses per merged element out of 5 total ops, so a speedup cap of
    // 11.7 needs an aggregate bandwidth of 4/5*11.7 = 9.36 accesses/unit
    // once the footprint exceeds the two 12 MiB L3s (9.55 when cache-
    // resident). Everything else is then prediction, not fit.
    println!("--- PRAM-model speedup with finite shared-memory bandwidth ---");
    let mut btable = Table::from_headers(
        std::iter::once("threads".to_string())
            .chain(sizes.iter().map(|&n| mega_label(n)))
            .collect(),
    );
    let llc_bytes = 2 * 12 * 1024 * 1024usize; // two X5670 L3 caches
    let mut bmodel: Vec<Vec<f64>> = vec![vec![0.0; sizes.len()]; threads.len()];
    for (si, &n) in sizes.iter().enumerate() {
        let sim_n = n.min(pram_cap);
        // Bandwidth is a property of the modelled size, not the capped
        // simulation size (the paper's footprint formula: 4·|A|·|type|).
        let footprint = 4 * n * 4;
        let bw = if footprint <= llc_bytes { 9.55 } else { 9.36 };
        let (a32, b32) = merge_pair(MergeWorkload::Uniform, sim_n, 0xF16_5EED);
        let a: Vec<u64> = a32.iter().map(|&x| x as u64).collect();
        let b: Vec<u64> = b32.iter().map(|&x| x as u64).collect();
        let (r1, _) =
            mergepath_pram::kernels::measure_merge_bw(&a, &b, 1, false, Some(bw)).unwrap();
        for (ti, &p) in threads.iter().enumerate() {
            let (rp, _) =
                mergepath_pram::kernels::measure_merge_bw(&a, &b, p, false, Some(bw)).unwrap();
            bmodel[ti][si] = r1.time as f64 / rp.time as f64;
        }
    }
    for (ti, &p) in threads.iter().enumerate() {
        let mut row = vec![p.to_string()];
        row.extend(bmodel[ti].iter().map(|s| format!("{s:.2}")));
        btable.row(&row);
    }
    println!("{}", btable.render());
    btable.save_csv("fig5_pram_bw_speedup");

    // The paper's T2 headline: ≈ 11.7× at 12 threads on the larger inputs.
    if let Some(ti) = threads.iter().position(|&p| p == 12) {
        let ideal = model[ti].last().copied().unwrap_or(0.0);
        let bw = bmodel[ti].last().copied().unwrap_or(0.0);
        println!(
            "T2 check @ 12 threads, largest size: ideal PRAM {ideal:.2}x, \
             bandwidth-limited {bw:.2}x (paper: ~11.7x)\n"
        );
    }

    // --- Wall clock -----------------------------------------------------
    println!("--- Wall-clock speedup (std::thread; honest on this host) ---");
    println!(
        "    (host has {} core(s) visible)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let wall_sizes: Vec<usize> = sizes
        .iter()
        .copied()
        .filter(|&n| {
            n <= if matches!(scale, Scale::Full) {
                256 << 20
            } else {
                16 << 20
            }
        })
        .collect();
    let mut wtable = Table::from_headers(
        std::iter::once("threads".to_string())
            .chain(wall_sizes.iter().map(|&n| mega_label(n)))
            .collect(),
    );
    let mut wall: Vec<Vec<f64>> = vec![vec![0.0; wall_sizes.len()]; threads.len()];
    for (si, &n) in wall_sizes.iter().enumerate() {
        let (a, b) = merge_pair(MergeWorkload::Uniform, n, 0xF16_5EED);
        let mut out = vec![0u32; 2 * n];
        let t1 = time_best(scale.reps(), || {
            parallel_merge_into(&a, &b, &mut out, 1);
        });
        for (ti, &p) in threads.iter().enumerate() {
            let tp = time_best(scale.reps(), || {
                parallel_merge_into(&a, &b, &mut out, p);
            });
            wall[ti][si] = t1 / tp;
        }
        eprintln!("  [wall] size {} T1 = {:.3}s", mega_label(n), t1);
    }
    for (ti, &p) in threads.iter().enumerate() {
        let mut row = vec![p.to_string()];
        row.extend(wall[ti].iter().map(|s| format!("{s:.2}")));
        wtable.row(&row);
    }
    println!("{}", wtable.render());
    wtable.save_csv("fig5_wallclock_speedup");

    println!(
        "Paper comparison: Figure 5 shows near-linear speedup (~11.7x @ 12 threads),\n\
         slightly lower for the biggest arrays. The PRAM-model column reproduces that\n\
         shape; wall-clock reproduces it only when real cores are available."
    );
}
