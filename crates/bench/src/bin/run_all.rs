//! Runs the complete experiment suite in sequence — everything
//! EXPERIMENTS.md cites — forwarding the scale flag, and summarizes which
//! binaries succeeded. One command to regenerate the whole evaluation:
//!
//! `cargo run --release -p mergepath-bench --bin run_all [--smoke|--full]`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig1_matrix",
    "fig3_segments",
    "fig4_sort_stages",
    "fig5_speedup",
    "t1_overhead",
    "c1_complexity",
    "c2_cache",
    "c3_imbalance",
    "c4_naive_counterexample",
    "c5_sort_scaling",
    "c6_coherence",
    "c7_hypercore",
];

fn main() {
    let flags: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a == "--smoke" || a == "--full")
        .collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()));
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================================================================");
        println!("==== {name} {}", flags.join(" "));
        println!("================================================================");
        // Prefer the sibling binary (already built alongside this one);
        // fall back to cargo run for odd invocations.
        let status = match exe_dir.as_ref().map(|d| d.join(name)) {
            Some(path) if path.exists() => Command::new(path).args(&flags).status(),
            _ => Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "-q",
                    "-p",
                    "mergepath-bench",
                    "--bin",
                    name,
                    "--",
                ])
                .args(&flags)
                .status(),
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name}: exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("{name}: failed to launch: {e}");
                failures.push(*name);
            }
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!(
            "all {} experiments completed; outputs in results/",
            EXPERIMENTS.len()
        );
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
