//! **C5** — scaling of the derived sorts (§III and §IV.C).
//!
//! * PRAM model: the §III parallel merge sort's simulated time vs `p`,
//!   against the paper's `O(N/p·log N + log p·log N)` bound.
//! * Wall clock: our sequential merge sort, parallel merge sort,
//!   cache-aware sort, `std` stable/unstable sorts and bitonic sort on one
//!   host thread (honest single-core numbers; relative ordering of the
//!   sequential baselines is hardware-independent).
//!
//! Run: `cargo run --release -p mergepath-bench --bin c5_sort_scaling [--smoke]`

use mergepath::sort::cache_aware::cache_aware_parallel_sort;
use mergepath::sort::parallel::parallel_merge_sort;
use mergepath::sort::sequential::merge_sort;
use mergepath_baselines::bitonic::bitonic_sort;
use mergepath_bench::{mega_label, time_best, Scale, Table};
use mergepath_pram::kernels::{load_array, parallel_merge_sort as pram_sort};
use mergepath_pram::PramMachine;
use mergepath_workloads::{is_sorted, unsorted_keys, SortWorkload};

fn main() {
    let scale = Scale::from_args();

    // --- PRAM scaling -----------------------------------------------------
    let n: usize = match scale {
        Scale::Smoke => 1 << 12,
        _ => 1 << 18,
    };
    println!(
        "=== C5a: §III parallel merge sort, PRAM-model time vs p (N = {}) ===\n",
        mega_label(n)
    );
    let data: Vec<u64> = unsorted_keys(SortWorkload::Uniform, n, 0xC5)
        .into_iter()
        .map(|x| x as u64)
        .collect();
    let mut t = Table::new(&["p", "T(p) ops", "speedup", "supersteps"]);
    let mut t1 = 0u64;
    for p in [1usize, 2, 4, 6, 8, 12] {
        let mut m = PramMachine::new().with_crew_checking(false);
        let h = load_array(&mut m, &data);
        let cost = pram_sort(&mut m, h, p).expect("race-free");
        let sorted = m.read_slice(h.base, h.len);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        if p == 1 {
            t1 = cost.time;
        }
        t.row(&[
            p.to_string(),
            cost.time.to_string(),
            format!("{:.2}", t1 as f64 / cost.time as f64),
            cost.supersteps.to_string(),
        ]);
    }
    println!("{}", t.render());
    t.save_csv("c5_pram_sort");

    // --- Wall-clock single-host comparison ---------------------------------
    let n: usize = match scale {
        Scale::Smoke => 1 << 14,
        Scale::Full => 1 << 22,
        Scale::Default => 1 << 20,
    };
    let reps = scale.reps();
    println!(
        "=== C5b: wall-clock sorts on this host (N = {}) ===\n",
        mega_label(n)
    );
    let base = unsorted_keys(SortWorkload::Uniform, n, 0xC5B);
    let mut t2 = Table::new(&["algorithm", "seconds", "vs merge_sort"]);
    let mut results: Vec<(&str, f64)> = Vec::new();
    {
        let mut v = base.clone();
        let secs = time_best(reps, || {
            v.copy_from_slice(&base);
            merge_sort(&mut v);
        });
        assert!(is_sorted(&v));
        results.push(("merge_sort (ours, seq)", secs));
    }
    {
        let mut v = base.clone();
        let secs = time_best(reps, || {
            v.copy_from_slice(&base);
            parallel_merge_sort(&mut v, 4);
        });
        assert!(is_sorted(&v));
        results.push(("parallel_merge_sort p=4", secs));
    }
    {
        let mut v = base.clone();
        let secs = time_best(reps, || {
            v.copy_from_slice(&base);
            cache_aware_parallel_sort(&mut v, 4, 256 * 1024 / 4);
        });
        assert!(is_sorted(&v));
        results.push(("cache_aware_sort p=4 C=256KiB", secs));
    }
    {
        let mut v = base.clone();
        let secs = time_best(reps, || {
            v.copy_from_slice(&base);
            v.sort();
        });
        results.push(("std stable sort", secs));
    }
    {
        let mut v = base.clone();
        let secs = time_best(reps, || {
            v.copy_from_slice(&base);
            v.sort_unstable();
        });
        results.push(("std unstable sort", secs));
    }
    if n <= 1 << 20 {
        let mut v = base.clone();
        let secs = time_best(1, || {
            v.copy_from_slice(&base);
            bitonic_sort(&mut v);
        });
        assert!(is_sorted(&v));
        results.push(("bitonic sort [4] (O(N log²N))", secs));
    }
    let base_secs = results[0].1;
    for (name, secs) in &results {
        t2.row(&[
            name.to_string(),
            format!("{secs:.4}"),
            format!("{:.2}x", secs / base_secs),
        ]);
    }
    println!("{}", t2.render());
    t2.save_csv("c5_wall_sorts");
    println!(
        "Expected shape: bitonic pays its extra log N factor; the parallel sorts\n\
         match the sequential one on a 1-core host (thread overhead aside) and\n\
         pull ahead once real cores exist — the PRAM table above shows that\n\
         projection."
    );
}
