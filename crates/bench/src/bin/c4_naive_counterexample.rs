//! **C4** — the §I counterexample: naive equal-split parallel merge is
//! incorrect.
//!
//! Demonstrates the failure concretely (the output is unsorted), measures
//! *how* wrong it is per workload, and shows that Merge Path on the same
//! inputs is exact.
//!
//! Run: `cargo run -p mergepath-bench --bin c4_naive_counterexample`

use mergepath::merge::parallel::parallel_merge_into;
use mergepath_baselines::naive::{count_order_violations, naive_equal_split_merge};
use mergepath_bench::Table;
use mergepath_workloads::{is_sorted, merge_pair, MergeWorkload};

fn main() {
    let n = 1 << 14;
    let p = 4;
    println!("=== C4: naive equal-split merge vs Merge Path (|A|=|B|={n}, p={p}) ===\n");
    let mut t = Table::new(&[
        "workload",
        "naive sorted?",
        "naive inversions",
        "merge path sorted?",
    ]);
    for wl in MergeWorkload::ALL {
        let (a, b) = merge_pair(wl, n, 0xC4);
        let naive = naive_equal_split_merge(&a, &b, p);
        let violations = count_order_violations(&naive);
        let mut exact = vec![0u32; 2 * n];
        parallel_merge_into(&a, &b, &mut exact, p);
        t.row(&[
            wl.name().to_string(),
            is_sorted(&naive).to_string(),
            violations.to_string(),
            is_sorted(&exact).to_string(),
        ]);
    }
    println!("{}", t.render());
    t.save_csv("c4_naive");

    // The paper's own construction, spelled out.
    let a: Vec<u32> = (1000..1008).collect();
    let b: Vec<u32> = (0..8).collect();
    let naive = naive_equal_split_merge(&a, &b, 4);
    println!("Paper's construction — A = {a:?}, B = {b:?}, p = 4:");
    println!("  naive output: {naive:?}");
    println!(
        "  inversions: {} (chunk k merges A's k-th slice with B's k-th slice,\n\
         but every element of A belongs after every element of B)",
        count_order_violations(&naive)
    );
}
