//! **C3** — load balance: Merge Path vs the related-work partitioners.
//!
//! Corollary 7: equisized merge-path segments ⇒ perfect balance, for *any*
//! input. §V: the Shiloach–Vishkin-style rank partition assigns `O(N/p)`
//! on average but up to `2N/p` (and worse on skew), which "can cause a 2X
//! increase in latency". Akl–Santoro bisection is balanced but needs
//! `log p` dependent rounds (see C1c).
//!
//! Reported metric: `max segment / mean segment` (1.00 = perfect).
//!
//! Run: `cargo run --release -p mergepath-bench --bin c3_imbalance [--smoke]`

use mergepath::partition::{partition_segments, Segment};
use mergepath_baselines::akl_santoro::bisect_partition;
use mergepath_baselines::rank_partition::rank_partition_segments;
use mergepath_bench::{Scale, Table};
use mergepath_workloads::{merge_pair, MergeWorkload};

fn imbalance(segs: &[Segment]) -> f64 {
    let total: usize = segs.iter().map(Segment::len).sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / segs.len() as f64;
    segs.iter().map(Segment::len).max().unwrap_or(0) as f64 / mean
}

fn main() {
    let scale = Scale::from_args();
    let n: usize = match scale {
        Scale::Smoke => 1 << 12,
        _ => 1 << 20,
    };
    let p = 12usize;
    println!("=== C3: partition imbalance (max/mean, p = {p}, |A|=|B|={n}) ===\n");
    let mut t = Table::new(&[
        "workload",
        "merge path",
        "rank partition [6]",
        "akl-santoro [5]",
    ]);
    for wl in MergeWorkload::ALL {
        let (a, b) = merge_pair(wl, n, 0xC3);
        let mp = imbalance(&partition_segments(&a, &b, p));
        let rp = imbalance(&rank_partition_segments(&a, &b, p));
        let asb = imbalance(&bisect_partition(&a, &b, p).segments);
        t.row(&[
            wl.name().to_string(),
            format!("{mp:.3}"),
            format!("{rp:.3}"),
            format!("{asb:.3}"),
        ]);
    }
    println!("{}", t.render());
    t.save_csv("c3_imbalance");

    // The paper's "2X latency" scenario, made concrete: a duplicate-heavy
    // adversarial input where one rank-partition segment absorbs a huge
    // slice of B.
    let a: Vec<u32> = (0..n as u32).collect();
    let b: Vec<u32> = vec![n as u32 - 1; n];
    let mp = imbalance(&partition_segments(&a, &b, p));
    let rp = imbalance(&rank_partition_segments(&a, &b, p));
    println!(
        "Adversarial duplicates (all of B ties A's maximum):\n  \
         merge path = {mp:.3}, rank partition = {rp:.3}  \
         (rank partition's slowest core carries ~{:.1}x the mean load)",
        rp
    );
    println!(
        "\nCorollary 7 reproduced: merge path stays at 1.000 everywhere; the\n\
         rank partition degrades with skew exactly as §V warns."
    );
}
