//! **Figure 3** — block entry/exit points of the Segmented Parallel Merge
//! on the merge grid.
//!
//! The paper's Figure 3 shows "the initial and final points of the path for
//! a specific block in the cache algorithm" (yellow circles). This binary
//! computes the real block corners for a concrete instance via
//! [`mergepath::merge::segmented::spm_blocks`] and draws the staircase of
//! blocks over the grid, plus a table of per-block consumption (the
//! data-dependent mix the paper's remark discusses).
//!
//! Run: `cargo run -p mergepath-bench --bin fig3_segments`

use mergepath::merge::segmented::{spm_blocks, SpmConfig};
use mergepath_bench::svg::spm_blocks_svg;
use mergepath_bench::Table;
use mergepath_workloads::{merge_pair, MergeWorkload};

fn main() {
    for (wl, seed) in [
        (MergeWorkload::Uniform, 11u64),
        (MergeWorkload::SkewedRanges, 12),
        (MergeWorkload::AllAGreater, 13),
    ] {
        let n = 64usize;
        let (a, b) = merge_pair(wl, n, seed);
        let cfg = SpmConfig::new(48, 4); // L = 16
        let blocks = spm_blocks(&a, &b, &cfg, &|x, y| x.cmp(y));

        println!(
            "=== Figure 3: SPM blocks, workload `{}`, |A|=|B|={n}, L={} ===",
            wl.name(),
            cfg.segment_len()
        );
        let mut t = Table::new(&["block", "start (i,j)", "consumed A", "consumed B", "len"]);
        for (idx, blk) in blocks.iter().enumerate() {
            t.row(&[
                idx.to_string(),
                format!("({}, {})", blk.a_start, blk.b_start),
                blk.a_consumed.to_string(),
                blk.b_consumed.to_string(),
                blk.len().to_string(),
            ]);
        }
        println!("{}", t.render());

        // ASCII grid: block corners on the (|A|+1) x (|B|+1) grid, coarse.
        let step = 4usize;
        let corners: Vec<(usize, usize)> = blocks
            .iter()
            .map(|b| (b.a_start, b.b_start))
            .chain(std::iter::once((a.len(), b.len())))
            .collect();
        println!(
            "grid (rows = A consumed / {step}, cols = B consumed / {step}; 'O' = block corner):"
        );
        for r in 0..=a.len() / step {
            let mut line = String::new();
            for c in 0..=b.len() / step {
                let hit = corners.iter().any(|&(i, j)| i / step == r && j / step == c);
                line.push(if hit { 'O' } else { '.' });
                line.push(' ');
            }
            println!("  {line}");
        }
        let corners: Vec<(usize, usize)> = blocks
            .iter()
            .map(|b| (b.a_start, b.b_start))
            .chain(std::iter::once((a.len(), b.len())))
            .collect();
        spm_blocks_svg(
            a.len(),
            b.len(),
            &corners,
            &format!("Figure 3: SPM blocks ({})", wl.name()),
        )
        .save(&format!("fig3_blocks_{}", wl.name()));
        println!();
    }
    println!(
        "Lemma 15 check is implicit: every block consumes at most L elements of each\n\
         input, whatever the data dictates (see the `consumed` columns)."
    );
}
