//! **C6 (extension)** — the §IV.A coherence-overhead claim, quantified.
//!
//! The paper motivates its memory-efficiency work with: "cache coherence
//! mechanisms can present an extremely high overhead", and notes its
//! dual-socket testbed paid cross-processor coherence latency. This
//! experiment runs Algorithm 1's exact traces on `p` private MSI caches
//! and measures the coherence traffic of:
//!
//! * the algorithm's real **contiguous** output assignment — disjoint
//!   per-worker ranges, so only the `p − 1` segment-boundary lines can
//!   bounce; and
//! * a synthetic **striped** assignment (worker `k` writes ranks
//!   `k, k+p, …`) — the "obvious" alternative that false-shares every
//!   output line.
//!
//! Run: `cargo run --release -p mergepath-bench --bin c6_coherence [--smoke]`

use mergepath_bench::{mega_label, Scale, Table};
use mergepath_cache_sim::cache::CacheConfig;
use mergepath_cache_sim::scenarios::{parallel_merge_private_caches, OutputAssignment};
use mergepath_cache_sim::MemoryLayout;
use mergepath_workloads::{merge_pair, MergeWorkload};

fn main() {
    let scale = Scale::from_args();
    let n: usize = match scale {
        Scale::Smoke => 1 << 12,
        _ => 1 << 16,
    };
    let (a, b) = merge_pair(MergeWorkload::Uniform, n, 0xC6);
    let layout = MemoryLayout::natural(4, n as u64, n as u64, 0);
    let per_core = CacheConfig::new(32 * 1024, 8); // an L1 per core

    println!(
        "=== C6: MSI coherence traffic of Algorithm 1, |A|=|B|={} ===\n",
        mega_label(n)
    );
    let mut t = Table::new(&[
        "p",
        "assignment",
        "invalidations",
        "writebacks",
        "downgrades",
        "bus traffic/access",
    ]);
    for p in [2usize, 4, 8, 12] {
        for (label, asg) in [
            ("contiguous (Alg 1)", OutputAssignment::Contiguous),
            ("striped (strawman)", OutputAssignment::Striped),
        ] {
            let s = parallel_merge_private_caches(&a, &b, p, layout, per_core, asg);
            t.row(&[
                p.to_string(),
                label.to_string(),
                s.invalidations.to_string(),
                s.writebacks.to_string(),
                s.downgrades.to_string(),
                format!("{:.4}", s.bus_traffic_rate()),
            ]);
        }
    }
    println!("{}", t.render());
    t.save_csv("c6_coherence");
    println!(
        "Merge Path's contiguous segments generate essentially zero invalidation\n\
         traffic (only the p−1 boundary lines can be shared by two writers);\n\
         the striped strawman invalidates on nearly every write — the §IV.A\n\
         overhead the paper's design avoids by construction. Input reads are\n\
         shared read-only copies and never cost coherence transactions."
    );
}
