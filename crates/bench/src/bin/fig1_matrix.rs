//! **Figures 1 & 2** — the Merge Matrix, its cross diagonals, and the Merge
//! Path running through it.
//!
//! The paper's Figures 1–2 are conceptual diagrams; this binary regenerates
//! them *from real data*: it builds the merge matrix of two small sorted
//! arrays, constructs the merge path by the Lemma-1 walk, marks the
//! intersection of the path with the equispaced cross diagonals that
//! Theorem 14's binary search finds, and verifies Proposition 13 (the path
//! point is the 1→0 transition of each diagonal) on the spot.
//!
//! Run: `cargo run -p mergepath-bench --bin fig1_matrix`

use mergepath::diagonal::diagonal_intersection;
use mergepath::matrix::MergeMatrix;
use mergepath::partition::segment_boundary;
use mergepath::path::MergePath;
use mergepath_bench::svg::merge_grid_svg;
use mergepath_workloads::{merge_pair_sized, MergeWorkload};

fn show(a: &[u32], b: &[u32], p: usize, title: &str) {
    show_named(a, b, p, title, None);
}

fn show_named(a: &[u32], b: &[u32], p: usize, title: &str, svg_name: Option<&str>) {
    println!("=== {title} ===");
    println!("A = {a:?}");
    println!("B = {b:?}\n");
    let matrix = MergeMatrix::new(a, b);
    let path = MergePath::construct(a, b);
    println!("{}", matrix.render(path.points()));
    let n = a.len() + b.len();
    println!("Path ('o' corners) and M entries (1 = A[i] > B[j]).");
    println!("Equispaced cross-diagonal intersections for p = {p}:");
    for k in 1..p {
        let d = segment_boundary(n, p, k);
        let (i, j) = diagonal_intersection(d, a, b);
        // Proposition 13 verification on the spot: entries above the point
        // on the diagonal are 0, entries below are 1.
        let ok = matrix
            .cross_diagonal(d.saturating_sub(1))
            .all(|(mi, mj, e)| if mi < i { !e || mj >= j } else { true });
        println!(
            "  diagonal d={d}: path crosses at (i={i}, j={j})  \
             [segment {k} ends: {i} elems of A, {j} of B; prop13 {}]",
            if ok { "ok" } else { "VIOLATION" }
        );
    }
    if let Some(name) = svg_name {
        let cuts: Vec<(usize, usize)> = (1..p)
            .map(|k| diagonal_intersection(segment_boundary(n, p, k), a, b))
            .collect();
        merge_grid_svg(a.len(), b.len(), path.points(), &cuts, title).save(name);
    }
    println!();
}

fn main() {
    // Figure 1/2 scale: small arrays so the grid is readable.
    let a = [3u32, 5, 12, 22, 45, 64, 69, 82];
    let b = [17u32, 29, 35, 73, 86];
    show_named(
        &a,
        &b,
        4,
        "Figure 1/2: merge matrix + merge path (hand-set data)",
        Some("fig1_merge_path"),
    );

    let (ua, ub) = merge_pair_sized(MergeWorkload::Uniform, 10, 8, 7);
    let ua: Vec<u32> = ua.iter().map(|x| x % 90).collect::<Vec<_>>();
    let ub: Vec<u32> = ub.iter().map(|x| x % 90).collect::<Vec<_>>();
    let mut ua = ua;
    let mut ub = ub;
    ua.sort_unstable();
    ub.sort_unstable();
    show(&ua, &ub, 3, "Figure 1/2: uniform random instance");

    let (ga, gb) = merge_pair_sized(MergeWorkload::AllAGreater, 6, 6, 3);
    let ga: Vec<u32> = ga.iter().map(|x| x / 40_000_000).collect();
    let gb: Vec<u32> = gb.iter().map(|x| x / 40_000_000).collect();
    show(
        &ga,
        &gb,
        3,
        "Figure 1/2: adversarial instance (all A > all B — the path is an L)",
    );
}
