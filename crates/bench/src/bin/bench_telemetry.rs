//! **BENCH_telemetry** — machine-readable telemetry summary for every
//! parallel kernel: untraced vs traced wall-clock (the `NoRecorder` path
//! must stay free; the `TimelineRecorder` overhead is the price of
//! observation), plus the derived load-balance report (Thm 14 predicted
//! `⌈N/p⌉` vs observed per-worker counts, busy-time spread, round waits).
//!
//! Writes `BENCH_telemetry.json` at the workspace root (next to the other
//! `BENCH_*`/`results/` artifacts) and prints a table.
//!
//! Run: `cargo run --release -p mergepath-bench --bin bench_telemetry [--full|--smoke]`

use std::fmt::Write as _;

use mergepath::merge::batch::batch_merge_into_recorded;
use mergepath::merge::hierarchical::{hierarchical_merge_into_recorded, HierarchicalConfig};
use mergepath::merge::inplace::parallel_inplace_merge_recorded;
use mergepath::merge::kway::parallel_kway_merge_recorded;
use mergepath::merge::parallel::parallel_merge_into_recorded;
use mergepath::merge::segmented::{segmented_parallel_merge_into_recorded, SpmConfig};
use mergepath::sort::cache_aware::{cache_aware_parallel_sort_recorded, CacheAwareConfig};
use mergepath::sort::kway::kway_merge_sort_recorded;
use mergepath::sort::parallel::parallel_merge_sort_recorded;
use mergepath::telemetry::{NoRecorder, Recorder, Telemetry, TimelineRecorder};
use mergepath_bench::{time_best, Scale, Table};
use mergepath_workloads::{
    merge_pair_sized, sorted_keys, unsorted_keys, MergeWorkload, SortWorkload,
};

const SEED: u64 = 0x7e1e;

/// Runs one kernel under `rec`; the generic lets the same closure body
/// drive both the `NoRecorder` timing loop and the traced run.
fn run_kernel<R: Recorder>(kernel: &str, n: usize, threads: usize, rec: &R) {
    let cmp = |x: &u32, y: &u32| x.cmp(y);
    match kernel {
        "parallel" => {
            let (a, b) = merge_pair_sized(MergeWorkload::Uniform, n / 2, n - n / 2, SEED);
            let mut out = vec![0u32; n];
            parallel_merge_into_recorded(&a, &b, &mut out, threads, &cmp, rec);
        }
        "segmented" => {
            let (a, b) = merge_pair_sized(MergeWorkload::Uniform, n / 2, n - n / 2, SEED);
            let mut out = vec![0u32; n];
            let spm = SpmConfig::new(64 * 1024, threads);
            segmented_parallel_merge_into_recorded(&a, &b, &mut out, &spm, &cmp, rec);
        }
        "batch" => {
            let pair_count = threads.max(2);
            let data: Vec<(Vec<u32>, Vec<u32>)> = (0..pair_count)
                .map(|i| {
                    let lo = i * n / pair_count;
                    let hi = (i + 1) * n / pair_count;
                    let total = hi - lo;
                    merge_pair_sized(
                        MergeWorkload::Uniform,
                        total / 2,
                        total - total / 2,
                        SEED.wrapping_add(i as u64),
                    )
                })
                .collect();
            let pairs: Vec<(&[u32], &[u32])> = data
                .iter()
                .map(|(a, b)| (a.as_slice(), b.as_slice()))
                .collect();
            let mut out = vec![0u32; n];
            batch_merge_into_recorded(&pairs, &mut out, threads, &cmp, rec);
        }
        "inplace" => {
            let (a, b) = merge_pair_sized(MergeWorkload::Uniform, n / 2, n - n / 2, SEED);
            let mid = a.len();
            let mut v = a;
            v.extend(b);
            parallel_inplace_merge_recorded(&mut v, mid, threads, &cmp, rec);
        }
        "kway" => {
            let k = 8usize;
            let lists: Vec<Vec<u32>> = (0..k)
                .map(|i| {
                    let lo = i * n / k;
                    let hi = (i + 1) * n / k;
                    sorted_keys(hi - lo, SEED.wrapping_add(i as u64))
                })
                .collect();
            let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
            let mut out = vec![0u32; n];
            parallel_kway_merge_recorded(&refs, &mut out, threads, &cmp, rec);
        }
        "hierarchical" => {
            let (a, b) = merge_pair_sized(MergeWorkload::Uniform, n / 2, n - n / 2, SEED);
            let mut out = vec![0u32; n];
            let cfg = HierarchicalConfig::new(threads);
            hierarchical_merge_into_recorded(&a, &b, &mut out, &cfg, &cmp, rec);
        }
        "sort-parallel" => {
            let mut v = unsorted_keys(SortWorkload::Uniform, n, SEED);
            parallel_merge_sort_recorded(&mut v, threads, &cmp, rec);
        }
        "sort-kway" => {
            let mut v = unsorted_keys(SortWorkload::Uniform, n, SEED);
            kway_merge_sort_recorded(&mut v, threads, &cmp, rec);
        }
        "sort-cache-aware" => {
            let mut v = unsorted_keys(SortWorkload::Uniform, n, SEED);
            let cfg = CacheAwareConfig::new(64 * 1024, threads);
            cache_aware_parallel_sort_recorded(&mut v, &cfg, &cmp, rec);
        }
        other => unreachable!("unknown kernel {other}"),
    }
}

fn trace_once(kernel: &str, n: usize, threads: usize) -> Telemetry {
    let rec = TimelineRecorder::new();
    run_kernel(kernel, n, threads, &rec);
    rec.finish()
}

fn main() {
    let scale = Scale::from_args();
    let n: usize = match scale {
        Scale::Full => 16 << 20,
        Scale::Default => 4 << 20,
        Scale::Smoke => 1 << 16,
    };
    let threads = mergepath::executor::default_threads();
    let reps = scale.reps().max(3);
    let kernels = [
        "parallel",
        "segmented",
        "batch",
        "inplace",
        "kway",
        "hierarchical",
        "sort-parallel",
        "sort-kway",
        "sort-cache-aware",
    ];

    println!("=== telemetry: traced vs untraced, load balance (n={n}, p={threads}) ===\n");
    let mut t = Table::new(&[
        "kernel",
        "untraced (s)",
        "traced (s)",
        "overhead",
        "max/min items",
        "thm14",
        "imbalance",
        "wait (ns)",
    ]);
    let mut json = String::from("{\"type\":\"bench_telemetry\",");
    let _ = write!(
        json,
        "\"n\":{n},\"threads\":{threads},\"reps\":{reps},\"kernels\":["
    );
    for (i, kernel) in kernels.iter().enumerate() {
        let untraced = time_best(reps, || run_kernel(kernel, n, threads, &NoRecorder));
        let traced = time_best(reps, || {
            let rec = TimelineRecorder::new();
            run_kernel(kernel, n, threads, &rec);
            drop(rec.finish());
        });
        let telemetry = trace_once(kernel, n, threads);
        let report = telemetry.load_balance(n as u64, threads);
        let overhead = traced / untraced - 1.0;
        t.row(&[
            kernel.to_string(),
            format!("{untraced:.4}"),
            format!("{traced:.4}"),
            format!("{:+.1}%", overhead * 100.0),
            format!("{}/{}", report.max_items, report.min_items),
            report.thm14_exact.to_string(),
            format!("{:.3}", report.busy.imbalance),
            report.total_wait_ns.to_string(),
        ]);
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"kernel\":\"{kernel}\",\"untraced_s\":{untraced},\"traced_s\":{traced},\
             \"overhead\":{overhead},\"spans\":{},\"load_balance\":{}}}",
            telemetry.spans.len(),
            report.to_json(),
        );
    }
    json.push_str("]}");
    println!("{}", t.render());
    t.save_csv("telemetry");

    // Self-check: the emitted document must parse with the in-repo parser.
    mergepath::telemetry::json::parse(&json).expect("BENCH_telemetry.json must be valid JSON");
    match std::fs::write("BENCH_telemetry.json", &json) {
        Ok(()) => println!("(json written to BENCH_telemetry.json)"),
        Err(e) => eprintln!("warning: cannot write BENCH_telemetry.json: {e}"),
    }
    println!(
        "\nThm 14 holds exactly for single-round merges (each worker gets\n\
         ⌈N/p⌉ output elements); multi-round kernels accumulate several\n\
         rounds so only the spread is meaningful there. Traced overhead is\n\
         the cost of observation — the NoRecorder path compiles to the\n\
         untraced kernel."
    );
}
