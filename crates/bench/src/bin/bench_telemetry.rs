//! **BENCH_telemetry** — machine-readable telemetry summary for every
//! parallel kernel: untraced vs traced wall-clock (the `NoRecorder` path
//! must stay free; the `TimelineRecorder` overhead is the price of
//! observation), plus the derived load-balance report (Thm 14 predicted
//! `⌈N/p⌉` vs observed per-worker counts, busy-time spread, round waits).
//!
//! Writes `BENCH_telemetry.json` at the workspace root through the shared
//! artifact envelope ([`mergepath::telemetry::artifact`]); the payload
//! comes from the same builder `mp bench` uses
//! ([`mergepath_cli::bench::telemetry_payload`]), so this bin and the CLI
//! harness can never emit divergent schemas or environment fingerprints.
//! Also prints a table and saves `results/telemetry.csv`.
//!
//! Run: `cargo run --release -p mergepath-bench --bin bench_telemetry [--full|--smoke]`

use mergepath::telemetry::artifact::{render_artifact, EnvFingerprint};
use mergepath::telemetry::json::{self, Value};
use mergepath_bench::{Scale, Table};
use mergepath_cli::bench::telemetry_payload;

fn field(kernel: &Value, key: &str) -> f64 {
    kernel.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

fn balance_field(kernel: &Value, key: &str) -> f64 {
    kernel
        .get("load_balance")
        .and_then(|b| b.get(key))
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN)
}

fn main() {
    let scale = Scale::from_args();
    let n: usize = match scale {
        Scale::Full => 16 << 20,
        Scale::Default => 4 << 20,
        Scale::Smoke => 1 << 16,
    };
    let threads = mergepath::executor::default_threads();
    let reps = scale.reps().max(3);

    println!("=== telemetry: traced vs untraced, load balance (n={n}, p={threads}) ===\n");
    let payload = telemetry_payload(n, threads, 0x7e1e, reps);
    let doc = render_artifact("bench_telemetry", &EnvFingerprint::capture(), &payload)
        .expect("BENCH_telemetry.json must pass the artifact schema check");

    // Render the table from the payload itself — one source of truth.
    let parsed = json::parse(&payload).expect("payload parses");
    let kernels = parsed
        .get("kernels")
        .and_then(Value::as_array)
        .expect("kernels array");
    let mut t = Table::new(&[
        "kernel",
        "untraced (s)",
        "traced (s)",
        "overhead",
        "max/min items",
        "thm14",
        "imbalance",
        "wait (ns)",
    ]);
    for k in kernels {
        t.row(&[
            k.get("kernel").and_then(Value::as_str).unwrap().to_string(),
            format!("{:.4}", field(k, "untraced_s")),
            format!("{:.4}", field(k, "traced_s")),
            format!("{:+.1}%", field(k, "overhead") * 100.0),
            format!(
                "{}/{}",
                balance_field(k, "max_items") as u64,
                balance_field(k, "min_items") as u64
            ),
            matches!(
                k.get("load_balance").and_then(|b| b.get("thm14_exact")),
                Some(Value::Bool(true))
            )
            .to_string(),
            format!("{:.3}", balance_field(k, "imbalance")),
            (balance_field(k, "total_wait_ns") as u64).to_string(),
        ]);
    }
    println!("{}", t.render());
    t.save_csv("telemetry");

    match std::fs::write("BENCH_telemetry.json", &doc) {
        Ok(()) => println!("(json written to BENCH_telemetry.json)"),
        Err(e) => eprintln!("warning: cannot write BENCH_telemetry.json: {e}"),
    }
    println!(
        "\nThm 14 holds exactly for single-round merges (each worker gets\n\
         ⌈N/p⌉ output elements); multi-round kernels accumulate several\n\
         rounds so only the spread is meaningful there. Traced overhead is\n\
         the cost of observation — the NoRecorder path compiles to the\n\
         untraced kernel."
    );
}
