//! **C1** — empirical validation of the paper's complexity claims.
//!
//! * Theorem 14: each partition point costs at most
//!   `log2(min(|A|,|B|)) + 1` comparisons — measured maximum over all cut
//!   points and workloads.
//! * §III time: PRAM `T(p) ≈ N/p + c·log N`; we fit the measured simulator
//!   times against the model and report the residual.
//! * §III work: `W(p) − W(1) = O(p·log N)` — measured partition overhead.
//! * §V comparison: Akl–Santoro needs `log p` *dependent* search rounds
//!   (time `O(N/p + log N·log p)`); Merge Path needs one.
//!
//! Run: `cargo run --release -p mergepath-bench --bin c1_complexity [--smoke]`

use mergepath::partition::partition_segments_counted;
use mergepath_baselines::akl_santoro::bisect_partition;
use mergepath_baselines::multiselect::multiselect_partition;
use mergepath_bench::{mega_label, Scale, Table};
use mergepath_pram::kernels::measure_merge;
use mergepath_workloads::{merge_pair, MergeWorkload};

fn main() {
    let scale = Scale::from_args();
    let sizes: Vec<usize> = match scale {
        Scale::Smoke => vec![1 << 12, 1 << 14],
        _ => vec![1 << 14, 1 << 17, 1 << 20],
    };
    let cmp = |x: &u32, y: &u32| x.cmp(y);

    // --- Theorem 14 bound --------------------------------------------
    println!("=== C1a: Theorem 14 — partition search cost ≤ log2(min(|A|,|B|)) + 1 ===\n");
    let mut t = Table::new(&["n per array", "workload", "p", "max cmps", "bound"]);
    for &n in &sizes {
        let bound = (n as f64).log2().ceil() as u32 + 1;
        for wl in MergeWorkload::ALL {
            let (a, b) = merge_pair(wl, n, 0xC1);
            for p in [2usize, 12, 64] {
                let cp = partition_segments_counted(a.as_slice(), b.as_slice(), p, &cmp);
                let max = cp.comparisons.iter().copied().max().unwrap_or(0);
                assert!(max <= bound, "Theorem 14 violated");
                if p == 12 {
                    t.row(&[
                        mega_label(n),
                        wl.name().to_string(),
                        p.to_string(),
                        max.to_string(),
                        bound.to_string(),
                    ]);
                }
            }
        }
    }
    println!("{}", t.render());
    t.save_csv("c1_theorem14");

    // --- PRAM time model ----------------------------------------------
    println!("=== C1b: §III time model T(p) ≈ c1·N/p + c2·log N (PRAM measurements) ===\n");
    let n = match scale {
        Scale::Smoke => 1 << 14,
        _ => 1 << 20,
    };
    let (a32, b32) = merge_pair(MergeWorkload::Uniform, n, 0xC2);
    let a: Vec<u64> = a32.iter().map(|&x| x as u64).collect();
    let b: Vec<u64> = b32.iter().map(|&x| x as u64).collect();
    let total = 2 * n;
    let mut t2 = Table::new(&["p", "T(p) ops", "N/p", "T(p)·p/N", "work − work(1)"]);
    let (r1, _) = measure_merge(&a, &b, 1, false).unwrap();
    for p in [1usize, 2, 4, 8, 12, 16, 32] {
        let (rp, _) = measure_merge(&a, &b, p, false).unwrap();
        t2.row(&[
            p.to_string(),
            rp.time.to_string(),
            (total / p).to_string(),
            format!("{:.3}", rp.time as f64 * p as f64 / total as f64),
            (rp.work as i64 - r1.work as i64).to_string(),
        ]);
    }
    println!("{}", t2.render());
    t2.save_csv("c1_pram_time");
    println!(
        "T(p)·p/N should stay ≈ constant (the per-element cost), with the\n\
         excess over p=1 equal to the O(p·log N) partition work.\n"
    );

    // --- Dependent vs independent partition rounds ----------------------
    println!("=== C1c: §V — partition rounds: Merge Path vs Akl–Santoro ===\n");
    let (a, b) = merge_pair(MergeWorkload::Uniform, n, 0xC3);
    let mut t3 = Table::new(&[
        "p",
        "mergepath rounds",
        "mergepath cmps",
        "akl-santoro rounds",
        "akl-santoro cmps",
        "multiselect rounds",
        "multiselect cmps",
    ]);
    for p in [2usize, 4, 8, 12, 16, 64] {
        let mp = partition_segments_counted(a.as_slice(), b.as_slice(), p, &cmp);
        let mp_cmps: u64 = mp.comparisons.iter().map(|&c| c as u64).sum();
        let asp = bisect_partition(&a, &b, p);
        let ms = multiselect_partition(&a, &b, p);
        t3.row(&[
            p.to_string(),
            "1".to_string(), // all searches independent ⇒ one parallel round
            mp_cmps.to_string(),
            asp.rounds.to_string(),
            asp.search_comparisons.to_string(),
            ms.rounds.to_string(),
            ms.search_comparisons.to_string(),
        ]);
    }
    println!("{}", t3.render());
    t3.save_csv("c1_partition_rounds");
    println!(
        "Merge Path computes its p−1 cut points independently (1 parallel round,\n\
         O(log N) critical path); the bisection and the multiselection of [7]\n\
         need ⌈log2 p⌉ dependent rounds (O(log N·log p) critical path) — the\n\
         asymptotic gap of §V. Multiselection's shared recursion does save\n\
         total comparisons at high p (its deeper searches scan shrunken\n\
         sub-arrays)."
    );
}
